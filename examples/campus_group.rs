//! Campus proxy group: the paper's motivating deployment.
//!
//! A university department runs one proxy per subnet (the paper's
//! distributed architecture). This example sweeps the aggregate disk
//! budget across the paper's five sizes and shows where cooperation and
//! the EA scheme pay off — the same sweep behind Figures 1–3, on a
//! medium workload so it finishes in a couple of seconds.
//!
//! ```sh
//! cargo run --release --example campus_group
//! ```

use coopcache::prelude::*;

fn main() {
    let trace = generate(&TraceProfile::medium()).expect("built-in profile is valid");
    println!(
        "campus workload: {} requests, {} clients\n",
        trace.len(),
        trace.stats().unique_clients
    );

    let base = SimConfig::new(ByteSize::ZERO).with_group_size(4);
    let sizes = [
        ByteSize::from_kb(100),
        ByteSize::from_mb(1),
        ByteSize::from_mb(10),
        ByteSize::from_mb(100),
    ];

    let mut table = Table::new(vec![
        "disk budget",
        "ad-hoc hit %",
        "EA hit %",
        "EA latency saves (ms)",
        "replicas saved",
    ]);
    for point in capacity_sweep(&base, &sizes, &trace) {
        table.row(vec![
            point.aggregate.to_string(),
            format!("{:.2}", 100.0 * point.adhoc.metrics.hit_rate()),
            format!("{:.2}", 100.0 * point.ea.metrics.hit_rate()),
            format!("{:+.0}", point.latency_gain_ms()),
            format!(
                "{}",
                point.adhoc.replica_overhead() as i64 - point.ea.replica_overhead() as i64
            ),
        ]);
    }
    print!("{table}");

    println!(
        "\nReading: the EA scheme turns duplicate copies into extra unique\n\
         documents; the benefit is largest while the disk budget is scarce\n\
         relative to the working set."
    );
}
