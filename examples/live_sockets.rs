//! Live sockets: the protocol over real UDP and TCP on loopback.
//!
//! The paper ran its simulator instances on several machines talking UDP
//! (ICP) and TCP (HTTP). This example starts an actual 3-daemon cluster
//! plus a stub origin server, pushes a small workload through it from
//! multiple client threads, and prints per-daemon statistics.
//!
//! ```sh
//! cargo run --release --example live_sockets
//! ```

use coopcache::net::LoopbackCluster;
use coopcache::prelude::*;
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    let cluster = Arc::new(LoopbackCluster::start(
        3,
        ByteSize::from_kb(128),
        PlacementScheme::Ea,
    )?);
    println!("started 3 cache daemons + origin on loopback\n");

    // Three client populations, one per cache, with overlapping interests.
    let mut handles = Vec::new();
    for idx in 0..3usize {
        let cluster = Arc::clone(&cluster);
        handles.push(std::thread::spawn(move || {
            let mut rng = coopcache::trace::Rng::seed_from(idx as u64 + 1);
            for _ in 0..200 {
                // 40 shared hot documents, Zipf-ish via modulo bias.
                let doc = DocId::new(rng.next_below(40).min(rng.next_below(40)) + 1);
                let size = ByteSize::from_kb(1 + rng.next_below(8));
                cluster
                    .request(idx, doc, size)
                    .expect("loopback request succeeds");
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread panicked");
    }

    let mut table = Table::new(vec![
        "daemon",
        "local hits",
        "misses",
        "remote serves",
        "docs cached",
        "exp age",
    ]);
    for idx in 0..3usize {
        cluster.daemon(idx).with_node(|node| {
            let stats = node.cache().stats();
            table.row(vec![
                node.id().to_string(),
                stats.local_hits.to_string(),
                stats.local_misses.to_string(),
                stats.remote_serves.to_string(),
                node.cache().len().to_string(),
                node.expiration_age().to_string(),
            ]);
        });
    }
    print!("{table}");
    println!(
        "\norigin fetches (group misses): {}",
        cluster.origin_fetches()
    );

    match Arc::try_unwrap(cluster) {
        Ok(cluster) => cluster.shutdown(),
        Err(_) => unreachable!("all clients joined"),
    }
    println!("cluster shut down cleanly");
    Ok(())
}
