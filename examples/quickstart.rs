//! Quickstart: the paper's headline comparison in ~40 lines.
//!
//! Generates a small deterministic workload, replays it through a
//! 4-cache distributed group under both placement schemes, and prints
//! the metrics the paper evaluates.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use coopcache::prelude::*;

fn main() {
    // A deterministic 20k-request workload (Zipf popularity, sessions,
    // flash crowds — a miniature of the paper's BU-94 trace).
    let trace = generate(&TraceProfile::small()).expect("built-in profile is valid");
    let stats = trace.stats();
    println!(
        "workload: {} requests over {} unique documents ({} of unique bytes)\n",
        stats.requests, stats.unique_docs, stats.unique_bytes
    );

    // The paper's setup: 4 caches sharing 1 MB of aggregate disk evenly.
    let config = SimConfig::new(ByteSize::from_mb(1)).with_group_size(4);

    let adhoc = run(&config, &trace);
    let ea = run(&config.clone().with_scheme(PlacementScheme::Ea), &trace);

    let mut table = Table::new(vec!["metric", "ad-hoc", "EA"]);
    table.row(vec![
        "document hit rate %".into(),
        format!("{:.2}", 100.0 * adhoc.metrics.hit_rate()),
        format!("{:.2}", 100.0 * ea.metrics.hit_rate()),
    ]);
    table.row(vec![
        "byte hit rate %".into(),
        format!("{:.2}", 100.0 * adhoc.metrics.byte_hit_rate()),
        format!("{:.2}", 100.0 * ea.metrics.byte_hit_rate()),
    ]);
    table.row(vec![
        "remote hit rate %".into(),
        format!("{:.2}", 100.0 * adhoc.metrics.remote_hit_rate()),
        format!("{:.2}", 100.0 * ea.metrics.remote_hit_rate()),
    ]);
    table.row(vec![
        "est. latency (ms, eq. 6)".into(),
        format!("{:.0}", adhoc.estimated_latency_ms),
        format!("{:.0}", ea.estimated_latency_ms),
    ]);
    table.row(vec![
        "avg expiration age (s)".into(),
        format!("{:.1}", adhoc.avg_expiration_age_ms.unwrap_or(0.0) / 1e3),
        format!("{:.1}", ea.avg_expiration_age_ms.unwrap_or(0.0) / 1e3),
    ]);
    table.row(vec![
        "replicated doc slots".into(),
        adhoc.replica_overhead().to_string(),
        ea.replica_overhead().to_string(),
    ]);
    print!("{table}");

    println!(
        "\nEA skipped {} replica stores and {} stale promotions.",
        ea.metrics.stores_skipped, ea.metrics.promotions_skipped
    );
}
