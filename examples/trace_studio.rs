//! Trace studio: inspect, save and reload synthetic workloads.
//!
//! Shows the trace substrate on its own: generate a BU-94-like workload,
//! print its aggregate statistics next to the numbers the paper reports,
//! write it to the v1 text format, and read it back.
//!
//! ```sh
//! cargo run --release --example trace_studio
//! ```

use coopcache::prelude::*;
use coopcache::trace::{read_trace, write_trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The full-scale profile matches the BU-94 log's shape.
    let profile = TraceProfile::bu94();
    let trace = generate(&profile)?;
    let stats = trace.stats();

    let mut table = Table::new(vec!["statistic", "BU-94 (paper)", "synthetic"]);
    table.row(vec![
        "requests".into(),
        "575,775".into(),
        stats.requests.to_string(),
    ]);
    table.row(vec![
        "unique documents".into(),
        "46,830".into(),
        stats.unique_docs.to_string(),
    ]);
    table.row(vec![
        "client population".into(),
        "591 users".into(),
        format!("{} active of {}", stats.unique_clients, profile.clients),
    ]);
    table.row(vec![
        "span".into(),
        "~105 days".into(),
        format!(
            "{:.0} days",
            (stats.end - stats.start).as_secs_f64() / 86_400.0
        ),
    ]);
    table.row(vec![
        "mean doc size".into(),
        "~4 KB".into(),
        stats.mean_doc_size().to_string(),
    ]);
    print!("{table}");

    // Round-trip a slice of it through the on-disk format.
    let head: Trace = trace.iter().take(10_000).copied().collect();
    let path = std::env::temp_dir().join("coopcache_demo.trace");
    let file = std::fs::File::create(&path)?;
    write_trace(std::io::BufWriter::new(file), &head)?;
    let reloaded = read_trace(std::fs::File::open(&path)?)?;
    assert_eq!(head, reloaded);
    println!(
        "\nwrote and reloaded {} records via {} (byte-identical)",
        reloaded.len(),
        path.display()
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
