//! Hierarchical caching: a regional parent above departmental leaves.
//!
//! The paper's §3.4 extends the EA scheme to parent/child hierarchies:
//! a parent that resolves a child's miss keeps a copy only when its
//! expiration age strictly exceeds the child's. This example builds a
//! two-level hierarchy, replays a workload, and contrasts how the two
//! schemes populate the parent.
//!
//! ```sh
//! cargo run --release --example hierarchy
//! ```

use coopcache::prelude::*;

fn main() {
    let trace = generate(&TraceProfile::small()).expect("built-in profile is valid");
    let leaves = 4u16;
    let latency = LatencyModel::paper_2002();

    let mut table = Table::new(vec![
        "scheme",
        "hit %",
        "local %",
        "remote %",
        "latency ms",
        "parent docs",
        "parent bytes",
    ]);
    for scheme in [PlacementScheme::AdHoc, PlacementScheme::Ea] {
        let mut group = HierarchicalGroup::two_level(
            leaves,
            ByteSize::from_kb(64),  // per departmental leaf
            ByteSize::from_kb(256), // the regional parent
            PolicyKind::Lru,
            scheme,
        );
        let mut metrics = GroupMetrics::default();
        let partitioner = Partitioner::default();
        for (seq, r) in trace.iter().enumerate() {
            let leaf = partitioner.assign(r, seq, leaves as usize);
            let outcome = group.handle_request(leaf, r.doc, r.size, r.time);
            metrics.record(outcome, r.size);
        }
        let parent = group.node(CacheId::new(leaves)).cache();
        table.row(vec![
            scheme.to_string(),
            format!("{:.2}", 100.0 * metrics.hit_rate()),
            format!("{:.2}", 100.0 * metrics.local_hit_rate()),
            format!("{:.2}", 100.0 * metrics.remote_hit_rate()),
            format!("{:.0}", latency.average_latency_ms(&metrics)),
            parent.len().to_string(),
            parent.used().to_string(),
        ]);
    }
    print!("{table}");

    println!(
        "\nReading: under ad-hoc the parent mirrors everything its children\n\
         fetch; under EA it keeps a copy only when it is the less contended\n\
         tier, so the same parent disk holds more unique documents."
    );
}
