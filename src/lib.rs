#![forbid(unsafe_code)]
//! # coopcache — expiration-age based cooperative web caching
//!
//! A faithful, from-scratch reproduction of *"A New Document Placement
//! Scheme for Cooperative Caching on the Internet"* (Lakshmish Ramaswamy
//! and Ling Liu, ICDCS 2002) as a production-grade Rust workspace.
//!
//! The paper's contribution — the **EA (Expiration-Age) document
//! placement scheme** — decides *where* a document copy should live in a
//! group of cooperating proxy caches by comparing the caches' disk-space
//! contention, measured as the average time an evicted document had
//! survived past its last hit. This facade crate re-exports the whole
//! workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`types`] | `coopcache-types` | ids, simulated time, byte sizes, expiration ages |
//! | [`cache`] | `coopcache-core` | the cache engine, replacement policies, the expiration-age tracker, placement schemes |
//! | [`proxy`] | `coopcache-proxy` | ICP/HTTP messages, distributed / hierarchical / hash-routed groups |
//! | [`trace`] | `coopcache-trace` | synthetic BU-94-like workloads, trace files, partitioners |
//! | [`metrics`] | `coopcache-metrics` | hit/byte-hit counters, the eq. 6 latency estimator |
//! | [`obs`] | `coopcache-obs` | structured protocol events, pluggable sinks, log-bucketed histograms |
//! | [`sim`] | `coopcache-sim` | synchronous trace driver and discrete-event simulator |
//! | [`net`] | `coopcache-net` | live UDP/TCP daemons and the loopback cluster |
//! | [`analysis`] | `coopcache-analysis` | stack distances, Zipf fits, sharing stats, Belady-MIN bound |
//!
//! # Quickstart
//!
//! ```
//! use coopcache::prelude::*;
//!
//! // A deterministic workload and the paper's standard comparison.
//! let trace = generate(&TraceProfile::small()).unwrap();
//! let config = SimConfig::new(ByteSize::from_mb(1)).with_group_size(4);
//!
//! let adhoc = run(&config, &trace);
//! let ea = run(&config.clone().with_scheme(PlacementScheme::Ea), &trace);
//!
//! assert!(ea.metrics.hit_rate() >= adhoc.metrics.hit_rate() - 0.005);
//! println!("ad-hoc {:.1}% vs EA {:.1}%",
//!          100.0 * adhoc.metrics.hit_rate(),
//!          100.0 * ea.metrics.hit_rate());
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/` for
//! the binaries that regenerate every table and figure of the paper.

pub use coopcache_analysis as analysis;
pub use coopcache_core as cache;
pub use coopcache_metrics as metrics;
pub use coopcache_net as net;
pub use coopcache_obs as obs;
pub use coopcache_proxy as proxy;
pub use coopcache_sim as sim;
pub use coopcache_trace as trace;
pub use coopcache_types as types;

/// The most common imports, for examples and applications.
pub mod prelude {
    pub use coopcache_core::{
        Cache, ExpirationTracker, ExpirationWindow, PlacementScheme, PolicyKind,
    };
    pub use coopcache_metrics::{GroupMetrics, LatencyModel, Table};
    pub use coopcache_obs::{Event, EventSink, HistogramSink, JsonlSink, SinkHandle};
    pub use coopcache_proxy::{DistributedGroup, HierarchicalGroup, ProxyNode, RequestOutcome};
    pub use coopcache_sim::{
        capacity_sweep, run, run_des, run_des_with_sink, run_with_sink, NetworkModel, SimConfig,
        WindowStat, PAPER_CACHE_SIZES, PAPER_GROUP_SIZES,
    };
    pub use coopcache_trace::{generate, Partitioner, Trace, TraceProfile};
    pub use coopcache_types::{
        ByteSize, CacheId, ClientId, DocId, DurationMs, ExpirationAge, Request, Timestamp,
    };
}
