//! End-to-end determinism: every layer of the stack is bit-reproducible.

use coopcache::prelude::*;
use coopcache::trace::{read_trace, write_trace};

#[test]
fn trace_generation_is_reproducible_across_runs() {
    let p = TraceProfile::small().with_seed(0xC0FFEE);
    let a = generate(&p).unwrap();
    let b = generate(&p).unwrap();
    assert_eq!(a, b);
}

#[test]
fn seed_isolation_across_profile_knobs() {
    // Changing only the request count must not reshuffle document sizes:
    // the first documents keep their identity and size.
    let short = generate(&TraceProfile::small().with_requests(1_000)).unwrap();
    let long = generate(&TraceProfile::small().with_requests(5_000)).unwrap();
    use std::collections::HashMap;
    let sizes_of = |t: &Trace| -> HashMap<DocId, ByteSize> {
        t.iter().map(|r| (r.doc, r.size)).collect()
    };
    let short_sizes = sizes_of(&short);
    let long_sizes = sizes_of(&long);
    let mut shared = 0;
    for (doc, size) in &short_sizes {
        if let Some(other) = long_sizes.get(doc) {
            assert_eq!(size, other, "doc {doc} changed size across lengths");
            shared += 1;
        }
    }
    assert!(shared > 100, "expected substantial doc overlap, got {shared}");
}

#[test]
fn simulation_reports_are_identical_across_runs() {
    let trace = generate(&TraceProfile::small()).unwrap();
    let cfg = SimConfig::new(ByteSize::from_kb(500)).with_scheme(PlacementScheme::Ea);
    assert_eq!(run(&cfg, &trace), run(&cfg, &trace));
}

#[test]
fn des_reports_are_identical_across_runs() {
    let trace = generate(&TraceProfile::small().with_requests(3_000)).unwrap();
    let cfg = SimConfig::new(ByteSize::from_kb(300));
    let net = NetworkModel::paper_calibrated();
    assert_eq!(run_des(&cfg, &net, &trace), run_des(&cfg, &net, &trace));
}

#[test]
fn trace_survives_file_roundtrip_at_scale() {
    let trace = generate(&TraceProfile::small()).unwrap();
    let mut buf = Vec::new();
    write_trace(&mut buf, &trace).unwrap();
    let back = read_trace(buf.as_slice()).unwrap();
    assert_eq!(trace, back);
    // And the round-tripped trace simulates identically.
    let cfg = SimConfig::new(ByteSize::from_kb(500));
    assert_eq!(run(&cfg, &trace), run(&cfg, &back));
}

#[test]
fn partitioners_are_stable_functions() {
    let trace = generate(&TraceProfile::small().with_requests(500)).unwrap();
    for p in [
        Partitioner::ByClientModulo,
        Partitioner::ByClientHash,
        Partitioner::RoundRobin,
    ] {
        for (seq, r) in trace.iter().enumerate() {
            assert_eq!(p.assign(r, seq, 4), p.assign(r, seq, 4));
        }
    }
}
