//! End-to-end determinism: every layer of the stack is bit-reproducible.

use coopcache::prelude::*;
use coopcache::trace::{read_trace, write_trace};

#[test]
fn trace_generation_is_reproducible_across_runs() {
    let p = TraceProfile::small().with_seed(0xC0FFEE);
    let a = generate(&p).unwrap();
    let b = generate(&p).unwrap();
    assert_eq!(a, b);
}

#[test]
fn seed_isolation_across_profile_knobs() {
    // Changing only the request count must not reshuffle document sizes:
    // the first documents keep their identity and size.
    let short = generate(&TraceProfile::small().with_requests(1_000)).unwrap();
    let long = generate(&TraceProfile::small().with_requests(5_000)).unwrap();
    use std::collections::HashMap;
    let sizes_of =
        |t: &Trace| -> HashMap<DocId, ByteSize> { t.iter().map(|r| (r.doc, r.size)).collect() };
    let short_sizes = sizes_of(&short);
    let long_sizes = sizes_of(&long);
    let mut shared = 0;
    for (doc, size) in &short_sizes {
        if let Some(other) = long_sizes.get(doc) {
            assert_eq!(size, other, "doc {doc} changed size across lengths");
            shared += 1;
        }
    }
    assert!(
        shared > 100,
        "expected substantial doc overlap, got {shared}"
    );
}

#[test]
fn simulation_reports_are_identical_across_runs() {
    let trace = generate(&TraceProfile::small()).unwrap();
    let cfg = SimConfig::new(ByteSize::from_kb(500)).with_scheme(PlacementScheme::Ea);
    assert_eq!(run(&cfg, &trace), run(&cfg, &trace));
}

#[test]
fn des_reports_are_identical_across_runs() {
    let trace = generate(&TraceProfile::small().with_requests(3_000)).unwrap();
    let cfg = SimConfig::new(ByteSize::from_kb(300));
    let net = NetworkModel::paper_calibrated();
    assert_eq!(run_des(&cfg, &net, &trace), run_des(&cfg, &net, &trace));
}

/// Runs the sync simulator with a `JsonlSink` over an in-memory buffer
/// and returns the raw event bytes.
fn event_stream(cfg: &SimConfig, trace: &Trace) -> Vec<u8> {
    use std::sync::{Arc, Mutex, PoisonError};
    let sink = Arc::new(Mutex::new(JsonlSink::new(Vec::new())));
    let _ = run_with_sink(cfg, trace, Some(SinkHandle::from_arc(Arc::clone(&sink))));
    Arc::try_unwrap(sink)
        .expect("runner drops its sink handles")
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_inner()
}

#[test]
fn event_streams_are_byte_identical_across_runs() {
    let trace = generate(&TraceProfile::small()).unwrap();
    let cfg = SimConfig::new(ByteSize::from_kb(500)).with_scheme(PlacementScheme::Ea);
    let a = event_stream(&cfg, &trace);
    let b = event_stream(&cfg, &trace);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same config + trace must replay byte-identically");
    // Sanity: the stream is JSONL with one request event per trace entry.
    let text = std::str::from_utf8(&a).unwrap();
    let requests = text
        .lines()
        .filter(|l| l.starts_with(r#"{"ev":"request""#))
        .count();
    assert_eq!(requests, trace.len());
}

#[test]
fn des_event_streams_are_byte_identical_across_runs() {
    use std::sync::{Arc, Mutex, PoisonError};
    let trace = generate(&TraceProfile::small().with_requests(3_000)).unwrap();
    let cfg = SimConfig::new(ByteSize::from_kb(300));
    let net = NetworkModel::paper_calibrated();
    let stream = || -> Vec<u8> {
        let sink = Arc::new(Mutex::new(JsonlSink::new(Vec::new())));
        let _ = run_des_with_sink(
            &cfg,
            &net,
            &trace,
            Some(SinkHandle::from_arc(Arc::clone(&sink))),
        );
        Arc::try_unwrap(sink)
            .expect("runner drops its sink handles")
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_inner()
    };
    let a = stream();
    assert!(!a.is_empty());
    assert_eq!(a, stream(), "DES event stream must be deterministic");
}

#[test]
fn des_series_rings_are_identical_across_runs() {
    use coopcache::obs::SeriesRing;
    use coopcache::sim::run_des_with_series;
    let trace = generate(&TraceProfile::small().with_requests(3_000)).unwrap();
    let cfg = SimConfig::new(ByteSize::from_kb(300));
    let net = NetworkModel::paper_calibrated();
    let rings = || -> Vec<String> {
        let (_, rings) = run_des_with_series(&cfg, &net, &trace, None, 500, 64);
        rings.iter().map(SeriesRing::to_json).collect()
    };
    let a = rings();
    assert!(!a.is_empty());
    assert!(
        a.iter().any(|r| r.contains(r#""points":[{"#)),
        "series must carry samples: {a:?}"
    );
    assert_eq!(a, rings(), "DES series must be byte-identical across runs");
}

#[test]
fn series_replay_is_byte_identical_across_runs() {
    use coopcache::obs::{render_top, SeriesReplayer, SeriesRing};
    use std::sync::{Arc, Mutex, PoisonError};
    let trace = generate(&TraceProfile::small().with_requests(2_000)).unwrap();
    let cfg = SimConfig::new(ByteSize::from_kb(300)).with_scheme(PlacementScheme::Ea);
    let net = NetworkModel::paper_calibrated();
    let stream = || -> Vec<u8> {
        let sink = Arc::new(Mutex::new(JsonlSink::new(Vec::new())));
        let _ = run_des_with_sink(
            &cfg,
            &net,
            &trace,
            Some(SinkHandle::from_arc(Arc::clone(&sink))),
        );
        Arc::try_unwrap(sink)
            .expect("runner drops its sink handles")
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_inner()
    };
    // Event stream → replayer → rings → rendered dashboard: the whole
    // offline pipeline must reproduce bit for bit from the same seed.
    let replay = |bytes: &[u8]| -> (Vec<String>, String) {
        let mut r = SeriesReplayer::new(250, 64);
        r.observe_jsonl(std::str::from_utf8(bytes).expect("jsonl is utf-8"))
            .expect("well-formed stream");
        let rings = r.finish();
        let json = rings.iter().map(SeriesRing::to_json).collect();
        (json, render_top(&rings, false))
    };
    let (rings_a, top_a) = replay(&stream());
    assert!(!rings_a.is_empty());
    assert!(top_a.contains("group"), "{top_a}");
    let (rings_b, top_b) = replay(&stream());
    assert_eq!(rings_a, rings_b, "replayed rings must be byte-identical");
    assert_eq!(top_a, top_b, "rendered dashboard must be byte-identical");
}

/// True when every line of `small` appears in `big` in the same order —
/// the subsequence contract of the head sampler.
fn is_line_subsequence(small: &str, big: &str) -> bool {
    let mut big_lines = big.lines();
    small.lines().all(|needle| big_lines.any(|l| l == needle))
}

#[test]
fn sampled_event_streams_are_deterministic_subsequences() {
    use coopcache::obs::SamplerConfig;
    use std::sync::{Arc, Mutex, PoisonError};
    let trace = generate(&TraceProfile::small().with_requests(2_000)).unwrap();
    let cfg = SimConfig::new(ByteSize::from_kb(300)).with_scheme(PlacementScheme::Ea);
    let net = NetworkModel::paper_calibrated();
    let stream = |sampler: Option<SamplerConfig>| -> String {
        let sink = Arc::new(Mutex::new(JsonlSink::new(Vec::new())));
        let handle = SinkHandle::from_arc(Arc::clone(&sink)).sampled(sampler);
        let _ = run_des_with_sink(&cfg, &net, &trace, Some(handle));
        let bytes = Arc::try_unwrap(sink)
            .expect("runner drops its sink handles")
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_inner();
        String::from_utf8(bytes).expect("jsonl is utf-8")
    };
    let full = stream(None);
    let config = SamplerConfig::new(0xC0FFEE, 250);
    let sampled = stream(Some(config));
    assert_eq!(
        sampled,
        stream(Some(config)),
        "same seed+rate must sample byte-identically"
    );
    assert!(!sampled.is_empty());
    assert!(
        sampled.len() < full.len(),
        "250/1000 sampling must drop spans"
    );
    assert!(
        is_line_subsequence(&sampled, &full),
        "sampled stream must be an ordered subsequence of the full one"
    );
    // Only spans are sampled; every other event survives verbatim, so
    // counters derived from the two streams agree exactly.
    fn non_span(text: &str) -> Vec<&str> {
        text.lines()
            .filter(|l| !l.starts_with(r#"{"ev":"span""#))
            .collect()
    }
    assert_eq!(non_span(&sampled), non_span(&full));
    // Rate 1000 keeps everything; rate 0 keeps everything but spans.
    assert_eq!(stream(Some(SamplerConfig::new(1, 1_000))), full);
    let none = stream(Some(SamplerConfig::new(1, 0)));
    assert!(!none.contains(r#"{"ev":"span""#));
    assert_eq!(non_span(&none), non_span(&full));
}

#[test]
fn des_alert_firings_are_identical_across_runs() {
    use coopcache::obs::AlertRule;
    use coopcache::sim::{run_des_with_health, HealthConfig};
    let trace = generate(&TraceProfile::small().with_requests(2_000)).unwrap();
    let cfg = SimConfig::new(ByteSize::from_kb(300));
    let net = NetworkModel::paper_calibrated();
    let health = HealthConfig {
        interval_ms: 500,
        capacity: 64,
        // An unsatisfiable floor: every node must fire after two windows.
        rules: vec![AlertRule::hit_rate_floor(1_001, 2)],
        rollup: None,
    };
    let alerts = || -> Vec<String> {
        let (_, report) = run_des_with_health(&cfg, &net, &trace, None, health.clone());
        report.alerts.iter().map(Event::to_json).collect()
    };
    let a = alerts();
    assert!(!a.is_empty(), "the unsatisfiable floor must fire");
    assert!(a[0].starts_with(r#"{"ev":"alert""#), "{}", a[0]);
    assert_eq!(a, alerts(), "alert firings must be byte-identical");
}

#[test]
fn des_rollup_sweep_64_nodes_is_bounded_and_byte_identical() {
    use coopcache::obs::RollupConfig;
    use coopcache::sim::run_des_with_rollups;
    let trace = generate(&TraceProfile::small().with_requests(2_000)).unwrap();
    let cfg = SimConfig::new(ByteSize::from_kb(100)).with_group_size(64);
    let net = NetworkModel::paper_calibrated();
    let rollup_cfg = RollupConfig {
        window_ms: 500,
        max_nodes: 16,
        max_windows: 8,
    };
    let sweep = || run_des_with_rollups(&cfg, &net, &trace, rollup_cfg);
    let (report_a, rollup_a) = sweep();
    let (report_b, rollup_b) = sweep();
    assert_eq!(report_a, report_b);
    assert_eq!(
        rollup_a.to_json(),
        rollup_b.to_json(),
        "rollup JSON must be byte-identical"
    );
    // 64 nodes ran, but the aggregator's tables stay at their caps: the
    // memory bound a raw JSONL stream cannot offer.
    assert_eq!(rollup_a.node_count(), 16);
    assert!(rollup_a.overflow_events() > 0, "48 nodes bill to overflow");
    assert!(rollup_a.windows().len() <= 8);
    let (requests, _, _) = rollup_a.totals();
    assert_eq!(requests, 2_000, "totals still count every request");
}

#[test]
fn trace_survives_file_roundtrip_at_scale() {
    let trace = generate(&TraceProfile::small()).unwrap();
    let mut buf = Vec::new();
    write_trace(&mut buf, &trace).unwrap();
    let back = read_trace(buf.as_slice()).unwrap();
    assert_eq!(trace, back);
    // And the round-tripped trace simulates identically.
    let cfg = SimConfig::new(ByteSize::from_kb(500));
    assert_eq!(run(&cfg, &trace), run(&cfg, &back));
}

#[test]
fn partitioners_are_stable_functions() {
    let trace = generate(&TraceProfile::small().with_requests(500)).unwrap();
    for p in [
        Partitioner::ByClientModulo,
        Partitioner::ByClientHash,
        Partitioner::RoundRobin,
    ] {
        for (seq, r) in trace.iter().enumerate() {
            assert_eq!(p.assign(r, seq, 4), p.assign(r, seq, 4));
        }
    }
}

#[test]
fn des_trace_trees_are_identical_across_runs() {
    use coopcache::obs::TraceAssembler;
    use std::sync::{Arc, Mutex, PoisonError};
    let trace = generate(&TraceProfile::small().with_requests(2_000)).unwrap();
    let cfg = SimConfig::new(ByteSize::from_kb(300)).with_scheme(PlacementScheme::Ea);
    let net = NetworkModel::paper_calibrated();
    // Timed render included: DES stamps spans with simulated time, so
    // even durations must reproduce bit-for-bit.
    let trees = || {
        let assembler = Arc::new(Mutex::new(TraceAssembler::new()));
        let _ = run_des_with_sink(
            &cfg,
            &net,
            &trace,
            Some(SinkHandle::from_arc(Arc::clone(&assembler))),
        );
        Arc::try_unwrap(assembler)
            .expect("runner drops its sink handles")
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .render_all(true)
    };
    let a = trees();
    assert!(a.contains("request"), "trace trees must not be empty");
    assert_eq!(a, trees(), "assembled trace trees must be deterministic");
}
