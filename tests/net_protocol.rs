//! Integration: wire-format and daemon-level behaviours of the socket
//! runtime beyond the happy path.

use coopcache::net::{LoopbackCluster, WireMessage};
use coopcache::obs::TraceCtx;
use coopcache::prelude::*;
use coopcache::proxy::{HttpRequest, HttpResponse, IcpQuery, IcpReply};

#[test]
fn wire_messages_roundtrip_through_encode_decode() {
    let messages = vec![
        WireMessage::IcpQuery {
            query: IcpQuery {
                from: CacheId::new(3),
                doc: DocId::new(u64::MAX - 1),
            },
            ctx: None,
        },
        WireMessage::IcpQuery {
            query: IcpQuery {
                from: CacheId::new(3),
                doc: DocId::new(9),
            },
            ctx: Some(TraceCtx {
                trace_id: u64::MAX,
                parent_span: 7,
            }),
        },
        WireMessage::IcpReply(IcpReply {
            from: CacheId::new(0),
            doc: DocId::new(0),
            hit: true,
        }),
        WireMessage::DocRequest {
            request: HttpRequest {
                from: CacheId::new(1),
                doc: DocId::new(77),
                requester_age: ExpirationAge::finite(DurationMs::from_secs(12)),
            },
            ctx: Some(TraceCtx {
                trace_id: 1,
                parent_span: 0,
            }),
        },
        WireMessage::DocResponse {
            response: HttpResponse {
                from: CacheId::new(2),
                doc: DocId::new(77),
                size: ByteSize::from_mb(1),
                responder_age: ExpirationAge::Infinite,
            },
            found: true,
        },
        WireMessage::StatsRequest,
        WireMessage::StatsResponse {
            cache: CacheId::new(5),
            body_len: 4096,
        },
        WireMessage::SeriesRequest,
        WireMessage::SeriesResponse {
            cache: CacheId::new(5),
            body_len: 65_536,
        },
    ];
    for msg in messages {
        let bytes = msg.encode();
        assert_eq!(WireMessage::decode(&bytes).unwrap(), msg);
        // Corrupting the magic must fail cleanly, not panic.
        let mut bad = bytes.to_vec();
        bad[0] ^= 0xFF;
        assert!(WireMessage::decode(&bad).is_err());
    }
}

#[test]
fn cluster_sustains_a_trace_fragment() {
    let trace = generate(&TraceProfile::small().with_requests(400)).unwrap();
    let cluster = LoopbackCluster::start(3, ByteSize::from_kb(96), PlacementScheme::Ea).unwrap();
    let part = Partitioner::default();
    let mut metrics = GroupMetrics::default();
    for (seq, r) in trace.iter().enumerate() {
        let cache = part.assign(r, seq, 3);
        // Clamp body sizes to keep loopback transfers quick.
        let size = ByteSize::from_bytes(r.size.as_bytes().clamp(100, 16_000));
        let outcome = cluster.request(cache.index(), r.doc, size).unwrap();
        metrics.record(outcome, size);
    }
    assert_eq!(metrics.requests, 400);
    assert!(metrics.hit_rate() > 0.1, "hit rate {}", metrics.hit_rate());
    assert_eq!(
        cluster.origin_fetches(),
        metrics.misses,
        "every miss fetches the origin exactly once (single-threaded client)"
    );
    cluster.shutdown();
}

#[test]
fn two_clusters_do_not_interfere() {
    // Distinct ephemeral ports: two clusters run side by side.
    let a = LoopbackCluster::start(2, ByteSize::from_kb(64), PlacementScheme::AdHoc).unwrap();
    let b = LoopbackCluster::start(2, ByteSize::from_kb(64), PlacementScheme::Ea).unwrap();
    a.request(0, DocId::new(1), ByteSize::from_kb(2)).unwrap();
    b.request(0, DocId::new(1), ByteSize::from_kb(2)).unwrap();
    assert!(a.daemon(0).with_node(|n| n.cache().contains(DocId::new(1))));
    assert!(b.daemon(0).with_node(|n| n.cache().contains(DocId::new(1))));
    assert!(!a.daemon(1).with_node(|n| n.cache().contains(DocId::new(1))));
    assert_eq!(a.origin_fetches(), 1);
    assert_eq!(b.origin_fetches(), 1);
    a.shutdown();
    b.shutdown();
}
