//! A real-thread concurrency storm over the live cluster: request
//! traffic, per-daemon sampler threads, a shared event sink, and a wave
//! of `OP_STATS`/`OP_SERIES` scrapers all run at once — and shutdown
//! lands while the scrapers are still firing. The property under test is
//! liveness: the whole scenario completes within a watchdog timeout, so
//! no lock-across-join or sampler-vs-scraper handoff can wedge it. This
//! is the real-thread counterpart of the `coopcache-interleave` models
//! (and the regression test for the PR 5 sink-lock-across-join class).

use coopcache::net::{scrape_series, scrape_stats, ClusterConfig, LoopbackCluster};
use coopcache::obs::{EventKind, HistogramSink, SeriesRing, SinkHandle};
use coopcache::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

const WATCHDOG: Duration = Duration::from_secs(60);
const REQUESTERS: usize = 2;
const REQUESTS_EACH: u64 = 40;
const SCRAPERS: usize = 4;

#[test]
fn stats_series_storm_with_shutdown_does_not_wedge() {
    let (done_tx, done_rx) = mpsc::channel();
    let scenario = std::thread::spawn(move || {
        let requests_seen = storm();
        let _ = done_tx.send(requests_seen);
    });
    match done_rx.recv_timeout(WATCHDOG) {
        Ok(requests_seen) => {
            scenario.join().expect("storm scenario panicked");
            assert_eq!(
                requests_seen,
                (REQUESTERS as u64) * REQUESTS_EACH,
                "the shared sink must have absorbed every request event"
            );
        }
        Err(_) => panic!(
            "storm scenario wedged for {WATCHDOG:?}: possible deadlock between \
             the stats/series scrape planes, the sampler threads, and shutdown"
        ),
    }
}

fn storm() -> u64 {
    let mut cluster = LoopbackCluster::start_with_config(
        ClusterConfig::new(3, ByteSize::from_kb(64), PlacementScheme::Ea)
            .sample_interval(Duration::from_millis(5)),
    )
    .expect("cluster starts");
    let sink = Arc::new(Mutex::new(HistogramSink::new()));
    cluster.set_sink(SinkHandle::from_arc(Arc::clone(&sink)));
    let addrs = cluster.doc_addrs();
    let scrape_timeout = Duration::from_secs(5);

    // Scrapers hammer every daemon's stats and series endpoints until
    // told to stop. Once shutdown begins, connections fail — that is
    // fine; a scrape that *succeeds* must still be well-formed.
    let stop = Arc::new(AtomicBool::new(false));
    let scrapers: Vec<_> = (0..SCRAPERS)
        .map(|i| {
            let addrs = addrs.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    for (n, addr) in addrs.iter().enumerate() {
                        if (i + n) % 2 == 0 {
                            if let Ok(body) = scrape_stats(*addr, scrape_timeout) {
                                assert!(body.starts_with("{\"cache\":"), "{body}");
                            }
                        } else if let Ok(body) = scrape_series(*addr, scrape_timeout) {
                            let _ = SeriesRing::from_json(&body).expect("series body decodes");
                        }
                    }
                }
            })
        })
        .collect();

    // Request traffic runs concurrently with the scrape storm and the
    // 5 ms samplers.
    let cluster = Arc::new(cluster);
    let requesters: Vec<_> = (0..REQUESTERS)
        .map(|r| {
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || {
                for i in 0..REQUESTS_EACH {
                    let doc = DocId::new(i % 7 + 1);
                    let idx = (i as usize + r) % cluster.len();
                    cluster
                        .request(idx, doc, ByteSize::from_kb(2))
                        .expect("request succeeds while the cluster is up");
                }
            })
        })
        .collect();
    for r in requesters {
        r.join().expect("requester panicked");
    }

    // Shutdown races the still-running scrapers: this joins the server,
    // sampler, and origin threads while OP_STATS/OP_SERIES probes are in
    // flight — the exact pattern that deadlocks if any of those threads
    // blocks under a lock the scrape path needs.
    let cluster = Arc::try_unwrap(cluster).expect("requesters dropped their handles");
    cluster.shutdown();
    stop.store(true, Ordering::Release);
    for s in scrapers {
        s.join().expect("scraper panicked");
    }

    let agg = sink
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    agg.count(EventKind::Request)
}
