//! Integration: the hierarchical architecture under a realistic workload.

use coopcache::prelude::*;

fn drive(group: &mut HierarchicalGroup, trace: &Trace, leaves: u16) -> GroupMetrics {
    let part = Partitioner::default();
    let mut metrics = GroupMetrics::default();
    for (seq, r) in trace.iter().enumerate() {
        let leaf = part.assign(r, seq, leaves as usize);
        let outcome = group.handle_request(leaf, r.doc, r.size, r.time);
        metrics.record(outcome, r.size);
    }
    metrics
}

#[test]
fn hierarchy_serves_every_request_consistently() {
    let trace = generate(&TraceProfile::small()).unwrap();
    for scheme in [PlacementScheme::AdHoc, PlacementScheme::Ea] {
        let mut group = HierarchicalGroup::two_level(
            4,
            ByteSize::from_kb(64),
            ByteSize::from_kb(256),
            PolicyKind::Lru,
            scheme,
        );
        let m = drive(&mut group, &trace, 4);
        assert_eq!(m.requests as usize, trace.len());
        assert_eq!(m.local_hits + m.remote_hits + m.misses, m.requests);
        assert!(m.hit_rate() > 0.2, "{scheme}: hit rate {}", m.hit_rate());
        // Capacity invariants at every node.
        for node in group.iter() {
            assert!(node.cache().used() <= node.cache().capacity());
        }
    }
}

#[test]
fn a_parent_tier_beats_leaves_alone() {
    // Adding a parent with extra capacity must help (it can only add
    // hits), under both schemes.
    let trace = generate(&TraceProfile::small()).unwrap();
    for scheme in [PlacementScheme::AdHoc, PlacementScheme::Ea] {
        let mut with_parent = HierarchicalGroup::two_level(
            4,
            ByteSize::from_kb(64),
            ByteSize::from_kb(512),
            PolicyKind::Lru,
            scheme,
        );
        let mut tiny_parent = HierarchicalGroup::two_level(
            4,
            ByteSize::from_kb(64),
            ByteSize::from_kb(1),
            PolicyKind::Lru,
            scheme,
        );
        let big = drive(&mut with_parent, &trace, 4);
        let small = drive(&mut tiny_parent, &trace, 4);
        assert!(
            big.hit_rate() >= small.hit_rate() - 0.01,
            "{scheme}: 512KB parent {} < 1KB parent {}",
            big.hit_rate(),
            small.hit_rate()
        );
    }
}

#[test]
fn deep_chain_hierarchy_works() {
    // leaf(0..2) -> mid(3) -> root(4)
    use coopcache::cache::ExpirationWindow;
    let trace = generate(&TraceProfile::small().with_requests(5_000)).unwrap();
    let kb = ByteSize::from_kb;
    let mut group = HierarchicalGroup::from_parents(
        &[kb(32), kb(32), kb(32), kb(128), kb(256)],
        &[Some(3), Some(3), Some(3), Some(4), None],
        PolicyKind::Lru,
        PlacementScheme::Ea,
        ExpirationWindow::default(),
    )
    .unwrap();
    let m = drive(&mut group, &trace, 3);
    assert_eq!(m.requests, 5_000);
    assert!(m.hit_rate() > 0.2, "hit rate {}", m.hit_rate());
    // The interior tiers participate.
    let mid_plus_root: usize = [3u16, 4]
        .iter()
        .map(|&i| group.node(CacheId::new(i)).cache().len())
        .sum();
    assert!(mid_plus_root > 0, "interior nodes stayed empty");
}
