//! Cross-crate integration tests pinning the paper's qualitative claims.
//!
//! These replay the same deterministic workload under both placement
//! schemes and assert the *shape* the paper reports — who wins, in which
//! regime — not absolute numbers.

use coopcache::prelude::*;

fn workload() -> Trace {
    generate(&TraceProfile::small()).expect("built-in profile is valid")
}

fn cfg(kb: u64) -> SimConfig {
    SimConfig::new(ByteSize::from_kb(kb)).with_group_size(4)
}

fn both(kb: u64, trace: &Trace) -> (coopcache::sim::SimReport, coopcache::sim::SimReport) {
    let adhoc = run(&cfg(kb), trace);
    let ea = run(&cfg(kb).with_scheme(PlacementScheme::Ea), trace);
    (adhoc, ea)
}

#[test]
fn ea_wins_hit_rate_in_aggregate_and_never_loses_badly() {
    let trace = workload();
    let mut total_gain = 0.0;
    for kb in [50, 100, 500, 2_000, 10_000] {
        let (adhoc, ea) = both(kb, &trace);
        let gain = ea.metrics.hit_rate() - adhoc.metrics.hit_rate();
        assert!(
            gain > -0.005,
            "{kb}KB: EA hit rate {:.4} far below ad-hoc {:.4}",
            ea.metrics.hit_rate(),
            adhoc.metrics.hit_rate()
        );
        total_gain += gain;
    }
    assert!(total_gain > 0.01, "aggregate gain too small: {total_gain}");
}

#[test]
fn ea_raises_expiration_ages_at_every_contended_size() {
    // Paper Table 1: EA's average cache expiration age exceeds ad-hoc's
    // at every cache size, because fewer replicas mean less contention.
    let trace = workload();
    for kb in [50, 100, 500, 2_000] {
        let (adhoc, ea) = both(kb, &trace);
        let a = adhoc.avg_expiration_age_ms.expect("ad-hoc evicts");
        let e = ea.avg_expiration_age_ms.expect("EA evicts");
        assert!(e > a, "{kb}KB: EA age {e} <= ad-hoc age {a}");
    }
}

#[test]
fn ea_converts_local_hits_to_remote_hits() {
    // Paper Table 2: reducing replicas necessarily shifts hits from
    // local to remote; EA's remote-hit rate exceeds ad-hoc's everywhere.
    let trace = workload();
    for kb in [100, 1_000, 10_000] {
        let (adhoc, ea) = both(kb, &trace);
        assert!(
            ea.metrics.remote_hit_rate() > adhoc.metrics.remote_hit_rate(),
            "{kb}KB: EA remote {:.4} <= ad-hoc remote {:.4}",
            ea.metrics.remote_hit_rate(),
            adhoc.metrics.remote_hit_rate()
        );
        assert!(
            ea.metrics.local_hit_rate() < adhoc.metrics.local_hit_rate(),
            "{kb}KB: EA local should drop"
        );
    }
}

#[test]
fn ea_reduces_replication_under_contention() {
    let trace = workload();
    for kb in [500, 2_000, 10_000] {
        let (adhoc, ea) = both(kb, &trace);
        assert!(
            ea.replica_overhead() < adhoc.replica_overhead(),
            "{kb}KB: EA replicas {} >= ad-hoc {}",
            ea.replica_overhead(),
            adhoc.replica_overhead()
        );
    }
}

#[test]
fn everything_fits_regime_matches_table_2_signature() {
    // The paper's 1 GB row: when the aggregate exceeds the working set,
    // both schemes hit equally, but EA serves far more hits remotely
    // (single group-wide copies) and therefore pays slightly more
    // latency — while ad-hoc replicates everywhere.
    let trace = workload();
    let ws_kb = trace.stats().unique_bytes.as_bytes() / 1_000;
    let (adhoc, ea) = both(ws_kb * 4, &trace);
    assert!(
        (ea.metrics.hit_rate() - adhoc.metrics.hit_rate()).abs() < 0.002,
        "hit rates should converge when everything fits"
    );
    assert!(
        ea.metrics.remote_hit_rate() > 2.0 * adhoc.metrics.remote_hit_rate(),
        "EA remote {:.3} should dwarf ad-hoc remote {:.3}",
        ea.metrics.remote_hit_rate(),
        adhoc.metrics.remote_hit_rate()
    );
    assert!(
        ea.estimated_latency_ms > adhoc.estimated_latency_ms,
        "EA trades a little latency at giant caches (paper Fig. 3)"
    );
    assert_eq!(
        ea.replica_overhead(),
        0,
        "EA should hold exactly one copy of everything"
    );
}

#[test]
fn ea_latency_wins_where_misses_dominate() {
    // Paper Fig. 3: the EA scheme's latency advantage lives where the
    // miss rate is high (tiny caches); eq. 6 weighs a miss at 2784 ms.
    let trace = workload();
    let (adhoc, ea) = both(50, &trace);
    assert!(
        ea.estimated_latency_ms <= adhoc.estimated_latency_ms + 15.0,
        "at 50KB EA latency {:.0} should not exceed ad-hoc {:.0} by much",
        ea.estimated_latency_ms,
        adhoc.estimated_latency_ms
    );
}

#[test]
fn gains_grow_with_group_size() {
    // Paper §4.2 quotes its strongest numbers for the 8-cache group: more
    // peers means more wasteful replication for ad-hoc to pay for.
    let trace = workload();
    let gain_for = |n: u16| {
        let base = SimConfig::new(ByteSize::from_kb(100)).with_group_size(n);
        let adhoc = run(&base, &trace);
        let ea = run(&base.clone().with_scheme(PlacementScheme::Ea), &trace);
        ea.metrics.hit_rate() - adhoc.metrics.hit_rate()
    };
    let g2 = gain_for(2);
    let g8 = gain_for(8);
    assert!(
        g8 > g2 - 0.002,
        "8-cache gain {g8:.4} should not fall below 2-cache gain {g2:.4}"
    );
}

#[test]
fn des_and_sync_drivers_agree_on_rates() {
    let trace = workload();
    let config = cfg(500);
    let sync_report = run(&config, &trace);
    let des_report = run_des(&config, &NetworkModel::paper_calibrated(), &trace);
    assert!(
        (sync_report.metrics.hit_rate() - des_report.metrics.hit_rate()).abs() < 0.05,
        "drivers diverged: sync {:.4} vs des {:.4}",
        sync_report.metrics.hit_rate(),
        des_report.metrics.hit_rate()
    );
    // The DES measures latency; it must land between the best and worst
    // eq. 6 constants.
    assert!(des_report.mean_latency_ms > 146.0);
    assert!(des_report.mean_latency_ms < 2_900.0);
}

#[test]
fn tie_store_variant_replicates_more_than_strict_ea() {
    // The two EA readings differ exactly on tied expiration ages, which
    // dominate once nothing evicts (all ages stay Infinite). There the
    // tie-store variant degenerates to ad-hoc (replicate everywhere,
    // mostly local hits) while the strict variant keeps single copies.
    let trace = workload();
    let ws_kb = trace.stats().unique_bytes.as_bytes() / 1_000;
    let base = cfg(ws_kb * 4);
    let strict = run(&base.clone().with_scheme(PlacementScheme::Ea), &trace);
    let tie_store = run(&base.with_scheme(PlacementScheme::EaTieStore), &trace);
    assert!(
        tie_store.replica_overhead() > 10 * strict.replica_overhead().max(1),
        "tie-store replicas {} should dwarf strict replicas {}",
        tie_store.replica_overhead(),
        strict.replica_overhead()
    );
    assert!(
        tie_store.metrics.remote_hit_rate() < strict.metrics.remote_hit_rate(),
        "storing on ties must reduce remote serving"
    );
    // Hit rates coincide: the schemes only move copies around.
    assert!(
        (tie_store.metrics.hit_rate() - strict.metrics.hit_rate()).abs() < 0.002,
        "tie handling must not change what the group can serve"
    );
}
