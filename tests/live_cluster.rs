//! Integration tests for the real-socket runtime: the same placement
//! semantics the simulators exhibit, observed over genuine UDP/TCP.

use coopcache::net::LoopbackCluster;
use coopcache::prelude::*;

fn kb(n: u64) -> ByteSize {
    ByteSize::from_kb(n)
}

fn d(i: u64) -> DocId {
    DocId::new(i)
}

#[test]
fn adhoc_cluster_replicates_and_ea_cluster_does_not() {
    let adhoc = LoopbackCluster::start(3, kb(64), PlacementScheme::AdHoc).unwrap();
    let ea = LoopbackCluster::start(3, kb(64), PlacementScheme::Ea).unwrap();

    for cluster in [&adhoc, &ea] {
        // Cache 0 fetches the doc, then caches 1 and 2 ask for it.
        cluster.request(0, d(9), kb(4)).unwrap();
        cluster.request(1, d(9), kb(4)).unwrap();
        cluster.request(2, d(9), kb(4)).unwrap();
    }
    let copies = |cluster: &LoopbackCluster| {
        (0..3)
            .filter(|&i| cluster.daemon(i).with_node(|n| n.cache().contains(d(9))))
            .count()
    };
    assert_eq!(copies(&adhoc), 3, "ad-hoc replicates everywhere");
    assert_eq!(copies(&ea), 1, "EA keeps a single group-wide copy");
    adhoc.shutdown();
    ea.shutdown();
}

#[test]
fn cluster_agrees_with_synchronous_group_on_small_workload() {
    // Drive the identical request sequence through the socket cluster and
    // the in-process group; the placement decisions must coincide
    // (single-threaded client → no races).
    let trace = generate(&TraceProfile::small().with_requests(300)).unwrap();
    let scheme = PlacementScheme::Ea;
    let cluster = LoopbackCluster::start(2, kb(32), scheme).unwrap();
    let mut group = DistributedGroup::new(2, kb(64), PolicyKind::Lru, scheme);
    let part = Partitioner::default();

    let mut agreements = 0;
    for (seq, r) in trace.iter().enumerate() {
        let requester = part.assign(r, seq, 2);
        // Keep sizes small so socket transfers stay fast.
        let size = ByteSize::from_bytes(r.size.as_bytes().clamp(100, 8_000));
        let wire = cluster.request(requester.index(), r.doc, size).unwrap();
        let sim = group.handle_request(requester, r.doc, size, r.time);
        // Timestamps differ (wall clock vs trace time), so expiration
        // ages — and with them borderline decisions — can diverge; the
        // hit/miss CLASS must still coincide almost always.
        if std::mem::discriminant(&wire) == std::mem::discriminant(&sim) {
            agreements += 1;
        }
    }
    assert!(
        agreements >= 290,
        "wire and sim diverged on {} of 300 outcomes",
        300 - agreements
    );
    cluster.shutdown();
}

#[test]
fn concurrent_stats_and_series_probes_do_not_disturb_serving() {
    use coopcache::net::{scrape_series, scrape_stats};
    use coopcache::obs::SeriesRing;
    use std::time::Duration;
    let cluster = LoopbackCluster::start(2, kb(64), PlacementScheme::Ea).unwrap();
    cluster.request(0, d(1), kb(2)).unwrap();
    for idx in 0..cluster.len() {
        cluster.daemon(idx).sample_now();
    }
    let addr = cluster.doc_addrs()[0];
    let timeout = Duration::from_secs(2);
    let probes: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                for _ in 0..10 {
                    if i % 2 == 0 {
                        let body = scrape_stats(addr, timeout).expect("stats scrape");
                        assert!(body.starts_with("{\"cache\":0,"), "{body}");
                    } else {
                        let body = scrape_series(addr, timeout).expect("series scrape");
                        let ring = SeriesRing::from_json(&body).expect("series body decodes");
                        assert_eq!(ring.cache(), CacheId::new(0));
                        assert!(!ring.is_empty(), "sampled ring must carry points");
                    }
                }
            })
        })
        .collect();
    // Document traffic interleaves with the probe storm.
    for i in 0..20 {
        cluster
            .request((i % 2) as usize, d(i % 5 + 1), kb(1))
            .unwrap();
    }
    for p in probes {
        p.join().unwrap();
    }
    cluster.shutdown();
}

#[test]
fn origin_counts_match_miss_outcomes() {
    let cluster = LoopbackCluster::start(2, kb(64), PlacementScheme::Ea).unwrap();
    let mut misses = 0;
    for i in 0..30 {
        let out = cluster.request((i % 2) as usize, d(i % 10), kb(2)).unwrap();
        if !out.is_hit() {
            misses += 1;
        }
    }
    assert_eq!(cluster.origin_fetches(), misses);
    cluster.shutdown();
}

#[test]
fn server_loops_are_event_driven_not_polling() {
    // The transport parks its server threads in blocking accept/recv —
    // no wake-every-20ms stop-flag polling. So over a quiet interval the
    // per-daemon loop-iteration counters must stay (almost) flat; a
    // busy-poll regression would show dozens of iterations here.
    let cluster = LoopbackCluster::start(2, kb(64), PlacementScheme::Ea).unwrap();
    for i in 0..4 {
        cluster.request((i % 2) as usize, d(i), kb(2)).unwrap();
    }
    // Let any in-flight frames and ICP stragglers settle.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let before: Vec<(u64, u64)> = (0..2)
        .map(|i| cluster.daemon(i).loop_iterations())
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(300));
    let after: Vec<(u64, u64)> = (0..2)
        .map(|i| cluster.daemon(i).loop_iterations())
        .collect();
    for (i, (b, a)) in before.iter().zip(after.iter()).enumerate() {
        let (icp, accept) = (a.0 - b.0, a.1 - b.1);
        assert!(
            icp <= 1 && accept <= 1,
            "daemon {i} busy-polled while idle: +{icp} icp, +{accept} accept iterations"
        );
    }
    cluster.shutdown();
}
