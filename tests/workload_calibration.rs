//! Validates that the synthetic workload carries the statistical
//! properties the substitution argument (DESIGN.md §4) relies on, using
//! the analysis toolkit itself.

use coopcache::analysis::{belady_min, PopularityProfile, ReuseProfile, SharingProfile};
use coopcache::prelude::*;

fn trace() -> Trace {
    generate(&TraceProfile::small()).unwrap()
}

#[test]
fn popularity_is_zipf_like_in_the_calibrated_range() {
    let t = trace();
    let pop = PopularityProfile::compute(t.iter().map(|r| r.doc));
    let alpha = pop.zipf_alpha_fit().expect("enough re-referenced docs");
    // The profile targets α ≈ 1.05 plus locality/flash amplification.
    assert!(
        (0.8..=1.6).contains(&alpha),
        "fitted alpha {alpha} outside the calibrated band"
    );
    // Web workloads concentrate heavily on the head...
    assert!(
        pop.top_share(10) > 0.15,
        "top-10 share {}",
        pop.top_share(10)
    );
    // ...and carry a meaningful one-timer tail.
    assert!(
        pop.one_timer_fraction() > 0.10,
        "one-timers {}",
        pop.one_timer_fraction()
    );
}

#[test]
fn temporal_locality_shows_in_the_stack_distances() {
    let t = trace();
    let reuse = ReuseProfile::compute(t.iter().map(|r| r.doc));
    // A tiny LRU already catches a meaningful share of re-references
    // (session bursts), and the curve grows substantially with size.
    let small = reuse.lru_hit_rate(16);
    let large = reuse.lru_hit_rate(2_048);
    assert!(small > 0.2, "16-doc LRU hit rate {small}");
    assert!(large > small + 0.2, "curve too flat: {small} -> {large}");
}

#[test]
fn cross_client_sharing_exists_but_same_client_dominates() {
    // The paper's premise needs cross-client sharing (cooperation must
    // have something to win); real logs show same-user re-references
    // dominating (Wolman et al.) — both must hold in the synthetic trace.
    let t = trace();
    let sharing = SharingProfile::compute(t.iter());
    let share = sharing.cross_client_share();
    assert!(share > 0.03, "cross-client share {share} too small");
    assert!(share < 0.5, "cross-client share {share} implausibly large");
    assert!(sharing.same_client > sharing.cross_client);
}

#[test]
fn simulated_hit_rates_respect_the_offline_bound() {
    let t = trace();
    let sized: Vec<_> = t.iter().map(|r| (r.doc, r.size)).collect();
    for kb in [100u64, 1_000, 10_000] {
        let aggregate = ByteSize::from_kb(kb);
        let bound = belady_min(&sized, aggregate);
        for scheme in [PlacementScheme::AdHoc, PlacementScheme::Ea] {
            let cfg = SimConfig::new(aggregate).with_scheme(scheme);
            let report = run(&cfg, &t);
            assert!(
                report.metrics.hit_rate() <= bound.hit_rate() + 1e-9,
                "{scheme} at {aggregate}: {} beats the MIN bound {}",
                report.metrics.hit_rate(),
                bound.hit_rate()
            );
        }
    }
}

#[test]
fn single_shared_lru_curve_brackets_the_group() {
    // A group of 4 LRU caches with aggregate N bytes cannot beat one
    // shared LRU of N bytes on unit-cost hit rate... in general this can
    // be violated by size effects, so assert the weaker, robust property:
    // the group tracks the shared-LRU curve within a reasonable band.
    let t = trace();
    let reuse = ReuseProfile::compute(t.iter().map(|r| r.doc));
    let mean_doc = t.stats().mean_doc_size().as_bytes().max(1);
    for kb in [500u64, 5_000] {
        let aggregate = ByteSize::from_kb(kb);
        let slots = (aggregate.as_bytes() / mean_doc) as usize;
        let shared_lru = reuse.lru_hit_rate(slots);
        let group = run(&SimConfig::new(aggregate), &t);
        let diff = (group.metrics.hit_rate() - shared_lru).abs();
        assert!(
            diff < 0.15,
            "{aggregate}: group {} vs shared-LRU {shared_lru}",
            group.metrics.hit_rate()
        );
    }
}

#[test]
fn flash_traffic_is_temporally_clustered() {
    // Flash documents rotate per epoch: the same hot doc should dominate
    // within an epoch window much more than across the whole trace.
    let t = trace();
    let profile = TraceProfile::small();
    let epoch_ms = profile.flash_epoch.as_millis();
    let mut windows: Vec<PopularityProfile> = Vec::new();
    let mut current: Vec<DocId> = Vec::new();
    let mut epoch = 0;
    for r in &t {
        let e = r.time.as_millis() / epoch_ms;
        if e != epoch && !current.is_empty() {
            windows.push(PopularityProfile::compute(current.drain(..)));
            epoch = e;
        }
        current.push(r.doc);
    }
    let windows: Vec<_> = windows
        .into_iter()
        .filter(|w| w.total_references > 500)
        .collect();
    assert!(!windows.is_empty(), "trace should span several busy epochs");
    let global = PopularityProfile::compute(t.iter().map(|r| r.doc));
    let mean_window_top1: f64 =
        windows.iter().map(|w| w.top_share(1)).sum::<f64>() / windows.len() as f64;
    assert!(
        mean_window_top1 > global.top_share(1),
        "within-epoch concentration {mean_window_top1} should exceed global {}",
        global.top_share(1)
    );
}
