//! Randomized property tests over the core data structures and
//! invariants.
//!
//! Driven by the repo's own deterministic [`Rng`] instead of an external
//! property-testing framework: each property replays many generated
//! cases from fixed seeds, so failures are reproducible by seed and the
//! test suite needs no network-fetched dependencies.

use coopcache::cache::{Cache, Fifo, Lru, PlacementScheme, PolicyKind, ReplacementPolicy};
use coopcache::prelude::*;
use coopcache::trace::{read_trace, write_trace, Rng, Zipf};

/// Cases per property: enough to explore the small op spaces below while
/// keeping the suite fast.
const CASES: u64 = 200;

/// An abstract cache operation over a small id/size space (small spaces
/// maximize collisions, which is where the bugs live).
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u8, u8),
    Lookup(u8),
    Remove(u8),
}

fn random_op(rng: &mut Rng) -> Op {
    let doc = (rng.next_below(24)) as u8;
    match rng.next_below(3) {
        0 => Op::Insert(doc, rng.next_below(16) as u8 + 1),
        1 => Op::Lookup(doc),
        _ => Op::Remove(doc),
    }
}

fn random_ops(rng: &mut Rng, max_len: u64) -> Vec<Op> {
    let len = rng.next_below(max_len) + 1;
    (0..len).map(|_| random_op(rng)).collect()
}

/// The byte accounting never drifts from the sum over entries and never
/// exceeds capacity, for any op sequence under any policy.
#[test]
fn cache_byte_accounting_is_exact() {
    let mut rng = Rng::seed_from(0xACC0);
    for case in 0..CASES {
        let ops = random_ops(&mut rng, 300);
        let policy = *rng.choose(&PolicyKind::all());
        let mut cache = Cache::new(CacheId::new(0), ByteSize::from_kb(20), policy);
        for (t, op) in ops.iter().enumerate() {
            let now = Timestamp::from_millis(t as u64);
            match *op {
                Op::Insert(d, kb) => {
                    cache.insert(
                        DocId::new(u64::from(d)),
                        ByteSize::from_kb(u64::from(kb)),
                        now,
                    );
                }
                Op::Lookup(d) => {
                    cache.lookup(DocId::new(u64::from(d)), now);
                }
                Op::Remove(d) => {
                    cache.remove(DocId::new(u64::from(d)), now);
                }
            }
            let manual: ByteSize = cache.iter().map(|e| e.size).sum();
            assert_eq!(cache.used(), manual, "case {case} ({policy}) after {op:?}");
            assert!(cache.used() <= cache.capacity(), "case {case} ({policy})");
            assert_eq!(cache.len(), cache.iter().count(), "case {case}");
        }
    }
}

/// LRU against a naive reference model: identical victim order.
#[test]
fn lru_matches_reference_model() {
    let mut rng = Rng::seed_from(0x14B);
    for case in 0..CASES {
        let ops = random_ops(&mut rng, 300);
        let mut lru = Lru::new();
        let mut model: Vec<u64> = Vec::new(); // front = victim
        for op in ops {
            match op {
                Op::Insert(d, _) => {
                    let d = u64::from(d);
                    if !model.contains(&d) {
                        lru.on_insert(DocId::new(d), ByteSize::from_kb(1));
                        model.push(d);
                    }
                }
                Op::Lookup(d) => {
                    let d = u64::from(d);
                    if let Some(pos) = model.iter().position(|&x| x == d) {
                        lru.on_hit(DocId::new(d));
                        let v = model.remove(pos);
                        model.push(v);
                    }
                }
                Op::Remove(d) => {
                    let d = u64::from(d);
                    if let Some(pos) = model.iter().position(|&x| x == d) {
                        lru.on_remove(DocId::new(d));
                        model.remove(pos);
                    }
                }
            }
            assert_eq!(
                lru.victim().map(|v| v.as_u64()),
                model.first().copied(),
                "case {case}"
            );
            assert_eq!(lru.len(), model.len(), "case {case}");
        }
    }
}

/// FIFO against a naive reference: hits never change the order.
#[test]
fn fifo_matches_reference_model() {
    let mut rng = Rng::seed_from(0xF1F0);
    for case in 0..CASES {
        let ops = random_ops(&mut rng, 200);
        let mut fifo = Fifo::new();
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(d, _) => {
                    let d = u64::from(d);
                    if !model.contains(&d) {
                        fifo.on_insert(DocId::new(d), ByteSize::from_kb(1));
                        model.push(d);
                    }
                }
                Op::Lookup(d) => {
                    let d = u64::from(d);
                    if model.contains(&d) {
                        fifo.on_hit(DocId::new(d));
                    }
                }
                Op::Remove(d) => {
                    let d = u64::from(d);
                    if let Some(pos) = model.iter().position(|&x| x == d) {
                        fifo.on_remove(DocId::new(d));
                        model.remove(pos);
                    }
                }
            }
            assert_eq!(
                fifo.victim().map(|v| v.as_u64()),
                model.first().copied(),
                "case {case}"
            );
        }
    }
}

/// Expiration-age ordering is total and the EA decision rules are exact
/// complements for every age pair and every EA variant.
#[test]
fn ea_rules_are_complementary() {
    let mut rng = Rng::seed_from(0xEA);
    let random_age = |rng: &mut Rng| {
        if rng.next_bool(0.2) {
            ExpirationAge::Infinite
        } else {
            // Small range forces frequent exact ties.
            ExpirationAge::finite(DurationMs::from_millis(rng.next_below(50)))
        }
    };
    for _ in 0..2_000 {
        let (a, b) = (random_age(&mut rng), random_age(&mut rng));
        // Total order.
        assert!(a <= b || b <= a);
        for scheme in [PlacementScheme::Ea, PlacementScheme::EaTieStore] {
            let stores = scheme.requester_stores(a, b);
            let promotes = scheme.responder_promotes(b, a);
            assert_ne!(stores, promotes, "scheme {scheme} ages {a} {b}");
        }
        // Ad-hoc always does both.
        assert!(PlacementScheme::AdHoc.requester_stores(a, b));
        assert!(PlacementScheme::AdHoc.responder_promotes(b, a));
    }
}

/// Trace file round-trips for arbitrary record lists.
#[test]
fn trace_format_roundtrip() {
    let mut rng = Rng::seed_from(0x707);
    for case in 0..CASES {
        let len = rng.next_below(50) as usize;
        let requests: Vec<Request> = (0..len)
            .map(|_| {
                Request::new(
                    Timestamp::from_millis(rng.next_u64() >> 32),
                    ClientId::new(rng.next_u64() as u32),
                    DocId::new(rng.next_u64() >> 32),
                    ByteSize::from_bytes(rng.next_u64() >> 32),
                )
            })
            .collect();
        let trace = Trace::from_requests(requests);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("write to vec cannot fail");
        let back = read_trace(buf.as_slice()).expect("own output parses");
        assert_eq!(trace, back, "case {case}");
    }
}

/// Zipf: probabilities are positive, non-increasing in rank, sum to 1.
#[test]
fn zipf_probabilities_well_formed() {
    let mut rng = Rng::seed_from(0x21F);
    for case in 0..60 {
        let n = rng.next_below(499) + 1;
        let alpha = rng.next_f64() * 2.5;
        let z = Zipf::new(n, alpha).expect("params in domain");
        let mut sum = 0.0;
        let mut prev = f64::INFINITY;
        for k in 1..=n {
            let p = z.probability(k);
            assert!(p > 0.0, "case {case} rank {k}");
            assert!(p <= prev + 1e-12, "case {case}: p(rank) must not increase");
            prev = p;
            sum += p;
        }
        assert!((sum - 1.0).abs() < 1e-6, "case {case}: sum {sum}");
    }
}

/// Group-level invariant: outcomes are internally consistent for any
/// short random workload (remote hits never point at the requester,
/// outcome counts partition the request count, byte accounting holds at
/// every cache).
#[test]
fn group_outcomes_are_consistent() {
    let mut rng = Rng::seed_from(0x6208);
    for case in 0..CASES {
        let scheme = *rng.choose(&PlacementScheme::all());
        let len = rng.next_below(150) + 1;
        let mut group = DistributedGroup::new(3, ByteSize::from_kb(30), PolicyKind::Lru, scheme);
        let mut metrics = GroupMetrics::default();
        for t in 0..len {
            let requester = CacheId::new(rng.next_below(3) as u16);
            let doc = DocId::new(rng.next_below(40));
            let size = ByteSize::from_kb(rng.next_below(8) + 1);
            let outcome = group.handle_request(requester, doc, size, Timestamp::from_millis(t));
            if let RequestOutcome::RemoteHit { responder, .. } = outcome {
                assert_ne!(responder, requester, "case {case}: self remote hit");
            }
            metrics.record(outcome, size);
        }
        assert_eq!(metrics.requests, len, "case {case}");
        assert_eq!(
            metrics.local_hits + metrics.remote_hits + metrics.misses,
            metrics.requests,
            "case {case}"
        );
        for node in group.iter() {
            assert!(
                node.cache().used() <= node.cache().capacity(),
                "case {case}"
            );
        }
    }
}

/// For any sampler seed and rate: the sampled stream is a deterministic,
/// order-preserving subsequence of the full stream, only spans are ever
/// dropped, and rollups built from the full vs the sampled stream agree
/// on every counter that is not span-derived.
#[test]
fn sampling_is_a_deterministic_subsequence_for_any_seed_and_rate() {
    use coopcache::obs::{Event, RequestClass};
    use coopcache::obs::{
        JsonlSink, Rollup, RollupConfig, SamplerConfig, SinkHandle, Span, SpanKind,
    };
    use std::sync::{Arc, Mutex, PoisonError};

    // One synthetic event mix reused across cases: requests and spans
    // (the sampled kind) over a handful of nodes and trace ids.
    let mut gen = Rng::seed_from(0x5A3D);
    let mut events: Vec<Event> = Vec::new();
    for seq in 0..400u64 {
        let cache = CacheId::new(gen.next_below(4) as u16);
        let doc = DocId::new(gen.next_below(32));
        let class = *gen.choose(&[
            RequestClass::LocalHit,
            RequestClass::RemoteHit,
            RequestClass::Miss,
        ]);
        events.push(Event::Request {
            seq,
            cache,
            doc,
            class,
            responder: None,
            stored: seq % 2 == 0,
            latency_us: Some(100 + gen.next_below(5_000)),
        });
        let trace_id = gen.next_below(u64::MAX / 2);
        for k in 0..gen.next_below(3) {
            events.push(Event::Span(Span {
                trace_id,
                span_id: (seq << 8) | k,
                parent: (k > 0).then_some(seq << 8),
                cache,
                kind: SpanKind::Request,
                doc: Some(doc),
                peer: None,
                start_us: seq * 1_000,
                end_us: seq * 1_000 + 500,
                status: "ok",
            }));
        }
    }

    let stream = |sampler: Option<SamplerConfig>| -> String {
        let sink = Arc::new(Mutex::new(JsonlSink::new(Vec::new())));
        let handle = SinkHandle::from_arc(Arc::clone(&sink)).sampled(sampler);
        for event in &events {
            handle.emit(event);
        }
        drop(handle);
        let bytes = Arc::try_unwrap(sink)
            .expect("no other handles")
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_inner();
        String::from_utf8(bytes).expect("jsonl is utf-8")
    };
    let is_line_subsequence = |small: &str, big: &str| -> bool {
        let mut big_lines = big.lines();
        small.lines().all(|needle| big_lines.any(|l| l == needle))
    };
    let rollup_of = |text: &str| -> Rollup {
        let mut rollup = Rollup::new(RollupConfig {
            window_ms: 50,
            max_nodes: 8,
            max_windows: 16,
        });
        rollup.observe_jsonl(text).expect("well-formed stream");
        rollup
    };

    let full = stream(None);
    let full_rollup = rollup_of(&full);
    let mut rng = Rng::seed_from(0x5EED);
    for case in 0..CASES {
        let config = SamplerConfig::new(rng.next_below(u64::MAX), rng.next_below(1_001) as u32);
        let sampled = stream(Some(config));
        assert_eq!(
            sampled,
            stream(Some(config)),
            "case {case} ({config:?}): sampling must be deterministic"
        );
        assert!(
            is_line_subsequence(&sampled, &full),
            "case {case} ({config:?}): not a subsequence"
        );
        // Non-span lines are never sampled away.
        fn non_span(text: &str) -> Vec<&str> {
            text.lines()
                .filter(|l| !l.starts_with(r#"{"ev":"span""#))
                .collect()
        }
        assert_eq!(non_span(&sampled), non_span(&full), "case {case}");
        // Rollups from the two streams agree on request-derived counters
        // (spans only feed the rollup clock, never the counters).
        let sampled_rollup = rollup_of(&sampled);
        assert_eq!(
            sampled_rollup.totals(),
            full_rollup.totals(),
            "case {case} ({config:?})"
        );
        assert_eq!(
            sampled_rollup.node_count(),
            full_rollup.node_count(),
            "case {case}"
        );
        for node in 0..4u16 {
            assert_eq!(
                sampled_rollup.node_split(CacheId::new(node)),
                full_rollup.node_split(CacheId::new(node)),
                "case {case} node {node}"
            );
        }
        if config.rate >= 1_000 {
            assert_eq!(sampled, full, "case {case}: rate 1000 keeps all");
        }
    }
}
