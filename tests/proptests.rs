//! Property-based tests over the core data structures and invariants.

use coopcache::cache::{
    Cache, Fifo, Lru, PlacementScheme, PolicyKind, ReplacementPolicy,
};
use coopcache::prelude::*;
use coopcache::trace::{read_trace, write_trace, Zipf};
use proptest::prelude::*;

/// An abstract cache operation over a small id/size space (small spaces
/// maximize collisions, which is where the bugs live).
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u8, u8),
    Lookup(u8),
    Remove(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 1u8..=16).prop_map(|(d, s)| Op::Insert(d % 24, s)),
        any::<u8>().prop_map(|d| Op::Lookup(d % 24)),
        any::<u8>().prop_map(|d| Op::Remove(d % 24)),
    ]
}

proptest! {
    /// The byte accounting never drifts from the sum over entries and
    /// never exceeds capacity, for any op sequence under any policy.
    #[test]
    fn cache_byte_accounting_is_exact(
        ops in proptest::collection::vec(op_strategy(), 1..300),
        policy_idx in 0usize..6,
    ) {
        let policy = PolicyKind::all()[policy_idx];
        let mut cache = Cache::new(CacheId::new(0), ByteSize::from_kb(20), policy);
        for (t, op) in ops.iter().enumerate() {
            let now = Timestamp::from_millis(t as u64);
            match *op {
                Op::Insert(d, kb) => {
                    cache.insert(DocId::new(u64::from(d)), ByteSize::from_kb(u64::from(kb)), now);
                }
                Op::Lookup(d) => {
                    cache.lookup(DocId::new(u64::from(d)), now);
                }
                Op::Remove(d) => {
                    cache.remove(DocId::new(u64::from(d)), now);
                }
            }
            let manual: ByteSize = cache.iter().map(|e| e.size).sum();
            prop_assert_eq!(cache.used(), manual);
            prop_assert!(cache.used() <= cache.capacity());
            prop_assert_eq!(cache.len(), cache.iter().count());
        }
    }

    /// LRU against a naive reference model: identical victim order.
    #[test]
    fn lru_matches_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        let mut lru = Lru::new();
        let mut model: Vec<u64> = Vec::new(); // front = victim
        for op in ops {
            match op {
                Op::Insert(d, _) => {
                    let d = u64::from(d);
                    if !model.contains(&d) {
                        lru.on_insert(DocId::new(d), ByteSize::from_kb(1));
                        model.push(d);
                    }
                }
                Op::Lookup(d) => {
                    let d = u64::from(d);
                    if let Some(pos) = model.iter().position(|&x| x == d) {
                        lru.on_hit(DocId::new(d));
                        let v = model.remove(pos);
                        model.push(v);
                    }
                }
                Op::Remove(d) => {
                    let d = u64::from(d);
                    if let Some(pos) = model.iter().position(|&x| x == d) {
                        lru.on_remove(DocId::new(d));
                        model.remove(pos);
                    }
                }
            }
            prop_assert_eq!(lru.victim().map(|v| v.as_u64()), model.first().copied());
            prop_assert_eq!(lru.len(), model.len());
        }
    }

    /// FIFO against a naive reference: hits never change the order.
    #[test]
    fn fifo_matches_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let mut fifo = Fifo::new();
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(d, _) => {
                    let d = u64::from(d);
                    if !model.contains(&d) {
                        fifo.on_insert(DocId::new(d), ByteSize::from_kb(1));
                        model.push(d);
                    }
                }
                Op::Lookup(d) => {
                    let d = u64::from(d);
                    if model.contains(&d) {
                        fifo.on_hit(DocId::new(d));
                    }
                }
                Op::Remove(d) => {
                    let d = u64::from(d);
                    if let Some(pos) = model.iter().position(|&x| x == d) {
                        fifo.on_remove(DocId::new(d));
                        model.remove(pos);
                    }
                }
            }
            prop_assert_eq!(fifo.victim().map(|v| v.as_u64()), model.first().copied());
        }
    }

    /// Expiration-age ordering is total and the EA decision rules are
    /// exact complements for every age pair and every EA variant.
    #[test]
    fn ea_rules_are_complementary(a in any::<Option<u64>>(), b in any::<Option<u64>>()) {
        let to_age = |x: Option<u64>| match x {
            Some(ms) => ExpirationAge::finite(DurationMs::from_millis(ms)),
            None => ExpirationAge::Infinite,
        };
        let (a, b) = (to_age(a), to_age(b));
        // Total order.
        prop_assert!(a <= b || b <= a);
        for scheme in [PlacementScheme::Ea, PlacementScheme::EaTieStore] {
            let stores = scheme.requester_stores(a, b);
            let promotes = scheme.responder_promotes(b, a);
            prop_assert_ne!(stores, promotes, "scheme {} ages {} {}", scheme, a, b);
        }
        // Ad-hoc always does both.
        prop_assert!(PlacementScheme::AdHoc.requester_stores(a, b));
        prop_assert!(PlacementScheme::AdHoc.responder_promotes(b, a));
    }

    /// Trace file round-trips for arbitrary record lists.
    #[test]
    fn trace_format_roundtrip(
        records in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()), 0..50)
    ) {
        let requests: Vec<Request> = records
            .into_iter()
            .map(|(t, c, d, s)| Request::new(
                Timestamp::from_millis(u64::from(t)),
                ClientId::new(c),
                DocId::new(u64::from(d)),
                ByteSize::from_bytes(u64::from(s)),
            ))
            .collect();
        let trace = Trace::from_requests(requests);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("write to vec cannot fail");
        let back = read_trace(buf.as_slice()).expect("own output parses");
        prop_assert_eq!(trace, back);
    }

    /// Zipf: probabilities are positive, non-increasing in rank, sum to 1.
    #[test]
    fn zipf_probabilities_well_formed(n in 1u64..500, alpha in 0.0f64..2.5) {
        let z = Zipf::new(n, alpha).expect("params in domain");
        let mut sum = 0.0;
        let mut prev = f64::INFINITY;
        for k in 1..=n {
            let p = z.probability(k);
            prop_assert!(p > 0.0);
            prop_assert!(p <= prev + 1e-12, "p(rank) must not increase");
            prev = p;
            sum += p;
        }
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum {}", sum);
    }

    /// Group-level invariant: outcomes are internally consistent for any
    /// short random workload (hits point at caches that really hold the
    /// document at serve time, outcome counts partition the request
    /// count).
    #[test]
    fn group_outcomes_are_consistent(
        reqs in proptest::collection::vec((any::<u8>(), any::<u8>(), 1u8..=8), 1..150),
        scheme_idx in 0usize..3,
    ) {
        let scheme = PlacementScheme::all()[scheme_idx];
        let mut group = DistributedGroup::new(3, ByteSize::from_kb(30), PolicyKind::Lru, scheme);
        let mut metrics = GroupMetrics::default();
        for (t, (cache, doc, kb)) in reqs.iter().enumerate() {
            let requester = CacheId::new(u16::from(cache % 3));
            let doc = DocId::new(u64::from(doc % 40));
            let size = ByteSize::from_kb(u64::from(*kb));
            let outcome = group.handle_request(requester, doc, size, Timestamp::from_millis(t as u64));
            if let RequestOutcome::RemoteHit { responder, .. } = outcome {
                prop_assert_ne!(responder, requester, "self remote hit");
            }
            metrics.record(outcome, size);
        }
        prop_assert_eq!(metrics.requests as usize, reqs.len());
        prop_assert_eq!(metrics.local_hits + metrics.remote_hits + metrics.misses, metrics.requests);
        // Byte accounting holds at every cache.
        for node in group.iter() {
            prop_assert!(node.cache().used() <= node.cache().capacity());
        }
    }
}
