//! Chaos suite: the live cluster under injected peer failures.
//!
//! The contract under test is the daemon's fault-tolerance guarantee:
//! under every fault class — refused/reset connections, truncated
//! bodies, dropped ICP traffic, a daemon killed mid-run — every client
//! `request()` still returns `Ok`, with failover visible in the event
//! stream and repeat offenders quarantined. Fault schedules are seeded,
//! so a fixed seed reproduces the same run.
//!
//! Every scenario runs twice: once over the pooled transport (the
//! default — fetches reuse parked peer/origin connections) and once
//! with pooling disabled (`pool_max_idle == 0`, every fetch on a fresh
//! connection), so the resilience guarantees hold under both connection
//! lifecycles. The `_pooling` tests at the bottom cover the pool's own
//! failure interactions: faults on *reused* connections and quarantine
//! discarding a peer's parked connections.

use coopcache::net::{ClusterConfig, FaultKind, FaultMode, FaultPlan, LoopbackCluster};
use coopcache::obs::{EventKind, RingBufferSink};
use coopcache::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The per-host idle cap used for the pooled variants (the loopback
/// daemon default).
const POOLED: usize = 8;
/// Pooling disabled: every fetch opens a fresh connection.
const UNPOOLED: usize = 0;

fn kb(n: u64) -> ByteSize {
    ByteSize::from_kb(n)
}

fn d(i: u64) -> DocId {
    DocId::new(i)
}

fn c(i: u16) -> CacheId {
    CacheId::new(i)
}

/// A cluster with short protocol timeouts so silence-heavy scenarios
/// stay fast, plus a ring sink capturing the event stream.
fn chaos_cluster(
    caches: u16,
    scheme: PlacementScheme,
    faults: FaultPlan,
    pool_max_idle: usize,
) -> (LoopbackCluster, Arc<Mutex<RingBufferSink>>) {
    let config = ClusterConfig::new(caches, kb(64), scheme)
        .icp_timeout(Duration::from_millis(80))
        .io_timeout(Duration::from_secs(2))
        .pool_max_idle(pool_max_idle)
        .faults(faults);
    let mut cluster = LoopbackCluster::start_with_config(config).unwrap();
    let ring = Arc::new(Mutex::new(RingBufferSink::new(512)));
    cluster.set_sink(SinkHandle::from_arc(Arc::clone(&ring)));
    (cluster, ring)
}

fn kind_count(ring: &Mutex<RingBufferSink>, kind: EventKind) -> usize {
    ring.lock()
        .unwrap()
        .events()
        .filter(|e| e.kind() == kind)
        .count()
}

fn refused_doc_scenario(pool_max_idle: usize) {
    // Cache 1 answers ICP but its doc listener drops every connection —
    // a peer that died between the ICP reply and the fetch.
    let plan = FaultPlan::seeded(1).rule(c(1), FaultKind::RefuseDoc, FaultMode::Always);
    let (cluster, ring) = chaos_cluster(2, PlacementScheme::Ea, plan, pool_max_idle);
    cluster.request(1, d(5), kb(4)).unwrap(); // warm the doc at cache 1

    let out = cluster.request(0, d(5), kb(4)).unwrap();
    assert!(
        matches!(out, RequestOutcome::Miss { .. }),
        "must fall back to the origin, got {out:?}"
    );
    assert_eq!(cluster.origin_fetches(), 2);
    assert!(kind_count(&ring, EventKind::PeerFault) >= 1);
    let failovers: Vec<(CacheId, Option<CacheId>)> = ring
        .lock()
        .unwrap()
        .events()
        .filter_map(|e| match e {
            Event::Failover { from, to, .. } => Some((*from, *to)),
            _ => None,
        })
        .collect();
    assert_eq!(failovers, vec![(c(1), None)], "one failover, to the origin");

    // Observability survives chaos: the refuse-rigged daemon drops every
    // document fetch, but an OP_STATS probe on the same port is answered.
    let addr = cluster.doc_addrs()[1];
    let body = coopcache::net::scrape_stats(addr, Duration::from_secs(2)).unwrap();
    assert!(
        body.starts_with("{\"cache\":1,"),
        "stats scrape must succeed on a refusing daemon: {body}"
    );
    cluster.shutdown();
}

#[test]
fn refused_doc_connection_falls_back_to_origin() {
    refused_doc_scenario(POOLED);
}

#[test]
fn refused_doc_connection_falls_back_to_origin_without_pooling() {
    refused_doc_scenario(UNPOOLED);
}

fn second_replier_scenario(pool_max_idle: usize) {
    // Ad-hoc replication puts the doc at caches 1 and 2. Cache 1 replies
    // to ICP first (cache 2's reply is delayed) but refuses the fetch,
    // so the request must fail over to cache 2 and still be a RemoteHit.
    let plan = FaultPlan::seeded(2)
        .rule(c(1), FaultKind::RefuseDoc, FaultMode::Always)
        .rule(
            c(2),
            FaultKind::DelayIcpReply(Duration::from_millis(15)),
            FaultMode::Always,
        );
    let (cluster, ring) = chaos_cluster(3, PlacementScheme::AdHoc, plan, pool_max_idle);
    cluster.request(1, d(9), kb(4)).unwrap(); // origin miss, stored at 1
    cluster.request(2, d(9), kb(4)).unwrap(); // ad-hoc replicates to 2

    let out = cluster.request(0, d(9), kb(4)).unwrap();
    match out {
        RequestOutcome::RemoteHit { responder, .. } => {
            assert_eq!(responder, c(2), "the second replier must serve");
        }
        other => panic!("expected a remote hit from cache 2, got {other:?}"),
    }
    let saw_handoff = ring.lock().unwrap().events().any(|e| {
        matches!(
            e,
            Event::Failover {
                from,
                to: Some(to),
                ..
            } if *from == c(1) && *to == c(2)
        )
    });
    assert!(
        saw_handoff,
        "failover from cache 1 to cache 2 must be logged"
    );
    cluster.shutdown();
}

#[test]
fn second_positive_replier_serves_after_first_fails() {
    second_replier_scenario(POOLED);
}

#[test]
fn second_positive_replier_serves_after_first_fails_without_pooling() {
    second_replier_scenario(UNPOOLED);
}

fn killed_peer_scenario(pool_max_idle: usize) {
    // No fault plan: the peer genuinely dies. ICP goes silent and the
    // doc port refuses; requests keep succeeding via the origin, and
    // after repeated silence the dead peer is quarantined.
    let config = ClusterConfig::new(2, kb(64), PlacementScheme::Ea)
        .icp_timeout(Duration::from_millis(80))
        .pool_max_idle(pool_max_idle);
    let mut cluster = LoopbackCluster::start_with_config(config).unwrap();
    let ring = Arc::new(Mutex::new(RingBufferSink::new(512)));
    cluster.set_sink(SinkHandle::from_arc(Arc::clone(&ring)));
    cluster.request(1, d(3), kb(4)).unwrap(); // warm the doc at cache 1
    cluster.kill(1);

    for i in 0..4 {
        let out = cluster.request(0, d(10 + i), kb(2)).unwrap();
        assert!(
            matches!(out, RequestOutcome::Miss { .. }),
            "request {i} must be served by the origin, got {out:?}"
        );
    }
    assert!(kind_count(&ring, EventKind::PeerQuarantined) >= 1);
    assert_eq!(cluster.daemon(0).quarantined_peers(), vec![c(1)]);
    cluster.shutdown();
}

#[test]
fn killed_peer_is_absorbed_and_quarantined() {
    killed_peer_scenario(POOLED);
}

#[test]
fn killed_peer_is_absorbed_and_quarantined_without_pooling() {
    killed_peer_scenario(UNPOOLED);
}

fn dropped_icp_scenario(pool_max_idle: usize) {
    let plan = FaultPlan::seeded(3).rule(c(1), FaultKind::DropIcpQuery, FaultMode::Always);
    let (cluster, ring) = chaos_cluster(2, PlacementScheme::Ea, plan, pool_max_idle);
    cluster.request(1, d(7), kb(4)).unwrap();

    let out = cluster.request(0, d(7), kb(4)).unwrap();
    assert!(matches!(out, RequestOutcome::Miss { .. }), "{out:?}");
    assert_eq!(cluster.origin_fetches(), 2);
    // Silence is a logged health probe failure.
    let saw_silent = ring
        .lock()
        .unwrap()
        .events()
        .any(|e| matches!(e, Event::PeerFault { error, .. } if *error == "silent"));
    assert!(saw_silent, "ICP silence must be recorded as a peer fault");
    cluster.shutdown();
}

#[test]
fn dropped_icp_queries_degrade_to_origin_misses() {
    dropped_icp_scenario(POOLED);
}

#[test]
fn dropped_icp_queries_degrade_to_origin_misses_without_pooling() {
    dropped_icp_scenario(UNPOOLED);
}

fn truncated_body_scenario(pool_max_idle: usize) {
    let plan = FaultPlan::seeded(4).rule(c(1), FaultKind::TruncateDocBody, FaultMode::Always);
    let (cluster, ring) = chaos_cluster(2, PlacementScheme::Ea, plan, pool_max_idle);
    cluster.request(1, d(11), kb(8)).unwrap();

    let out = cluster.request(0, d(11), kb(8)).unwrap();
    assert!(matches!(out, RequestOutcome::Miss { .. }), "{out:?}");
    assert!(kind_count(&ring, EventKind::PeerFault) >= 1);
    assert!(kind_count(&ring, EventKind::Failover) >= 1);
    cluster.shutdown();
}

#[test]
fn truncated_body_is_absorbed_by_origin_fallback() {
    truncated_body_scenario(POOLED);
}

#[test]
fn truncated_body_is_absorbed_by_origin_fallback_without_pooling() {
    truncated_body_scenario(UNPOOLED);
}

fn reset_connection_scenario(pool_max_idle: usize) {
    let plan = FaultPlan::seeded(5).rule(c(1), FaultKind::ResetDoc, FaultMode::Always);
    let (cluster, _ring) = chaos_cluster(2, PlacementScheme::Ea, plan, pool_max_idle);
    cluster.request(1, d(13), kb(4)).unwrap();

    let out = cluster.request(0, d(13), kb(4)).unwrap();
    assert!(matches!(out, RequestOutcome::Miss { .. }), "{out:?}");
    assert_eq!(
        cluster.origin_fetches(),
        2,
        "the fallback reached the origin"
    );
    cluster.shutdown();
}

#[test]
fn reset_connection_is_absorbed_by_origin_fallback() {
    reset_connection_scenario(POOLED);
}

#[test]
fn reset_connection_is_absorbed_by_origin_fallback_without_pooling() {
    reset_connection_scenario(UNPOOLED);
}

fn deterministic_seed_scenario(pool_max_idle: usize) {
    // Two identical runs under probabilistic document faults must serve
    // the same outcome classes and absorb the same number of faults.
    // The shape is chosen to be timing-free: a single faulty peer (so
    // candidate order is never an arrival-time race) and quarantine
    // disabled (its backoff expiry reads the wall clock).
    let run = |seed: u64| -> (Vec<&'static str>, usize, usize) {
        let plan = FaultPlan::seeded(seed)
            .rule(c(1), FaultKind::RefuseDoc, FaultMode::Probability(40))
            .rule(c(1), FaultKind::ResetDoc, FaultMode::Probability(30));
        let config = ClusterConfig::new(2, kb(64), PlacementScheme::Ea)
            .icp_timeout(Duration::from_millis(80))
            .quarantine_after(0)
            .pool_max_idle(pool_max_idle)
            .faults(plan);
        let mut cluster = LoopbackCluster::start_with_config(config).unwrap();
        let ring = Arc::new(Mutex::new(RingBufferSink::new(1024)));
        cluster.set_sink(SinkHandle::from_arc(Arc::clone(&ring)));
        for i in 0..6 {
            cluster.request(1, d(i), kb(2)).unwrap(); // warm six docs at 1
        }
        let mut outcomes = Vec::new();
        for i in 0..30u64 {
            let out = cluster.request(0, d(i % 6), kb(2)).unwrap();
            outcomes.push(match out {
                RequestOutcome::LocalHit => "local",
                RequestOutcome::RemoteHit { .. } => "remote",
                RequestOutcome::Miss { .. } => "miss",
            });
        }
        let faults = kind_count(&ring, EventKind::PeerFault);
        let failovers = kind_count(&ring, EventKind::Failover);
        cluster.shutdown();
        (outcomes, faults, failovers)
    };
    let first = run(42);
    let second = run(42);
    assert_eq!(first, second, "same seed must reproduce the same run");
    assert!(first.1 > 0, "the schedule must actually inject faults");
}

#[test]
fn chaos_run_is_deterministic_for_a_fixed_seed() {
    deterministic_seed_scenario(POOLED);
}

#[test]
fn chaos_run_is_deterministic_for_a_fixed_seed_without_pooling() {
    deterministic_seed_scenario(UNPOOLED);
}

fn garbage_connection_scenario(pool_max_idle: usize) {
    let config = ClusterConfig::new(2, kb(64), PlacementScheme::Ea)
        .icp_timeout(Duration::from_millis(80))
        .pool_max_idle(pool_max_idle);
    let mut cluster = LoopbackCluster::start_with_config(config).unwrap();
    let ring = Arc::new(Mutex::new(RingBufferSink::new(64)));
    cluster.set_sink(SinkHandle::from_arc(Arc::clone(&ring)));
    cluster.request(0, d(21), kb(4)).unwrap(); // warm the doc at cache 0

    // A client that speaks garbage: an oversized length prefix.
    {
        use std::io::Write;
        let mut stream = std::net::TcpStream::connect(cluster.daemon(0).doc_addr()).unwrap();
        stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
        stream.write_all(b"not a frame").unwrap();
    }
    // The listener logs the error and keeps serving.
    let mut polls = 0;
    while kind_count(&ring, EventKind::ServerLoopError) == 0 {
        polls += 1;
        assert!(polls < 400, "server loop error was never logged");
        std::thread::sleep(Duration::from_millis(5));
    }
    let out = cluster.request(1, d(21), kb(4)).unwrap();
    assert!(
        out.is_remote_hit(),
        "listener must survive garbage: {out:?}"
    );
    cluster.shutdown();
}

#[test]
fn garbage_connection_logs_loop_error_and_listener_survives() {
    garbage_connection_scenario(POOLED);
}

#[test]
fn garbage_connection_logs_loop_error_and_listener_survives_without_pooling() {
    garbage_connection_scenario(UNPOOLED);
}

fn quarantine_recovery_scenario(pool_max_idle: usize) {
    // Cache 1 refuses its first four connections (two requests' worth,
    // with one retry each), gets quarantined, and after the backoff
    // expires serves normally again.
    let plan = FaultPlan::seeded(6).rule(c(1), FaultKind::RefuseDoc, FaultMode::FirstN(4));
    let config = ClusterConfig::new(2, kb(64), PlacementScheme::Ea)
        .icp_timeout(Duration::from_millis(80))
        .quarantine_after(2)
        .quarantine_base(Duration::from_millis(50))
        .pool_max_idle(pool_max_idle)
        .faults(plan);
    let mut cluster = LoopbackCluster::start_with_config(config).unwrap();
    let ring = Arc::new(Mutex::new(RingBufferSink::new(256)));
    cluster.set_sink(SinkHandle::from_arc(Arc::clone(&ring)));
    for i in 1..=4 {
        cluster.request(1, d(i), kb(4)).unwrap(); // warm four docs at cache 1
    }

    // Two failed fetch attempts (plus retries) trip the quarantine.
    assert!(!cluster.request(0, d(1), kb(4)).unwrap().is_remote_hit());
    assert!(!cluster.request(0, d(2), kb(4)).unwrap().is_remote_hit());
    assert!(kind_count(&ring, EventKind::PeerQuarantined) >= 1);
    // While benched, the peer is not even consulted.
    assert_eq!(cluster.daemon(0).quarantined_peers(), vec![c(1)]);
    assert!(!cluster.request(0, d(3), kb(4)).unwrap().is_remote_hit());

    std::thread::sleep(Duration::from_millis(80)); // past the backoff
    assert!(cluster.daemon(0).quarantined_peers().is_empty());
    let out = cluster.request(0, d(4), kb(4)).unwrap();
    assert!(
        out.is_remote_hit(),
        "recovered peer must serve again: {out:?}"
    );
    cluster.shutdown();
}

#[test]
fn quarantined_peer_recovers_after_backoff() {
    quarantine_recovery_scenario(POOLED);
}

#[test]
fn quarantined_peer_recovers_after_backoff_without_pooling() {
    quarantine_recovery_scenario(UNPOOLED);
}

/// A fault on a *reused* pooled connection must be absorbed exactly like
/// one on a fresh connection: transparent stale-retry first, then
/// failover to the origin — never a client-visible error.
fn reused_connection_fault_scenario(kind: FaultKind) {
    // The first frame at cache 1's listener (the fetch of d(1)) is
    // served cleanly, so the requester parks the connection; every later
    // frame on it faults — including the transparent fresh-retry frame,
    // so the failure genuinely surfaces as a peer fault and fails over.
    let plan = FaultPlan::seeded(8).rule(c(1), kind, FaultMode::AfterFirstN(1));
    let config = ClusterConfig::new(2, kb(64), PlacementScheme::Ea)
        .icp_timeout(Duration::from_millis(80))
        .io_timeout(Duration::from_secs(2))
        .quarantine_after(0)
        .faults(plan);
    let mut cluster = LoopbackCluster::start_with_config(config).unwrap();
    let ring = Arc::new(Mutex::new(RingBufferSink::new(256)));
    cluster.set_sink(SinkHandle::from_arc(Arc::clone(&ring)));
    cluster.request(1, d(1), kb(4)).unwrap(); // warm two docs at cache 1
    cluster.request(1, d(2), kb(4)).unwrap();

    let out = cluster.request(0, d(1), kb(4)).unwrap();
    assert!(out.is_remote_hit(), "clean first fetch: {out:?}");
    let peer_doc = cluster.doc_addrs()[1];
    assert_eq!(
        cluster.daemon(0).pooled_idle_to(peer_doc),
        1,
        "the healthy connection must be parked for reuse"
    );

    // The next fetch reuses the parked connection and hits the fault.
    let out = cluster.request(0, d(2), kb(4)).unwrap();
    assert!(
        matches!(out, RequestOutcome::Miss { .. }),
        "fault on the reused connection must fail over, got {out:?}"
    );
    assert!(
        kind_count(&ring, EventKind::PeerFault) >= 1,
        "the post-retry failure is a real peer fault"
    );
    assert!(kind_count(&ring, EventKind::Failover) >= 1);
    cluster.shutdown();
}

#[test]
fn reset_on_reused_connection_fails_over_not_client_error() {
    reused_connection_fault_scenario(FaultKind::ResetDoc);
}

#[test]
fn refuse_on_reused_connection_fails_over_not_client_error() {
    reused_connection_fault_scenario(FaultKind::RefuseDoc);
}

#[test]
fn quarantine_discards_the_peers_pooled_connections() {
    // A healthy exchange parks a connection to cache 1; when cache 1 is
    // quarantined, the parked connection must be discarded so the stale
    // socket can never be replayed after the peer recovers.
    let plan = FaultPlan::seeded(9).rule(c(1), FaultKind::ResetDoc, FaultMode::AfterFirstN(1));
    let config = ClusterConfig::new(2, kb(64), PlacementScheme::Ea)
        .icp_timeout(Duration::from_millis(80))
        .io_timeout(Duration::from_secs(2))
        .quarantine_after(1)
        .quarantine_base(Duration::from_secs(60))
        .faults(plan);
    let mut cluster = LoopbackCluster::start_with_config(config).unwrap();
    let ring = Arc::new(Mutex::new(RingBufferSink::new(256)));
    cluster.set_sink(SinkHandle::from_arc(Arc::clone(&ring)));
    cluster.request(1, d(1), kb(4)).unwrap();
    cluster.request(1, d(2), kb(4)).unwrap();

    let out = cluster.request(0, d(1), kb(4)).unwrap();
    assert!(out.is_remote_hit(), "{out:?}");
    let peer_doc = cluster.doc_addrs()[1];
    assert_eq!(cluster.daemon(0).pooled_idle_to(peer_doc), 1);

    // The reused-connection fault (and its failed retry) trips the
    // quarantine threshold of 1.
    let out = cluster.request(0, d(2), kb(4)).unwrap();
    assert!(matches!(out, RequestOutcome::Miss { .. }), "{out:?}");
    assert_eq!(cluster.daemon(0).quarantined_peers(), vec![c(1)]);
    assert!(kind_count(&ring, EventKind::PeerQuarantined) >= 1);
    assert_eq!(
        cluster.daemon(0).pooled_idle_to(peer_doc),
        0,
        "quarantine must drop every parked connection to the peer"
    );
    cluster.shutdown();
}

/// One seeded chaos run for the tracing acceptance scenario. Returns the
/// assembled structural trace trees and each daemon's scraped `OP_STATS`
/// body, so callers can assert on one run and compare two.
fn traced_failover_run() -> (String, Vec<String>) {
    use coopcache::net::scrape_stats;
    use coopcache::obs::TraceAssembler;

    // Cache 1 resets every document connection after reading the request
    // (a deterministic clean EOF at the requester), and swallows its
    // first two ICP replies so cache 2 acquires replicas via the origin.
    // Cache 2 answers ICP late, pinning the candidate order to [1, 2].
    let plan = FaultPlan::seeded(42)
        .rule(c(1), FaultKind::DropIcpReply, FaultMode::FirstN(2))
        .rule(c(1), FaultKind::ResetDoc, FaultMode::Always)
        .rule(
            c(2),
            FaultKind::DelayIcpReply(Duration::from_millis(15)),
            FaultMode::Always,
        );
    let config = ClusterConfig::new(3, kb(64), PlacementScheme::Ea)
        .icp_timeout(Duration::from_millis(80))
        .io_timeout(Duration::from_secs(2))
        .quarantine_base(Duration::from_secs(60))
        .faults(plan);
    let mut cluster = LoopbackCluster::start_with_config(config).unwrap();
    let assembler = Arc::new(Mutex::new(TraceAssembler::new()));
    cluster.set_sink(SinkHandle::from_arc(Arc::clone(&assembler)));

    cluster.request(1, d(7), kb(4)).unwrap(); // origin, stored at 1
    cluster.request(1, d(8), kb(4)).unwrap(); // origin, stored at 1
    cluster.request(2, d(7), kb(4)).unwrap(); // cache 1's reply dropped: origin, stored at 2
    cluster.request(2, d(8), kb(4)).unwrap(); // same again
                                              // Failover under trace: candidate 1 resets, candidate 2 serves.
    let out = cluster.request(0, d(7), kb(4)).unwrap();
    assert!(out.is_remote_hit(), "failover must still hit: {out:?}");
    // Second failure quarantines cache 1.
    let out = cluster.request(0, d(8), kb(4)).unwrap();
    assert!(out.is_remote_hit(), "failover must still hit: {out:?}");
    assert_eq!(cluster.daemon(0).quarantined_peers(), vec![c(1)]);

    let stats: Vec<String> = cluster
        .doc_addrs()
        .into_iter()
        .map(|addr| scrape_stats(addr, Duration::from_secs(2)).unwrap())
        .collect();
    cluster.shutdown();
    let assembler = Arc::try_unwrap(assembler)
        .expect("daemons drop their sink handles on shutdown")
        .into_inner()
        .unwrap();
    (assembler.render_all(false), stats)
}

#[test]
fn traced_failover_spans_and_stats_are_complete_and_reproducible() {
    use coopcache::obs::{parse_json, JsonValue};

    let (trees, stats) = traced_failover_run();

    // The traced failover request (daemon 0, seq 0 => trace id 0) shows
    // the ICP round, the failed attempt on cache 1, the successful hop
    // to cache 2 with the responder's serve span, and the EA placement
    // decision as the fetch span's status.
    let tree = trees
        .split_inclusive('\n')
        .skip_while(|l| !l.starts_with("trace 0 "))
        .take_while(|l| l.starts_with("trace 0 ") || !l.starts_with("trace "))
        .collect::<String>();
    assert!(!tree.is_empty(), "trace 0 missing from:\n{trees}");
    assert!(
        tree.contains("`- request cache=0 doc=7 status=remote-hit"),
        "{tree}"
    );
    assert!(
        tree.contains("|- icp-round cache=0 doc=7 status=hit"),
        "{tree}"
    );
    assert!(
        tree.contains("|- icp-handle cache=1 peer=0 doc=7 status=hit"),
        "{tree}"
    );
    assert!(
        tree.contains("`- icp-handle cache=2 peer=0 doc=7 status=hit"),
        "{tree}"
    );
    assert!(
        tree.contains("|- peer-fetch cache=0 peer=1 doc=7 status=eof"),
        "{tree}"
    );
    assert!(
        tree.contains("`- peer-fetch cache=0 peer=2 doc=7 status=stored")
            || tree.contains("`- peer-fetch cache=0 peer=2 doc=7 status=declined"),
        "{tree}"
    );
    assert!(
        tree.contains("`- doc-serve cache=2 peer=0 doc=7 status="),
        "{tree}"
    );

    // Every daemon's OP_STATS snapshot agrees with the scenario.
    let parsed: Vec<JsonValue> = stats.iter().map(|s| parse_json(s).unwrap()).collect();
    let counter = |v: &JsonValue, kind: &str| {
        v.get("counters")
            .and_then(|c| c.get(kind))
            .and_then(JsonValue::as_u64)
            .unwrap()
    };
    for (idx, v) in parsed.iter().enumerate() {
        assert_eq!(v.get("cache").and_then(JsonValue::as_u64), Some(idx as u64));
        assert!(counter(v, "span") > 0, "daemon {idx} emitted no spans");
    }
    assert_eq!(counter(&parsed[0], "request"), 2);
    assert_eq!(counter(&parsed[0], "peer-fault"), 2);
    assert_eq!(counter(&parsed[0], "failover"), 2);
    assert_eq!(counter(&parsed[0], "quarantine"), 1);
    let quarantined: Vec<u64> = parsed[0]
        .get("quarantined")
        .and_then(JsonValue::as_array)
        .unwrap()
        .iter()
        .filter_map(JsonValue::as_u64)
        .collect();
    assert_eq!(quarantined, vec![1]);
    assert_eq!(counter(&parsed[1], "request"), 2);
    assert_eq!(counter(&parsed[2], "request"), 2);
    for v in &parsed[1..] {
        let docs = v
            .get("occupancy")
            .and_then(|o| o.get("docs"))
            .and_then(JsonValue::as_u64)
            .unwrap();
        assert!(docs >= 2, "warmed daemons hold both documents");
    }

    // The whole scenario is reproducible: a second same-seed run
    // assembles byte-identical structural trace trees.
    let (again, _) = traced_failover_run();
    assert_eq!(trees, again);
}
