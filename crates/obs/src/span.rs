//! Causal tracing: spans, trace contexts, and the id scheme that links
//! them across daemons.
//!
//! A request entering any driver opens a *trace* — a tree of spans, one
//! per protocol step (ICP round, peer fetch, origin fetch, remote
//! handling). The requester forwards a [`TraceCtx`] on its ICP and
//! document wire frames so the remote daemon's spans attach to the same
//! tree; all daemons in a loopback cluster stamp spans from one
//! `SharedClock`, which keeps cross-daemon durations comparable.
//!
//! Span and trace ids are plain `u64`s. The socket daemons partition the
//! id space by cache (high 16 bits) so concurrently-allocated ids never
//! collide and a structural sort groups each daemon's spans together;
//! the DES derives ids from the request index, which makes seeded runs
//! byte-identical.

use coopcache_types::{CacheId, DocId};

/// Number of low bits holding the per-cache sequence in a scoped id.
const SCOPE_SHIFT: u32 = 48;

/// The trace context a requester piggybacks on outbound wire frames so
/// the serving daemon can attach its spans to the requester's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// The trace the originating client request opened.
    pub trace_id: u64,
    /// The requester-side span the remote work is caused by.
    pub parent_span: u64,
}

/// What protocol step a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpanKind {
    /// The whole client request, arrival to completion (trace root).
    Request,
    /// The requester's ICP query fan-out and reply wait.
    IcpRound,
    /// A peer handling one inbound ICP query (remote side).
    IcpHandle,
    /// One candidate peer fetch attempt, including retries.
    PeerFetch,
    /// A responder serving a document request (remote side).
    DocServe,
    /// The requester fetching from the origin server.
    OriginFetch,
}

impl SpanKind {
    /// Stable lowercase name used in the JSON encoding.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Request => "request",
            Self::IcpRound => "icp-round",
            Self::IcpHandle => "icp-handle",
            Self::PeerFetch => "peer-fetch",
            Self::DocServe => "doc-serve",
            Self::OriginFetch => "origin-fetch",
        }
    }

    /// Inverse of [`SpanKind::name`], for decoding JSONL streams.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "request" => Some(Self::Request),
            "icp-round" => Some(Self::IcpRound),
            "icp-handle" => Some(Self::IcpHandle),
            "peer-fetch" => Some(Self::PeerFetch),
            "doc-serve" => Some(Self::DocServe),
            "origin-fetch" => Some(Self::OriginFetch),
            _ => None,
        }
    }
}

/// One completed unit of request-scoped work, emitted as
/// [`Event::Span`](crate::Event::Span) once the work finishes.
///
/// The `status` label comes from a closed vocabulary: the request
/// classes (`local-hit`, `remote-hit`, `miss`), placement decisions
/// (`stored`, `declined`, `promoted`, `kept`), probe results (`hit`,
/// `miss`, `not-found`), and the chaos error labels (`refused`,
/// `reset`, `timeout`, `eof`, `silent`, `proto`, `io`). Keeping it
/// closed and `'static` is what lets seeded chaos runs compare span
/// trees byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id, unique within the run.
    pub span_id: u64,
    /// The parent span, `None` for the trace root.
    pub parent: Option<u64>,
    /// The cache that did the work.
    pub cache: CacheId,
    /// The protocol step covered.
    pub kind: SpanKind,
    /// The document involved, when there is one.
    pub doc: Option<DocId>,
    /// The remote peer involved, for fetch attempts.
    pub peer: Option<CacheId>,
    /// Start timestamp in microseconds (shared wall clock for the
    /// daemons, simulated time for the DES).
    pub start_us: u64,
    /// End timestamp in microseconds, same clock as `start_us`.
    pub end_us: u64,
    /// Outcome label from the closed status vocabulary.
    pub status: &'static str,
}

impl Span {
    /// Span duration in microseconds (saturating — a skewed clock never
    /// underflows).
    #[must_use]
    pub const fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Builds the daemon-scoped id for sequence `n` of `cache`: the high 16
/// bits carry the cache, the low 48 the per-daemon sequence.
#[must_use]
pub fn scoped_id(cache: CacheId, n: u64) -> u64 {
    (u64::from(cache.as_u16()) << SCOPE_SHIFT) | (n & ((1 << SCOPE_SHIFT) - 1))
}

/// The cache encoded in a daemon-scoped trace or span id.
#[must_use]
pub const fn scoped_cache(id: u64) -> u16 {
    // Truncation is the inverse of the 16-bit shift in `scoped_id`.
    #[allow(clippy::cast_possible_truncation)]
    {
        (id >> SCOPE_SHIFT) as u16
    }
}

/// The per-daemon sequence number encoded in a daemon-scoped id.
#[must_use]
pub const fn scoped_seq(id: u64) -> u64 {
    id & ((1 << SCOPE_SHIFT) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_ids_round_trip() {
        let id = scoped_id(CacheId::new(3), 41);
        assert_eq!(scoped_cache(id), 3);
        assert_eq!(scoped_seq(id), 41);
        assert_eq!(scoped_id(CacheId::new(0), 0), 0);
    }

    #[test]
    fn scoped_seq_masks_overflow() {
        let id = scoped_id(CacheId::new(1), u64::MAX);
        assert_eq!(scoped_cache(id), 1);
        assert_eq!(scoped_seq(id), (1 << SCOPE_SHIFT) - 1);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            SpanKind::Request,
            SpanKind::IcpRound,
            SpanKind::IcpHandle,
            SpanKind::PeerFetch,
            SpanKind::DocServe,
            SpanKind::OriginFetch,
        ] {
            assert_eq!(SpanKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SpanKind::from_name("bogus"), None);
    }

    #[test]
    fn duration_saturates() {
        let span = Span {
            trace_id: 1,
            span_id: 2,
            parent: None,
            cache: CacheId::new(0),
            kind: SpanKind::Request,
            doc: None,
            peer: None,
            start_us: 10,
            end_us: 4,
            status: "ok",
        };
        assert_eq!(span.duration_us(), 0);
    }
}
