//! The structured event taxonomy shared by all three execution modes.
//!
//! The synchronous group, the discrete-event simulator and the socket
//! daemon all run the same placement logic; the events here are the
//! common trace language they emit, so a JSONL stream from any driver is
//! comparable line-by-line with a stream from any other. Every event is a
//! plain value — no timestamps of its own beyond what the caller supplies
//! — which keeps replays of the same trace byte-identical.

use crate::alert::{AlertMetric, AlertOp, AlertState};
use crate::json::JsonWriter;
use crate::span::Span;
use coopcache_types::{CacheId, DocId, ExpirationAge};

/// How a request was ultimately served (the three-way split behind every
/// hit-rate figure in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestClass {
    /// Served by the cache the client is attached to.
    LocalHit,
    /// Served by a peer in the group.
    RemoteHit,
    /// Fetched from the origin server.
    Miss,
}

impl RequestClass {
    /// Stable lowercase name used in the JSON encoding.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::LocalHit => "local-hit",
            Self::RemoteHit => "remote-hit",
            Self::Miss => "miss",
        }
    }

    /// Inverse of [`Self::name`], for offline JSONL replay.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "local-hit" => Some(Self::LocalHit),
            "remote-hit" => Some(Self::RemoteHit),
            "miss" => Some(Self::Miss),
            _ => None,
        }
    }
}

/// Which of the EA scheme's three placement rules produced a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementRole {
    /// §3.4: the requester decides whether to store a remote-hit copy.
    RequesterStore,
    /// §3.5: the responder decides whether to refresh (promote) its copy.
    ResponderPromote,
    /// Hierarchy variant: a parent decides whether to keep a pass-through
    /// copy on the way down.
    ParentStore,
}

impl PlacementRole {
    /// Stable lowercase name used in the JSON encoding.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::RequesterStore => "requester-store",
            Self::ResponderPromote => "responder-promote",
            Self::ParentStore => "parent-store",
        }
    }
}

/// Why a document left the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictionCause {
    /// Displaced by the replacement policy to make room.
    Capacity,
    /// Removed explicitly (invalidation, shutdown).
    Explicit,
    /// TTL expiry.
    Expired,
}

impl EvictionCause {
    /// Stable lowercase name used in the JSON encoding.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Capacity => "capacity",
            Self::Explicit => "explicit",
            Self::Expired => "expired",
        }
    }
}

/// The protocol step at which a requester observed a peer failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// The peer never answered the ICP query before the deadline.
    Icp,
    /// The TCP connection to the peer's document port failed.
    Connect,
    /// The connection was established but the transfer failed
    /// (reset, premature EOF, truncated body, malformed header).
    Transfer,
}

impl FaultOp {
    /// Stable lowercase name used in the JSON encoding.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Icp => "icp",
            Self::Connect => "connect",
            Self::Transfer => "transfer",
        }
    }
}

/// Which of a daemon's two server loops reported an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerLoop {
    /// The UDP ICP responder loop.
    Icp,
    /// The TCP document server loop.
    Doc,
}

impl ServerLoop {
    /// Stable lowercase name used in the JSON encoding.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Icp => "icp",
            Self::Doc => "doc",
        }
    }
}

/// One protocol-level occurrence, emitted through an
/// [`EventSink`](crate::EventSink).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A client request completed, with its outcome.
    Request {
        /// Request sequence number within the run (trace order).
        seq: u64,
        /// The cache the client is attached to.
        cache: CacheId,
        /// The requested document.
        doc: DocId,
        /// How it was served.
        class: RequestClass,
        /// The supplying peer, for remote hits.
        responder: Option<CacheId>,
        /// Whether the requester kept a local copy.
        stored: bool,
        /// Request latency in microseconds: simulated latency under the
        /// DES, wall-clock under the socket daemon, absent in the
        /// synchronous runner (which has no notion of time-to-serve).
        latency_us: Option<u64>,
    },
    /// An ICP query was sent to a peer.
    IcpQuery {
        /// The querying cache.
        from: CacheId,
        /// The queried peer.
        to: CacheId,
        /// The document asked about.
        doc: DocId,
    },
    /// An ICP reply came back.
    IcpReply {
        /// The replying peer.
        from: CacheId,
        /// The document asked about.
        doc: DocId,
        /// Whether the peer holds the document.
        hit: bool,
    },
    /// An EA placement rule fired, with both expiration ages it compared
    /// (§3.4/§3.5) — the heart of the paper's scheme.
    Placement {
        /// The cache applying the rule.
        cache: CacheId,
        /// The document being placed.
        doc: DocId,
        /// Which rule fired.
        role: PlacementRole,
        /// This cache's own expiration age at decision time.
        self_age: ExpirationAge,
        /// The other party's piggybacked expiration age.
        peer_age: ExpirationAge,
        /// The decision: store/promote (`true`) or decline (`false`).
        stored: bool,
        /// Both ages were exactly equal — the case where §3.4's strict
        /// `>` and §3.5's `≥` diverge (see `TieBreak`).
        tie: bool,
    },
    /// A document was evicted; its document expiration age (paper eq. 1)
    /// is what feeds the cache expiration age (eq. 5).
    Eviction {
        /// The evicting cache.
        cache: CacheId,
        /// The evicted document.
        doc: DocId,
        /// The document expiration age at eviction, in milliseconds.
        age_ms: u64,
        /// Why it was evicted.
        cause: EvictionCause,
    },
    /// A requester observed a peer failing at some step of the remote
    /// fetch protocol. The failure is absorbed by failover — it is never
    /// surfaced to the client.
    PeerFault {
        /// The cache that observed the failure (the requester).
        cache: CacheId,
        /// The peer that failed.
        peer: CacheId,
        /// The document being fetched.
        doc: DocId,
        /// The protocol step that failed.
        op: FaultOp,
        /// A short label from a closed vocabulary (`refused`, `reset`,
        /// `timeout`, `eof`, `silent`, `proto`, `io`) — stable across
        /// runs so chaos traces stay deterministic.
        error: &'static str,
    },
    /// A requester moved on after a peer failure: to the next positive
    /// ICP replier, or to the origin when none remain.
    Failover {
        /// The failing-over requester.
        cache: CacheId,
        /// The document being fetched.
        doc: DocId,
        /// The candidate that just failed.
        from: CacheId,
        /// The next candidate, or `None` for the origin server.
        to: Option<CacheId>,
    },
    /// A peer crossed the consecutive-failure threshold; the requester
    /// stops querying it until the backoff expires.
    PeerQuarantined {
        /// The cache applying the quarantine.
        cache: CacheId,
        /// The quarantined peer.
        peer: CacheId,
        /// Consecutive failures observed at quarantine time.
        failures: u64,
        /// How long the peer is benched, in milliseconds (doubles on
        /// each re-quarantine up to the configured cap).
        backoff_ms: u64,
    },
    /// A daemon server loop hit a non-timeout socket error and kept
    /// running (the loop only exits on shutdown).
    ServerLoopError {
        /// The daemon whose loop erred.
        cache: CacheId,
        /// Which server loop.
        server: ServerLoop,
        /// A short label from the same closed vocabulary as
        /// [`Event::PeerFault`].
        error: &'static str,
    },
    /// The synchronous runner closed one reporting window of the trace.
    WindowRollover {
        /// Zero-based window index.
        index: u64,
        /// Requests served inside this window.
        requests: u64,
        /// Local hits inside this window.
        local_hits: u64,
        /// Remote hits inside this window.
        remote_hits: u64,
        /// Mean cache expiration age across the group at rollover
        /// (`None` while every tracker is still empty/infinite).
        mean_age_ms: Option<u64>,
    },
    /// One completed unit of request-scoped work (trace tree node); the
    /// requester's trace context rides the wire so remote daemons join
    /// the same tree.
    Span(Span),
    /// A pooled connection carried one more exchange instead of a fresh
    /// `connect`. Emitted by the client side on a pool checkout hit and
    /// by the server side when a persistent connection serves its
    /// second (or later) document frame.
    ConnReused {
        /// The cache observing the reuse.
        cache: CacheId,
        /// The remote peer, when it is a cache (`None` for the origin
        /// pool and for server-side reuse of an anonymous client).
        peer: Option<CacheId>,
    },
    /// Memory-pressure admission control declined to store an
    /// origin-fetched document: the request was still served, but the
    /// cacheable-store work was shed.
    AdmissionShed {
        /// The cache shedding the store.
        cache: CacheId,
        /// The document that was served but not stored.
        doc: DocId,
    },
    /// An SLO rule crossed its burn count (or recovered): the alert
    /// plane's state transition. Carries no timestamp of its own — under
    /// a live daemon the series points already carry wall-clock time,
    /// and omitting it here keeps same-workload alert streams
    /// byte-comparable; all values are integers for the same reason.
    Alert {
        /// The node the rule evaluated on.
        cache: CacheId,
        /// The watched metric.
        metric: AlertMetric,
        /// Which side of the threshold violates.
        op: AlertOp,
        /// The rule's threshold (permille, µs, or count).
        threshold: u64,
        /// The metric value at the transition.
        value: u64,
        /// Consecutive windows in the transition's condition.
        windows: u64,
        /// Entering (`firing`) or leaving (`resolved`) the alert state.
        state: AlertState,
    },
}

/// The discriminant of an [`Event`], for counting and filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// [`Event::Request`].
    Request,
    /// [`Event::IcpQuery`].
    IcpQuery,
    /// [`Event::IcpReply`].
    IcpReply,
    /// [`Event::Placement`].
    Placement,
    /// [`Event::Eviction`].
    Eviction,
    /// [`Event::PeerFault`].
    PeerFault,
    /// [`Event::Failover`].
    Failover,
    /// [`Event::PeerQuarantined`].
    PeerQuarantined,
    /// [`Event::ServerLoopError`].
    ServerLoopError,
    /// [`Event::WindowRollover`].
    WindowRollover,
    /// [`Event::Span`].
    Span,
    /// [`Event::ConnReused`].
    ConnReused,
    /// [`Event::AdmissionShed`].
    AdmissionShed,
    /// [`Event::Alert`].
    Alert,
}

/// All event kinds, in the order they appear in summaries.
///
/// Must list every [`EventKind`] exactly once, at the position
/// [`EventKind::index`] assigns it; the `event_kinds` tests enforce the
/// lockstep, and the exhaustive match in `index` makes adding a variant
/// without extending this array a compile error.
pub const EVENT_KINDS: [EventKind; 14] = [
    EventKind::Request,
    EventKind::IcpQuery,
    EventKind::IcpReply,
    EventKind::Placement,
    EventKind::Eviction,
    EventKind::PeerFault,
    EventKind::Failover,
    EventKind::PeerQuarantined,
    EventKind::ServerLoopError,
    EventKind::WindowRollover,
    EventKind::Span,
    EventKind::ConnReused,
    EventKind::AdmissionShed,
    EventKind::Alert,
];

impl EventKind {
    /// Stable lowercase name used as the JSON `"ev"` tag.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Request => "request",
            Self::IcpQuery => "icp-query",
            Self::IcpReply => "icp-reply",
            Self::Placement => "placement",
            Self::Eviction => "eviction",
            Self::PeerFault => "peer-fault",
            Self::Failover => "failover",
            Self::PeerQuarantined => "quarantine",
            Self::ServerLoopError => "loop-error",
            Self::WindowRollover => "window",
            Self::Span => "span",
            Self::ConnReused => "connections-reused",
            Self::AdmissionShed => "admission-shed",
            Self::Alert => "alert",
        }
    }

    /// The inverse of [`Self::name`]: the kind carrying a JSON `"ev"`
    /// tag, `None` for unknown tags. Series replay uses this to count
    /// events straight off a JSONL stream without decoding full events.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        EVENT_KINDS.into_iter().find(|k| k.name() == name)
    }

    /// This kind's position in [`EVENT_KINDS`] — the counter slot used
    /// by summaries and the live stats registry.
    ///
    /// The match is exhaustive on purpose: adding an `EventKind` variant
    /// fails to compile here until it is given a slot, and the
    /// `event_kinds_lockstep` test then fails until [`EVENT_KINDS`] is
    /// extended to match.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Self::Request => 0,
            Self::IcpQuery => 1,
            Self::IcpReply => 2,
            Self::Placement => 3,
            Self::Eviction => 4,
            Self::PeerFault => 5,
            Self::Failover => 6,
            Self::PeerQuarantined => 7,
            Self::ServerLoopError => 8,
            Self::WindowRollover => 9,
            Self::Span => 10,
            Self::ConnReused => 11,
            Self::AdmissionShed => 12,
            Self::Alert => 13,
        }
    }

    /// Whether this kind is *request-scoped*: telemetry describing one
    /// request's protocol flow, emitted at request volume. These are the
    /// kinds a daemon sheds wholesale for head-sampled-out traces (see
    /// [`mute_request_scoped`](crate::mute_request_scoped)) — the rest
    /// are low-rate cluster-health signals (evictions, faults,
    /// quarantine, admission sheds, alerts) that must stay exact no
    /// matter the sampling posture.
    ///
    /// Exhaustive on purpose, like [`Self::index`]: a new variant fails
    /// to compile until it is classified.
    #[must_use]
    pub const fn is_request_scoped(self) -> bool {
        match self {
            Self::Request
            | Self::IcpQuery
            | Self::IcpReply
            | Self::Placement
            | Self::Span
            | Self::ConnReused => true,
            Self::Eviction
            | Self::PeerFault
            | Self::Failover
            | Self::PeerQuarantined
            | Self::ServerLoopError
            | Self::WindowRollover
            | Self::AdmissionShed
            | Self::Alert => false,
        }
    }
}

/// `Some(ms)` for a finite age, `None` for [`ExpirationAge::Infinite`] —
/// the encoding the JSON stream uses (`null` = infinite).
#[must_use]
pub fn age_to_ms(age: ExpirationAge) -> Option<u64> {
    age.as_finite().map(|d| d.as_millis())
}

impl Event {
    /// This event's kind.
    #[must_use]
    pub const fn kind(&self) -> EventKind {
        match self {
            Self::Request { .. } => EventKind::Request,
            Self::IcpQuery { .. } => EventKind::IcpQuery,
            Self::IcpReply { .. } => EventKind::IcpReply,
            Self::Placement { .. } => EventKind::Placement,
            Self::Eviction { .. } => EventKind::Eviction,
            Self::PeerFault { .. } => EventKind::PeerFault,
            Self::Failover { .. } => EventKind::Failover,
            Self::PeerQuarantined { .. } => EventKind::PeerQuarantined,
            Self::ServerLoopError { .. } => EventKind::ServerLoopError,
            Self::WindowRollover { .. } => EventKind::WindowRollover,
            Self::Span(..) => EventKind::Span,
            Self::ConnReused { .. } => EventKind::ConnReused,
            Self::AdmissionShed { .. } => EventKind::AdmissionShed,
            Self::Alert { .. } => EventKind::Alert,
        }
    }

    /// Encodes the event as one compact JSON object (no trailing newline).
    ///
    /// Field order is fixed, ages are milliseconds-or-`null`, so two runs
    /// over the same trace produce byte-identical lines.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.write_json(JsonWriter::new())
    }

    /// Like [`Self::to_json`], but appends into the writer's existing
    /// buffer — the allocation-free path [`JsonlSink`](crate::JsonlSink)
    /// uses on the daemon hot path (one reused buffer per sink).
    #[must_use]
    pub fn write_json(&self, mut w: JsonWriter) -> String {
        w.begin_object();
        w.key("ev");
        w.string(self.kind().name());
        match self {
            Self::Request {
                seq,
                cache,
                doc,
                class,
                responder,
                stored,
                latency_us,
            } => {
                w.key("seq");
                w.u64(*seq);
                w.key("cache");
                w.u64(u64::from(cache.as_u16()));
                w.key("doc");
                w.u64(doc.as_u64());
                w.key("class");
                w.string(class.name());
                w.key("responder");
                w.opt_u64(responder.map(|c| u64::from(c.as_u16())));
                w.key("stored");
                w.bool(*stored);
                w.key("latency_us");
                w.opt_u64(*latency_us);
            }
            Self::IcpQuery { from, to, doc } => {
                w.key("from");
                w.u64(u64::from(from.as_u16()));
                w.key("to");
                w.u64(u64::from(to.as_u16()));
                w.key("doc");
                w.u64(doc.as_u64());
            }
            Self::IcpReply { from, doc, hit } => {
                w.key("from");
                w.u64(u64::from(from.as_u16()));
                w.key("doc");
                w.u64(doc.as_u64());
                w.key("hit");
                w.bool(*hit);
            }
            Self::Placement {
                cache,
                doc,
                role,
                self_age,
                peer_age,
                stored,
                tie,
            } => {
                w.key("cache");
                w.u64(u64::from(cache.as_u16()));
                w.key("doc");
                w.u64(doc.as_u64());
                w.key("role");
                w.string(role.name());
                w.key("self_age_ms");
                w.opt_u64(age_to_ms(*self_age));
                w.key("peer_age_ms");
                w.opt_u64(age_to_ms(*peer_age));
                w.key("stored");
                w.bool(*stored);
                w.key("tie");
                w.bool(*tie);
            }
            Self::Eviction {
                cache,
                doc,
                age_ms,
                cause,
            } => {
                w.key("cache");
                w.u64(u64::from(cache.as_u16()));
                w.key("doc");
                w.u64(doc.as_u64());
                w.key("age_ms");
                w.u64(*age_ms);
                w.key("cause");
                w.string(cause.name());
            }
            Self::PeerFault {
                cache,
                peer,
                doc,
                op,
                error,
            } => {
                w.key("cache");
                w.u64(u64::from(cache.as_u16()));
                w.key("peer");
                w.u64(u64::from(peer.as_u16()));
                w.key("doc");
                w.u64(doc.as_u64());
                w.key("op");
                w.string(op.name());
                w.key("error");
                w.string(error);
            }
            Self::Failover {
                cache,
                doc,
                from,
                to,
            } => {
                w.key("cache");
                w.u64(u64::from(cache.as_u16()));
                w.key("doc");
                w.u64(doc.as_u64());
                w.key("from");
                w.u64(u64::from(from.as_u16()));
                w.key("to");
                w.opt_u64(to.map(|c| u64::from(c.as_u16())));
            }
            Self::PeerQuarantined {
                cache,
                peer,
                failures,
                backoff_ms,
            } => {
                w.key("cache");
                w.u64(u64::from(cache.as_u16()));
                w.key("peer");
                w.u64(u64::from(peer.as_u16()));
                w.key("failures");
                w.u64(*failures);
                w.key("backoff_ms");
                w.u64(*backoff_ms);
            }
            Self::ServerLoopError {
                cache,
                server,
                error,
            } => {
                w.key("cache");
                w.u64(u64::from(cache.as_u16()));
                w.key("server");
                w.string(server.name());
                w.key("error");
                w.string(error);
            }
            Self::WindowRollover {
                index,
                requests,
                local_hits,
                remote_hits,
                mean_age_ms,
            } => {
                w.key("index");
                w.u64(*index);
                w.key("requests");
                w.u64(*requests);
                w.key("local_hits");
                w.u64(*local_hits);
                w.key("remote_hits");
                w.u64(*remote_hits);
                w.key("mean_age_ms");
                w.opt_u64(*mean_age_ms);
            }
            Self::ConnReused { cache, peer } => {
                w.key("cache");
                w.u64(u64::from(cache.as_u16()));
                w.key("peer");
                w.opt_u64(peer.map(|c| u64::from(c.as_u16())));
            }
            Self::AdmissionShed { cache, doc } => {
                w.key("cache");
                w.u64(u64::from(cache.as_u16()));
                w.key("doc");
                w.u64(doc.as_u64());
            }
            Self::Alert {
                cache,
                metric,
                op,
                threshold,
                value,
                windows,
                state,
            } => {
                w.key("cache");
                w.u64(u64::from(cache.as_u16()));
                w.key("metric");
                w.string(metric.name());
                w.key("op");
                w.string(op.name());
                w.key("threshold");
                w.u64(*threshold);
                w.key("value");
                w.u64(*value);
                w.key("windows");
                w.u64(*windows);
                w.key("state");
                w.string(state.name());
            }
            Self::Span(span) => {
                w.key("trace");
                w.u64(span.trace_id);
                w.key("span");
                w.u64(span.span_id);
                w.key("parent");
                w.opt_u64(span.parent);
                w.key("cache");
                w.u64(u64::from(span.cache.as_u16()));
                w.key("kind");
                w.string(span.kind.name());
                w.key("doc");
                w.opt_u64(span.doc.map(DocId::as_u64));
                w.key("peer");
                w.opt_u64(span.peer.map(|c| u64::from(c.as_u16())));
                w.key("start_us");
                w.u64(span.start_us);
                w.key("end_us");
                w.u64(span.end_us);
                w.key("status");
                w.string(span.status);
            }
        }
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coopcache_types::DurationMs;

    #[test]
    fn request_json_shape() {
        let ev = Event::Request {
            seq: 3,
            cache: CacheId::new(1),
            doc: DocId::new(42),
            class: RequestClass::RemoteHit,
            responder: Some(CacheId::new(2)),
            stored: true,
            latency_us: None,
        };
        assert_eq!(ev.kind(), EventKind::Request);
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"request","seq":3,"cache":1,"doc":42,"class":"remote-hit","responder":2,"stored":true,"latency_us":null}"#
        );
    }

    #[test]
    fn placement_json_encodes_infinite_age_as_null() {
        let ev = Event::Placement {
            cache: CacheId::new(0),
            doc: DocId::new(7),
            role: PlacementRole::RequesterStore,
            self_age: ExpirationAge::Infinite,
            peer_age: ExpirationAge::finite(DurationMs::from_millis(250)),
            stored: true,
            tie: false,
        };
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"placement","cache":0,"doc":7,"role":"requester-store","self_age_ms":null,"peer_age_ms":250,"stored":true,"tie":false}"#
        );
    }

    #[test]
    fn eviction_and_window_json_shapes() {
        let ev = Event::Eviction {
            cache: CacheId::new(3),
            doc: DocId::new(9),
            age_ms: 1_500,
            cause: EvictionCause::Capacity,
        };
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"eviction","cache":3,"doc":9,"age_ms":1500,"cause":"capacity"}"#
        );
        let ev = Event::WindowRollover {
            index: 2,
            requests: 100,
            local_hits: 30,
            remote_hits: 10,
            mean_age_ms: None,
        };
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"window","index":2,"requests":100,"local_hits":30,"remote_hits":10,"mean_age_ms":null}"#
        );
    }

    #[test]
    fn icp_json_shapes() {
        let q = Event::IcpQuery {
            from: CacheId::new(0),
            to: CacheId::new(1),
            doc: DocId::new(5),
        };
        assert_eq!(q.to_json(), r#"{"ev":"icp-query","from":0,"to":1,"doc":5}"#);
        let r = Event::IcpReply {
            from: CacheId::new(1),
            doc: DocId::new(5),
            hit: true,
        };
        assert_eq!(
            r.to_json(),
            r#"{"ev":"icp-reply","from":1,"doc":5,"hit":true}"#
        );
    }

    /// Satellite guard: `EVENT_KINDS` must stay in lockstep with the
    /// `EventKind` enum. The exhaustive match inside
    /// [`EventKind::index`] makes adding a variant a compile error until
    /// it is slotted, and this test then fails until `EVENT_KINDS` lists
    /// it at that slot.
    #[test]
    fn event_kinds_lockstep() {
        for (i, kind) in EVENT_KINDS.iter().enumerate() {
            assert_eq!(
                kind.index(),
                i,
                "EVENT_KINDS[{i}] = {kind:?} is out of lockstep with EventKind::index"
            );
        }
        // Every slot `index` can assign must exist in the array: the
        // indices above are a bijection onto 0..len, so a variant
        // slotted beyond the array would break the `index() == i` loop
        // for whichever kind it displaced — and a duplicate would too.
        let mut names: Vec<&str> = EVENT_KINDS.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EVENT_KINDS.len(), "duplicate kind names");
    }

    #[test]
    fn kinds_cover_all_events() {
        assert_eq!(EVENT_KINDS.len(), 14);
        for kind in EVENT_KINDS {
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn alert_json_shape() {
        use crate::alert::{AlertMetric, AlertOp, AlertState};
        let ev = Event::Alert {
            cache: CacheId::new(2),
            metric: AlertMetric::HitRate,
            op: AlertOp::Below,
            threshold: 500,
            value: 321,
            windows: 3,
            state: AlertState::Firing,
        };
        assert_eq!(ev.kind(), EventKind::Alert);
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"alert","cache":2,"metric":"hit-rate","op":"below","threshold":500,"value":321,"windows":3,"state":"firing"}"#
        );
        let ev = Event::Alert {
            cache: CacheId::new(2),
            metric: AlertMetric::P99Latency,
            op: AlertOp::Above,
            threshold: 1_000_000,
            value: 750_000,
            windows: 1,
            state: AlertState::Resolved,
        };
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"alert","cache":2,"metric":"p99-latency","op":"above","threshold":1000000,"value":750000,"windows":1,"state":"resolved"}"#
        );
    }

    #[test]
    fn pool_and_admission_json_shapes() {
        let ev = Event::ConnReused {
            cache: CacheId::new(0),
            peer: Some(CacheId::new(2)),
        };
        assert_eq!(ev.kind(), EventKind::ConnReused);
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"connections-reused","cache":0,"peer":2}"#
        );
        let ev = Event::ConnReused {
            cache: CacheId::new(1),
            peer: None,
        };
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"connections-reused","cache":1,"peer":null}"#
        );
        let ev = Event::AdmissionShed {
            cache: CacheId::new(3),
            doc: DocId::new(9),
        };
        assert_eq!(ev.kind(), EventKind::AdmissionShed);
        assert_eq!(ev.to_json(), r#"{"ev":"admission-shed","cache":3,"doc":9}"#);
    }

    #[test]
    fn from_name_inverts_name() {
        for kind in EVENT_KINDS {
            assert_eq!(EventKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(EventKind::from_name("no-such-event"), None);
    }

    #[test]
    fn span_json_shape() {
        use crate::span::{Span, SpanKind};
        let ev = Event::Span(Span {
            trace_id: 7,
            span_id: 9,
            parent: Some(8),
            cache: CacheId::new(2),
            kind: SpanKind::PeerFetch,
            doc: Some(DocId::new(41)),
            peer: Some(CacheId::new(1)),
            start_us: 1_000,
            end_us: 1_450,
            status: "refused",
        });
        assert_eq!(ev.kind(), EventKind::Span);
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"span","trace":7,"span":9,"parent":8,"cache":2,"kind":"peer-fetch","doc":41,"peer":1,"start_us":1000,"end_us":1450,"status":"refused"}"#
        );
        let root = Event::Span(Span {
            trace_id: 7,
            span_id: 1,
            parent: None,
            cache: CacheId::new(0),
            kind: SpanKind::Request,
            doc: None,
            peer: None,
            start_us: 0,
            end_us: 2_000,
            status: "remote-hit",
        });
        assert_eq!(
            root.to_json(),
            r#"{"ev":"span","trace":7,"span":1,"parent":null,"cache":0,"kind":"request","doc":null,"peer":null,"start_us":0,"end_us":2000,"status":"remote-hit"}"#
        );
    }

    #[test]
    fn fault_json_shapes() {
        let ev = Event::PeerFault {
            cache: CacheId::new(0),
            peer: CacheId::new(2),
            doc: DocId::new(7),
            op: FaultOp::Connect,
            error: "refused",
        };
        assert_eq!(ev.kind(), EventKind::PeerFault);
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"peer-fault","cache":0,"peer":2,"doc":7,"op":"connect","error":"refused"}"#
        );
        let ev = Event::Failover {
            cache: CacheId::new(0),
            doc: DocId::new(7),
            from: CacheId::new(2),
            to: None,
        };
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"failover","cache":0,"doc":7,"from":2,"to":null}"#
        );
        let ev = Event::PeerQuarantined {
            cache: CacheId::new(0),
            peer: CacheId::new(2),
            failures: 3,
            backoff_ms: 500,
        };
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"quarantine","cache":0,"peer":2,"failures":3,"backoff_ms":500}"#
        );
        let ev = Event::ServerLoopError {
            cache: CacheId::new(1),
            server: ServerLoop::Doc,
            error: "proto",
        };
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"loop-error","cache":1,"server":"doc","error":"proto"}"#
        );
    }

    #[test]
    fn fault_name_vocabularies() {
        assert_eq!(FaultOp::Icp.name(), "icp");
        assert_eq!(FaultOp::Transfer.name(), "transfer");
        assert_eq!(ServerLoop::Icp.name(), "icp");
        assert_eq!(ServerLoop::Doc.name(), "doc");
    }

    #[test]
    fn age_conversion() {
        assert_eq!(age_to_ms(ExpirationAge::Infinite), None);
        assert_eq!(
            age_to_ms(ExpirationAge::finite(DurationMs::from_millis(9))),
            Some(9)
        );
    }
}
