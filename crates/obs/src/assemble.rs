//! Reconstructing trace trees from span events.
//!
//! A [`TraceAssembler`] folds [`Event::Span`] events — taken live from a
//! sink or re-read from a JSONL file, from any number of daemons — into
//! per-trace span lists, then renders each trace as an indented tree.
//! Because the daemons of a loopback cluster share one `SharedClock`,
//! the durations in one tree are mutually comparable even though its
//! spans were stamped on different daemons.
//!
//! Rendering has two modes: with timings (offset from trace start plus
//! duration, byte-identical for DES streams where time is simulated) and
//! without (`with_times = false`, structural only — byte-identical even
//! for wall-clock daemon runs with the same seed, which is what the
//! chaos determinism tests compare).

use crate::event::Event;
use crate::json::{parse_json, JsonParseError, JsonValue};
use crate::sink::EventSink;
use crate::span::{scoped_seq, Span, SpanKind};
use coopcache_types::{CacheId, DocId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Deeper parent chains than this render as an elision marker rather
/// than recursing further (corrupt input could chain arbitrarily).
const MAX_RENDER_DEPTH: usize = 64;

/// One collected span. Identical to [`Span`] except the status is owned
/// (it may have been read back from a JSONL file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// The parent span, `None` for the trace root.
    pub parent: Option<u64>,
    /// The cache that did the work.
    pub cache: CacheId,
    /// The protocol step covered.
    pub kind: SpanKind,
    /// The document involved, when there is one.
    pub doc: Option<DocId>,
    /// The remote peer involved, for fetch attempts.
    pub peer: Option<CacheId>,
    /// Start timestamp in microseconds.
    pub start_us: u64,
    /// End timestamp in microseconds.
    pub end_us: u64,
    /// Outcome label.
    pub status: String,
}

impl From<&Span> for SpanRecord {
    fn from(span: &Span) -> Self {
        Self {
            trace_id: span.trace_id,
            span_id: span.span_id,
            parent: span.parent,
            cache: span.cache,
            kind: span.kind,
            doc: span.doc,
            peer: span.peer,
            start_us: span.start_us,
            end_us: span.end_us,
            status: span.status.to_owned(),
        }
    }
}

impl SpanRecord {
    /// Decodes one span from its JSON event form; `None` if the value
    /// is not a well-formed `"ev":"span"` object.
    #[must_use]
    pub fn from_json(value: &JsonValue) -> Option<Self> {
        if value.get("ev").and_then(JsonValue::as_str) != Some("span") {
            return None;
        }
        let opt_id = |key: &str| match value.get(key) {
            Some(JsonValue::Null) | None => Some(None),
            Some(v) => v.as_u64().map(Some),
        };
        Some(Self {
            trace_id: value.get("trace")?.as_u64()?,
            span_id: value.get("span")?.as_u64()?,
            parent: opt_id("parent")?,
            cache: cache_id(value.get("cache")?.as_u64()?)?,
            kind: SpanKind::from_name(value.get("kind")?.as_str()?)?,
            doc: opt_id("doc")?.map(DocId::new),
            peer: match opt_id("peer")? {
                Some(p) => Some(cache_id(p)?),
                None => None,
            },
            start_us: value.get("start_us")?.as_u64()?,
            end_us: value.get("end_us")?.as_u64()?,
            status: value.get("status")?.as_str()?.to_owned(),
        })
    }
}

fn cache_id(raw: u64) -> Option<CacheId> {
    u16::try_from(raw).ok().map(CacheId::new)
}

/// Folds span events into per-request trace trees.
#[derive(Debug, Default)]
pub struct TraceAssembler {
    traces: BTreeMap<u64, Vec<SpanRecord>>,
    collected: u64,
}

impl TraceAssembler {
    /// Creates an empty assembler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one event in; non-span events are ignored.
    pub fn observe(&mut self, event: &Event) {
        if let Event::Span(span) = event {
            self.push(SpanRecord::from(span));
        }
    }

    /// Adds one already-decoded span record.
    pub fn push(&mut self, record: SpanRecord) {
        self.collected += 1;
        self.traces.entry(record.trace_id).or_default().push(record);
    }

    /// Folds one JSONL event line in. Returns `true` if the line was a
    /// span event, `false` for any other well-formed event, and an
    /// error for lines that do not parse (or span lines with missing or
    /// mistyped fields).
    pub fn observe_json_line(&mut self, line: &str) -> Result<bool, JsonParseError> {
        let value = parse_json(line)?;
        if value.get("ev").and_then(JsonValue::as_str) != Some("span") {
            return Ok(false);
        }
        match SpanRecord::from_json(&value) {
            Some(record) => {
                self.push(record);
                Ok(true)
            }
            None => Err(JsonParseError {
                offset: 0,
                what: "malformed span event",
            }),
        }
    }

    /// Folds every line of a JSONL document in, skipping blank lines.
    /// Stops at the first malformed line.
    pub fn observe_jsonl(&mut self, text: &str) -> Result<(), JsonParseError> {
        for line in text.lines() {
            if !line.trim().is_empty() {
                self.observe_json_line(line)?;
            }
        }
        Ok(())
    }

    /// Number of span events folded in so far.
    #[must_use]
    pub const fn span_count(&self) -> u64 {
        self.collected
    }

    /// All trace ids seen, ascending.
    #[must_use]
    pub fn trace_ids(&self) -> Vec<u64> {
        self.traces.keys().copied().collect()
    }

    /// The spans of one trace, in arrival order.
    #[must_use]
    pub fn spans(&self, trace_id: u64) -> Option<&[SpanRecord]> {
        self.traces.get(&trace_id).map(Vec::as_slice)
    }

    /// Trace ids whose scoped sequence number (low 48 bits — the
    /// daemon's per-request counter, or the DES request index) is `seq`.
    #[must_use]
    pub fn trace_ids_for_seq(&self, seq: u64) -> Vec<u64> {
        self.traces
            .keys()
            .copied()
            .filter(|&id| scoped_seq(id) == seq)
            .collect()
    }

    /// Renders one trace as an indented tree, or `None` for an unknown
    /// trace id. With `with_times`, each line carries the span's offset
    /// from trace start and its duration; without, output is purely
    /// structural (identical across same-seed wall-clock runs).
    #[must_use]
    pub fn render(&self, trace_id: u64, with_times: bool) -> Option<String> {
        let mut out = String::new();
        if self.render_into(&mut out, trace_id, with_times) {
            Some(out)
        } else {
            None
        }
    }

    /// Renders every collected trace, ascending by trace id.
    #[must_use]
    pub fn render_all(&self, with_times: bool) -> String {
        let mut out = String::new();
        for &id in self.traces.keys() {
            self.render_into(&mut out, id, with_times);
        }
        out
    }

    fn render_into(&self, out: &mut String, trace_id: u64, with_times: bool) -> bool {
        let Some(spans) = self.traces.get(&trace_id) else {
            return false;
        };
        // Deterministic structural order: span ids embed (cache, alloc
        // counter), so sorting by id groups each daemon's spans in the
        // order it opened them regardless of event arrival order.
        let mut order: Vec<usize> = (0..spans.len()).collect();
        order.sort_by_key(|&i| (spans[i].span_id, i));
        let ids: BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
        let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut roots: Vec<usize> = Vec::new();
        for &i in &order {
            match spans[i].parent {
                // A parent that never showed up (lost line, crashed
                // daemon) leaves the child rendered as an extra root.
                Some(p) if p != spans[i].span_id && ids.contains(&p) => {
                    children.entry(p).or_default().push(i);
                }
                _ => roots.push(i),
            }
        }
        let start = spans.iter().map(|s| s.start_us).min().unwrap_or(0);
        let _ = writeln!(out, "trace {trace_id} ({} spans)", spans.len());
        let mut emitted = vec![false; spans.len()];
        let last = roots.len().saturating_sub(1);
        for (n, &root) in roots.iter().enumerate() {
            self.render_span(
                out,
                spans,
                &children,
                &mut emitted,
                root,
                "",
                n == last,
                start,
                with_times,
                0,
            );
        }
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn render_span(
        &self,
        out: &mut String,
        spans: &[SpanRecord],
        children: &BTreeMap<u64, Vec<usize>>,
        emitted: &mut [bool],
        index: usize,
        prefix: &str,
        is_last: bool,
        trace_start: u64,
        with_times: bool,
        depth: usize,
    ) {
        if emitted.get(index).copied().unwrap_or(true) {
            return;
        }
        emitted[index] = true;
        let span = &spans[index];
        let branch = if is_last { "`-" } else { "|-" };
        let _ = write!(out, "{prefix}{branch} {}", span.kind.name());
        let _ = write!(out, " cache={}", span.cache.as_u16());
        if let Some(peer) = span.peer {
            let _ = write!(out, " peer={}", peer.as_u16());
        }
        if let Some(doc) = span.doc {
            let _ = write!(out, " doc={}", doc.as_u64());
        }
        let _ = write!(out, " status={}", span.status);
        if with_times {
            let _ = write!(
                out,
                " +{}us {}us",
                span.start_us.saturating_sub(trace_start),
                span.end_us.saturating_sub(span.start_us)
            );
        }
        out.push('\n');
        if depth >= MAX_RENDER_DEPTH {
            let _ = writeln!(out, "{prefix}   ...");
            return;
        }
        let next_prefix = format!("{prefix}{}  ", if is_last { " " } else { "|" });
        if let Some(kids) = children.get(&span.span_id) {
            let last = kids.len().saturating_sub(1);
            for (n, &kid) in kids.iter().enumerate() {
                self.render_span(
                    out,
                    spans,
                    children,
                    emitted,
                    kid,
                    &next_prefix,
                    n == last,
                    trace_start,
                    with_times,
                    depth + 1,
                );
            }
        }
    }
}

impl EventSink for TraceAssembler {
    fn emit(&mut self, event: &Event) {
        self.observe(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        trace: u64,
        id: u64,
        parent: Option<u64>,
        kind: SpanKind,
        status: &'static str,
    ) -> Span {
        Span {
            trace_id: trace,
            span_id: id,
            parent,
            cache: CacheId::new(u16::try_from(id >> 48).unwrap_or(0)),
            kind,
            doc: Some(DocId::new(7)),
            peer: None,
            start_us: id & 0xFF,
            end_us: (id & 0xFF) + 10,
            status,
        }
    }

    #[test]
    fn assembles_and_renders_a_tree() {
        let mut asm = TraceAssembler::new();
        // Out-of-order arrival: children before root.
        asm.observe(&Event::Span(span(5, 2, Some(1), SpanKind::IcpRound, "hit")));
        asm.observe(&Event::Span(span(
            5,
            3,
            Some(1),
            SpanKind::PeerFetch,
            "eof",
        )));
        asm.observe(&Event::Span(span(5, 1, None, SpanKind::Request, "miss")));
        assert_eq!(asm.span_count(), 3);
        assert_eq!(asm.trace_ids(), vec![5]);
        let tree = asm.render(5, false).expect("trace exists");
        let expected = "trace 5 (3 spans)\n\
                        `- request cache=0 doc=7 status=miss\n   \
                        |- icp-round cache=0 doc=7 status=hit\n   \
                        `- peer-fetch cache=0 doc=7 status=eof\n";
        assert_eq!(tree, expected);
        assert!(asm.render(6, false).is_none());
    }

    #[test]
    fn timed_render_offsets_from_trace_start() {
        let mut asm = TraceAssembler::new();
        let mut root = span(1, 1, None, SpanKind::Request, "local-hit");
        root.start_us = 100;
        root.end_us = 160;
        asm.observe(&Event::Span(root));
        let tree = asm.render(1, true).expect("trace exists");
        assert!(tree.contains("+0us 60us"), "got: {tree}");
    }

    #[test]
    fn orphan_and_self_parent_spans_become_roots() {
        let mut asm = TraceAssembler::new();
        asm.observe(&Event::Span(span(
            9,
            4,
            Some(99),
            SpanKind::DocServe,
            "kept",
        )));
        asm.observe(&Event::Span(span(
            9,
            5,
            Some(5),
            SpanKind::IcpHandle,
            "hit",
        )));
        let tree = asm.render(9, false).expect("trace exists");
        assert!(tree.contains("|- doc-serve"));
        assert!(tree.contains("`- icp-handle"));
    }

    #[test]
    fn round_trips_through_jsonl() {
        let mut asm = TraceAssembler::new();
        let original = Event::Span(span(3, 2, Some(1), SpanKind::OriginFetch, "stored"));
        let line = original.to_json();
        assert_eq!(asm.observe_json_line(&line), Ok(true));
        assert_eq!(
            asm.observe_json_line(r#"{"ev":"request","seq":0,"cache":0,"doc":1,"class":"miss","responder":null,"stored":true,"latency_us":null}"#),
            Ok(false)
        );
        assert!(asm.observe_json_line("{not json").is_err());
        assert!(asm.observe_json_line(r#"{"ev":"span","trace":1}"#).is_err());
        let spans = asm.spans(3).expect("trace exists");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, SpanKind::OriginFetch);
        assert_eq!(spans[0].status, "stored");
        assert_eq!(spans[0].parent, Some(1));
    }

    #[test]
    fn seq_lookup_uses_scoped_ids() {
        use crate::span::scoped_id;
        let mut asm = TraceAssembler::new();
        let t0 = scoped_id(CacheId::new(0), 4);
        let t1 = scoped_id(CacheId::new(2), 4);
        asm.observe(&Event::Span(span(t0, 1, None, SpanKind::Request, "miss")));
        asm.observe(&Event::Span(span(t1, 2, None, SpanKind::Request, "miss")));
        asm.observe(&Event::Span(span(9, 3, None, SpanKind::Request, "miss")));
        assert_eq!(asm.trace_ids_for_seq(4), vec![t0, t1]);
        assert_eq!(asm.trace_ids_for_seq(9), vec![9]);
    }

    #[test]
    fn render_all_orders_by_trace_id() {
        let mut asm = TraceAssembler::new();
        asm.observe(&Event::Span(span(8, 1, None, SpanKind::Request, "miss")));
        asm.observe(&Event::Span(span(2, 1, None, SpanKind::Request, "miss")));
        let all = asm.render_all(false);
        let first = all.find("trace 2 ").expect("trace 2 rendered");
        let second = all.find("trace 8 ").expect("trace 8 rendered");
        assert!(first < second);
    }
}
