#![forbid(unsafe_code)]
//! Observability for the `coopcache` workspace.
//!
//! All three execution modes — the synchronous [`DistributedGroup`],
//! the discrete-event simulator and the socket daemon — run the same
//! placement logic; this crate gives them one shared trace language:
//!
//! * [`Event`] — the protocol-level taxonomy (request outcomes, ICP
//!   traffic, EA placement decisions with both expiration ages, evictions
//!   with document expiration ages, reporting-window rollovers);
//! * [`EventSink`] — the consumer trait, with [`NullSink`] (discard,
//!   the default — an absent sink costs one `Option` branch per event),
//!   [`RingBufferSink`] (last-n for tests), [`JsonlSink`] (deterministic
//!   JSON lines; same trace → byte-identical file) and [`HistogramSink`]
//!   (per-kind counts plus log-bucketed latency/age histograms);
//! * [`SinkHandle`] — the cloneable handle threaded through the drivers;
//! * [`Histogram`] — a log₂-bucketed histogram with p50/p90/p99
//!   [snapshots](Histogram::snapshot);
//! * [`JsonWriter`] — the hand-rolled compact JSON writer behind the
//!   JSONL stream and the bench binaries' `--json` output (the workspace
//!   builds against an offline registry; there is no serde) — and its
//!   inverse, [`parse_json`], used wherever those documents are read
//!   back;
//! * [`Span`] / [`TraceCtx`] — the causal-tracing layer: every protocol
//!   step of a request opens a span, the requester forwards its trace
//!   context on the wire, and a [`TraceAssembler`] folds the resulting
//!   [`Event::Span`] stream back into per-request trace trees;
//! * [`StatsRegistry`] — relaxed atomic counters per [`EventKind`],
//!   always on in the daemons, behind the `OP_STATS` live snapshot;
//! * [`Sampler`] — deterministic per-trace head sampling: the sampled
//!   stream is a reproducible, byte-identical subsequence of the full
//!   stream, cheap enough to leave on at daemon throughput;
//! * [`Rollup`] — cardinality-bounded online aggregation (per-node
//!   counters and hit split, per-window dedup sketch) that replaces raw
//!   JSONL for large sweeps;
//! * [`AlertEngine`] — declarative SLO rules ([`AlertRule`]) evaluated
//!   over series points, firing [`Event::Alert`] on threshold/burn-rate
//!   transitions under wall *or* virtual clocks.
//!
//! [`DistributedGroup`]: https://docs.rs/coopcache-proxy
//!
//! # Example
//!
//! ```
//! use coopcache_obs::{Event, EventSink, HistogramSink, RequestClass, SinkHandle};
//! use coopcache_types::{CacheId, DocId};
//! use std::sync::{Arc, Mutex};
//!
//! let hist = Arc::new(Mutex::new(HistogramSink::new()));
//! let sink = SinkHandle::from_arc(Arc::clone(&hist));
//! sink.emit(&Event::Request {
//!     seq: 0,
//!     cache: CacheId::new(0),
//!     doc: DocId::new(42),
//!     class: RequestClass::LocalHit,
//!     responder: None,
//!     stored: true,
//!     latency_us: Some(146_000),
//! });
//! assert_eq!(hist.lock().unwrap().request_split(), (1, 0, 0));
//! ```

mod alert;
mod assemble;
mod event;
mod histogram;
mod json;
mod rollup;
mod sample;
mod series;
mod sink;
mod span;
mod stats;

pub use alert::{AlertEngine, AlertFiring, AlertMetric, AlertOp, AlertRule, AlertState};
pub use assemble::{SpanRecord, TraceAssembler};
pub use event::{
    age_to_ms, Event, EventKind, EvictionCause, FaultOp, PlacementRole, RequestClass, ServerLoop,
    EVENT_KINDS,
};
pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use json::{escape_into, parse_json, JsonParseError, JsonValue, JsonWriter};
pub use rollup::{Rollup, RollupConfig, WindowSummary};
pub use sample::{splitmix64, Sampler, SamplerConfig};
pub use series::{
    aggregate_points, event_cache, render_top, SeriesGauges, SeriesPoint, SeriesRecorder,
    SeriesReplayer, SeriesRing, DEFAULT_SERIES_CAPACITY,
};
pub use sink::{
    mute_request_scoped, request_scoped_muted, EventSink, HistogramSink, JsonlSink, NullSink,
    RequestMuteGuard, RingBufferSink, SinkHandle,
};
pub use span::{scoped_cache, scoped_id, scoped_seq, Span, SpanKind, TraceCtx};
pub use stats::StatsRegistry;
