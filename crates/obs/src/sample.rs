//! Deterministic head sampling over the event stream.
//!
//! At daemon throughput (~1M req/s, BENCH_8) a full per-event JSONL
//! stream is unaffordable, but switching tracing off entirely blinds the
//! cluster exactly when it is under the most load. A [`Sampler`] is the
//! middle ground: a seeded, per-trace *head* decision — made once from
//! the trace id, before any span of the trace is emitted — that keeps a
//! fixed fraction of traces and drops the rest.
//!
//! # Determinism contract
//!
//! The keep decision is a pure function of `(seed, rate, trace_id)`:
//! no RNG state, no wall clock, no per-process salt. Two consequences
//! the property tests pin down:
//!
//! * **Subsequence** — the sampled stream of a run is exactly the full
//!   stream of the same run with the dropped traces' span lines deleted;
//!   every surviving line is byte-identical to its unsampled twin.
//! * **Reproducibility** — two same-seed runs sample the *same* traces,
//!   so the sampled streams are byte-identical across runs too.
//!
//! At the *sink* level only [`Event::Span`] is subject to the per-event
//! filter: spans carry a trace id of their own, every other kind does
//! not. Live daemons extend the same head decision to the rest of a
//! dropped request's telemetry with
//! [`mute_request_scoped`](crate::mute_request_scoped): request-scoped
//! kinds ([`crate::EventKind::is_request_scoped`] — request completions,
//! ICP traffic, placement decisions, connection reuse) are shed for the
//! whole serve path of a dropped trace, while health kinds (evictions,
//! faults, quarantine, admission sheds, alerts) and the `OP_STATS`
//! counters stay exact at any rate. Because the mute follows the same
//! pure head decision, the sampled stream remains a deterministic
//! subsequence of the full stream; simulator streams, which are emitted
//! without muting, keep the stronger guarantee that rollups from a
//! sampled stream agree *exactly* with rollups from the full stream on
//! all non-span counters.

use crate::event::Event;

/// SplitMix64 finalizer: a fast, high-quality 64-bit mixer. Used to turn
/// `seed ^ trace_id` into an unbiased keep decision without carrying RNG
/// state (the same mixer family the DES uses for ICP loss). Public so
/// emitters can spread synthetic trace-id bases across the 64-bit space
/// with the same mixer the sampler itself uses.
#[must_use]
pub const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Head-sampling policy: which fraction of traces to keep, under which
/// seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Seed mixed into every per-trace decision. Different seeds select
    /// different (but equally sized) trace subsets.
    pub seed: u64,
    /// Keep rate in permille: `0` drops every span, `1000` keeps all.
    /// Values above 1000 are treated as 1000.
    pub rate: u32,
}

impl SamplerConfig {
    /// A sampler keeping roughly `rate`/1000 of all traces.
    #[must_use]
    pub const fn new(seed: u64, rate: u32) -> Self {
        Self { seed, rate }
    }

    /// The identity sampler: every span kept.
    #[must_use]
    pub const fn keep_all() -> Self {
        Self {
            seed: 0,
            rate: 1_000,
        }
    }
}

/// The per-event filter compiled from a [`SamplerConfig`].
///
/// Stateless and `Copy`: the decision for a trace never changes, so the
/// sampler can sit in front of the sink lock and drop spans without
/// contending (the whole point of sampling at emission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampler {
    config: SamplerConfig,
}

impl Sampler {
    /// Compiles a config into a filter.
    #[must_use]
    pub const fn new(config: SamplerConfig) -> Self {
        Self { config }
    }

    /// The config this sampler was built from.
    #[must_use]
    pub const fn config(&self) -> SamplerConfig {
        self.config
    }

    /// The head decision for one trace: `true` keeps every span of the
    /// trace, `false` drops them all. Pure in `(seed, rate, trace_id)`.
    #[must_use]
    pub const fn keeps_trace(&self, trace_id: u64) -> bool {
        // A rate of 1000 must keep even traces whose hash lands on 999,
        // and 0 must drop everything — both fall out of the comparison.
        splitmix64(self.config.seed ^ trace_id) % 1_000 < self.config.rate as u64
    }

    /// The per-event decision: spans follow their trace's head decision,
    /// everything else is always kept (counter carriers stay exact).
    #[must_use]
    pub fn keep(&self, event: &Event) -> bool {
        match event {
            Event::Span(span) => self.keeps_trace(span.trace_id),
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Span, SpanKind};
    use coopcache_types::{CacheId, DocId};

    fn span_event(trace_id: u64) -> Event {
        Event::Span(Span {
            trace_id,
            span_id: 1,
            parent: None,
            cache: CacheId::new(0),
            kind: SpanKind::Request,
            doc: None,
            peer: None,
            start_us: 0,
            end_us: 10,
            status: "miss",
        })
    }

    #[test]
    fn extreme_rates_keep_all_or_none() {
        let all = Sampler::new(SamplerConfig::keep_all());
        let none = Sampler::new(SamplerConfig::new(7, 0));
        for trace in 0..1_000u64 {
            assert!(all.keeps_trace(trace));
            assert!(!none.keeps_trace(trace));
        }
        // Rates above 1000 clamp to keep-all behaviour.
        let over = Sampler::new(SamplerConfig::new(7, 5_000));
        assert!((0..1_000u64).all(|t| over.keeps_trace(t)));
    }

    #[test]
    fn keep_fraction_tracks_the_rate() {
        let sampler = Sampler::new(SamplerConfig::new(0xDEAD_BEEF, 100));
        let kept = (0..100_000u64).filter(|t| sampler.keeps_trace(*t)).count();
        // 10% ± 1pp over 100k traces.
        assert!((9_000..=11_000).contains(&kept), "kept {kept}");
    }

    #[test]
    fn decisions_are_stable_and_seed_dependent() {
        let a = Sampler::new(SamplerConfig::new(1, 500));
        let b = Sampler::new(SamplerConfig::new(2, 500));
        let decisions = |s: &Sampler| (0..256u64).map(|t| s.keeps_trace(t)).collect::<Vec<_>>();
        assert_eq!(decisions(&a), decisions(&a), "same seed, same subset");
        assert_ne!(decisions(&a), decisions(&b), "seeds select subsets");
    }

    #[test]
    fn only_spans_are_sampled() {
        // A rate-0 sampler still keeps every non-span event.
        let sampler = Sampler::new(SamplerConfig::new(3, 0));
        let request = Event::Request {
            seq: 0,
            cache: CacheId::new(0),
            doc: DocId::new(1),
            class: crate::event::RequestClass::Miss,
            responder: None,
            stored: false,
            latency_us: None,
        };
        assert!(sampler.keep(&request));
        assert!(!sampler.keep(&span_event(42)));
    }

    #[test]
    fn span_decision_follows_trace_head() {
        let sampler = Sampler::new(SamplerConfig::new(9, 500));
        for trace in 0..64u64 {
            assert_eq!(sampler.keep(&span_event(trace)), sampler.keeps_trace(trace));
        }
    }
}
