//! Cardinality-bounded online rollups — the always-on aggregate for
//! sweeps too large to trace.
//!
//! A 256-node × 10M-request DES sweep emits tens of millions of events;
//! a per-event JSONL file is gigabytes, but the questions such a sweep
//! answers are aggregate ones: per-node hit rates and latency digests,
//! per-window request/store volume, and how duplicated the group's
//! contents are. A [`Rollup`] folds the event stream into exactly those
//! aggregates in **bounded memory**, whatever the run length:
//!
//! * a per-node table capped at [`RollupConfig::max_nodes`] entries
//!   (counters, hit split, log-bucketed latency digest); events for
//!   nodes beyond the cap are tallied in one overflow counter instead of
//!   growing the table;
//! * a ring of the last [`RollupConfig::max_windows`] non-empty window
//!   summaries (requests, hits, stores, distinct-document estimate and
//!   the derived duplication ratio); older summaries are dropped and
//!   counted, never accumulated;
//! * per window, distinct stored documents are estimated with a fixed
//!   1024-bit linear-counting sketch — constant space, deterministic,
//!   and accurate to a few percent at window cardinalities up to ~1000.
//!
//! Everything is integer or fixed-bucket state driven only by the
//! observed events and the advancing clock, so same-seed runs produce
//! byte-identical [`Rollup::to_json`] documents.

use crate::event::{Event, EventKind, RequestClass, EVENT_KINDS};
use crate::histogram::Histogram;
use crate::json::{parse_json, JsonParseError, JsonValue, JsonWriter};
use crate::sample::splitmix64;
use crate::sink::EventSink;
use coopcache_types::CacheId;
use std::collections::BTreeMap;

/// Bits in the per-window distinct-document sketch.
const SKETCH_BITS: u64 = 1_024;

/// Bounds and cadence of a [`Rollup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollupConfig {
    /// Width of one rollup window in milliseconds (virtual time under
    /// the DES, span time in offline replay). Clamped to ≥ 1.
    pub window_ms: u64,
    /// Cardinality bound on the per-node table.
    pub max_nodes: usize,
    /// Number of completed window summaries retained.
    pub max_windows: usize,
}

impl Default for RollupConfig {
    fn default() -> Self {
        Self {
            window_ms: 1_000,
            max_nodes: 256,
            max_windows: 64,
        }
    }
}

/// Per-node aggregate state.
#[derive(Debug, Clone)]
struct NodeAgg {
    counters: [u64; EVENT_KINDS.len()],
    local_hits: u64,
    remote_hits: u64,
    latency_us: Histogram,
}

impl NodeAgg {
    fn new() -> Self {
        Self {
            counters: [0; EVENT_KINDS.len()],
            local_hits: 0,
            remote_hits: 0,
            latency_us: Histogram::new(),
        }
    }
}

/// One completed (non-empty) window's group-level summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSummary {
    /// Window index: the window covers `[index·w, (index+1)·w)` ms.
    pub index: u64,
    /// Requests completed inside the window (whole group).
    pub requests: u64,
    /// Local + remote hits inside the window.
    pub hits: u64,
    /// Requests that stored a local copy inside the window.
    pub stores: u64,
    /// Linear-counting estimate of distinct documents stored.
    pub distinct_docs: u64,
    /// `stores·1000 / distinct_docs` — the group duplication estimate
    /// (1000 = every stored document unique; higher = more duplicated).
    pub duplication_permille: u64,
}

/// The window currently being accumulated.
#[derive(Debug, Clone)]
struct OpenWindow {
    index: u64,
    requests: u64,
    hits: u64,
    stores: u64,
    sketch: [u64; (SKETCH_BITS / 64) as usize],
}

impl OpenWindow {
    fn new(index: u64) -> Self {
        Self {
            index,
            requests: 0,
            hits: 0,
            stores: 0,
            sketch: [0; (SKETCH_BITS / 64) as usize],
        }
    }

    fn is_empty(&self) -> bool {
        self.requests == 0 && self.stores == 0
    }

    fn observe_store(&mut self, doc: u64) {
        self.stores += 1;
        let bit = splitmix64(doc) % SKETCH_BITS;
        self.sketch[(bit / 64) as usize] |= 1 << (bit % 64);
    }

    /// Linear counting: with `z` of `m` bits still zero, the distinct
    /// count estimate is `m·ln(m/z)`. A saturated sketch (z = 0) clamps
    /// to the observed store count — the estimate is a lower bound then.
    fn distinct_estimate(&self) -> u64 {
        let zeros: u64 = self.sketch.iter().map(|w| u64::from(w.count_zeros())).sum();
        if zeros == 0 {
            return self.stores;
        }
        if zeros == SKETCH_BITS {
            return 0;
        }
        let m = SKETCH_BITS as f64;
        let est = (m * (m / zeros as f64).ln()).round();
        // Clamp into [1, stores]: at least one distinct doc once any
        // store happened, never more distinct docs than stores.
        (est as u64).clamp(u64::from(self.stores > 0), self.stores.max(1))
    }

    fn close(&self) -> WindowSummary {
        let distinct = self.distinct_estimate();
        let duplication_permille = self
            .stores
            .saturating_mul(1_000)
            .checked_div(distinct)
            .unwrap_or(0);
        WindowSummary {
            index: self.index,
            requests: self.requests,
            hits: self.hits,
            stores: self.stores,
            distinct_docs: distinct,
            duplication_permille,
        }
    }
}

/// The bounded-memory aggregator itself.
///
/// Drive it either explicitly — [`Rollup::observe`] per event plus
/// [`Rollup::advance`] as the clock moves — or as an [`EventSink`],
/// where spans self-clock the windows from their `end_us`, or from a
/// JSONL file via [`Rollup::observe_jsonl`].
#[derive(Debug, Clone)]
pub struct Rollup {
    config: RollupConfig,
    nodes: BTreeMap<u16, NodeAgg>,
    /// Events billed to nodes beyond the `max_nodes` cap.
    overflow_events: u64,
    current: OpenWindow,
    windows: Vec<WindowSummary>,
    windows_dropped: u64,
    now_ms: u64,
}

impl Rollup {
    /// Creates an empty rollup.
    #[must_use]
    pub fn new(config: RollupConfig) -> Self {
        let config = RollupConfig {
            window_ms: config.window_ms.max(1),
            max_nodes: config.max_nodes.max(1),
            max_windows: config.max_windows.max(1),
        };
        Self {
            config,
            nodes: BTreeMap::new(),
            overflow_events: 0,
            current: OpenWindow::new(0),
            windows: Vec::new(),
            windows_dropped: 0,
            now_ms: 0,
        }
    }

    /// The bounds this rollup was created with.
    #[must_use]
    pub const fn config(&self) -> RollupConfig {
        self.config
    }

    /// Nodes currently tracked (≤ `max_nodes`).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Events billed to nodes beyond the cardinality cap.
    #[must_use]
    pub const fn overflow_events(&self) -> u64 {
        self.overflow_events
    }

    /// Completed non-empty window summaries, oldest first.
    #[must_use]
    pub fn windows(&self) -> &[WindowSummary] {
        &self.windows
    }

    /// Window summaries dropped after the ring filled.
    #[must_use]
    pub const fn windows_dropped(&self) -> u64 {
        self.windows_dropped
    }

    /// Cumulative `(requests, local_hits, remote_hits)` for one node,
    /// all zero for untracked nodes.
    #[must_use]
    pub fn node_split(&self, cache: CacheId) -> (u64, u64, u64) {
        self.nodes.get(&cache.as_u16()).map_or((0, 0, 0), |n| {
            (
                n.counters[EventKind::Request.index()],
                n.local_hits,
                n.remote_hits,
            )
        })
    }

    /// Group totals `(requests, hits, stores)` across all closed and
    /// open windows.
    #[must_use]
    pub fn totals(&self) -> (u64, u64, u64) {
        let mut requests = self.current.requests;
        let mut hits = self.current.hits;
        let mut stores = self.current.stores;
        for w in &self.windows {
            requests += w.requests;
            hits += w.hits;
            stores += w.stores;
        }
        (requests, hits, stores)
    }

    /// Advances the window clock to `now_ms`, closing the open window
    /// when a boundary was crossed. Non-empty windows are summarised
    /// into the bounded ring; runs of empty windows are skipped in O(1).
    pub fn advance(&mut self, now_ms: u64) {
        if now_ms <= self.now_ms {
            return;
        }
        self.now_ms = now_ms;
        let target = now_ms / self.config.window_ms;
        if target > self.current.index {
            if !self.current.is_empty() {
                if self.windows.len() >= self.config.max_windows {
                    self.windows.remove(0);
                    self.windows_dropped += 1;
                }
                self.windows.push(self.current.close());
            }
            self.current = OpenWindow::new(target);
        }
    }

    /// Folds one event in (at the current window clock).
    pub fn observe(&mut self, event: &Event) {
        let Some(cache) = crate::series::event_cache(event) else {
            return; // group-wide events carry no node to bill
        };
        let key = cache.as_u16();
        let node = if self.nodes.contains_key(&key) || self.nodes.len() < self.config.max_nodes {
            Some(self.nodes.entry(key).or_insert_with(NodeAgg::new))
        } else {
            self.overflow_events += 1;
            None
        };
        if let Some(node) = node {
            node.counters[event.kind().index()] += 1;
            if let Event::Request {
                class, latency_us, ..
            } = event
            {
                match class {
                    RequestClass::LocalHit => node.local_hits += 1,
                    RequestClass::RemoteHit => node.remote_hits += 1,
                    RequestClass::Miss => {}
                }
                if let Some(us) = latency_us {
                    node.latency_us.record(*us);
                }
            }
        }
        // Window accounting is group-level and unaffected by the node
        // cap — a capped table must not bias the duplication estimate.
        if let Event::Request {
            doc, class, stored, ..
        } = event
        {
            self.current.requests += 1;
            if matches!(class, RequestClass::LocalHit | RequestClass::RemoteHit) {
                self.current.hits += 1;
            }
            if *stored {
                self.current.observe_store(doc.as_u64());
            }
        }
    }

    /// Folds one JSONL event line in, self-clocking from span `end_us`
    /// (the same convention as [`SeriesReplayer`](crate::SeriesReplayer)).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] for lines that do not parse or are
    /// not tagged with a known `"ev"` kind.
    pub fn observe_json_line(&mut self, line: &str) -> Result<(), JsonParseError> {
        let value = parse_json(line)?;
        let kind = value
            .get("ev")
            .and_then(JsonValue::as_str)
            .and_then(EventKind::from_name)
            .ok_or(JsonParseError {
                offset: 0,
                what: "not a coopcache event line",
            })?;
        if kind == EventKind::Span {
            if let Some(end_us) = value.get("end_us").and_then(JsonValue::as_u64) {
                self.advance(end_us / 1_000);
            }
        }
        let cache = ["cache", "from"]
            .iter()
            .find_map(|k| value.get(k).and_then(JsonValue::as_u64))
            .and_then(|c| u16::try_from(c).ok());
        let Some(cache) = cache else {
            return Ok(());
        };
        let key = cache;
        let node = if self.nodes.contains_key(&key) || self.nodes.len() < self.config.max_nodes {
            Some(self.nodes.entry(key).or_insert_with(NodeAgg::new))
        } else {
            self.overflow_events += 1;
            None
        };
        let class = value.get("class").and_then(JsonValue::as_str);
        if let Some(node) = node {
            node.counters[kind.index()] += 1;
            if kind == EventKind::Request {
                match class {
                    Some("local-hit") => node.local_hits += 1,
                    Some("remote-hit") => node.remote_hits += 1,
                    _ => {}
                }
                if let Some(us) = value.get("latency_us").and_then(JsonValue::as_u64) {
                    node.latency_us.record(us);
                }
            }
        }
        if kind == EventKind::Request {
            self.current.requests += 1;
            if matches!(class, Some("local-hit" | "remote-hit")) {
                self.current.hits += 1;
            }
            let stored = value.get("stored").and_then(JsonValue::as_bool);
            if stored == Some(true) {
                if let Some(doc) = value.get("doc").and_then(JsonValue::as_u64) {
                    self.current.observe_store(doc);
                }
            }
        }
        Ok(())
    }

    /// Folds every line of a JSONL document in, skipping blanks.
    ///
    /// # Errors
    ///
    /// Propagates the first [`JsonParseError`].
    pub fn observe_jsonl(&mut self, text: &str) -> Result<(), JsonParseError> {
        for line in text.lines() {
            if !line.trim().is_empty() {
                self.observe_json_line(line)?;
            }
        }
        Ok(())
    }

    /// Closes the open window (if non-empty) and encodes the rollup as
    /// one deterministic JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut snapshot = self.clone();
        // Force the open window closed so the document is complete.
        snapshot.advance((snapshot.current.index + 1).saturating_mul(snapshot.config.window_ms));
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("window_ms");
        w.u64(snapshot.config.window_ms);
        w.key("max_nodes");
        w.u64(snapshot.config.max_nodes as u64);
        w.key("max_windows");
        w.u64(snapshot.config.max_windows as u64);
        w.key("nodes");
        w.begin_array();
        for (cache, node) in &snapshot.nodes {
            w.begin_object();
            w.key("cache");
            w.u64(u64::from(*cache));
            w.key("counters");
            w.begin_object();
            for kind in EVENT_KINDS {
                w.key(kind.name());
                w.u64(node.counters[kind.index()]);
            }
            w.end_object();
            w.key("local_hits");
            w.u64(node.local_hits);
            w.key("remote_hits");
            w.u64(node.remote_hits);
            let requests = node.counters[EventKind::Request.index()];
            w.key("hit_permille");
            match (node.local_hits + node.remote_hits)
                .saturating_mul(1_000)
                .checked_div(requests)
            {
                Some(permille) => w.u64(permille),
                None => w.null(),
            }
            w.key("latency");
            if node.latency_us.is_empty() {
                w.null();
            } else {
                node.latency_us.snapshot().write_json_us(&mut w);
            }
            w.end_object();
        }
        w.end_array();
        w.key("overflow_events");
        w.u64(snapshot.overflow_events);
        w.key("windows");
        w.begin_array();
        for win in &snapshot.windows {
            w.begin_object();
            w.key("index");
            w.u64(win.index);
            w.key("requests");
            w.u64(win.requests);
            w.key("hits");
            w.u64(win.hits);
            w.key("stores");
            w.u64(win.stores);
            w.key("distinct_docs");
            w.u64(win.distinct_docs);
            w.key("duplication_permille");
            w.u64(win.duplication_permille);
            w.end_object();
        }
        w.end_array();
        w.key("windows_dropped");
        w.u64(snapshot.windows_dropped);
        w.end_object();
        w.finish()
    }
}

impl EventSink for Rollup {
    fn emit(&mut self, event: &Event) {
        if let Event::Span(span) = event {
            self.advance(span.end_us / 1_000);
        }
        self.observe(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coopcache_types::DocId;

    fn request(cache: u16, doc: u64, class: RequestClass, stored: bool) -> Event {
        Event::Request {
            seq: 0,
            cache: CacheId::new(cache),
            doc: DocId::new(doc),
            class,
            responder: None,
            stored,
            latency_us: Some(1_000),
        }
    }

    #[test]
    fn node_table_is_cardinality_bounded() {
        let mut rollup = Rollup::new(RollupConfig {
            window_ms: 1_000,
            max_nodes: 4,
            max_windows: 8,
        });
        for cache in 0..10u16 {
            rollup.observe(&request(cache, 1, RequestClass::Miss, true));
        }
        assert_eq!(rollup.node_count(), 4);
        assert_eq!(rollup.overflow_events(), 6);
        // Overflowed nodes still count into the group window.
        assert_eq!(rollup.totals().0, 10);
    }

    #[test]
    fn window_ring_is_bounded_and_skips_empty_windows() {
        let mut rollup = Rollup::new(RollupConfig {
            window_ms: 100,
            max_nodes: 8,
            max_windows: 2,
        });
        for i in 0..5u64 {
            rollup.observe(&request(0, i, RequestClass::Miss, true));
            // A long idle gap: empty windows must not emit summaries.
            rollup.advance((i + 1) * 10_000);
        }
        assert_eq!(rollup.windows().len(), 2);
        assert_eq!(rollup.windows_dropped(), 3);
        // Each retained summary covers exactly one store.
        for w in rollup.windows() {
            assert_eq!(w.stores, 1);
            assert_eq!(w.distinct_docs, 1);
            assert_eq!(w.duplication_permille, 1_000);
        }
    }

    #[test]
    fn duplication_estimate_tracks_repeated_stores() {
        let mut rollup = Rollup::new(RollupConfig::default());
        // 100 stores of only 10 distinct documents → ~10x duplication.
        for i in 0..100u64 {
            rollup.observe(&request(0, i % 10, RequestClass::Miss, true));
        }
        rollup.advance(1_000);
        let w = rollup.windows()[0];
        assert_eq!(w.stores, 100);
        assert!(
            (9..=11).contains(&w.distinct_docs),
            "estimate {} off",
            w.distinct_docs
        );
        assert!(
            w.duplication_permille >= 9_000,
            "{}",
            w.duplication_permille
        );
    }

    #[test]
    fn hit_split_and_totals() {
        let mut rollup = Rollup::new(RollupConfig::default());
        rollup.observe(&request(1, 1, RequestClass::LocalHit, false));
        rollup.observe(&request(1, 2, RequestClass::RemoteHit, true));
        rollup.observe(&request(1, 3, RequestClass::Miss, true));
        assert_eq!(rollup.node_split(CacheId::new(1)), (3, 1, 1));
        assert_eq!(rollup.node_split(CacheId::new(9)), (0, 0, 0));
        assert_eq!(rollup.totals(), (3, 2, 2));
    }

    #[test]
    fn json_is_deterministic_and_closes_the_open_window() {
        let mut rollup = Rollup::new(RollupConfig {
            window_ms: 100,
            max_nodes: 8,
            max_windows: 8,
        });
        rollup.observe(&request(0, 7, RequestClass::Miss, true));
        let a = rollup.to_json();
        let b = rollup.to_json();
        assert_eq!(a, b);
        assert!(a.starts_with(r#"{"window_ms":100,"max_nodes":8,"#), "{a}");
        assert!(a.contains(r#""stores":1"#), "{a}");
        // to_json must not mutate the rollup itself.
        assert!(rollup.windows().is_empty());
    }

    #[test]
    fn jsonl_replay_matches_direct_observation() {
        let events = [
            request(0, 1, RequestClass::Miss, true),
            request(1, 1, RequestClass::RemoteHit, false),
            request(0, 2, RequestClass::LocalHit, false),
        ];
        let mut direct = Rollup::new(RollupConfig::default());
        let mut replayed = Rollup::new(RollupConfig::default());
        let mut text = String::new();
        for ev in &events {
            direct.observe(ev);
            text.push_str(&ev.to_json());
            text.push('\n');
        }
        replayed.observe_jsonl(&text).expect("well-formed");
        assert_eq!(direct.to_json(), replayed.to_json());
        // Malformed input is a typed error.
        let mut bad = Rollup::new(RollupConfig::default());
        assert!(bad.observe_json_line("{nope").is_err());
        assert!(bad.observe_json_line(r#"{"ev":"martian"}"#).is_err());
    }
}
