//! Declarative SLO rules over the sampled series — the alert plane.
//!
//! An [`AlertRule`] names a metric derived from [`SeriesPoint`]s, a
//! threshold, and a burn count: the rule fires only after the threshold
//! has been violated for `for_windows` *consecutive* sampling windows,
//! so one noisy window never pages. An [`AlertEngine`] holds the rules
//! for one node and is fed every new series point; it returns
//! [`AlertFiring`] transitions (firing ↔ resolved), which the drivers
//! turn into [`Event::Alert`](crate::Event) emissions.
//!
//! # Virtual vs wall clock
//!
//! The engine itself never reads a clock — it sees only the points it
//! is given, in order. Under the DES the points carry virtual time and
//! the firings are byte-reproducible across same-seed runs; under a
//! live daemon the points carry wall-clock time but the emitted
//! `Event::Alert` carries *no* timestamp of its own, so the alert
//! *stream* of a deterministic workload is still comparable line by
//! line. All metric values are integers (permille for rates,
//! microseconds for latency, a count for quarantine) for the same
//! reason: no float formatting in the stream.
//!
//! # Metric semantics
//!
//! Rates are **per-window deltas** of the cumulative counters (hit rate
//! = hits delta / requests delta); a window that served zero requests is
//! *not evaluated* for rate rules — the burn streak holds rather than
//! resetting, so an idle node neither fires nor spuriously resolves.
//! The p99 ceiling reads the point's cumulative latency snapshot (the
//! only latency the series carries); quarantine reads the instantaneous
//! gauge.

use crate::event::EventKind;
use crate::series::{SeriesPoint, SeriesRing};
use coopcache_types::CacheId;

/// Which series-derived quantity a rule watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertMetric {
    /// Group-visible hit rate (local + remote) per window, in permille.
    HitRate,
    /// p99 request latency from the cumulative snapshot, in µs.
    P99Latency,
    /// Quarantined peer count (instantaneous gauge).
    Quarantined,
    /// Admission-shed rate per window, in permille of requests.
    ShedRate,
}

impl AlertMetric {
    /// Stable lowercase name used in the JSON encoding.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::HitRate => "hit-rate",
            Self::P99Latency => "p99-latency",
            Self::Quarantined => "quarantined",
            Self::ShedRate => "shed-rate",
        }
    }

    /// The inverse of [`Self::name`], for rule parsing in the CLI.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        [
            Self::HitRate,
            Self::P99Latency,
            Self::Quarantined,
            Self::ShedRate,
        ]
        .into_iter()
        .find(|m| m.name() == name)
    }
}

/// Which side of the threshold violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertOp {
    /// Violation when the value drops below the threshold (floors).
    Below,
    /// Violation when the value rises above the threshold (ceilings).
    Above,
}

impl AlertOp {
    /// Stable lowercase name used in the JSON encoding.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Below => "below",
            Self::Above => "above",
        }
    }
}

/// Whether a transition enters or leaves the alerting state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertState {
    /// The rule just crossed its burn count and is now firing.
    Firing,
    /// A previously firing rule just saw a healthy window.
    Resolved,
}

impl AlertState {
    /// Stable lowercase name used in the JSON encoding.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Firing => "firing",
            Self::Resolved => "resolved",
        }
    }
}

/// One declarative SLO rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlertRule {
    /// The watched metric.
    pub metric: AlertMetric,
    /// Which side of the threshold violates.
    pub op: AlertOp,
    /// Threshold in the metric's unit (permille, µs, or count).
    pub threshold: u64,
    /// Consecutive violating windows required before firing (burn
    /// count; clamped to at least 1).
    pub for_windows: u32,
}

impl AlertRule {
    /// Fires when the per-window hit rate stays below `permille`.
    #[must_use]
    pub const fn hit_rate_floor(permille: u64, for_windows: u32) -> Self {
        Self {
            metric: AlertMetric::HitRate,
            op: AlertOp::Below,
            threshold: permille,
            for_windows,
        }
    }

    /// Fires when cumulative p99 latency stays above `us` microseconds.
    #[must_use]
    pub const fn p99_ceiling(us: u64, for_windows: u32) -> Self {
        Self {
            metric: AlertMetric::P99Latency,
            op: AlertOp::Above,
            threshold: us,
            for_windows,
        }
    }

    /// Fires when more than `count` peers stay quarantined.
    #[must_use]
    pub const fn quarantine_ceiling(count: u64, for_windows: u32) -> Self {
        Self {
            metric: AlertMetric::Quarantined,
            op: AlertOp::Above,
            threshold: count,
            for_windows,
        }
    }

    /// Fires when the admission-shed rate stays above `permille` of
    /// requests.
    #[must_use]
    pub const fn shed_rate_ceiling(permille: u64, for_windows: u32) -> Self {
        Self {
            metric: AlertMetric::ShedRate,
            op: AlertOp::Above,
            threshold: permille,
            for_windows,
        }
    }

    const fn violates(&self, value: u64) -> bool {
        match self.op {
            AlertOp::Below => value < self.threshold,
            AlertOp::Above => value > self.threshold,
        }
    }
}

/// One state transition of one rule on one node — everything a driver
/// needs to construct an [`Event::Alert`](crate::Event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlertFiring {
    /// The node the rule evaluated on.
    pub cache: CacheId,
    /// The watched metric.
    pub metric: AlertMetric,
    /// Which side of the threshold violates.
    pub op: AlertOp,
    /// The rule's threshold.
    pub threshold: u64,
    /// The metric value that caused the transition.
    pub value: u64,
    /// Consecutive windows in the transition's condition: the burn count
    /// for `Firing`, `1` for `Resolved` (resolution is immediate).
    pub windows: u64,
    /// Entering or leaving the alerting state.
    pub state: AlertState,
}

/// Per-rule burn bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
struct RuleState {
    /// Violating windows seen since the last healthy one.
    streak: u32,
    /// Whether the rule is currently firing.
    firing: bool,
}

/// The cumulative-counter context a rate metric needs from the previous
/// point.
#[derive(Debug, Clone, Copy, Default)]
struct PrevCounters {
    requests: u64,
    hits: u64,
    shed: u64,
}

impl PrevCounters {
    fn of(point: &SeriesPoint) -> Self {
        Self {
            requests: point.counters[EventKind::Request.index()],
            hits: point.local_hits.saturating_add(point.remote_hits),
            shed: point.counters[EventKind::AdmissionShed.index()],
        }
    }
}

/// Evaluates a rule set against one node's series, point by point.
///
/// Pure in its inputs: the same rules fed the same point sequence emit
/// the same transitions — the determinism handle check.sh pins for both
/// the DES (virtual time) and same-seed daemon workloads.
#[derive(Debug, Clone)]
pub struct AlertEngine {
    cache: CacheId,
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
    prev: Option<PrevCounters>,
}

impl AlertEngine {
    /// Creates an engine for one node.
    #[must_use]
    pub fn new(cache: CacheId, rules: Vec<AlertRule>) -> Self {
        let states = vec![RuleState::default(); rules.len()];
        Self {
            cache,
            rules,
            states,
            prev: None,
        }
    }

    /// The rules under evaluation.
    #[must_use]
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Rules currently in the firing state.
    #[must_use]
    pub fn firing(&self) -> Vec<AlertRule> {
        self.rules
            .iter()
            .zip(&self.states)
            .filter(|(_, s)| s.firing)
            .map(|(r, _)| *r)
            .collect()
    }

    /// Feeds one new series point; returns the transitions it caused,
    /// in rule order. The first point's deltas are its absolute
    /// counters, which is the right reading for a fresh series.
    pub fn observe(&mut self, point: &SeriesPoint) -> Vec<AlertFiring> {
        let mut out = Vec::new();
        for (rule, state) in self.rules.iter().zip(self.states.iter_mut()) {
            let Some(value) = Self::metric_value(self.prev, rule, point) else {
                continue; // window not evaluable: hold the streak
            };
            if rule.violates(value) {
                state.streak = state.streak.saturating_add(1);
                if !state.firing && state.streak >= rule.for_windows.max(1) {
                    state.firing = true;
                    out.push(AlertFiring {
                        cache: self.cache,
                        metric: rule.metric,
                        op: rule.op,
                        threshold: rule.threshold,
                        value,
                        windows: u64::from(state.streak),
                        state: AlertState::Firing,
                    });
                }
            } else {
                state.streak = 0;
                if state.firing {
                    state.firing = false;
                    out.push(AlertFiring {
                        cache: self.cache,
                        metric: rule.metric,
                        op: rule.op,
                        threshold: rule.threshold,
                        value,
                        windows: 1,
                        state: AlertState::Resolved,
                    });
                }
            }
        }
        self.prev = Some(PrevCounters::of(point));
        out
    }

    /// The metric value a rule sees at `point`, or `None` when the
    /// window is not evaluable (no requests for a rate, no latency yet).
    fn metric_value(
        prev: Option<PrevCounters>,
        rule: &AlertRule,
        point: &SeriesPoint,
    ) -> Option<u64> {
        let prev = prev.unwrap_or_default();
        match rule.metric {
            AlertMetric::HitRate => {
                let requests =
                    point.counters[EventKind::Request.index()].saturating_sub(prev.requests);
                let hits = point
                    .local_hits
                    .saturating_add(point.remote_hits)
                    .saturating_sub(prev.hits);
                (requests > 0).then(|| hits.saturating_mul(1_000) / requests)
            }
            AlertMetric::P99Latency => point.latency.map(|l| l.p99),
            AlertMetric::Quarantined => Some(point.quarantined),
            AlertMetric::ShedRate => {
                let requests =
                    point.counters[EventKind::Request.index()].saturating_sub(prev.requests);
                let shed =
                    point.counters[EventKind::AdmissionShed.index()].saturating_sub(prev.shed);
                (requests > 0).then(|| shed.saturating_mul(1_000) / requests)
            }
        }
    }

    /// Replays a whole scraped ring through a fresh engine — how the
    /// `coopcache health` view evaluates rules client-side.
    #[must_use]
    pub fn replay(ring: &SeriesRing, rules: Vec<AlertRule>) -> Vec<AlertFiring> {
        let mut engine = Self::new(ring.cache(), rules);
        let mut out = Vec::new();
        for point in ring.points() {
            out.extend(engine.observe(point));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EVENT_KINDS;
    use crate::histogram::HistogramSnapshot;

    /// A point with `requests` cumulative requests, `hits` of them
    /// local, and the given quarantine gauge.
    fn point(t_ms: u64, requests: u64, hits: u64, quarantined: u64) -> SeriesPoint {
        let mut counters = [0u64; EVENT_KINDS.len()];
        counters[EventKind::Request.index()] = requests;
        SeriesPoint {
            t_ms,
            counters,
            latency: None,
            local_hits: hits,
            remote_hits: 0,
            docs: 0,
            used_bytes: 0,
            capacity_bytes: 0,
            expiration_age_ms: None,
            quarantined,
        }
    }

    #[test]
    fn hit_rate_floor_fires_after_burn_count() {
        let rule = AlertRule::hit_rate_floor(500, 2);
        let mut engine = AlertEngine::new(CacheId::new(3), vec![rule]);
        // Window 1: 10 req, 2 hits (200‰ < 500‰) — violating, streak 1.
        assert!(engine.observe(&point(100, 10, 2, 0)).is_empty());
        // Window 2: 10 more req, 2 more hits — streak 2 → fires.
        let fired = engine.observe(&point(200, 20, 4, 0));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].state, AlertState::Firing);
        assert_eq!(fired[0].metric, AlertMetric::HitRate);
        assert_eq!(fired[0].value, 200);
        assert_eq!(fired[0].windows, 2);
        assert_eq!(engine.firing(), vec![rule]);
        // Still violating: no duplicate emission.
        assert!(engine.observe(&point(300, 30, 6, 0)).is_empty());
        // Healthy window (10 req, 8 hits = 800‰) resolves immediately.
        let resolved = engine.observe(&point(400, 40, 14, 0));
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].state, AlertState::Resolved);
        assert_eq!(resolved[0].value, 800);
        assert!(engine.firing().is_empty());
    }

    #[test]
    fn idle_windows_hold_the_burn_streak() {
        let mut engine = AlertEngine::new(CacheId::new(0), vec![AlertRule::hit_rate_floor(500, 2)]);
        assert!(engine.observe(&point(100, 10, 0, 0)).is_empty()); // streak 1
                                                                   // Zero new requests: not evaluable, streak must hold (not reset).
        assert!(engine.observe(&point(200, 10, 0, 0)).is_empty());
        // Next violating window completes the burn.
        let fired = engine.observe(&point(300, 20, 0, 0));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].state, AlertState::Firing);
    }

    #[test]
    fn quarantine_gauge_and_shed_rate_rules() {
        let rules = vec![
            AlertRule::quarantine_ceiling(0, 1),
            AlertRule::shed_rate_ceiling(100, 1),
        ];
        let mut engine = AlertEngine::new(CacheId::new(1), rules);
        let mut p = point(100, 10, 10, 2);
        p.counters[EventKind::AdmissionShed.index()] = 5; // 500‰ shed
        let fired = engine.observe(&p);
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].metric, AlertMetric::Quarantined);
        assert_eq!(fired[0].value, 2);
        assert_eq!(fired[1].metric, AlertMetric::ShedRate);
        assert_eq!(fired[1].value, 500);
    }

    #[test]
    fn p99_rule_reads_the_latency_snapshot() {
        let mut engine = AlertEngine::new(CacheId::new(0), vec![AlertRule::p99_ceiling(1_000, 1)]);
        // No latency yet: not evaluable.
        assert!(engine.observe(&point(100, 1, 1, 0)).is_empty());
        let mut p = point(200, 2, 2, 0);
        p.latency = Some(HistogramSnapshot {
            count: 2,
            mean: 900.0,
            min: 800,
            p50: 900,
            p90: 1_500,
            p99: 2_000,
            max: 2_000,
        });
        let fired = engine.observe(&p);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].value, 2_000);
    }

    #[test]
    fn replay_matches_streaming_evaluation() {
        let rules = vec![AlertRule::hit_rate_floor(500, 2)];
        let mut ring = SeriesRing::new(CacheId::new(4), 100, 16);
        for (t, req, hits) in [(100, 10, 1), (200, 20, 2), (300, 30, 20)] {
            ring.push(point(t, req, hits, 0));
        }
        let replayed = AlertEngine::replay(&ring, rules.clone());
        let mut engine = AlertEngine::new(CacheId::new(4), rules);
        let mut streamed = Vec::new();
        for p in ring.points() {
            streamed.extend(engine.observe(p));
        }
        assert_eq!(replayed, streamed);
        assert_eq!(replayed.len(), 2, "one firing, one resolution");
    }

    #[test]
    fn name_vocabularies_roundtrip() {
        for metric in [
            AlertMetric::HitRate,
            AlertMetric::P99Latency,
            AlertMetric::Quarantined,
            AlertMetric::ShedRate,
        ] {
            assert_eq!(AlertMetric::from_name(metric.name()), Some(metric));
        }
        assert_eq!(AlertMetric::from_name("cpu"), None);
        assert_eq!(AlertOp::Below.name(), "below");
        assert_eq!(AlertState::Resolved.name(), "resolved");
    }
}
