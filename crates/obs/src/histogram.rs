//! A log-bucketed histogram for latencies and expiration ages.
//!
//! Values are `u64` quantities (microseconds, milliseconds — the caller
//! picks the unit) spread over power-of-two buckets: recording is O(1)
//! with a fixed 65-slot table, quantiles are read by walking the buckets
//! with linear interpolation inside the landing bucket. Exact `min`/`max`
//! are tracked separately and quantiles clamp to them, so degenerate
//! shapes (single sample, every sample equal) report exact values.

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples.
///
/// # Example
///
/// ```
/// use coopcache_obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [100, 200, 400, 800] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.min(), Some(100));
/// assert_eq!(h.max(), Some(800));
/// assert!(h.quantile(0.5).unwrap() >= 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket a value lands in: bucket 0 holds exactly zero; bucket
    /// `i >= 1` holds values with bit length `i`, i.e. `[2^(i-1), 2^i)`.
    #[must_use]
    pub const fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The `[lower, upper)` value range of a bucket (the top bucket's
    /// upper bound saturates at `u64::MAX`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= BUCKETS`.
    #[must_use]
    pub const fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < BUCKETS, "bucket index out of range");
        match index {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            i => (1 << (i - 1), 1 << i),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean of the recorded samples.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`), interpolated linearly
    /// inside the landing bucket and clamped to the exact `[min, max]`.
    /// `None` when the histogram is empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // 0-based rank of the sample the quantile names.
        let rank = (q * (self.count - 1) as f64).round() as u64;
        let mut before = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if rank < before + c {
                let (lo, hi) = Self::bucket_bounds(i);
                let pos = (rank - before) as f64 / (c.max(2) - 1) as f64;
                let span = (hi - 1 - lo) as f64;
                let value = lo + (span * pos).round() as u64;
                return Some(value.clamp(self.min, self.max));
            }
            before += c;
        }
        // Unreachable: ranks always land inside the recorded counts.
        Some(self.max)
    }

    /// A compact percentile snapshot for reports.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            mean: self.mean().unwrap_or(0.0),
            min: self.min().unwrap_or(0),
            p50: self.quantile(0.50).unwrap_or(0),
            p90: self.quantile(0.90).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
            max: self.max().unwrap_or(0),
        }
    }

    /// Iterates over the non-empty buckets as `(lower, upper, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
    }
}

/// Summary percentiles of a [`Histogram`], all zero when empty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Exact minimum.
    pub min: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Writes the snapshot as one JSON object with microsecond-suffixed
    /// keys (`count`, `mean_us`, `min_us`, `p50_us`, `p90_us`, `p99_us`,
    /// `max_us`) — the single latency shape shared by the `OP_STATS`
    /// latency section and every `OP_SERIES` point, so scrapers parse
    /// one format everywhere.
    pub fn write_json_us(&self, w: &mut crate::json::JsonWriter) {
        w.begin_object();
        w.key("count");
        w.u64(self.count);
        w.key("mean_us");
        w.f64(self.mean);
        w.key("min_us");
        w.u64(self.min);
        w.key("p50_us");
        w.u64(self.p50);
        w.key("p90_us");
        w.u64(self.p90);
        w.key("p99_us");
        w.u64(self.p99);
        w.key("max_us");
        w.u64(self.max);
        w.end_object();
    }

    /// Decodes a snapshot written by [`Self::write_json_us`]; `None` on
    /// missing or mistyped fields.
    #[must_use]
    pub fn from_json_us(value: &crate::json::JsonValue) -> Option<Self> {
        Some(Self {
            count: value.get("count")?.as_u64()?,
            mean: value.get("mean_us")?.as_f64()?,
            min: value.get("min_us")?.as_u64()?,
            p50: value.get("p50_us")?.as_u64()?,
            p90: value.get("p90_us")?.as_u64()?,
            p99: value.get("p99_us")?.as_u64()?,
            max: value.get("max_us")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_json, JsonWriter};

    #[test]
    fn snapshot_json_roundtrip() {
        let mut h = Histogram::new();
        for v in [120, 240, 480] {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut w = JsonWriter::new();
        snap.write_json_us(&mut w);
        let json = w.finish();
        assert!(json.starts_with(r#"{"count":3,"mean_us":"#), "got {json}");
        let value = parse_json(&json).expect("well-formed");
        let back = HistogramSnapshot::from_json_us(&value).expect("decodes");
        assert_eq!(back, snap);
        // Missing fields decode to None, never panic.
        let partial = parse_json(r#"{"count":3}"#).unwrap();
        assert!(HistogramSnapshot::from_json_us(&partial).is_none());
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bounds(0), (0, 1));
        assert_eq!(Histogram::bucket_bounds(1), (1, 2));
        assert_eq!(Histogram::bucket_bounds(4), (8, 16));
        assert_eq!(Histogram::bucket_bounds(64), (1 << 63, u64::MAX));
        // Every value lands inside its bucket's bounds.
        for v in [0u64, 1, 2, 3, 5, 100, 1 << 40, u64::MAX] {
            let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_index(v));
            assert!(v >= lo && (v < hi || v == u64::MAX), "{v} in [{lo},{hi})");
        }
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(146);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(146), "q={q}");
        }
        assert_eq!(h.mean(), Some(146.0));
    }

    #[test]
    fn all_in_one_bucket_clamps_to_exact_range() {
        // 5, 6, 7 all land in bucket [4, 8).
        let mut h = Histogram::new();
        for v in [5u64, 6, 7] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(5), "p0 clamps to min");
        assert_eq!(h.quantile(1.0), Some(7), "p100 clamps to max");
        let p50 = h.quantile(0.5).unwrap();
        assert!((5..=7).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn identical_samples_are_exact_at_every_quantile() {
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(342);
        }
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(342));
        }
    }

    #[test]
    fn quantiles_are_monotone_and_ordered() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p90 = h.quantile(0.9).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p90 && p90 <= p99);
        // Log buckets are coarse; within a factor of 2 of the truth.
        assert!((2_500..=10_000).contains(&p50), "p50 {p50}");
        assert!((4_500..=10_000).contains(&p90), "p90 {p90}");
    }

    #[test]
    fn zero_values_are_recorded() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.quantile(0.5), Some(0));
        assert_eq!(h.max(), Some(0));
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(1_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(1_000));
    }

    #[test]
    fn snapshot_reports_percentiles() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8, 16, 32] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 32);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        assert!(s.mean > 0.0);
    }

    #[test]
    fn nonzero_buckets_iterate_in_order() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(5);
        h.record(5);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(0, 1, 1), (4, 8, 2)]);
    }
}
