//! A minimal hand-rolled JSON writer and reader.
//!
//! The workspace builds against an offline registry, so there is no serde;
//! every machine-readable output (the JSONL event stream, the bench
//! binaries' `--json` tables) goes through this writer instead. It emits
//! compact JSON with the exact field order the caller uses, which is what
//! makes event streams byte-comparable across runs. The matching
//! [`parse_json`] reader is what the trace assembler and the `stats`
//! scraper use to get those documents back without pulling in a
//! dependency.

use std::fmt::Write as _;

/// Escapes `s` per RFC 8259 and appends it (without quotes) to `out`.
pub fn escape_into(out: &mut String, s: &str) {
    // Almost every string this workspace serializes (keys, event names,
    // span statuses) needs no escaping; detect that with one byte scan
    // and append with a single copy instead of char-by-char pushes.
    // Bytes ≥ 0x80 are UTF-8 continuation/lead bytes — never escaped.
    if s.bytes().all(|b| b != b'"' && b != b'\\' && b >= 0x20) {
        out.push_str(s);
        return;
    }
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A streaming writer for compact JSON objects and arrays.
///
/// # Example
///
/// ```
/// use coopcache_obs::JsonWriter;
///
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("name");
/// w.string("fig1");
/// w.key("rows");
/// w.begin_array();
/// w.u64(1);
/// w.u64(2);
/// w.end_array();
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"name":"fig1","rows":[1,2]}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One bit per open container, indexed by depth: set once the first
    /// element landed (so the next one needs a comma). A bitset instead
    /// of a `Vec<bool>` keeps the writer allocation-free apart from the
    /// output text itself — the sink serializes at request rate.
    /// Containers nested deeper than 64 levels lose comma tracking; no
    /// document in this workspace nests past single digits.
    comma: u64,
    /// Open containers.
    depth: u32,
}

impl JsonWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer that reuses `buf`'s allocation (the text is
    /// cleared). Hot paths that serialize many documents hand the
    /// [`Self::finish`] result back in to stay allocation-free.
    #[must_use]
    pub fn reusing(mut buf: String) -> Self {
        buf.clear();
        Self {
            out: buf,
            comma: 0,
            depth: 0,
        }
    }

    /// The comma bit for the innermost open container (`0` at the top
    /// level, where values never need separating).
    fn level_bit(&self) -> u64 {
        match self.depth {
            0 => 0,
            d => 1u64.checked_shl(d - 1).unwrap_or(0),
        }
    }

    /// Returns the accumulated JSON text.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }

    fn before_value(&mut self) {
        // A value inside an array needs a separating comma; object values
        // follow their key, which already handled the comma.
        let bit = self.level_bit();
        if self.comma & bit != 0 {
            self.out.push(',');
        }
        self.comma |= bit;
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.depth += 1;
        self.comma &= !self.level_bit();
    }

    /// Closes an object (`}`).
    pub fn end_object(&mut self) {
        self.depth = self.depth.saturating_sub(1);
        self.out.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.depth += 1;
        self.comma &= !self.level_bit();
    }

    /// Closes an array (`]`).
    pub fn end_array(&mut self) {
        self.depth = self.depth.saturating_sub(1);
        self.out.push(']');
    }

    /// Writes an object key; the next call must write its value.
    pub fn key(&mut self, k: &str) {
        let bit = self.level_bit();
        if self.comma & bit != 0 {
            self.out.push(',');
        }
        // The key's own comma is done; the value following it must not
        // add one (its `before_value` re-arms the flag).
        self.comma &= !bit;
        self.out.push('"');
        escape_into(&mut self.out, k);
        self.out.push_str("\":");
    }

    /// Writes a string value.
    pub fn string(&mut self, v: &str) {
        self.before_value();
        self.out.push('"');
        escape_into(&mut self.out, v);
        self.out.push('"');
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.before_value();
        push_u64(&mut self.out, v);
    }

    /// Writes a signed integer value.
    pub fn i64(&mut self, v: i64) {
        self.before_value();
        if v < 0 {
            self.out.push('-');
        }
        push_u64(&mut self.out, v.unsigned_abs());
    }

    /// Writes a float value (shortest round-trip form; `null` for
    /// non-finite values, which JSON cannot represent).
    pub fn f64(&mut self, v: f64) {
        if v.is_finite() {
            self.before_value();
            let _ = write!(self.out, "{v}");
        } else {
            self.null();
        }
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.before_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Writes a JSON `null`.
    pub fn null(&mut self) {
        self.before_value();
        self.out.push_str("null");
    }

    /// Writes `Some(ms)` as a number, `None` as `null` — the encoding
    /// used for possibly-infinite expiration ages.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => self.u64(v),
            None => self.null(),
        }
    }
}

/// Appends `v` in decimal without going through the `core::fmt`
/// machinery — the JSONL sink serializes several integers per event at
/// request rate, and `write!` costs several times a digit loop.
fn push_u64(out: &mut String, mut v: u64) {
    // u64::MAX has 20 digits.
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        #[allow(clippy::cast_possible_truncation)] // v % 10 < 10
        {
            buf[i] = b'0' + (v % 10) as u8;
        }
        v /= 10;
        if v == 0 {
            break;
        }
    }
    // The slice is ASCII digits by construction.
    out.push_str(std::str::from_utf8(&buf[i..]).unwrap_or("0"));
}

/// Maximum container nesting [`parse_json`] accepts; deeper input is
/// rejected rather than risking unbounded recursion.
const MAX_JSON_DEPTH: usize = 64;

/// A parsed JSON value.
///
/// Integers keep their exact width (`U64`/`I64`) instead of collapsing
/// into `f64` — trace and span ids use the full 64-bit space and must
/// round-trip losslessly. Objects preserve field order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// Any other number (fractions, exponents, out-of-range integers).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source field order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object (first occurrence); `None` for
    /// non-objects and missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            Self::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (coercing either integer width).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::F64(v) => Some(*v),
            // Stats snapshots mix counters (integers) with means
            // (floats); both sides of the JSON round-trip coerce here.
            #[allow(clippy::cast_precision_loss)]
            Self::U64(v) => Some(*v as f64),
            #[allow(clippy::cast_precision_loss)]
            Self::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The elements, if the value is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            Self::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The fields in source order, if the value is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            Self::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    #[must_use]
    pub const fn is_null(&self) -> bool {
        matches!(self, Self::Null)
    }
}

/// Why [`parse_json`] rejected its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses one JSON document. Trailing non-whitespace is an error; so is
/// nesting deeper than [`MAX_JSON_DEPTH`]. Never panics.
pub fn parse_json(input: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &'static str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            what,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        if depth > MAX_JSON_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') if self.eat("null") => Ok(JsonValue::Null),
            Some(b't') if self.eat("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.pos += 1; // consume opening '"'
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                match std::str::from_utf8(&self.bytes[start..self.pos]) {
                    Ok(chunk) => out.push_str(chunk),
                    Err(_) => return Err(self.err("invalid UTF-8 in string")),
                }
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonParseError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: expect a \uXXXX low half.
                    if !self.eat("\\u") {
                        return Err(self.err("unpaired surrogate"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                match char::from_u32(code) {
                    Some(ch) => out.push(ch),
                    None => return Err(self.err("invalid unicode escape")),
                }
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let nibble = match d {
                b'0'..=b'9' => u32::from(d - b'0'),
                b'a'..=b'f' => u32::from(d - b'a') + 10,
                b'A'..=b'F' => u32::from(d - b'A') + 10,
                _ => return Err(self.err("bad hex digit in \\u escape")),
            };
            value = (value << 4) | nibble;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        let mut integral = true;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = match std::str::from_utf8(&self.bytes[start..self.pos]) {
            Ok(t) => t,
            Err(_) => return Err(self.err("invalid number")),
        };
        if integral {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(v) = rest.parse::<i64>() {
                    return Ok(JsonValue::I64(-v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::U64(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(JsonValue::F64(v)),
            _ => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_with_mixed_values() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.u64(1);
        w.key("b");
        w.string("x\"y");
        w.key("c");
        w.bool(false);
        w.key("d");
        w.null();
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":1,"b":"x\"y","c":false,"d":null}"#);
    }

    #[test]
    fn nested_arrays_and_objects() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("rows");
        w.begin_array();
        w.begin_array();
        w.string("p");
        w.u64(2);
        w.end_array();
        w.begin_array();
        w.end_array();
        w.end_array();
        w.key("n");
        w.i64(-3);
        w.end_object();
        assert_eq!(w.finish(), r#"{"rows":[["p",2],[]],"n":-3}"#);
    }

    #[test]
    fn escapes_control_characters() {
        let mut s = String::new();
        escape_into(&mut s, "a\nb\t\u{1}\\");
        assert_eq!(s, "a\\nb\\t\\u0001\\\\");
    }

    #[test]
    fn floats_are_shortest_roundtrip_and_nonfinite_is_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.f64(0.25);
        w.f64(f64::NAN);
        w.f64(3.0);
        w.end_array();
        assert_eq!(w.finish(), "[0.25,null,3]");
    }

    #[test]
    fn optional_u64() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.opt_u64(Some(7));
        w.opt_u64(None);
        w.end_array();
        assert_eq!(w.finish(), "[7,null]");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("ev");
        w.string("span");
        w.key("trace");
        w.u64(u64::MAX);
        w.key("parent");
        w.null();
        w.key("ok");
        w.bool(true);
        w.key("mean");
        w.f64(1.5);
        w.key("rows");
        w.begin_array();
        w.i64(-3);
        w.string("a\"b\n");
        w.end_array();
        w.end_object();
        let parsed = parse_json(&w.finish()).expect("round trip");
        assert_eq!(parsed.get("ev").and_then(JsonValue::as_str), Some("span"));
        // u64::MAX must survive exactly — span ids use the full width.
        assert_eq!(
            parsed.get("trace").and_then(JsonValue::as_u64),
            Some(u64::MAX)
        );
        assert!(parsed.get("parent").is_some_and(JsonValue::is_null));
        assert_eq!(parsed.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(parsed.get("mean").and_then(JsonValue::as_f64), Some(1.5));
        let rows = parsed.get("rows").and_then(JsonValue::as_array).unwrap();
        assert_eq!(rows[0], JsonValue::I64(-3));
        assert_eq!(rows[1], JsonValue::Str("a\"b\n".to_owned()));
    }

    #[test]
    fn parse_handles_whitespace_and_unicode_escapes() {
        let v = parse_json(" { \"k\" : [ 1 , \"\\u00e9\\ud83d\\ude00\" ] } ").unwrap();
        let arr = v.get("k").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_str(), Some("é😀"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "01x",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"lone \\ud800 surrogate\"",
            "1 2",
            "{\"a\":1}extra",
            "--1",
            "1e",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_runaway_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse_json(&deep).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(parse_json(&ok).is_ok());
    }

    #[test]
    fn parse_classifies_numbers() {
        let v = parse_json("[0, -7, 1.25, 2e3, 18446744073709551615]").unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr[0], JsonValue::U64(0));
        assert_eq!(arr[1], JsonValue::I64(-7));
        assert_eq!(arr[2], JsonValue::F64(1.25));
        assert_eq!(arr[3], JsonValue::F64(2000.0));
        assert_eq!(arr[4], JsonValue::U64(u64::MAX));
    }
}
