//! A minimal hand-rolled JSON writer.
//!
//! The workspace builds against an offline registry, so there is no serde;
//! every machine-readable output (the JSONL event stream, the bench
//! binaries' `--json` tables) goes through this writer instead. It emits
//! compact JSON with the exact field order the caller uses, which is what
//! makes event streams byte-comparable across runs.

use std::fmt::Write as _;

/// Escapes `s` per RFC 8259 and appends it (without quotes) to `out`.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A streaming writer for compact JSON objects and arrays.
///
/// # Example
///
/// ```
/// use coopcache_obs::JsonWriter;
///
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("name");
/// w.string("fig1");
/// w.key("rows");
/// w.begin_array();
/// w.u64(1);
/// w.u64(2);
/// w.end_array();
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"name":"fig1","rows":[1,2]}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: true once the first element landed
    /// (so the next one needs a comma).
    comma: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the accumulated JSON text.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }

    fn before_value(&mut self) {
        // A value inside an array needs a separating comma; object values
        // follow their key, which already handled the comma.
        if let Some(needs) = self.comma.last_mut() {
            if *needs {
                self.out.push(',');
            }
            *needs = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.comma.push(false);
    }

    /// Closes an object (`}`).
    pub fn end_object(&mut self) {
        self.comma.pop();
        self.out.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.comma.push(false);
    }

    /// Closes an array (`]`).
    pub fn end_array(&mut self) {
        self.comma.pop();
        self.out.push(']');
    }

    /// Writes an object key; the next call must write its value.
    pub fn key(&mut self, k: &str) {
        if let Some(needs) = self.comma.last_mut() {
            if *needs {
                self.out.push(',');
            }
            // The key's own comma is done; the value following it must
            // not add one (its `before_value` re-arms the flag).
            *needs = false;
        }
        self.out.push('"');
        escape_into(&mut self.out, k);
        self.out.push_str("\":");
    }

    /// Writes a string value.
    pub fn string(&mut self, v: &str) {
        self.before_value();
        self.out.push('"');
        escape_into(&mut self.out, v);
        self.out.push('"');
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.before_value();
        let _ = write!(self.out, "{v}");
    }

    /// Writes a signed integer value.
    pub fn i64(&mut self, v: i64) {
        self.before_value();
        let _ = write!(self.out, "{v}");
    }

    /// Writes a float value (shortest round-trip form; `null` for
    /// non-finite values, which JSON cannot represent).
    pub fn f64(&mut self, v: f64) {
        if v.is_finite() {
            self.before_value();
            let _ = write!(self.out, "{v}");
        } else {
            self.null();
        }
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.before_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Writes a JSON `null`.
    pub fn null(&mut self) {
        self.before_value();
        self.out.push_str("null");
    }

    /// Writes `Some(ms)` as a number, `None` as `null` — the encoding
    /// used for possibly-infinite expiration ages.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => self.u64(v),
            None => self.null(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_with_mixed_values() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.u64(1);
        w.key("b");
        w.string("x\"y");
        w.key("c");
        w.bool(false);
        w.key("d");
        w.null();
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":1,"b":"x\"y","c":false,"d":null}"#);
    }

    #[test]
    fn nested_arrays_and_objects() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("rows");
        w.begin_array();
        w.begin_array();
        w.string("p");
        w.u64(2);
        w.end_array();
        w.begin_array();
        w.end_array();
        w.end_array();
        w.key("n");
        w.i64(-3);
        w.end_object();
        assert_eq!(w.finish(), r#"{"rows":[["p",2],[]],"n":-3}"#);
    }

    #[test]
    fn escapes_control_characters() {
        let mut s = String::new();
        escape_into(&mut s, "a\nb\t\u{1}\\");
        assert_eq!(s, "a\\nb\\t\\u0001\\\\");
    }

    #[test]
    fn floats_are_shortest_roundtrip_and_nonfinite_is_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.f64(0.25);
        w.f64(f64::NAN);
        w.f64(3.0);
        w.end_array();
        assert_eq!(w.finish(), "[0.25,null,3]");
    }

    #[test]
    fn optional_u64() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.opt_u64(Some(7));
        w.opt_u64(None);
        w.end_array();
        assert_eq!(w.finish(), "[7,null]");
    }
}
