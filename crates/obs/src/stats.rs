//! Lock-free live counters, one per [`EventKind`].
//!
//! A [`StatsRegistry`] is the always-on backing store for the daemons'
//! `OP_STATS` snapshot: every emitted event bumps one relaxed atomic,
//! whether or not an event sink is installed, so scraping a live daemon
//! never contends with the request hot path and never requires a sink.

use crate::event::{EventKind, EVENT_KINDS};
use crate::json::JsonWriter;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-[`EventKind`] atomic counters.
///
/// Counts are monotonically increasing and use relaxed ordering: a
/// snapshot taken while requests are in flight is a consistent-enough
/// gauge, not a barrier.
///
/// # Consistency contract
///
/// Every derived quantity ([`Self::total`], the JSON written by
/// [`Self::write_counters`]) is computed from **one** [`Self::snapshot`]
/// pass — never from a second independent read of the atomics. Two
/// snapshots taken around concurrent `record` calls may differ, but
/// within one snapshot the total always equals the sum of its parts, and
/// each per-kind value is monotone across successive snapshots. The
/// interleave crate's `StatsRegistry` model checks exactly this: a
/// two-pass total can disagree with the snapshot it is reported next to.
#[derive(Debug)]
pub struct StatsRegistry {
    counts: [AtomicU64; EVENT_KINDS.len()],
}

impl StatsRegistry {
    /// Creates a registry with every counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Bumps the counter for `kind` by one.
    pub fn record(&self, kind: EventKind) {
        self.counts[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Current count for `kind`.
    #[must_use]
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()].load(Ordering::Relaxed)
    }

    /// Total events recorded across all kinds, derived from a single
    /// [`Self::snapshot`] pass (see the consistency contract above): the
    /// returned total is exactly the sum of some observable snapshot,
    /// never a mix of two read passes racing concurrent `record`s.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.snapshot().iter().map(|(_, count)| count).sum()
    }

    /// All counters in [`EVENT_KINDS`] order.
    #[must_use]
    pub fn snapshot(&self) -> [(EventKind, u64); EVENT_KINDS.len()] {
        std::array::from_fn(|i| (EVENT_KINDS[i], self.counts[i].load(Ordering::Relaxed)))
    }

    /// Writes the counters as one JSON object keyed by kind name, in
    /// [`EVENT_KINDS`] order (zeros included, so the schema is fixed).
    pub fn write_counters(&self, w: &mut JsonWriter) {
        w.begin_object();
        for (kind, count) in self.snapshot() {
            w.key(kind.name());
            w.u64(count);
        }
        w.end_object();
    }
}

impl Default for StatsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_start_at_zero_and_accumulate() {
        let stats = StatsRegistry::new();
        for kind in EVENT_KINDS {
            assert_eq!(stats.count(kind), 0);
        }
        stats.record(EventKind::Request);
        stats.record(EventKind::Request);
        stats.record(EventKind::Span);
        assert_eq!(stats.count(EventKind::Request), 2);
        assert_eq!(stats.count(EventKind::Span), 1);
        assert_eq!(stats.count(EventKind::Eviction), 0);
        assert_eq!(stats.total(), 3);
    }

    #[test]
    fn total_is_the_sum_of_one_snapshot() {
        let stats = StatsRegistry::new();
        stats.record(EventKind::Request);
        stats.record(EventKind::Span);
        stats.record(EventKind::Span);
        let snap = stats.snapshot();
        assert_eq!(stats.total(), snap.iter().map(|(_, c)| c).sum::<u64>());
    }

    #[test]
    fn snapshot_preserves_event_kinds_order() {
        let stats = StatsRegistry::new();
        stats.record(EventKind::Failover);
        let snap = stats.snapshot();
        for (i, (kind, _)) in snap.iter().enumerate() {
            assert_eq!(*kind, EVENT_KINDS[i]);
        }
        assert_eq!(snap[EventKind::Failover.index()].1, 1);
    }

    #[test]
    fn counters_json_has_fixed_schema() {
        let stats = StatsRegistry::new();
        stats.record(EventKind::Request);
        let mut w = JsonWriter::new();
        stats.write_counters(&mut w);
        let json = w.finish();
        assert!(json.starts_with(r#"{"request":1,"icp-query":0,"#));
        assert!(json.contains(r#""span":0"#));
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let stats = Arc::new(StatsRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        stats.record(EventKind::IcpQuery);
                    }
                })
            })
            .collect();
        for h in handles {
            let _ = h.join();
        }
        assert_eq!(stats.count(EventKind::IcpQuery), 400);
    }
}
