//! Event sinks: where emitted [`Event`]s go.
//!
//! The placement code never knows which sink it is talking to — drivers
//! hand it a [`SinkHandle`] (or none at all). The provided sinks cover the
//! three use cases:
//!
//! * [`NullSink`] — discard everything (the default; one branch per event);
//! * [`RingBufferSink`] — keep the last `n` events for tests and
//!   post-mortems;
//! * [`JsonlSink`] — stream each event as one compact JSON line;
//! * [`HistogramSink`] — aggregate into per-kind counts and log-bucketed
//!   latency/age histograms.

use crate::event::{Event, EventKind, RequestClass, EVENT_KINDS};
use crate::histogram::Histogram;
use crate::sample::{Sampler, SamplerConfig};
use std::cell::Cell;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// A consumer of [`Event`]s.
///
/// Implementations must be cheap per call — sinks run inline on the
/// request path of all three drivers.
pub trait EventSink {
    /// Consumes one event.
    fn emit(&mut self, event: &Event);
}

/// Discards every event. This is the behaviour of an absent sink; it
/// exists so generic code can always have *some* sink to talk to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _event: &Event) {}
}

/// Keeps the most recent `capacity` events in memory.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    buf: VecDeque<Event>,
    capacity: usize,
    total: u64,
}

impl RingBufferSink {
    /// Creates a ring holding at most `capacity` events (`capacity ≥ 1`).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "ring buffer needs room for one event");
        Self {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            total: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Number of retained events (at most the capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been emitted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever emitted, including those already displaced.
    #[must_use]
    pub fn total_emitted(&self) -> u64 {
        self.total
    }
}

impl EventSink for RingBufferSink {
    fn emit(&mut self, event: &Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(event.clone());
        self.total += 1;
    }
}

/// Streams each event as one compact JSON line (JSONL).
///
/// Serialization is deterministic (fixed field order, no timestamps of its
/// own), so replaying the same trace through the same configuration
/// produces a byte-identical file. I/O errors are sticky: the first error
/// stops further writes and is reported by [`JsonlSink::finish`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    lines: u64,
    error: Option<io::Error>,
    /// Reused serialization buffer: the hot path allocates on the first
    /// event and never again.
    buf: String,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer. Callers that write to files usually want a
    /// `BufWriter`.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            lines: 0,
            error: None,
            buf: String::new(),
        }
    }

    /// Lines successfully written so far.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Consumes the sink and returns the underlying writer (without
    /// flushing) — handy for in-memory writers like `Vec<u8>`.
    #[must_use]
    pub fn into_inner(self) -> W {
        self.writer
    }

    /// Flushes and returns the first I/O error encountered, if any.
    ///
    /// # Errors
    ///
    /// Returns the sticky write error, or the flush error.
    pub fn finish(mut self) -> io::Result<u64> {
        if let Some(err) = self.error.take() {
            return Err(err);
        }
        self.writer.flush()?;
        Ok(self.lines)
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn emit(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let mut line = event.write_json(crate::json::JsonWriter::reusing(std::mem::take(
            &mut self.buf,
        )));
        line.push('\n');
        match self.writer.write_all(line.as_bytes()) {
            Ok(()) => self.lines += 1,
            Err(err) => self.error = Some(err),
        }
        self.buf = line;
    }
}

/// Aggregates events into per-kind counts and log-bucketed histograms —
/// the in-process answer to "what did this run look like" without storing
/// the stream.
#[derive(Debug, Clone, Default)]
pub struct HistogramSink {
    counts: [u64; EVENT_KINDS.len()],
    local_hits: u64,
    remote_hits: u64,
    misses: u64,
    placement_stores: u64,
    placement_declines: u64,
    placement_ties: u64,
    /// Request latency in microseconds (only requests that carried one).
    pub request_latency_us: Histogram,
    /// Document expiration age at eviction, in milliseconds.
    pub eviction_age_ms: Histogram,
}

impl HistogramSink {
    /// Creates an empty aggregate.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Events seen of the given kind.
    #[must_use]
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()]
    }

    /// `(local hits, remote hits, misses)` among request events.
    #[must_use]
    pub fn request_split(&self) -> (u64, u64, u64) {
        (self.local_hits, self.remote_hits, self.misses)
    }

    /// `(stored, declined)` among placement decisions.
    #[must_use]
    pub fn placement_split(&self) -> (u64, u64) {
        (self.placement_stores, self.placement_declines)
    }

    /// Placement decisions where both expiration ages were exactly equal
    /// (the §3.4 vs §3.5 tie case).
    #[must_use]
    pub fn placement_ties(&self) -> u64 {
        self.placement_ties
    }

    /// Renders a human-readable multi-line summary.
    #[must_use]
    pub fn render_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("event summary:\n");
        for kind in EVENT_KINDS {
            let n = self.count(kind);
            if n > 0 {
                let _ = writeln!(out, "  {:<12} {n}", kind.name());
            }
        }
        if self.local_hits + self.remote_hits + self.misses > 0 {
            let _ = writeln!(
                out,
                "  requests: {} local / {} remote / {} miss",
                self.local_hits, self.remote_hits, self.misses
            );
        }
        if self.placement_stores + self.placement_declines > 0 {
            let _ = writeln!(
                out,
                "  placements: {} stored / {} declined / {} ties",
                self.placement_stores, self.placement_declines, self.placement_ties
            );
        }
        if !self.request_latency_us.is_empty() {
            let s = self.request_latency_us.snapshot();
            let _ = writeln!(
                out,
                "  latency_us: p50={} p90={} p99={} max={} (n={})",
                s.p50, s.p90, s.p99, s.max, s.count
            );
        }
        if !self.eviction_age_ms.is_empty() {
            let s = self.eviction_age_ms.snapshot();
            let _ = writeln!(
                out,
                "  evict_age_ms: p50={} p90={} p99={} max={} (n={})",
                s.p50, s.p90, s.p99, s.max, s.count
            );
        }
        out
    }
}

impl EventSink for HistogramSink {
    fn emit(&mut self, event: &Event) {
        self.counts[event.kind().index()] += 1;
        match event {
            Event::Request {
                class, latency_us, ..
            } => {
                match class {
                    RequestClass::LocalHit => self.local_hits += 1,
                    RequestClass::RemoteHit => self.remote_hits += 1,
                    RequestClass::Miss => self.misses += 1,
                }
                if let Some(us) = latency_us {
                    self.request_latency_us.record(*us);
                }
            }
            Event::Placement { stored, tie, .. } => {
                if *stored {
                    self.placement_stores += 1;
                } else {
                    self.placement_declines += 1;
                }
                if *tie {
                    self.placement_ties += 1;
                }
            }
            Event::Eviction { age_ms, .. } => {
                self.eviction_age_ms.record(*age_ms);
            }
            _ => {}
        }
    }
}

/// A cloneable, thread-safe handle to a shared sink.
///
/// This is what gets threaded through `ProxyNode`, the simulators and the
/// daemon: cloning the handle is cheap (an `Arc` bump), and every clone
/// feeds the same underlying sink. A poisoned lock (a panic on another
/// thread mid-emit) is recovered rather than propagated — observability
/// must never take the cache down with it.
#[derive(Clone)]
pub struct SinkHandle {
    inner: Arc<Mutex<dyn EventSink + Send>>,
    /// Head-sampling filter applied *before* the lock: a dropped span
    /// never contends on the shared sink, which is what keeps the
    /// always-on sampled mode within its overhead budget.
    sampler: Option<Sampler>,
}

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SinkHandle")
    }
}

impl SinkHandle {
    /// Wraps a sink in a fresh shared handle.
    pub fn new<S: EventSink + Send + 'static>(sink: S) -> Self {
        Self {
            inner: Arc::new(Mutex::new(sink)),
            sampler: None,
        }
    }

    /// Wraps a sink behind a deterministic head sampler: spans whose
    /// trace the sampler drops never reach the sink (or its lock).
    pub fn with_sampler<S: EventSink + Send + 'static>(sink: S, config: SamplerConfig) -> Self {
        Self {
            inner: Arc::new(Mutex::new(sink)),
            sampler: Some(Sampler::new(config)),
        }
    }

    /// Returns this handle with the sampling policy replaced (`None`
    /// emits everything). Clones share the sink but each carries its own
    /// filter, so one subsystem can sample while another stays exact.
    #[must_use]
    pub fn sampled(mut self, config: Option<SamplerConfig>) -> Self {
        self.sampler = config.map(Sampler::new);
        self
    }

    /// The sampling policy this handle applies, if any.
    #[must_use]
    pub fn sampler(&self) -> Option<SamplerConfig> {
        self.sampler.map(|s| s.config())
    }

    /// The head decision this handle's sampler makes for `trace_id`
    /// (`true` without a sampler). Daemons consult this once per served
    /// request and, for a dropped trace, shed the *whole* request's
    /// telemetry with [`mute_request_scoped`] — not just the spans the
    /// per-event filter would catch.
    #[must_use]
    pub fn keeps_trace(&self, trace_id: u64) -> bool {
        self.sampler.is_none_or(|s| s.keeps_trace(trace_id))
    }

    /// Wraps an existing shared sink; the caller keeps its typed `Arc` to
    /// inspect the sink after the run (e.g. read a
    /// [`HistogramSink`] summary).
    ///
    /// Emitters block on the shared lock, and live-daemon threads emit
    /// even after a request's reply is on the wire — never hold the typed
    /// `Arc`'s lock across a shutdown that joins emitting threads.
    pub fn from_arc<S: EventSink + Send + 'static>(sink: Arc<Mutex<S>>) -> Self {
        Self {
            inner: sink,
            sampler: None,
        }
    }

    /// Emits one event into the shared sink. Sampled-out spans and
    /// request-scoped events inside a [`mute_request_scoped`] scope
    /// return before touching the lock.
    pub fn emit(&self, event: &Event) {
        if let Some(sampler) = &self.sampler {
            if !sampler.keep(event) {
                return;
            }
        }
        if event.kind().is_request_scoped() && MUTE_REQUEST_SCOPED.with(Cell::get) {
            return;
        }
        let mut guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.emit(event);
    }
}

thread_local! {
    /// Whether the current thread is serving a request whose trace the
    /// head sampler dropped (see [`mute_request_scoped`]).
    static MUTE_REQUEST_SCOPED: Cell<bool> = const { Cell::new(false) };
}

/// Suppresses *request-scoped* event kinds
/// ([`EventKind::is_request_scoped`]) emitted through any [`SinkHandle`]
/// on the current thread until the returned guard drops.
///
/// This is how a daemon extends the head sampler's per-trace decision to
/// the full request: the spans of a dropped trace are already filtered
/// per-event, but the request-completion, connection-reuse, placement
/// and ICP lines a request produces carry no trace id of their own. The
/// daemon serves each request synchronously on one thread, so a
/// thread-scoped mute over the serve path sheds exactly that request's
/// telemetry — low-rate health kinds (evictions, faults, quarantine,
/// admission sheds, alerts) pass through untouched, and `OP_STATS`
/// counters are recorded before the sink and stay exact regardless.
///
/// Guards nest: the mute lifts only when the outermost guard drops.
/// Because the head decision is pure in `(seed, rate, trace_id)`, muting
/// by it keeps the sampled stream a deterministic subsequence of the
/// full stream.
/// Whether the current thread is inside a [`mute_request_scoped`] scope.
///
/// [`SinkHandle::emit`] already applies the mute; this query exists for
/// emitters whose *preparation* for a request-scoped event is the
/// expensive part (taking a sink registry lock, building the event) so
/// they can skip it entirely on muted threads. Skipping on `true` is
/// always equivalent to emitting: the handle would have dropped the
/// event anyway.
#[must_use]
pub fn request_scoped_muted() -> bool {
    MUTE_REQUEST_SCOPED.with(Cell::get)
}

#[must_use]
pub fn mute_request_scoped() -> RequestMuteGuard {
    let was = MUTE_REQUEST_SCOPED.with(|m| m.replace(true));
    RequestMuteGuard { was }
}

/// RAII guard returned by [`mute_request_scoped`]; restores the previous
/// mute state on drop.
#[derive(Debug)]
pub struct RequestMuteGuard {
    was: bool,
}

impl Drop for RequestMuteGuard {
    fn drop(&mut self) {
        MUTE_REQUEST_SCOPED.with(|m| m.set(self.was));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EvictionCause, PlacementRole};
    use coopcache_types::{CacheId, DocId, ExpirationAge};

    fn sample_request(seq: u64, class: RequestClass, latency_us: Option<u64>) -> Event {
        Event::Request {
            seq,
            cache: CacheId::new(0),
            doc: DocId::new(seq),
            class,
            responder: None,
            stored: true,
            latency_us,
        }
    }

    #[test]
    fn null_sink_discards() {
        let mut sink = NullSink;
        sink.emit(&sample_request(0, RequestClass::Miss, None));
    }

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let mut sink = RingBufferSink::new(2);
        for seq in 0..5 {
            sink.emit(&sample_request(seq, RequestClass::Miss, None));
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.total_emitted(), 5);
        let seqs: Vec<u64> = sink
            .events()
            .map(|e| match e {
                Event::Request { seq, .. } => *seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&sample_request(0, RequestClass::LocalHit, None));
        sink.emit(&sample_request(1, RequestClass::Miss, Some(146_000)));
        assert_eq!(sink.lines(), 2);
        let lines = sink.finish().unwrap();
        assert_eq!(lines, 2);
    }

    #[test]
    fn jsonl_sink_output_is_parseable_lines() {
        let buf = Arc::new(Mutex::new(JsonlSink::new(Vec::new())));
        let handle = SinkHandle::from_arc(Arc::clone(&buf));
        handle.emit(&sample_request(7, RequestClass::RemoteHit, None));
        let guard = buf.lock().unwrap();
        assert_eq!(guard.lines(), 1);
    }

    #[test]
    fn histogram_sink_aggregates() {
        let mut sink = HistogramSink::new();
        sink.emit(&sample_request(0, RequestClass::LocalHit, Some(100)));
        sink.emit(&sample_request(1, RequestClass::RemoteHit, Some(300)));
        sink.emit(&sample_request(2, RequestClass::Miss, None));
        sink.emit(&Event::Placement {
            cache: CacheId::new(0),
            doc: DocId::new(1),
            role: PlacementRole::RequesterStore,
            self_age: ExpirationAge::Infinite,
            peer_age: ExpirationAge::Infinite,
            stored: false,
            tie: true,
        });
        sink.emit(&Event::Eviction {
            cache: CacheId::new(0),
            doc: DocId::new(2),
            age_ms: 512,
            cause: EvictionCause::Capacity,
        });
        assert_eq!(sink.count(EventKind::Request), 3);
        assert_eq!(sink.request_split(), (1, 1, 1));
        assert_eq!(sink.placement_split(), (0, 1));
        assert_eq!(sink.placement_ties(), 1);
        assert_eq!(sink.request_latency_us.count(), 2);
        assert_eq!(sink.eviction_age_ms.count(), 1);
        let summary = sink.render_summary();
        assert!(summary.contains("request"));
        assert!(summary.contains("1 ties"));
    }

    #[test]
    fn sink_handle_clones_share_the_sink() {
        let ring = Arc::new(Mutex::new(RingBufferSink::new(8)));
        let a = SinkHandle::from_arc(Arc::clone(&ring));
        let b = a.clone();
        a.emit(&sample_request(0, RequestClass::Miss, None));
        b.emit(&sample_request(1, RequestClass::Miss, None));
        assert_eq!(ring.lock().unwrap().total_emitted(), 2);
    }

    #[test]
    fn mute_sheds_request_scoped_kinds_only() {
        let ring = Arc::new(Mutex::new(RingBufferSink::new(8)));
        let handle = SinkHandle::from_arc(Arc::clone(&ring));
        let eviction = Event::Eviction {
            cache: CacheId::new(0),
            doc: DocId::new(2),
            age_ms: 512,
            cause: EvictionCause::Capacity,
        };
        {
            let _mute = crate::mute_request_scoped();
            handle.emit(&sample_request(0, RequestClass::Miss, None));
            handle.emit(&eviction);
        }
        handle.emit(&sample_request(1, RequestClass::Miss, None));
        let kinds: Vec<EventKind> = ring.lock().unwrap().events().map(Event::kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::Eviction, EventKind::Request],
            "muted scope drops request-scoped kinds, keeps health kinds"
        );
    }

    #[test]
    fn mute_guards_nest_and_restore() {
        let ring = Arc::new(Mutex::new(RingBufferSink::new(8)));
        let handle = SinkHandle::from_arc(Arc::clone(&ring));
        {
            let _outer = crate::mute_request_scoped();
            {
                let _inner = crate::mute_request_scoped();
            }
            // The inner guard's drop must not lift the outer mute.
            handle.emit(&sample_request(0, RequestClass::Miss, None));
        }
        handle.emit(&sample_request(1, RequestClass::Miss, None));
        assert_eq!(ring.lock().unwrap().total_emitted(), 1);
    }
}
