//! Fixed-capacity time series over the live stats plane.
//!
//! The [`StatsRegistry`](crate::StatsRegistry) answers "what are the
//! counters *now*"; this module records how they *evolve*. A
//! [`SeriesRecorder`] accumulates per-kind event counts and request
//! latencies, and emits one [`SeriesPoint`] per elapsed sampling
//! interval into a [`SeriesRing`] — a bounded ring buffer whose JSON
//! form is the `OP_SERIES` wire body. Points carry cumulative counters
//! (rates are derived from deltas at render time), the cumulative
//! latency snapshot, cache occupancy, the live expiration age (paper
//! eq. 5) and the quarantine count.
//!
//! Determinism contract: a recorder is a pure function of the
//! `(time, event)` stream it observes. The DES drives it with simulated
//! time and the [`SeriesReplayer`] with span timestamps read back from
//! a JSONL file, so both produce byte-identical series for the same
//! seed; only the live daemons' wall-clock sampler threads are
//! nondeterministic, and they use the same point format.

use crate::event::{Event, EventKind, RequestClass, EVENT_KINDS};
use crate::histogram::{Histogram, HistogramSnapshot};
use crate::json::{parse_json, JsonParseError, JsonValue, JsonWriter};
use coopcache_types::CacheId;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default number of points a series ring retains.
pub const DEFAULT_SERIES_CAPACITY: usize = 120;

/// Largest ring capacity accepted when decoding a series body — a
/// corrupt or hostile `capacity` field cannot force a huge allocation.
const MAX_SERIES_CAPACITY: usize = 4_096;

/// Instantaneous gauge values attached to a sample: everything in a
/// point that is *not* derived from the event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SeriesGauges {
    /// Documents resident in the cache.
    pub docs: u64,
    /// Bytes used.
    pub used_bytes: u64,
    /// Configured capacity in bytes.
    pub capacity_bytes: u64,
    /// Live cache expiration age (paper eq. 5), `None` while infinite.
    pub expiration_age_ms: Option<u64>,
    /// Peers currently quarantined by this node.
    pub quarantined: u64,
}

/// One periodic sample of a node's live state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Sample time in milliseconds (virtual under the DES and replay,
    /// clock-relative on a live daemon).
    pub t_ms: u64,
    /// Cumulative per-kind event counts, [`EVENT_KINDS`] order.
    pub counters: [u64; EVENT_KINDS.len()],
    /// Cumulative requests served from this node's own cache — with
    /// [`Self::remote_hits`], the hit split behind the alert plane's
    /// hit-rate metric (the counters array only carries totals).
    pub local_hits: u64,
    /// Cumulative requests served by a peer in the group.
    pub remote_hits: u64,
    /// Cumulative request-latency snapshot, `None` before any request.
    pub latency: Option<HistogramSnapshot>,
    /// Documents resident at sample time.
    pub docs: u64,
    /// Bytes used at sample time.
    pub used_bytes: u64,
    /// Configured capacity in bytes.
    pub capacity_bytes: u64,
    /// Live expiration age, `None` while infinite.
    pub expiration_age_ms: Option<u64>,
    /// Quarantined peer count at sample time.
    pub quarantined: u64,
}

impl SeriesPoint {
    fn zero(t_ms: u64) -> Self {
        Self {
            t_ms,
            counters: [0; EVENT_KINDS.len()],
            local_hits: 0,
            remote_hits: 0,
            latency: None,
            docs: 0,
            used_bytes: 0,
            capacity_bytes: 0,
            expiration_age_ms: None,
            quarantined: 0,
        }
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("t_ms");
        w.u64(self.t_ms);
        w.key("counters");
        w.begin_object();
        for kind in EVENT_KINDS {
            w.key(kind.name());
            w.u64(self.counters[kind.index()]);
        }
        w.end_object();
        w.key("hits");
        w.begin_object();
        w.key("local");
        w.u64(self.local_hits);
        w.key("remote");
        w.u64(self.remote_hits);
        w.end_object();
        w.key("latency");
        match &self.latency {
            Some(snapshot) => snapshot.write_json_us(w),
            None => w.null(),
        }
        w.key("occupancy");
        w.begin_object();
        w.key("docs");
        w.u64(self.docs);
        w.key("used_bytes");
        w.u64(self.used_bytes);
        w.key("capacity_bytes");
        w.u64(self.capacity_bytes);
        w.end_object();
        w.key("expiration_age_ms");
        w.opt_u64(self.expiration_age_ms);
        w.key("quarantined");
        w.u64(self.quarantined);
        w.end_object();
    }

    fn from_json(value: &JsonValue) -> Option<Self> {
        let counters_obj = value.get("counters")?;
        let mut counters = [0u64; EVENT_KINDS.len()];
        for kind in EVENT_KINDS {
            counters[kind.index()] = counters_obj.get(kind.name())?.as_u64()?;
        }
        let hits = value.get("hits")?;
        let latency = match value.get("latency")? {
            JsonValue::Null => None,
            v => Some(HistogramSnapshot::from_json_us(v)?),
        };
        let occupancy = value.get("occupancy")?;
        let expiration_age_ms = match value.get("expiration_age_ms")? {
            JsonValue::Null => None,
            v => Some(v.as_u64()?),
        };
        Some(Self {
            t_ms: value.get("t_ms")?.as_u64()?,
            counters,
            local_hits: hits.get("local")?.as_u64()?,
            remote_hits: hits.get("remote")?.as_u64()?,
            latency,
            docs: occupancy.get("docs")?.as_u64()?,
            used_bytes: occupancy.get("used_bytes")?.as_u64()?,
            capacity_bytes: occupancy.get("capacity_bytes")?.as_u64()?,
            expiration_age_ms,
            quarantined: value.get("quarantined")?.as_u64()?,
        })
    }
}

/// A bounded ring of [`SeriesPoint`]s for one node; pushing past
/// capacity drops the oldest point.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesRing {
    cache: CacheId,
    interval_ms: u64,
    capacity: usize,
    points: Vec<SeriesPoint>,
}

impl SeriesRing {
    /// Creates an empty ring. The interval is clamped to at least 1 ms
    /// and the capacity to `1..=4096`.
    #[must_use]
    pub fn new(cache: CacheId, interval_ms: u64, capacity: usize) -> Self {
        Self {
            cache,
            interval_ms: interval_ms.max(1),
            capacity: capacity.clamp(1, MAX_SERIES_CAPACITY),
            points: Vec::new(),
        }
    }

    /// The node this series belongs to.
    #[must_use]
    pub const fn cache(&self) -> CacheId {
        self.cache
    }

    /// The sampling interval in milliseconds.
    #[must_use]
    pub const fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// Maximum number of retained points.
    #[must_use]
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained points, oldest first.
    #[must_use]
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// Number of retained points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no point has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Appends a point, evicting the oldest once at capacity.
    pub fn push(&mut self, point: SeriesPoint) {
        if self.points.len() >= self.capacity {
            self.points.remove(0);
        }
        self.points.push(point);
    }

    /// Encodes the ring as one deterministic JSON document — the
    /// `OP_SERIES` response body.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("cache");
        w.u64(u64::from(self.cache.as_u16()));
        w.key("interval_ms");
        w.u64(self.interval_ms);
        w.key("capacity");
        w.u64(self.capacity as u64);
        w.key("points");
        w.begin_array();
        for point in &self.points {
            point.write_json(&mut w);
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Decodes a document written by [`Self::to_json`]. Structural
    /// problems (missing or mistyped fields) are reported as parse
    /// errors; excess points beyond the declared capacity keep only the
    /// newest.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] for malformed JSON or a well-formed
    /// document that is not a series body.
    pub fn from_json(text: &str) -> Result<Self, JsonParseError> {
        const MALFORMED: JsonParseError = JsonParseError {
            offset: 0,
            what: "malformed series body",
        };
        let value = parse_json(text)?;
        let decode = || -> Option<SeriesRing> {
            let cache = u16::try_from(value.get("cache")?.as_u64()?).ok()?;
            let mut ring = SeriesRing::new(
                CacheId::new(cache),
                value.get("interval_ms")?.as_u64()?,
                usize::try_from(value.get("capacity")?.as_u64()?).ok()?,
            );
            for raw in value.get("points")?.as_array()? {
                ring.push(SeriesPoint::from_json(raw)?);
            }
            Some(ring)
        };
        decode().ok_or(MALFORMED)
    }
}

/// Accumulates events and emits interval-boundary samples into a ring.
#[derive(Debug, Clone)]
pub struct SeriesRecorder {
    counters: [u64; EVENT_KINDS.len()],
    local_hits: u64,
    remote_hits: u64,
    latency: Histogram,
    next_t_ms: u64,
    ring: SeriesRing,
}

impl SeriesRecorder {
    /// Creates a recorder whose first sample lands at `interval_ms`.
    #[must_use]
    pub fn new(cache: CacheId, interval_ms: u64, capacity: usize) -> Self {
        let ring = SeriesRing::new(cache, interval_ms, capacity);
        Self {
            counters: [0; EVENT_KINDS.len()],
            local_hits: 0,
            remote_hits: 0,
            latency: Histogram::new(),
            next_t_ms: ring.interval_ms(),
            ring,
        }
    }

    /// The node this recorder samples.
    #[must_use]
    pub const fn cache(&self) -> CacheId {
        self.ring.cache()
    }

    /// Counts one event of `kind`.
    pub fn observe_kind(&mut self, kind: EventKind) {
        let slot = &mut self.counters[kind.index()];
        *slot = slot.saturating_add(1);
    }

    /// Records one measured request latency.
    pub fn record_latency_us(&mut self, us: u64) {
        self.latency.record(us);
    }

    /// Counts one served request toward the cumulative hit split.
    pub fn observe_request_class(&mut self, class: RequestClass) {
        match class {
            RequestClass::LocalHit => self.local_hits = self.local_hits.saturating_add(1),
            RequestClass::RemoteHit => self.remote_hits = self.remote_hits.saturating_add(1),
            RequestClass::Miss => {}
        }
    }

    /// Counts one event, folding in its measured latency and hit class
    /// when it is a completed request.
    pub fn observe(&mut self, event: &Event) {
        self.observe_kind(event.kind());
        if let Event::Request {
            class, latency_us, ..
        } = event
        {
            self.observe_request_class(*class);
            if let Some(us) = latency_us {
                self.latency.record(*us);
            }
        }
    }

    /// Advances the sampling clock to `now_ms`, emitting one point per
    /// crossed interval boundary with the supplied gauge values. Pure in
    /// its inputs: same event stream + same advance calls → the same
    /// ring, byte for byte.
    pub fn advance(&mut self, now_ms: u64, gauges: SeriesGauges) {
        self.advance_with(now_ms, gauges, |_| {});
    }

    /// Like [`Self::advance`], invoking `visit` on each boundary point
    /// before it lands in the ring — how drivers feed the same points
    /// into an [`AlertEngine`](crate::AlertEngine) without re-reading
    /// (and possibly missing, after eviction) ring contents.
    pub fn advance_with(
        &mut self,
        now_ms: u64,
        gauges: SeriesGauges,
        mut visit: impl FnMut(&SeriesPoint),
    ) {
        while self.next_t_ms <= now_ms {
            let latency = if self.latency.is_empty() {
                None
            } else {
                Some(self.latency.snapshot())
            };
            let point = SeriesPoint {
                t_ms: self.next_t_ms,
                counters: self.counters,
                local_hits: self.local_hits,
                remote_hits: self.remote_hits,
                latency,
                docs: gauges.docs,
                used_bytes: gauges.used_bytes,
                capacity_bytes: gauges.capacity_bytes,
                expiration_age_ms: gauges.expiration_age_ms,
                quarantined: gauges.quarantined,
            };
            visit(&point);
            self.ring.push(point);
            self.next_t_ms = self.next_t_ms.saturating_add(self.ring.interval_ms());
        }
    }

    /// The time of the next sample boundary, in milliseconds. Callers
    /// that must fetch gauge values before [`Self::advance`] can skip
    /// the fetch while `now_ms` is still short of this.
    #[must_use]
    pub const fn next_sample_ms(&self) -> u64 {
        self.next_t_ms
    }

    /// The ring recorded so far.
    #[must_use]
    pub fn ring(&self) -> &SeriesRing {
        &self.ring
    }

    /// Consumes the recorder, returning its ring.
    #[must_use]
    pub fn into_ring(self) -> SeriesRing {
        self.ring
    }
}

/// The node an event is attributed to for series accounting: the acting
/// cache for most kinds, the querier for ICP traffic, `None` for the
/// synchronous runner's group-wide window rollovers.
#[must_use]
pub fn event_cache(event: &Event) -> Option<CacheId> {
    match event {
        Event::Request { cache, .. }
        | Event::Placement { cache, .. }
        | Event::Eviction { cache, .. }
        | Event::PeerFault { cache, .. }
        | Event::Failover { cache, .. }
        | Event::PeerQuarantined { cache, .. }
        | Event::ServerLoopError { cache, .. }
        | Event::ConnReused { cache, .. }
        | Event::AdmissionShed { cache, .. }
        | Event::Alert { cache, .. } => Some(*cache),
        Event::IcpQuery { from, .. } | Event::IcpReply { from, .. } => Some(*from),
        Event::Span(span) => Some(span.cache),
        Event::WindowRollover { .. } => None,
    }
}

/// Rebuilds per-node series offline from a JSONL event stream.
///
/// The replay clock is driven by span timestamps (`end_us`), the only
/// absolute times an event stream carries; every recorder advances in
/// lockstep whenever the clock moves, so rings from one file always
/// align on `t_ms`. Gauges are not reconstructable from events and stay
/// zero. Replaying the same bytes always yields the same rings.
#[derive(Debug)]
pub struct SeriesReplayer {
    interval_ms: u64,
    capacity: usize,
    now_ms: u64,
    recorders: BTreeMap<u16, SeriesRecorder>,
}

impl SeriesReplayer {
    /// Creates a replayer sampling every `interval_ms` (clamped ≥ 1).
    #[must_use]
    pub fn new(interval_ms: u64, capacity: usize) -> Self {
        Self {
            interval_ms: interval_ms.max(1),
            capacity,
            now_ms: 0,
            recorders: BTreeMap::new(),
        }
    }

    /// Folds one JSONL event line in.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] for lines that do not parse or are
    /// not tagged with a known `"ev"` kind.
    pub fn observe_json_line(&mut self, line: &str) -> Result<(), JsonParseError> {
        let value = parse_json(line)?;
        let kind = value
            .get("ev")
            .and_then(JsonValue::as_str)
            .and_then(EventKind::from_name)
            .ok_or(JsonParseError {
                offset: 0,
                what: "not a coopcache event line",
            })?;
        if kind == EventKind::Span {
            if let Some(end_us) = value.get("end_us").and_then(JsonValue::as_u64) {
                let t = end_us / 1_000;
                if t > self.now_ms {
                    self.now_ms = t;
                    for recorder in self.recorders.values_mut() {
                        recorder.advance(t, SeriesGauges::default());
                    }
                }
            }
        }
        let cache = ["cache", "from"]
            .iter()
            .find_map(|k| value.get(k).and_then(JsonValue::as_u64))
            .and_then(|c| u16::try_from(c).ok());
        let Some(cache) = cache else {
            return Ok(()); // group-wide events carry no node to bill
        };
        let (interval_ms, capacity, now_ms) = (self.interval_ms, self.capacity, self.now_ms);
        let recorder = self.recorders.entry(cache).or_insert_with(|| {
            let mut r = SeriesRecorder::new(CacheId::new(cache), interval_ms, capacity);
            r.advance(now_ms, SeriesGauges::default()); // backfill for alignment
            r
        });
        recorder.observe_kind(kind);
        if kind == EventKind::Request {
            if let Some(us) = value.get("latency_us").and_then(JsonValue::as_u64) {
                recorder.record_latency_us(us);
            }
            if let Some(class) = value
                .get("class")
                .and_then(JsonValue::as_str)
                .and_then(RequestClass::from_name)
            {
                recorder.observe_request_class(class);
            }
        }
        Ok(())
    }

    /// Folds every line of a JSONL document in, skipping blanks and
    /// stopping at the first malformed line.
    ///
    /// # Errors
    ///
    /// Propagates the first [`JsonParseError`].
    pub fn observe_jsonl(&mut self, text: &str) -> Result<(), JsonParseError> {
        for line in text.lines() {
            if !line.trim().is_empty() {
                self.observe_json_line(line)?;
            }
        }
        Ok(())
    }

    /// Finishes the replay: emits the final boundary samples and
    /// returns one ring per node, ascending by cache id.
    #[must_use]
    pub fn finish(mut self) -> Vec<SeriesRing> {
        let now = self.now_ms;
        for recorder in self.recorders.values_mut() {
            recorder.advance(now, SeriesGauges::default());
        }
        self.recorders
            .into_values()
            .map(SeriesRecorder::into_ring)
            .collect()
    }
}

/// Sums per-node rings into one group-wide point list aligned on
/// `t_ms`. Counters, occupancy and quarantine counts add; the
/// expiration age becomes the mean of the finite per-node ages; latency
/// snapshots do not merge (quantiles are not additive) so the aggregate
/// carries `None`.
#[must_use]
pub fn aggregate_points(rings: &[SeriesRing]) -> Vec<SeriesPoint> {
    let mut by_t: BTreeMap<u64, (SeriesPoint, u64, u64)> = BTreeMap::new();
    for ring in rings {
        for p in ring.points() {
            let (acc, finite, age_sum) = by_t
                .entry(p.t_ms)
                .or_insert_with(|| (SeriesPoint::zero(p.t_ms), 0, 0));
            for (slot, add) in acc.counters.iter_mut().zip(p.counters.iter()) {
                *slot = slot.saturating_add(*add);
            }
            acc.local_hits = acc.local_hits.saturating_add(p.local_hits);
            acc.remote_hits = acc.remote_hits.saturating_add(p.remote_hits);
            acc.docs = acc.docs.saturating_add(p.docs);
            acc.used_bytes = acc.used_bytes.saturating_add(p.used_bytes);
            acc.capacity_bytes = acc.capacity_bytes.saturating_add(p.capacity_bytes);
            acc.quarantined = acc.quarantined.saturating_add(p.quarantined);
            if let Some(age) = p.expiration_age_ms {
                *finite += 1;
                *age_sum = age_sum.saturating_add(age);
            }
        }
    }
    by_t.into_values()
        .map(|(mut p, finite, age_sum)| {
            if let Some(mean) = age_sum.checked_div(finite) {
                p.expiration_age_ms = Some(mean);
            }
            p
        })
        .collect()
}

/// Events-per-second over the window ending at `cur`, derived from the
/// cumulative counter delta against `prev` (all-zero when `cur` is the
/// first point).
fn rate(cur: &SeriesPoint, prev: Option<&SeriesPoint>, kind: EventKind, interval_ms: u64) -> f64 {
    let before = prev.map_or(0, |p| p.counters[kind.index()]);
    let delta = cur.counters[kind.index()].saturating_sub(before);
    delta as f64 * 1_000.0 / interval_ms.max(1) as f64
}

fn push_cells(out: &mut String, label: &str, cells: &[String]) {
    let _ = write!(out, "{label:<6}");
    for cell in cells {
        let _ = write!(out, "  {cell:>8}");
    }
    out.push('\n');
}

fn row_cells(points: &[SeriesPoint], interval_ms: u64, with_gauges: bool) -> Vec<String> {
    let Some(cur) = points.last() else {
        let n = if with_gauges { 11 } else { 6 };
        return vec!["-".to_owned(); n];
    };
    let prev = points.len().checked_sub(2).and_then(|i| points.get(i));
    let mut cells = vec![
        format!("{:.1}", rate(cur, prev, EventKind::Request, interval_ms)),
        format!("{:.1}", rate(cur, prev, EventKind::IcpQuery, interval_ms)),
        format!("{:.1}", rate(cur, prev, EventKind::Placement, interval_ms)),
        format!("{:.1}", rate(cur, prev, EventKind::Eviction, interval_ms)),
        format!("{:.1}", rate(cur, prev, EventKind::PeerFault, interval_ms)),
        cur.latency
            .map_or_else(|| "-".to_owned(), |l| (l.p50 / 1_000).to_string()),
    ];
    if with_gauges {
        cells.push(cur.docs.to_string());
        cells.push((cur.used_bytes / 1_024).to_string());
        cells.push((cur.capacity_bytes / 1_024).to_string());
        cells.push(
            cur.expiration_age_ms
                .map_or_else(|| "-".to_owned(), |a| a.to_string()),
        );
        cells.push(cur.quarantined.to_string());
    }
    cells
}

/// How many trailing aggregate points the history section shows.
const HISTORY_POINTS: usize = 12;

/// Renders the `coopcache top` dashboard: one row per node (latest
/// sample; rates over the last interval) plus a `group` row, then a
/// short group-wide history. A pure function of the rings — identical
/// input renders byte-identical output. `with_gauges` adds the
/// occupancy/age/quarantine columns, which replayed series cannot
/// reconstruct and therefore omit.
#[must_use]
pub fn render_top(rings: &[SeriesRing], with_gauges: bool) -> String {
    let mut out = String::new();
    let interval_ms = rings.iter().map(SeriesRing::interval_ms).max().unwrap_or(1);
    let samples: usize = rings.iter().map(SeriesRing::len).sum();
    let _ = writeln!(
        out,
        "series: {} node(s), interval {} ms, {} sample(s)",
        rings.len(),
        interval_ms,
        samples
    );
    let mut headers = vec!["req/s", "icp/s", "plc/s", "evt/s", "flt/s", "p50_ms"];
    if with_gauges {
        headers.extend(["docs", "used_kb", "cap_kb", "ea_ms", "quar"]);
    }
    push_cells(
        &mut out,
        "cache",
        &headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>(),
    );
    for ring in rings {
        push_cells(
            &mut out,
            &ring.cache().as_u16().to_string(),
            &row_cells(ring.points(), ring.interval_ms(), with_gauges),
        );
    }
    let group = aggregate_points(rings);
    push_cells(
        &mut out,
        "group",
        &row_cells(&group, interval_ms, with_gauges),
    );
    if group.len() > 1 {
        let _ = writeln!(out, "\ngroup history (req/s, evt/s per window):");
        let start = group.len().saturating_sub(HISTORY_POINTS);
        for (i, point) in group.iter().enumerate().skip(start) {
            let prev = i.checked_sub(1).and_then(|j| group.get(j));
            let _ = writeln!(
                out,
                "{:>8}  {:>8.1}  {:>8.1}",
                point.t_ms,
                rate(point, prev, EventKind::Request, interval_ms),
                rate(point, prev, EventKind::Eviction, interval_ms),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RequestClass;
    use coopcache_types::DocId;

    fn request_event(cache: u16, latency_us: Option<u64>) -> Event {
        Event::Request {
            seq: 0,
            cache: CacheId::new(cache),
            doc: DocId::new(1),
            class: RequestClass::LocalHit,
            responder: None,
            stored: false,
            latency_us,
        }
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let mut ring = SeriesRing::new(CacheId::new(0), 100, 3);
        for t in 1..=5u64 {
            ring.push(SeriesPoint::zero(t * 100));
        }
        assert_eq!(ring.len(), 3);
        let times: Vec<u64> = ring.points().iter().map(|p| p.t_ms).collect();
        assert_eq!(times, vec![300, 400, 500]);
    }

    #[test]
    fn ring_json_roundtrip_is_byte_stable() {
        let mut recorder = SeriesRecorder::new(CacheId::new(2), 250, 8);
        recorder.observe(&request_event(2, Some(1_500)));
        recorder.observe_kind(EventKind::Eviction);
        recorder.advance(
            500,
            SeriesGauges {
                docs: 3,
                used_bytes: 9_216,
                capacity_bytes: 131_072,
                expiration_age_ms: Some(42),
                quarantined: 1,
            },
        );
        let ring = recorder.into_ring();
        assert_eq!(ring.len(), 2);
        let json = ring.to_json();
        assert!(json.starts_with(r#"{"cache":2,"interval_ms":250,"capacity":8,"points":["#));
        let back = SeriesRing::from_json(&json).expect("roundtrip");
        assert_eq!(back, ring);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(SeriesRing::from_json("{not json").is_err());
        assert!(SeriesRing::from_json(r#"{"cache":0}"#).is_err());
        assert!(SeriesRing::from_json(
            r#"{"cache":"zero","interval_ms":1,"capacity":1,"points":[]}"#
        )
        .is_err());
    }

    #[test]
    fn recorder_emits_one_point_per_boundary() {
        let mut recorder = SeriesRecorder::new(CacheId::new(0), 100, 16);
        recorder.observe_kind(EventKind::Request);
        recorder.advance(350, SeriesGauges::default());
        let points = recorder.ring().points();
        let times: Vec<u64> = points.iter().map(|p| p.t_ms).collect();
        assert_eq!(times, vec![100, 200, 300]);
        // Counters are cumulative: every emitted point sees the count.
        assert!(points
            .iter()
            .all(|p| p.counters[EventKind::Request.index()] == 1));
        // No boundary crossed → no new point.
        recorder.advance(399, SeriesGauges::default());
        assert_eq!(recorder.ring().len(), 3);
    }

    #[test]
    fn replayer_builds_aligned_rings_from_jsonl() {
        use crate::span::{Span, SpanKind};
        let span = |cache: u16, end_us: u64| {
            Event::Span(Span {
                trace_id: 1,
                span_id: u64::from(cache) + 1,
                parent: None,
                cache: CacheId::new(cache),
                kind: SpanKind::Request,
                doc: None,
                peer: None,
                start_us: 0,
                end_us,
                status: "miss",
            })
        };
        let lines = [
            request_event(0, Some(2_000)).to_json(),
            span(0, 150_000).to_json(),
            request_event(1, None).to_json(),
            span(1, 410_000).to_json(),
        ];
        let text = lines.join("\n");
        let replay = |txt: &str| {
            let mut r = SeriesReplayer::new(100, 32);
            r.observe_jsonl(txt).expect("well-formed");
            r.finish()
        };
        let rings = replay(&text);
        assert_eq!(rings.len(), 2);
        assert_eq!(rings[0].cache(), CacheId::new(0));
        assert_eq!(rings[1].cache(), CacheId::new(1));
        // Clock reached 410 ms → both rings sample boundaries 100..=400.
        assert_eq!(rings[0].len(), 4);
        assert_eq!(rings[1].len(), 4);
        // Cache 0 saw its request before t=100; cache 1's request+span
        // arrive after the 100 ms boundary backfill.
        assert_eq!(rings[0].points()[0].counters[EventKind::Request.index()], 1);
        // Same bytes → byte-identical rings.
        let again = replay(&text);
        let json = |rs: &[SeriesRing]| rs.iter().map(SeriesRing::to_json).collect::<Vec<_>>();
        assert_eq!(json(&rings), json(&again));
        // Malformed lines are typed errors, never panics.
        let mut bad = SeriesReplayer::new(100, 32);
        assert!(bad.observe_json_line("{oops").is_err());
        assert!(bad.observe_json_line(r#"{"ev":"martian"}"#).is_err());
    }

    #[test]
    fn aggregate_sums_counters_and_averages_ages() {
        let mut a = SeriesRing::new(CacheId::new(0), 100, 4);
        let mut b = SeriesRing::new(CacheId::new(1), 100, 4);
        let mut pa = SeriesPoint::zero(100);
        pa.counters[EventKind::Request.index()] = 4;
        pa.docs = 2;
        pa.expiration_age_ms = Some(100);
        let mut pb = SeriesPoint::zero(100);
        pb.counters[EventKind::Request.index()] = 6;
        pb.docs = 3;
        pb.expiration_age_ms = Some(300);
        a.push(pa);
        b.push(pb);
        let group = aggregate_points(&[a, b]);
        assert_eq!(group.len(), 1);
        assert_eq!(group[0].counters[EventKind::Request.index()], 10);
        assert_eq!(group[0].docs, 5);
        assert_eq!(group[0].expiration_age_ms, Some(200));
        assert_eq!(group[0].latency, None);
    }

    #[test]
    fn render_top_is_deterministic_and_labels_rows() {
        let mut recorder = SeriesRecorder::new(CacheId::new(0), 100, 8);
        recorder.observe(&request_event(0, Some(3_000)));
        recorder.advance(200, SeriesGauges::default());
        let rings = vec![recorder.into_ring()];
        let a = render_top(&rings, true);
        let b = render_top(&rings, true);
        assert_eq!(a, b);
        assert!(a.contains("cache"), "{a}");
        assert!(a.contains("group"), "{a}");
        assert!(a.contains("req/s"), "{a}");
        // Gauge columns only when asked for.
        let lean = render_top(&rings, false);
        assert!(!lean.contains("used_kb"), "{lean}");
        // Empty rings render placeholder rows, never panic.
        let empty = render_top(&[SeriesRing::new(CacheId::new(7), 50, 4)], true);
        assert!(empty.contains('7'), "{empty}");
    }
}
