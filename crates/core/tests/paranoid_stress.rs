//! Randomized stress test for the `paranoid` invariant audits.
//!
//! Only built with `cargo test -p coopcache-core --features paranoid`.
//! Every mutation re-runs `Cache::check_invariants` internally (the
//! `audit` hook), so the test's job is simply to drive a long, varied,
//! *reproducible* operation mix through every replacement policy: any
//! bookkeeping drift panics with the precise violated relation.

#![cfg(feature = "paranoid")]

use coopcache_core::{CacheConfig, ExpirationWindow, PolicyKind};
use coopcache_types::{ByteSize, CacheId, DocId, DurationMs, Timestamp};

/// Xorshift64*: tiny, deterministic, no dependencies. Seed must be
/// non-zero.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn stress(kind: PolicyKind, window: ExpirationWindow, seed: u64, ops: u64) {
    stress_sharded(kind, window, seed, ops, 1);
}

fn stress_sharded(kind: PolicyKind, window: ExpirationWindow, seed: u64, ops: u64, shards: usize) {
    let mut cache = CacheConfig::new(CacheId::new(0), ByteSize::from_kb(64), kind)
        .window(window)
        .shards(shards)
        .build();
    let mut rng = Rng(seed);
    let mut now_ms = 0u64;
    for op in 0..ops {
        now_ms += rng.below(50);
        let now = Timestamp::from_millis(now_ms);
        let doc = DocId::new(1 + rng.below(200));
        match rng.below(100) {
            0..=39 => {
                let size = ByteSize::from_bytes(1 + rng.below(8 * 1024));
                cache.insert(doc, size, now);
            }
            40..=69 => {
                cache.lookup(doc, now);
            }
            70..=84 => {
                cache.serve_remote(doc, now, rng.below(2) == 0);
            }
            85..=94 => {
                cache.remove(doc, now);
            }
            _ => {
                // Occasionally toggle a freshness TTL so the expiration
                // path (which bypasses the eviction tracker) is stressed
                // alongside capacity evictions.
                let ttl = match rng.below(3) {
                    0 => None,
                    _ => Some(DurationMs::from_millis(1 + rng.below(2_000))),
                };
                cache.set_ttl(ttl);
            }
        }
        if op % 512 == 0 {
            cache
                .check_invariants()
                .unwrap_or_else(|v| panic!("{kind} after {op} ops: {v}"));
        }
    }
    cache
        .check_invariants()
        .unwrap_or_else(|v| panic!("{kind} final state: {v}"));
    assert!(cache.used() <= cache.capacity());
}

#[test]
fn every_policy_survives_a_seeded_random_workout() {
    for (i, kind) in PolicyKind::all().into_iter().enumerate() {
        stress(
            kind,
            ExpirationWindow::default(),
            0x9E37_79B9_7F4A_7C15 ^ (i as u64 + 1),
            20_000,
        );
    }
}

#[test]
fn duration_windows_are_audited_too() {
    for (i, kind) in PolicyKind::all().into_iter().enumerate() {
        stress(
            kind,
            ExpirationWindow::LastDuration(DurationMs::from_millis(500)),
            0xDEAD_BEEF_CAFE_F00D ^ (i as u64 + 1),
            10_000,
        );
    }
}

#[test]
fn sharded_stores_are_audited_per_shard() {
    for (i, kind) in PolicyKind::all().into_iter().enumerate() {
        stress_sharded(
            kind,
            ExpirationWindow::default(),
            0x5EED_5EED_5EED_5EED ^ (i as u64 + 1),
            10_000,
            4,
        );
    }
}

#[test]
fn tiny_eviction_windows_stay_bounded() {
    stress(
        PolicyKind::Lru,
        ExpirationWindow::LastEvictions(1),
        42,
        10_000,
    );
    stress(
        PolicyKind::Slru,
        ExpirationWindow::LastEvictions(2),
        43,
        10_000,
    );
}
