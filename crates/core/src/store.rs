//! One shard of the arena-backed document store.
//!
//! A [`Shard`] owns a dense [`Slab`] of [`CacheEntry`] nodes, an
//! open-addressing [`DocTable`] mapping document hash → slot index, a
//! replacement policy, and the shard's slice of the expiration-age
//! bookkeeping. Lookup, insert and evict are pointer-free O(1) table/arena
//! operations (plus the policy's own O(1) or O(log n) bookkeeping) with
//! zero per-operation allocation once the backing vectors reach
//! steady-state capacity.
//!
//! [`crate::Cache`] composes N shards behind the original single-threaded
//! API; [`crate::ConcurrentCache`] wraps each shard in its own lock so
//! readers of different shards never serialize. All externally observable
//! iteration sorts by [`DocId`] before leaving the shard, keeping the
//! deterministic-order contract the `BTreeMap` store used to give for free.

use crate::cache::InvariantViolation;
use crate::entry::{CacheEntry, EvictionReason, EvictionRecord};
use crate::expiration::{ExpirationTracker, ExpirationWindow};
use crate::index::{DocTable, Slab};
use crate::policy::{PolicyKind, ReplacementPolicy};
use crate::stats::CacheStats;
use coopcache_types::{ByteSize, CacheId, DocId, DurationMs, Timestamp};

/// Outcome of a store attempt, minus the eviction list (which the caller
/// provides as a reusable buffer — see [`crate::Cache::insert_into`]).
///
/// [`crate::InsertOutcome`] is the allocating convenience wrapper built
/// from this plus the filled buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The document was stored (victims, if any, were pushed onto the
    /// caller's eviction buffer).
    Stored,
    /// The document was already cached; nothing changed.
    AlreadyPresent,
    /// The document is larger than the shard and was not stored.
    TooLarge,
}

impl StoreOutcome {
    /// True when the insert stored the document.
    #[must_use]
    pub fn is_stored(self) -> bool {
        matches!(self, Self::Stored)
    }
}

/// One independent slice of a cache: arena + table + policy + trackers.
#[derive(Debug)]
pub(crate) struct Shard {
    // Identity, read by the paranoid panic message only.
    #[cfg_attr(not(feature = "paranoid"), allow(dead_code))]
    cache_id: CacheId,
    #[cfg_attr(not(feature = "paranoid"), allow(dead_code))]
    index: usize,
    capacity: ByteSize,
    used: ByteSize,
    entries: Slab<CacheEntry>,
    table: DocTable,
    policy: Box<dyn ReplacementPolicy>,
    tracker: ExpirationTracker,
    stats: CacheStats,
    ttl: Option<DurationMs>,
    #[cfg(feature = "profile")]
    profile: crate::profile::ProfileSnapshot,
}

impl Shard {
    pub(crate) fn new(
        cache_id: CacheId,
        index: usize,
        capacity: ByteSize,
        policy: PolicyKind,
        window: ExpirationWindow,
        table_seed: u64,
    ) -> Self {
        Self {
            cache_id,
            index,
            capacity,
            used: ByteSize::ZERO,
            entries: Slab::new(),
            table: DocTable::new(table_seed),
            policy: policy.build(),
            tracker: ExpirationTracker::new(policy.expiration_flavor(), window),
            stats: CacheStats::default(),
            ttl: None,
            #[cfg(feature = "profile")]
            profile: crate::profile::ProfileSnapshot::default(),
        }
    }

    pub(crate) fn used(&self) -> ByteSize {
        self.used
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn policy_kind(&self) -> PolicyKind {
        self.policy.kind()
    }

    pub(crate) fn stats(&self) -> &CacheStats {
        &self.stats
    }

    pub(crate) fn tracker(&self) -> &ExpirationTracker {
        &self.tracker
    }

    pub(crate) fn set_ttl(&mut self, ttl: Option<DurationMs>) {
        self.ttl = ttl;
    }

    pub(crate) fn contains(&self, doc: DocId) -> bool {
        self.table.get(doc).is_some()
    }

    pub(crate) fn entry(&self, doc: DocId) -> Option<&CacheEntry> {
        self.table.get(doc).map(|idx| self.entries.get(idx))
    }

    /// Backing-vector growth events across arena, table and policy
    /// internals (0 once the shard reaches steady-state occupancy).
    pub(crate) fn growth_events(&self) -> u64 {
        self.entries.growth_events() + self.table.growth_events() + self.policy.growth_events()
    }

    fn entry_expired(&self, entry: &CacheEntry, now: Timestamp) -> bool {
        self.ttl
            .is_some_and(|ttl| now.saturating_since(entry.entered_at) > ttl)
    }

    fn expire(&mut self, doc: DocId) {
        let Some(idx) = self.table.remove(doc) else {
            return;
        };
        let entry = self.entries.free(idx);
        self.policy.on_remove(doc);
        self.used -= entry.size;
        self.stats.expirations += 1;
        // Intentionally NOT recorded in the expiration-age tracker, and no
        // `on_evicted` ghosting: a freshness discard says nothing about
        // capacity contention (paper eq. 5 measures disk pressure).
    }

    pub(crate) fn lookup(&mut self, doc: DocId, now: Timestamp) -> Option<ByteSize> {
        // One probe serves both the staleness check and the hit: the
        // stale branch is the rare one, so the hot path is a single
        // table probe plus one node access.
        match self.table.get(doc) {
            Some(idx) => {
                if self.entry_expired(self.entries.get(idx), now) {
                    self.expire(doc);
                    self.stats.local_misses += 1;
                    return None;
                }
                let entry = self.entries.get_mut(idx);
                entry.record_hit(now);
                let size = entry.size;
                self.policy.on_hit(doc);
                self.stats.local_hits += 1;
                Some(size)
            }
            None => {
                self.stats.local_misses += 1;
                None
            }
        }
    }

    pub(crate) fn serve_remote(
        &mut self,
        doc: DocId,
        now: Timestamp,
        promote: bool,
    ) -> Option<ByteSize> {
        let size = match self.table.get(doc) {
            Some(idx) => {
                if self.entry_expired(self.entries.get(idx), now) {
                    self.expire(doc);
                    return None;
                }
                let entry = self.entries.get_mut(idx);
                if promote {
                    entry.record_hit(now);
                }
                entry.size
            }
            None => return None,
        };
        if promote {
            self.policy.on_hit(doc);
        }
        self.stats.remote_serves += 1;
        Some(size)
    }

    /// Stores a document, pushing any victims onto `evictions`.
    ///
    /// The buffer is the caller's: a steady-state caller that reuses one
    /// buffer across inserts keeps the whole path allocation-free.
    pub(crate) fn insert(
        &mut self,
        doc: DocId,
        size: ByteSize,
        now: Timestamp,
        evictions: &mut Vec<EvictionRecord>,
    ) -> StoreOutcome {
        if self.table.get(doc).is_some() {
            return StoreOutcome::AlreadyPresent;
        }
        if size > self.capacity {
            self.stats.rejected_too_large += 1;
            return StoreOutcome::TooLarge;
        }
        while self.used + size > self.capacity {
            let victim = self
                .policy
                .victim()
                // lint:allow(panic) -- used > 0 here, and every insert keeps
                // the policy and entry arena in lockstep (paranoid-audited),
                // so a missing victim is unrecoverable bookkeeping corruption.
                .expect("used > 0 implies the policy tracks a victim");
            let record = self
                .evict(victim, now, EvictionReason::CapacityPressure)
                // lint:allow(panic) -- the victim came from the policy, which
                // mirrors the entry arena (see PolicyDesync invariant).
                .expect("victim is tracked, so it is cached");
            evictions.push(record);
        }
        let idx = self.entries.alloc(CacheEntry::new(doc, size, now));
        self.table.insert(doc, idx);
        self.policy.on_insert(doc, size);
        if let Some(gap) = self.policy.on_admit(doc, now) {
            // Ghost re-admission (S3-FIFO): the eviction→return gap is an
            // observed inter-reference gap, fed to the eq. 5 average.
            self.tracker.record_age(now, gap);
        }
        self.used += size;
        self.stats.insertions += 1;
        StoreOutcome::Stored
    }

    pub(crate) fn remove(&mut self, doc: DocId, now: Timestamp) -> Option<EvictionRecord> {
        let rec = self.evict(doc, now, EvictionReason::Explicit);
        if rec.is_some() {
            self.stats.explicit_removals += 1;
        }
        rec
    }

    fn evict(
        &mut self,
        doc: DocId,
        now: Timestamp,
        reason: EvictionReason,
    ) -> Option<EvictionRecord> {
        let timer = crate::profile::Timer::start();
        let record = self.evict_inner(doc, now, reason);
        self.record_profile(crate::profile::ProfileOp::Evict, timer);
        record
    }

    fn evict_inner(
        &mut self,
        doc: DocId,
        now: Timestamp,
        reason: EvictionReason,
    ) -> Option<EvictionRecord> {
        let idx = self.table.remove(doc)?;
        let entry = self.entries.free(idx);
        self.policy.on_remove(doc);
        self.used -= entry.size;
        let record = EvictionRecord {
            entry,
            evicted_at: now,
            reason,
        };
        self.tracker.record_eviction(&record);
        if reason == EvictionReason::CapacityPressure {
            self.stats.evictions += 1;
            self.stats.bytes_evicted += entry.size;
            // Capacity evictions (and only those) enter the policy's ghost
            // plane: explicit removals and TTL expirations are not
            // contention signals.
            self.policy.on_evicted(doc, now);
        }
        Some(record)
    }

    /// The shard's entries in ascending [`DocId`] order.
    ///
    /// Arena order is allocation history, not a semantic order, so every
    /// externally visible walk sorts first (the map-iter lint's
    /// open-addressing clause checks this pattern statically).
    pub(crate) fn sorted_entries(&self) -> Vec<&CacheEntry> {
        let mut out: Vec<&CacheEntry> = self.entries.iter_unordered().map(|(_, e)| e).collect();
        out.sort_unstable_by_key(|e| e.doc);
        out
    }

    /// Verifies the shard's bookkeeping relations (see
    /// [`crate::Cache::check_invariants`] for the list).
    pub(crate) fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let actual: ByteSize = self.sorted_entries().iter().map(|e| e.size).sum();
        if actual != self.used {
            return Err(InvariantViolation::ByteAccounting {
                used: self.used,
                actual,
            });
        }
        if self.used > self.capacity {
            return Err(InvariantViolation::OverCapacity {
                used: self.used,
                capacity: self.capacity,
            });
        }
        if self.table.len() != self.entries.len() {
            return Err(InvariantViolation::StoreDesync {
                table_len: self.table.len(),
                arena_len: self.entries.len(),
            });
        }
        if self.policy.len() != self.entries.len() {
            return Err(InvariantViolation::PolicyDesync {
                policy_len: self.policy.len(),
                entries_len: self.entries.len(),
            });
        }
        match self.policy.victim() {
            Some(victim) if self.table.get(victim).is_none() => {
                return Err(InvariantViolation::VictimNotCached { victim });
            }
            None if self.entries.len() > 0 => {
                return Err(InvariantViolation::VictimUnavailable);
            }
            _ => {}
        }
        if !self.tracker.window_is_consistent() {
            return Err(InvariantViolation::TrackerWindow);
        }
        Ok(())
    }

    /// Paranoid-mode hook: re-verifies every invariant after a mutation,
    /// including the arena freelist walk (which panics directly on
    /// corruption rather than returning a violation).
    #[inline]
    pub(crate) fn audit(&self) {
        #[cfg(feature = "paranoid")]
        {
            if let Err(violation) = self.check_invariants() {
                // lint:allow(panic) -- paranoid mode exists to crash loudly
                // on corruption; release builds compile this block out.
                panic!(
                    "cache {} shard {} invariant violated: {violation}",
                    self.cache_id, self.index
                );
            }
            self.entries.audit_freelist();
        }
    }

    /// Accounts one timed hot-path call; compiles to nothing without the
    /// `profile` feature.
    #[inline]
    pub(crate) fn record_profile(
        &mut self,
        op: crate::profile::ProfileOp,
        timer: crate::profile::Timer,
    ) {
        #[cfg(feature = "profile")]
        self.profile.record(op, timer.elapsed_ns());
        #[cfg(not(feature = "profile"))]
        let _ = (op, timer);
    }

    /// The shard's accumulated profile, with its growth counter folded in.
    #[cfg(feature = "profile")]
    pub(crate) fn profile(&self) -> crate::profile::ProfileSnapshot {
        let mut snap = self.profile;
        snap.growth_events = self.growth_events();
        snap
    }
}
