//! Index-linked storage primitives for the arena-backed cache core.
//!
//! Everything in this module works on dense `u32` slot indices instead of
//! heap pointers: a [`Slab`] arena with an intrusive freelist, an
//! open-addressing [`DocTable`] keyed by seeded document hash, an intrusive
//! doubly-linked [`List`] whose links live inside arena nodes, and a
//! [`KeyedMinHeap`] whose position backpointers live inside arena nodes.
//!
//! The combination makes lookup, eviction and promotion pointer-free O(1)
//! (O(log n) for the heap-ordered policies) with zero per-operation
//! allocation once the backing vectors reach steady-state capacity. Every
//! structure counts backing-vector growth events so the `bench-core` smoke
//! check can assert the hot path stopped allocating.

use coopcache_types::DocId;

/// Sentinel index meaning "no slot" (null link, empty bucket, absent pos).
pub(crate) const NIL: u32 = u32::MAX;

/// Multiplies the 64-bit key into a well-mixed hash (splitmix64 finalizer).
///
/// Used both for table bucketing and for seeded shard assignment; the seed
/// is XORed in by callers before mixing so runs stay reproducible while
/// distinct seeds decorrelate placements.
#[must_use]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A slot in a [`Slab`]: either a live node or a freelist link.
#[derive(Debug, Clone)]
enum Slot<T> {
    Used(T),
    Free { next: u32 },
}

/// Flat arena of nodes addressed by `u32` index, with an intrusive freelist.
///
/// Freed slots are recycled LIFO, so a steady-state workload (insert/evict
/// churn at constant occupancy) never grows the backing vector.
#[derive(Debug, Clone)]
pub(crate) struct Slab<T> {
    slots: Vec<Slot<T>>,
    free_head: u32,
    len: u32,
    growths: u64,
}

impl<T> Slab<T> {
    pub(crate) fn new() -> Self {
        Self {
            slots: Vec::new(),
            free_head: NIL,
            len: 0,
            growths: 0,
        }
    }

    #[cfg_attr(not(test), allow(dead_code))] // presizing hook for callers that know their load
    pub(crate) fn with_capacity(cap: usize) -> Self {
        Self {
            slots: Vec::with_capacity(cap),
            free_head: NIL,
            len: 0,
            growths: 0,
        }
    }

    /// Number of live nodes.
    pub(crate) fn len(&self) -> usize {
        self.len as usize
    }

    /// Times the backing vector had to reallocate (0 in steady state).
    pub(crate) fn growth_events(&self) -> u64 {
        self.growths
    }

    /// Stores `value`, recycling a freed slot when one exists.
    pub(crate) fn alloc(&mut self, value: T) -> u32 {
        self.len += 1;
        if self.free_head != NIL {
            let idx = self.free_head;
            match self.slots[idx as usize] {
                Slot::Free { next } => self.free_head = next,
                // lint:allow(panic) -- reached only on freelist corruption,
                // which the paranoid audit exists to catch loudly.
                Slot::Used(_) => unreachable!("freelist points at a live slot"),
            }
            self.slots[idx as usize] = Slot::Used(value);
            return idx;
        }
        // lint:allow(panic) -- a >4G-entry shard is outside the design
        // envelope (u32 indices are the point of the layout); overflow
        // here is misconfiguration, not a runtime condition to handle.
        let idx = u32::try_from(self.slots.len()).expect("slab exceeds u32 index space");
        if self.slots.len() == self.slots.capacity() {
            self.growths += 1;
        }
        self.slots.push(Slot::Used(value));
        idx
    }

    /// Releases slot `idx` back to the freelist, returning its value.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not a live slot.
    pub(crate) fn free(&mut self, idx: u32) -> T {
        let slot = std::mem::replace(
            &mut self.slots[idx as usize],
            Slot::Free {
                next: self.free_head,
            },
        );
        match slot {
            Slot::Used(value) => {
                self.free_head = idx;
                self.len -= 1;
                value
            }
            // lint:allow(panic) -- documented caller contract: freeing a
            // dead slot means the caller's doc table desynced from the
            // arena, and continuing would corrupt both.
            Slot::Free { .. } => panic!("slab slot {idx} freed twice"),
        }
    }

    /// # Panics
    ///
    /// Panics if `idx` is not a live slot.
    pub(crate) fn get(&self, idx: u32) -> &T {
        match &self.slots[idx as usize] {
            Slot::Used(value) => value,
            // lint:allow(panic) -- documented caller contract: a stale
            // index is bookkeeping corruption, not a recoverable miss.
            Slot::Free { .. } => panic!("slab slot {idx} is free"),
        }
    }

    /// # Panics
    ///
    /// Panics if `idx` is not a live slot.
    pub(crate) fn get_mut(&mut self, idx: u32) -> &mut T {
        match &mut self.slots[idx as usize] {
            Slot::Used(value) => value,
            // lint:allow(panic) -- documented caller contract (see `get`).
            Slot::Free { .. } => panic!("slab slot {idx} is free"),
        }
    }

    /// Iterates `(index, node)` over live slots in ascending index order.
    ///
    /// Index order is an artifact of allocation history, not a semantic
    /// order; callers that expose iteration externally must sort (see the
    /// `map-iter` lint's open-addressing clause).
    pub(crate) fn iter_unordered(&self) -> impl Iterator<Item = (u32, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Used(value) => Some((i as u32, value)),
            Slot::Free { .. } => None,
        })
    }

    /// Walks the freelist and returns the number of free slots, panicking
    /// if the list is cyclic or points at live slots (paranoid audits).
    #[cfg_attr(not(any(test, feature = "paranoid")), allow(dead_code))]
    pub(crate) fn audit_freelist(&self) -> usize {
        let mut seen = vec![false; self.slots.len()];
        let mut cursor = self.free_head;
        let mut count = 0usize;
        while cursor != NIL {
            let i = cursor as usize;
            assert!(!seen[i], "slab freelist cycles through slot {cursor}");
            seen[i] = true;
            cursor = match &self.slots[i] {
                Slot::Free { next } => *next,
                // lint:allow(panic) -- this IS the paranoid audit; its job
                // is to fail loudly on corruption.
                Slot::Used(_) => panic!("slab freelist points at live slot {cursor}"),
            };
            count += 1;
        }
        assert_eq!(
            count + self.len(),
            self.slots.len(),
            "slab freelist disagrees with occupancy"
        );
        count
    }
}

/// One bucket of a [`DocTable`]: key and value interleaved so a probe
/// touches a single cache line, not one per parallel array. Empty iff
/// `val == NIL` (`key` is then meaningless).
#[derive(Debug, Clone, Copy)]
struct Bucket {
    key: DocId,
    val: u32,
}

impl Bucket {
    const EMPTY: Self = Self {
        key: DocId::new(0),
        val: NIL,
    };
}

/// Open-addressing hash table mapping [`DocId`] to an arena slot index.
///
/// Power-of-two capacity, linear probing, backward-shift deletion (no
/// tombstones, so probe chains never rot). The seed decorrelates bucket
/// order between shards without affecting any externally visible order —
/// every external iteration path sorts by `DocId` first.
#[derive(Debug, Clone)]
pub(crate) struct DocTable {
    buckets: Vec<Bucket>,
    len: usize,
    seed: u64,
    growths: u64,
}

impl DocTable {
    const MIN_CAP: usize = 8;

    pub(crate) fn new(seed: u64) -> Self {
        Self {
            buckets: Vec::new(),
            len: 0,
            seed,
            growths: 0,
        }
    }

    #[cfg_attr(not(test), allow(dead_code))] // presizing hook for callers that know their load
    pub(crate) fn with_capacity(seed: u64, cap: usize) -> Self {
        let mut t = Self::new(seed);
        if cap > 0 {
            t.rebuild(cap.next_power_of_two().max(Self::MIN_CAP));
            t.growths = 0;
        }
        t
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn growth_events(&self) -> u64 {
        self.growths
    }

    fn mask(&self) -> usize {
        self.buckets.len() - 1
    }

    fn bucket(&self, doc: DocId) -> usize {
        (mix64(doc.as_u64() ^ self.seed) as usize) & self.mask()
    }

    fn rebuild(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two());
        let old = std::mem::replace(&mut self.buckets, vec![Bucket::EMPTY; new_cap]);
        self.growths += 1;
        self.len = 0;
        for bucket in old {
            if bucket.val != NIL {
                self.insert_inner(bucket.key, bucket.val);
            }
        }
    }

    fn insert_inner(&mut self, doc: DocId, val: u32) {
        let mask = self.mask();
        let mut i = self.bucket(doc);
        loop {
            if self.buckets[i].val == NIL {
                self.buckets[i] = Bucket { key: doc, val };
                self.len += 1;
                return;
            }
            assert!(
                self.buckets[i].key != doc,
                "doc {doc} inserted twice into table"
            );
            i = (i + 1) & mask;
        }
    }

    /// Inserts a new mapping. Grows (and rehashes) past 7/8 load.
    ///
    /// # Panics
    ///
    /// Panics if `doc` is already present.
    pub(crate) fn insert(&mut self, doc: DocId, val: u32) {
        if self.buckets.is_empty() {
            self.rebuild(Self::MIN_CAP);
        } else if (self.len + 1) * 8 > self.buckets.len() * 7 {
            self.rebuild(self.buckets.len() * 2);
        }
        self.insert_inner(doc, val);
    }

    fn probe(&self, doc: DocId) -> Option<usize> {
        if self.buckets.is_empty() {
            return None;
        }
        let mask = self.mask();
        let mut i = self.bucket(doc);
        loop {
            let b = self.buckets[i];
            if b.val == NIL {
                return None;
            }
            if b.key == doc {
                return Some(i);
            }
            i = (i + 1) & mask;
        }
    }

    pub(crate) fn get(&self, doc: DocId) -> Option<u32> {
        self.probe(doc).map(|i| self.buckets[i].val)
    }

    /// Removes the mapping for `doc`, backward-shifting the probe chain.
    pub(crate) fn remove(&mut self, doc: DocId) -> Option<u32> {
        let mut hole = self.probe(doc)?;
        let removed = self.buckets[hole].val;
        let mask = self.mask();
        self.buckets[hole].val = NIL;
        self.len -= 1;
        let mut i = (hole + 1) & mask;
        while self.buckets[i].val != NIL {
            let home = self.bucket(self.buckets[i].key);
            // Shift the entry back iff the hole lies cyclically between its
            // home bucket and its current slot.
            let between = if hole <= i {
                home <= hole || home > i
            } else {
                home <= hole && home > i
            };
            if between {
                self.buckets[hole] = self.buckets[i];
                self.buckets[i].val = NIL;
                hole = i;
            }
            i = (i + 1) & mask;
        }
        Some(removed)
    }

    /// Updates the slot index stored for `doc` (node moved in the arena).
    ///
    /// # Panics
    ///
    /// Panics if `doc` is untracked.
    #[allow(dead_code)]
    pub(crate) fn set(&mut self, doc: DocId, val: u32) {
        // lint:allow(panic) -- documented caller contract: doc must be
        // tracked; an untracked doc means table/arena desync.
        let i = self.probe(doc).expect("doc untracked in table");
        self.buckets[i].val = val;
    }
}

/// Intrusive prev/next links embedded inside an arena node.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Links {
    pub(crate) prev: u32,
    pub(crate) next: u32,
}

impl Default for Links {
    fn default() -> Self {
        Self {
            prev: NIL,
            next: NIL,
        }
    }
}

/// Nodes that carry intrusive [`Links`] can be threaded onto a [`List`].
pub(crate) trait Linked {
    fn links(&self) -> &Links;
    fn links_mut(&mut self) -> &mut Links;
}

/// Intrusive doubly-linked list over a [`Slab`] of [`Linked`] nodes.
///
/// The list owns only head/tail/len; all link storage is inside the nodes,
/// so membership moves between lists (probation → protected, small → main)
/// are pointer-free O(1) relinks with zero allocation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct List {
    head: u32,
    tail: u32,
    len: u32,
}

impl List {
    pub(crate) fn new() -> Self {
        Self {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    pub(crate) fn head(&self) -> u32 {
        self.head
    }

    #[allow(dead_code)]
    pub(crate) fn tail(&self) -> u32 {
        self.tail
    }

    pub(crate) fn len(&self) -> usize {
        self.len as usize
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends node `idx` at the tail (most-recent / newest position).
    pub(crate) fn push_tail<T: Linked>(&mut self, slab: &mut Slab<T>, idx: u32) {
        let old_tail = self.tail;
        {
            let links = slab.get_mut(idx).links_mut();
            links.prev = old_tail;
            links.next = NIL;
        }
        if old_tail == NIL {
            self.head = idx;
        } else {
            slab.get_mut(old_tail).links_mut().next = idx;
        }
        self.tail = idx;
        self.len += 1;
    }

    /// Unlinks node `idx` from anywhere in the list.
    pub(crate) fn unlink<T: Linked>(&mut self, slab: &mut Slab<T>, idx: u32) {
        let Links { prev, next } = *slab.get(idx).links();
        if prev == NIL {
            debug_assert_eq!(self.head, idx, "unlinking node not at recorded head");
            self.head = next;
        } else {
            slab.get_mut(prev).links_mut().next = next;
        }
        if next == NIL {
            debug_assert_eq!(self.tail, idx, "unlinking node not at recorded tail");
            self.tail = prev;
        } else {
            slab.get_mut(next).links_mut().prev = prev;
        }
        let links = slab.get_mut(idx).links_mut();
        links.prev = NIL;
        links.next = NIL;
        self.len -= 1;
    }

    /// Moves node `idx` to the tail (touch on hit).
    pub(crate) fn move_to_tail<T: Linked>(&mut self, slab: &mut Slab<T>, idx: u32) {
        if self.tail == idx {
            return;
        }
        self.unlink(slab, idx);
        self.push_tail(slab, idx);
    }

    /// Walks head→tail collecting indices (audits and drains only).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn collect<T: Linked>(&self, slab: &Slab<T>) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        let mut cursor = self.head;
        while cursor != NIL {
            out.push(cursor);
            assert!(out.len() <= self.len(), "list cycles past recorded len");
            cursor = slab.get(cursor).links().next;
        }
        assert_eq!(out.len(), self.len(), "list length disagrees with walk");
        out
    }
}

/// Nodes orderable by a `(primary, seq)` key can sit in a [`KeyedMinHeap`].
///
/// `seq` is a unique monotone tiebreaker, so the order is total and the
/// heap reproduces exactly the order the previous `BTreeSet<(key, seq,
/// DocId)>` representations produced.
pub(crate) trait HeapKeyed {
    fn heap_key(&self) -> (u64, u64);
    fn heap_pos(&self) -> u32;
    fn set_heap_pos(&mut self, pos: u32);
}

/// Array-backed binary min-heap of arena slot indices.
///
/// Position backpointers live inside the nodes, so arbitrary-element
/// removal (explicit cache removals) is O(log n) without searching.
#[derive(Debug, Clone)]
pub(crate) struct KeyedMinHeap {
    items: Vec<u32>,
    growths: u64,
}

impl KeyedMinHeap {
    pub(crate) fn new() -> Self {
        Self {
            items: Vec::new(),
            growths: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.items.len()
    }

    pub(crate) fn growth_events(&self) -> u64 {
        self.growths
    }

    /// Smallest-keyed slot index, if any.
    pub(crate) fn peek(&self) -> Option<u32> {
        self.items.first().copied()
    }

    pub(crate) fn push<T: HeapKeyed>(&mut self, slab: &mut Slab<T>, idx: u32) {
        if self.items.len() == self.items.capacity() {
            self.growths += 1;
        }
        let pos = self.items.len() as u32;
        self.items.push(idx);
        slab.get_mut(idx).set_heap_pos(pos);
        self.sift_up(slab, pos);
    }

    /// Removes slot index `idx` from wherever it sits in the heap.
    pub(crate) fn remove<T: HeapKeyed>(&mut self, slab: &mut Slab<T>, idx: u32) {
        let pos = slab.get(idx).heap_pos();
        debug_assert_eq!(self.items[pos as usize], idx, "heap pos backpointer desync");
        let last = self.items.len() as u32 - 1;
        if pos != last {
            let moved = self.items[last as usize];
            self.items[pos as usize] = moved;
            slab.get_mut(moved).set_heap_pos(pos);
        }
        self.items.pop();
        slab.get_mut(idx).set_heap_pos(NIL);
        if pos <= last && (pos as usize) < self.items.len() {
            self.sift_down(slab, pos);
            self.sift_up(slab, pos);
        }
    }

    fn key<T: HeapKeyed>(&self, slab: &Slab<T>, pos: u32) -> (u64, u64) {
        slab.get(self.items[pos as usize]).heap_key()
    }

    fn swap<T: HeapKeyed>(&mut self, slab: &mut Slab<T>, a: u32, b: u32) {
        self.items.swap(a as usize, b as usize);
        slab.get_mut(self.items[a as usize]).set_heap_pos(a);
        slab.get_mut(self.items[b as usize]).set_heap_pos(b);
    }

    fn sift_up<T: HeapKeyed>(&mut self, slab: &mut Slab<T>, mut pos: u32) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.key(slab, pos) < self.key(slab, parent) {
                self.swap(slab, pos, parent);
                pos = parent;
            } else {
                return;
            }
        }
    }

    fn sift_down<T: HeapKeyed>(&mut self, slab: &mut Slab<T>, mut pos: u32) {
        let n = self.items.len() as u32;
        loop {
            let left = pos * 2 + 1;
            if left >= n {
                return;
            }
            let right = left + 1;
            let mut smallest = left;
            if right < n && self.key(slab, right) < self.key(slab, left) {
                smallest = right;
            }
            if self.key(slab, smallest) < self.key(slab, pos) {
                self.swap(slab, pos, smallest);
                pos = smallest;
            } else {
                return;
            }
        }
    }

    /// Checks the heap property and backpointers (paranoid audits).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn audit<T: HeapKeyed>(&self, slab: &Slab<T>) {
        for (pos, &idx) in self.items.iter().enumerate() {
            assert_eq!(
                slab.get(idx).heap_pos(),
                pos as u32,
                "heap backpointer desync at pos {pos}"
            );
            if pos > 0 {
                let parent = (pos - 1) / 2;
                assert!(
                    self.key(slab, parent as u32) <= self.key(slab, pos as u32),
                    "heap property violated at pos {pos}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    struct TestNode {
        doc: DocId,
        key: (u64, u64),
        links: Links,
        pos: u32,
    }

    impl TestNode {
        fn new(doc: u64, key: (u64, u64)) -> Self {
            Self {
                doc: DocId::new(doc),
                key,
                links: Links::default(),
                pos: NIL,
            }
        }
    }

    impl Linked for TestNode {
        fn links(&self) -> &Links {
            &self.links
        }
        fn links_mut(&mut self) -> &mut Links {
            &mut self.links
        }
    }

    impl HeapKeyed for TestNode {
        fn heap_key(&self) -> (u64, u64) {
            self.key
        }
        fn heap_pos(&self) -> u32 {
            self.pos
        }
        fn set_heap_pos(&mut self, pos: u32) {
            self.pos = pos;
        }
    }

    #[test]
    fn slab_recycles_freed_slots() {
        let mut slab = Slab::new();
        let a = slab.alloc(TestNode::new(1, (0, 0)));
        let b = slab.alloc(TestNode::new(2, (0, 1)));
        assert_eq!(slab.len(), 2);
        slab.free(a);
        assert_eq!(slab.len(), 1);
        let c = slab.alloc(TestNode::new(3, (0, 2)));
        assert_eq!(c, a, "freed slot should be recycled before growing");
        assert_eq!(slab.get(b).doc, DocId::new(2));
        slab.audit_freelist();
    }

    #[test]
    #[should_panic(expected = "freed twice")]
    fn slab_double_free_panics() {
        let mut slab = Slab::new();
        let a = slab.alloc(TestNode::new(1, (0, 0)));
        slab.free(a);
        slab.free(a);
    }

    #[test]
    fn slab_steady_state_stops_growing() {
        let mut slab = Slab::with_capacity(4);
        let mut live = Vec::new();
        for i in 0..4 {
            live.push(slab.alloc(TestNode::new(i, (0, i))));
        }
        let baseline = slab.growth_events();
        for i in 0..100 {
            let victim = live.remove(0);
            slab.free(victim);
            live.push(slab.alloc(TestNode::new(100 + i, (0, 100 + i))));
        }
        assert_eq!(
            slab.growth_events(),
            baseline,
            "churn at capacity must not reallocate"
        );
    }

    #[test]
    fn table_insert_get_remove_roundtrip() {
        let mut table = DocTable::new(0xabcd);
        for i in 0..200u64 {
            table.insert(DocId::new(i), i as u32);
        }
        assert_eq!(table.len(), 200);
        for i in 0..200u64 {
            assert_eq!(table.get(DocId::new(i)), Some(i as u32));
        }
        for i in (0..200u64).step_by(2) {
            assert_eq!(table.remove(DocId::new(i)), Some(i as u32));
        }
        assert_eq!(table.len(), 100);
        for i in 0..200u64 {
            let want = if i % 2 == 0 { None } else { Some(i as u32) };
            assert_eq!(
                table.get(DocId::new(i)),
                want,
                "doc {i} after interleaved removal"
            );
        }
    }

    #[test]
    fn table_backward_shift_keeps_probe_chains_intact() {
        // Same-bucket collisions: remove the middle of a probe chain and
        // confirm the tail entries remain reachable.
        let mut table = DocTable::with_capacity(7, 8);
        let docs: Vec<DocId> = (0..6u64).map(DocId::new).collect();
        for (i, &d) in docs.iter().enumerate() {
            table.insert(d, i as u32);
        }
        table.remove(docs[2]);
        table.remove(docs[0]);
        for (i, &d) in docs.iter().enumerate() {
            let want = if i == 0 || i == 2 {
                None
            } else {
                Some(i as u32)
            };
            assert_eq!(table.get(d), want);
        }
    }

    #[test]
    fn table_presized_does_not_grow_under_churn() {
        let mut table = DocTable::with_capacity(9, 64);
        assert_eq!(table.growth_events(), 0);
        for round in 0..10u64 {
            for i in 0..32u64 {
                table.insert(DocId::new(round * 1000 + i), i as u32);
            }
            for i in 0..32u64 {
                table.remove(DocId::new(round * 1000 + i));
            }
        }
        assert_eq!(
            table.growth_events(),
            0,
            "bounded occupancy must not rehash"
        );
    }

    #[test]
    fn list_push_unlink_move_preserve_order() {
        let mut slab = Slab::new();
        let mut list = List::new();
        let idx: Vec<u32> = (0..5u64)
            .map(|i| slab.alloc(TestNode::new(i, (0, i))))
            .collect();
        for &i in &idx {
            list.push_tail(&mut slab, i);
        }
        assert_eq!(list.collect(&slab), idx);
        list.move_to_tail(&mut slab, idx[1]);
        assert_eq!(
            list.collect(&slab),
            vec![idx[0], idx[2], idx[3], idx[4], idx[1]]
        );
        list.unlink(&mut slab, idx[0]);
        assert_eq!(list.head(), idx[2]);
        list.unlink(&mut slab, idx[1]);
        assert_eq!(list.collect(&slab), vec![idx[2], idx[3], idx[4]]);
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn heap_pops_in_total_key_order() {
        let mut slab = Slab::new();
        let mut heap = KeyedMinHeap::new();
        // Duplicate primaries broken by unique seq — mirrors the BTreeSet
        // orders the policies used before the port.
        let keys = [(5, 0), (1, 1), (5, 2), (0, 3), (3, 4), (1, 5)];
        let idx: Vec<u32> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| slab.alloc(TestNode::new(i as u64, k)))
            .collect();
        for &i in &idx {
            heap.push(&mut slab, i);
            heap.audit(&slab);
        }
        let mut drained = Vec::new();
        while let Some(min) = heap.peek() {
            drained.push(slab.get(min).heap_key());
            heap.remove(&mut slab, min);
            heap.audit(&slab);
        }
        let mut want = keys.to_vec();
        want.sort_unstable();
        assert_eq!(drained, want);
    }

    #[test]
    fn heap_removes_arbitrary_elements() {
        let mut slab = Slab::new();
        let mut heap = KeyedMinHeap::new();
        let idx: Vec<u32> = (0..10u64)
            .map(|i| slab.alloc(TestNode::new(i, (i, i))))
            .collect();
        for &i in &idx {
            heap.push(&mut slab, i);
        }
        heap.remove(&mut slab, idx[4]);
        heap.remove(&mut slab, idx[0]);
        heap.audit(&slab);
        assert_eq!(heap.len(), 8);
        assert_eq!(heap.peek(), Some(idx[1]));
    }

    #[test]
    fn mix64_spreads_sequential_keys() {
        let mut buckets = [0u32; 8];
        for i in 0..1024u64 {
            buckets[(mix64(i) & 7) as usize] += 1;
        }
        for (b, &count) in buckets.iter().enumerate() {
            assert!(count > 64, "bucket {b} starved: {count}");
        }
    }
}
