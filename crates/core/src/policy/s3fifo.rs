//! S3-FIFO-style Small/Main/Ghost replacement (after Yang et al.,
//! "FIFO queues are all you need for cache eviction", SOSP '23).

use super::{PolicyKind, ReplacementPolicy};
use crate::index::{DocTable, Linked, Links, List, Slab, NIL};
use coopcache_types::{ByteSize, DocId, DurationMs, Timestamp};

const TABLE_SEED: u64 = 0x5333_4649_0000_0001; // "S3FI"
const GHOST_SEED: u64 = 0x5333_4649_0000_0002;

/// Hit counters saturate here; a small cap keeps one burst of popularity
/// from granting permanent immunity (the S3-FIFO design point).
const FREQ_CAP: u8 = 3;

/// Minimum ghost-queue bound, so history survives a nearly empty cache.
const GHOST_FLOOR: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Queue {
    Small,
    Main,
}

#[derive(Debug, Clone)]
struct Node {
    doc: DocId,
    freq: u8,
    queue: Queue,
    links: Links,
}

impl Linked for Node {
    fn links(&self) -> &Links {
        &self.links
    }
    fn links_mut(&mut self) -> &mut Links {
        &mut self.links
    }
}

#[derive(Debug, Clone)]
struct GhostNode {
    doc: DocId,
    evicted_at: Timestamp,
    links: Links,
}

impl Linked for GhostNode {
    fn links(&self) -> &Links {
        &self.links
    }
    fn links_mut(&mut self) -> &mut Links {
        &mut self.links
    }
}

/// S3-FIFO-style victim ordering with three queues:
///
/// * **Small** — newly admitted documents enter here; one-shot documents
///   wash through without touching Main (scan resistance, like SLRU's
///   probation but FIFO-ordered so no per-hit relinking).
/// * **Main** — documents that proved themselves (hit while in Small, or
///   re-admitted from Ghost). Evicted CLOCK-style: a hit buys one second
///   chance per sweep.
/// * **Ghost** — a bounded FIFO of *recently evicted* document ids and
///   their eviction timestamps. A request for a ghost document re-admits
///   it straight into Main, and the gap between eviction and re-admission
///   is reported through [`ReplacementPolicy::on_admit`] — an *observed
///   inter-reference gap* that the cache feeds to the paper's eq. 5
///   expiration-age tracker. Where eq. 5 normally estimates how long a
///   document would have stayed useful from eviction-time state, a ghost
///   re-admission measures it directly.
///
/// Victim selection walks Small head-first for the first never-hit
/// document (hit documents ahead of it are owed promotion to Main, which
/// [`on_remove`](ReplacementPolicy::on_remove) performs lazily), falling
/// back to Main with CLOCK second chances. The walk is amortized O(1):
/// each document is promoted or second-chanced at most once per
/// residency, paid for by the eviction that skipped it.
///
/// All three queues are intrusive lists over flat arenas with
/// open-addressing doc→slot tables — pointer-free, zero steady-state
/// allocation, deterministic for a given operation sequence.
///
/// # Example
///
/// ```
/// use coopcache_core::{ReplacementPolicy, S3Fifo};
/// use coopcache_types::{ByteSize, DocId};
///
/// let mut p = S3Fifo::new();
/// p.on_insert(DocId::new(1), ByteSize::from_kb(1));
/// p.on_insert(DocId::new(2), ByteSize::from_kb(1));
/// p.on_hit(DocId::new(1)); // doc 1 earns promotion; doc 2 is the victim
/// assert_eq!(p.victim(), Some(DocId::new(2)));
/// ```
#[derive(Debug)]
pub struct S3Fifo {
    nodes: Slab<Node>,
    table: DocTable,
    small: List,
    main: List,
    ghosts: Slab<GhostNode>,
    ghost_table: DocTable,
    ghost_queue: List,
    /// Set when the latest `on_insert` was a ghost re-admission; consumed
    /// by `on_admit` to report the observed inter-reference gap.
    pending_readmit: Option<(DocId, Timestamp)>,
}

impl Default for S3Fifo {
    fn default() -> Self {
        Self::new()
    }
}

impl S3Fifo {
    /// Creates an empty S3-FIFO ordering.
    #[must_use]
    pub fn new() -> Self {
        Self {
            nodes: Slab::new(),
            table: DocTable::new(TABLE_SEED),
            small: List::new(),
            main: List::new(),
            ghosts: Slab::new(),
            ghost_table: DocTable::new(GHOST_SEED),
            ghost_queue: List::new(),
            pending_readmit: None,
        }
    }

    /// True when the document currently sits in the Main queue.
    #[must_use]
    pub fn is_main(&self, doc: DocId) -> bool {
        self.table
            .get(doc)
            .is_some_and(|idx| self.nodes.get(idx).queue == Queue::Main)
    }

    /// True when the document's id is remembered in the ghost queue.
    #[must_use]
    pub fn is_ghost(&self, doc: DocId) -> bool {
        self.ghost_table.get(doc).is_some()
    }

    /// Number of remembered ghosts (bounded by live size, floored at 8).
    #[must_use]
    pub fn ghost_len(&self) -> usize {
        self.ghost_queue.len()
    }

    /// Small stays at ~10% of tracked documents (min 1), the S3-FIFO
    /// design ratio; beyond it Small must give up the next victim.
    fn small_target(&self) -> usize {
        (self.len() / 10).max(1)
    }

    fn ghost_target(&self) -> usize {
        self.len().max(GHOST_FLOOR)
    }

    /// First never-hit node in a queue, walking head→tail.
    fn scan_cold(&self, list: &List) -> Option<u32> {
        let mut cursor = list.head();
        while cursor != NIL {
            let node = self.nodes.get(cursor);
            if node.freq == 0 {
                return Some(cursor);
            }
            cursor = node.links.next;
        }
        None
    }

    /// The slot `victim()` would name, with the queue it came from.
    fn victim_slot(&self) -> Option<u32> {
        if self.small.is_empty() && self.main.is_empty() {
            return None;
        }
        let small_due = !self.small.is_empty()
            && (self.small.len() >= self.small_target() || self.main.is_empty());
        if small_due {
            if let Some(idx) = self.scan_cold(&self.small) {
                return Some(idx);
            }
            // Every Small document was hit: all owed promotion. If Main
            // has candidates, evict there; else the oldest hot Small doc
            // goes (nowhere to promote that would change the outcome).
            if self.main.is_empty() {
                return Some(self.small.head());
            }
        }
        if self.main.is_empty() {
            // Small exists but is under target: it still must yield.
            return self.scan_cold(&self.small).or(Some(self.small.head()));
        }
        Some(self.scan_cold(&self.main).unwrap_or(self.main.head()))
    }

    /// Settles the debts the read-only victim walk skipped over: Small
    /// nodes with hits ahead of the victim move to Main (promotion);
    /// Main nodes with hits ahead of the victim spend them CLOCK-style
    /// (freq cleared, requeued at tail). Called only when the removed doc
    /// is the announced victim, so explicit removals stay pure unlinks.
    fn settle_before(&mut self, victim_idx: u32) {
        match self.nodes.get(victim_idx).queue {
            Queue::Small => {
                let mut cursor = self.small.head();
                while cursor != victim_idx && cursor != NIL {
                    let next = self.nodes.get(cursor).links.next;
                    debug_assert!(self.nodes.get(cursor).freq > 0);
                    self.small.unlink(&mut self.nodes, cursor);
                    let node = self.nodes.get_mut(cursor);
                    node.queue = Queue::Main;
                    node.freq = 0;
                    self.main.push_tail(&mut self.nodes, cursor);
                    cursor = next;
                }
            }
            Queue::Main => {
                let mut cursor = self.main.head();
                while cursor != victim_idx && cursor != NIL {
                    let next = self.nodes.get(cursor).links.next;
                    debug_assert!(self.nodes.get(cursor).freq > 0);
                    self.main.unlink(&mut self.nodes, cursor);
                    self.nodes.get_mut(cursor).freq = 0;
                    self.main.push_tail(&mut self.nodes, cursor);
                    cursor = next;
                }
            }
        }
    }

    fn drop_ghost(&mut self, doc: DocId) {
        if let Some(gidx) = self.ghost_table.remove(doc) {
            self.ghost_queue.unlink(&mut self.ghosts, gidx);
            self.ghosts.free(gidx);
        }
    }
}

impl ReplacementPolicy for S3Fifo {
    fn on_insert(&mut self, doc: DocId, _size: ByteSize) {
        assert!(
            self.table.get(doc).is_none(),
            "{doc} inserted twice into S3-FIFO"
        );
        let remembered = self
            .ghost_table
            .get(doc)
            .map(|g| self.ghosts.get(g).evicted_at);
        self.pending_readmit = remembered.map(|t| (doc, t));
        if remembered.is_some() {
            self.drop_ghost(doc);
        }
        let queue = if remembered.is_some() {
            Queue::Main
        } else {
            Queue::Small
        };
        let idx = self.nodes.alloc(Node {
            doc,
            freq: 0,
            queue,
            links: Links::default(),
        });
        self.table.insert(doc, idx);
        match queue {
            Queue::Small => self.small.push_tail(&mut self.nodes, idx),
            Queue::Main => self.main.push_tail(&mut self.nodes, idx),
        }
    }

    fn on_hit(&mut self, doc: DocId) {
        let idx = self
            .table
            .get(doc)
            // lint:allow(panic) -- ReplacementPolicy contract: a hit on an
            // untracked doc is a caller bug (see trait docs).
            .unwrap_or_else(|| panic!("hit on untracked {doc}"));
        let node = self.nodes.get_mut(idx);
        node.freq = node.freq.saturating_add(1).min(FREQ_CAP);
    }

    fn on_remove(&mut self, doc: DocId) {
        let idx = self
            .table
            .remove(doc)
            // lint:allow(panic) -- ReplacementPolicy contract: removing an
            // untracked doc is a caller bug (see trait docs).
            .unwrap_or_else(|| panic!("remove of untracked {doc}"));
        if self.victim_slot() == Some(idx) {
            self.settle_before(idx);
        }
        match self.nodes.get(idx).queue {
            Queue::Small => self.small.unlink(&mut self.nodes, idx),
            Queue::Main => self.main.unlink(&mut self.nodes, idx),
        }
        self.nodes.free(idx);
    }

    fn victim(&self) -> Option<DocId> {
        self.victim_slot().map(|idx| self.nodes.get(idx).doc)
    }

    fn len(&self) -> usize {
        self.small.len() + self.main.len()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::S3Fifo
    }

    fn on_admit(&mut self, doc: DocId, now: Timestamp) -> Option<DurationMs> {
        match self.pending_readmit.take() {
            Some((ghost_doc, evicted_at)) if ghost_doc == doc => {
                Some(now.saturating_since(evicted_at))
            }
            _ => None,
        }
    }

    fn on_evicted(&mut self, doc: DocId, now: Timestamp) {
        debug_assert!(self.table.get(doc).is_none(), "ghosting a live doc");
        self.drop_ghost(doc); // re-eviction refreshes the ghost clock
        let gidx = self.ghosts.alloc(GhostNode {
            doc,
            evicted_at: now,
            links: Links::default(),
        });
        self.ghost_table.insert(doc, gidx);
        self.ghost_queue.push_tail(&mut self.ghosts, gidx);
        while self.ghost_queue.len() > self.ghost_target() {
            let oldest = self.ghost_queue.head();
            let stale = self.ghosts.get(oldest).doc;
            self.ghost_queue.unlink(&mut self.ghosts, oldest);
            self.ghosts.free(oldest);
            self.ghost_table.remove(stale);
        }
    }

    fn growth_events(&self) -> u64 {
        self.nodes.growth_events()
            + self.table.growth_events()
            + self.ghosts.growth_events()
            + self.ghost_table.growth_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    fn sz() -> ByteSize {
        ByteSize::from_kb(1)
    }

    fn t(secs: u64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    /// Capacity-eviction helper mirroring the cache's call sequence.
    fn evict(p: &mut S3Fifo, now: Timestamp) -> DocId {
        let v = p.victim().expect("non-empty policy has a victim");
        p.on_remove(v);
        p.on_evicted(v, now);
        v
    }

    #[test]
    fn one_shot_docs_wash_through_small() {
        let mut p = S3Fifo::new();
        p.on_insert(d(1), sz());
        p.on_hit(d(1));
        for i in 10..30 {
            p.on_insert(d(i), sz());
            let v = evict(&mut p, t(i));
            assert_ne!(v, d(1), "hit doc evicted by a one-shot scan");
        }
    }

    #[test]
    fn small_hit_earns_main_promotion_on_next_eviction() {
        let mut p = S3Fifo::new();
        for i in 1..=12 {
            p.on_insert(d(i), sz());
        }
        p.on_hit(d(1));
        assert!(!p.is_main(d(1)), "promotion is lazy, not immediate");
        // Doc 1 sits at Small's head with a hit; the eviction walk skips
        // it, evicts doc 2, and the settle pass moves doc 1 to Main.
        let v = evict(&mut p, t(1));
        assert_eq!(v, d(2));
        assert!(
            p.is_main(d(1)),
            "skipped-over hit doc should now be in Main"
        );
    }

    #[test]
    fn ghost_readmission_lands_in_main_and_reports_the_gap() {
        let mut p = S3Fifo::new();
        for i in 1..=3 {
            p.on_insert(d(i), sz());
        }
        let v = evict(&mut p, t(10));
        assert_eq!(v, d(1));
        assert!(p.is_ghost(d(1)));
        // Re-request the evicted doc 40 s later.
        p.on_insert(d(1), sz());
        let gap = p.on_admit(d(1), t(50));
        assert_eq!(gap, Some(DurationMs::from_secs(40)));
        assert!(p.is_main(d(1)), "ghost re-admission skips Small");
        assert!(!p.is_ghost(d(1)), "re-admitted doc leaves the ghost queue");
    }

    #[test]
    fn fresh_inserts_report_no_gap() {
        let mut p = S3Fifo::new();
        p.on_insert(d(7), sz());
        assert_eq!(p.on_admit(d(7), t(1)), None);
    }

    #[test]
    fn ghost_queue_is_bounded() {
        let mut p = S3Fifo::new();
        // Keep one live doc; churn hundreds through eviction.
        p.on_insert(d(1), sz());
        p.on_hit(d(1));
        for i in 100..400 {
            p.on_insert(d(i), sz());
            evict(&mut p, t(i));
        }
        assert!(
            p.ghost_len() <= p.len().max(8),
            "ghost queue grew past its bound: {}",
            p.ghost_len()
        );
        let oldest_refused = d(100);
        assert!(
            !p.is_ghost(oldest_refused),
            "oldest ghost should have aged out"
        );
    }

    #[test]
    fn main_eviction_gives_second_chances() {
        let mut p = S3Fifo::new();
        // Build a Main population via ghost re-admission.
        for i in 1..=3 {
            p.on_insert(d(i), sz());
        }
        for _ in 0..3 {
            evict(&mut p, t(1));
        }
        for i in 1..=3 {
            p.on_insert(d(i), sz()); // all re-admitted into Main
            p.on_admit(d(i), t(2));
        }
        assert!(p.is_main(d(1)) && p.is_main(d(2)) && p.is_main(d(3)));
        p.on_hit(d(1)); // head of Main earns a second chance
        let v = evict(&mut p, t(3));
        assert_eq!(v, d(2), "hit Main head must be skipped once");
        assert!(p.is_main(d(1)), "second-chanced doc stays in Main");
    }

    #[test]
    fn explicit_remove_of_non_victim_is_a_pure_unlink() {
        let mut p = S3Fifo::new();
        for i in 1..=12 {
            p.on_insert(d(i), sz());
        }
        p.on_hit(d(1));
        p.on_remove(d(5)); // not the victim: no promotions happen
        assert!(!p.is_main(d(1)));
        assert_eq!(p.len(), 11);
    }

    #[test]
    fn deterministic_under_seeded_stress() {
        // Two identical seeded runs must produce identical eviction logs;
        // the 96-doc universe against a 48-doc budget forces heavy ghost
        // re-admission traffic.
        let run = |seed: u64| -> Vec<u64> {
            let mut p = S3Fifo::new();
            let mut live = std::collections::BTreeSet::new();
            let mut state = seed;
            let mut log = Vec::new();
            for step in 0..4000u64 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let doc = (state >> 33) % 96;
                let now = Timestamp::from_millis(step);
                if live.contains(&doc) {
                    p.on_hit(d(doc));
                } else {
                    p.on_insert(d(doc), sz());
                    p.on_admit(d(doc), now);
                    live.insert(doc);
                }
                while live.len() > 48 {
                    let v = evict(&mut p, now);
                    live.remove(&v.as_u64());
                    log.push(v.as_u64());
                }
            }
            assert!(!log.is_empty());
            log
        };
        assert_eq!(run(42), run(42), "same seed, same eviction order");
        assert_ne!(run(42), run(43), "different seeds should diverge");
    }

    #[test]
    fn steady_state_churn_is_allocation_free() {
        let mut p = S3Fifo::new();
        for i in 0..64 {
            p.on_insert(d(i), sz());
        }
        let baseline_fill = p.growth_events();
        let mut baseline = None;
        for i in 64..8192u64 {
            let v = p.victim().unwrap();
            p.on_remove(v);
            p.on_evicted(v, Timestamp::from_millis(i));
            p.on_insert(d(i), sz());
            p.on_admit(d(i), Timestamp::from_millis(i));
            if i % 3 == 0 {
                p.on_hit(d(i));
            }
            // The ghost plane fills for a while after the live plane; take
            // the baseline once both are warm.
            if i == 4096 {
                baseline = Some(p.growth_events());
            }
        }
        let baseline = baseline.unwrap();
        assert!(baseline >= baseline_fill);
        assert_eq!(
            p.growth_events(),
            baseline,
            "warm churn must not reallocate"
        );
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut p = S3Fifo::new();
        p.on_insert(d(1), sz());
        p.on_insert(d(1), sz());
    }

    #[test]
    #[should_panic(expected = "untracked")]
    fn hit_on_missing_panics() {
        S3Fifo::new().on_hit(d(1));
    }
}
