//! GreedyDual-Size replacement (Cao & Irani, USITS '97).

use super::{PolicyKind, ReplacementPolicy};
use coopcache_types::{ByteSize, DocId};
use std::collections::{BTreeSet, HashMap};

/// GreedyDual-Size: each document carries priority `H = L + 1/size_kb`
/// where `L` is the inflation clock; a **hit re-computes `H` with the
/// current clock**, which is how GDS folds recency in without a
/// frequency counter (contrast [`super::Gdsf`], which multiplies by
/// frequency).
///
/// Cited by the paper as the canonical cost-aware replacement family
/// (\[4\]); included so the ABL-R replacement sweep covers it.
///
/// # Example
///
/// ```
/// use coopcache_core::{Gds, ReplacementPolicy};
/// use coopcache_types::{ByteSize, DocId};
///
/// let mut gds = Gds::new();
/// gds.on_insert(DocId::new(1), ByteSize::from_kb(100)); // big
/// gds.on_insert(DocId::new(2), ByteSize::from_kb(1));   // small
/// assert_eq!(gds.victim(), Some(DocId::new(1)));
/// ```
#[derive(Debug, Default)]
pub struct Gds {
    order: BTreeSet<(u64, u64, DocId)>,
    state: HashMap<DocId, GdsState>,
    clock: u64,
    next_seq: u64,
}

#[derive(Debug, Clone, Copy)]
struct GdsState {
    priority: u64,
    seq: u64,
    size: ByteSize,
}

const SCALE: u64 = 1_000_000;

impl Gds {
    /// Creates an empty GDS ordering.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn priority(&self, size: ByteSize) -> u64 {
        let size_kb = (size.as_bytes().max(1)) as f64 / 1_000.0;
        self.clock + ((1.0 / size_kb) * SCALE as f64) as u64
    }

    fn reinsert(&mut self, doc: DocId, size: ByteSize) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let priority = self.priority(size);
        if let Some(old) = self.state.insert(
            doc,
            GdsState {
                priority,
                seq,
                size,
            },
        ) {
            self.order.remove(&(old.priority, old.seq, doc));
        }
        self.order.insert((priority, seq, doc));
    }
}

impl ReplacementPolicy for Gds {
    fn on_insert(&mut self, doc: DocId, size: ByteSize) {
        assert!(
            !self.state.contains_key(&doc),
            "{doc} inserted twice into GDS"
        );
        self.reinsert(doc, size);
    }

    fn on_hit(&mut self, doc: DocId) {
        let size = self
            .state
            .get(&doc)
            // lint:allow(panic) -- ReplacementPolicy contract: a hit on an
            // untracked doc is a caller bug (see trait docs).
            .unwrap_or_else(|| panic!("hit on untracked {doc}"))
            .size;
        // The defining GDS move: restore full priority at the current clock.
        self.reinsert(doc, size);
    }

    fn on_remove(&mut self, doc: DocId) {
        let st = self
            .state
            .remove(&doc)
            // lint:allow(panic) -- ReplacementPolicy contract: removing an
            // untracked doc is a caller bug (see trait docs).
            .unwrap_or_else(|| panic!("remove of untracked {doc}"));
        self.order.remove(&(st.priority, st.seq, doc));
        self.clock = self.clock.max(st.priority);
    }

    fn victim(&self) -> Option<DocId> {
        self.order.iter().next().map(|&(_, _, doc)| doc)
    }

    fn len(&self) -> usize {
        self.state.len()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Gds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    #[test]
    fn big_docs_evicted_first() {
        let mut g = Gds::new();
        g.on_insert(d(1), ByteSize::from_kb(10));
        g.on_insert(d(2), ByteSize::from_kb(1));
        assert_eq!(g.victim(), Some(d(1)));
    }

    #[test]
    fn hit_restores_priority_at_current_clock() {
        let mut g = Gds::new();
        g.on_insert(d(1), ByteSize::from_kb(1)); // H = 1.0
        g.on_insert(d(2), ByteSize::from_kb(1));
        g.on_remove(d(2)); // clock -> 1.0
        g.on_insert(d(3), ByteSize::from_kb(1)); // H = 2.0
                                                 // Doc 1 still has H = 1.0 and is the victim...
        assert_eq!(g.victim(), Some(d(1)));
        // ...until a hit re-inflates it to H = 2.0; tie-break then favors
        // the less recently re-keyed doc 3? No: doc 3 has an earlier seq.
        g.on_hit(d(1));
        assert_eq!(g.victim(), Some(d(3)));
    }

    #[test]
    fn frequency_does_not_accumulate() {
        // Unlike GDSF, many hits at the same clock leave H unchanged.
        let mut g = Gds::new();
        g.on_insert(d(1), ByteSize::from_kb(1));
        g.on_insert(d(2), ByteSize::from_kb(2));
        for _ in 0..10 {
            g.on_hit(d(2)); // clock still 0: H stays 0.5
        }
        assert_eq!(g.victim(), Some(d(2)), "hits alone must not out-rank size");
    }

    #[test]
    #[should_panic(expected = "untracked")]
    fn hit_on_missing_panics() {
        Gds::new().on_hit(d(1));
    }
}
