//! GreedyDual-Size replacement (Cao & Irani, USITS '97).

use super::{PolicyKind, ReplacementPolicy};
use crate::index::{DocTable, HeapKeyed, KeyedMinHeap, Slab, NIL};
use coopcache_types::{ByteSize, DocId};

const TABLE_SEED: u64 = 0x4744_5300_0000_0001; // "GDS"

#[derive(Debug, Clone)]
struct Node {
    doc: DocId,
    priority: u64,
    seq: u64,
    size: ByteSize,
    heap_pos: u32,
}

impl HeapKeyed for Node {
    fn heap_key(&self) -> (u64, u64) {
        (self.priority, self.seq)
    }
    fn heap_pos(&self) -> u32 {
        self.heap_pos
    }
    fn set_heap_pos(&mut self, pos: u32) {
        self.heap_pos = pos;
    }
}

/// GreedyDual-Size: each document carries priority `H = L + 1/size_kb`
/// where `L` is the inflation clock; a **hit re-computes `H` with the
/// current clock**, which is how GDS folds recency in without a
/// frequency counter (contrast [`super::Gdsf`], which multiplies by
/// frequency).
///
/// Cited by the paper as the canonical cost-aware replacement family
/// (\[4\]); included so the ABL-R replacement sweep covers it.
///
/// Implemented as an arena-backed min-heap keyed by `(priority, seq)` —
/// the unique seq totalizes the order, reproducing the previous
/// ordered-set representation exactly — plus an open-addressing doc→slot
/// table. Priority arithmetic is unchanged bit for bit.
///
/// # Example
///
/// ```
/// use coopcache_core::{Gds, ReplacementPolicy};
/// use coopcache_types::{ByteSize, DocId};
///
/// let mut gds = Gds::new();
/// gds.on_insert(DocId::new(1), ByteSize::from_kb(100)); // big
/// gds.on_insert(DocId::new(2), ByteSize::from_kb(1));   // small
/// assert_eq!(gds.victim(), Some(DocId::new(1)));
/// ```
#[derive(Debug)]
pub struct Gds {
    nodes: Slab<Node>,
    table: DocTable,
    heap: KeyedMinHeap,
    clock: u64,
    next_seq: u64,
}

const SCALE: u64 = 1_000_000;

impl Default for Gds {
    fn default() -> Self {
        Self::new()
    }
}

impl Gds {
    /// Creates an empty GDS ordering.
    #[must_use]
    pub fn new() -> Self {
        Self {
            nodes: Slab::new(),
            table: DocTable::new(TABLE_SEED),
            heap: KeyedMinHeap::new(),
            clock: 0,
            next_seq: 0,
        }
    }

    fn priority(&self, size: ByteSize) -> u64 {
        let size_kb = (size.as_bytes().max(1)) as f64 / 1_000.0;
        self.clock + ((1.0 / size_kb) * SCALE as f64) as u64
    }

    fn bump_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }
}

impl ReplacementPolicy for Gds {
    fn on_insert(&mut self, doc: DocId, size: ByteSize) {
        assert!(
            self.table.get(doc).is_none(),
            "{doc} inserted twice into GDS"
        );
        let seq = self.bump_seq();
        let priority = self.priority(size);
        let idx = self.nodes.alloc(Node {
            doc,
            priority,
            seq,
            size,
            heap_pos: NIL,
        });
        self.table.insert(doc, idx);
        self.heap.push(&mut self.nodes, idx);
    }

    fn on_hit(&mut self, doc: DocId) {
        let idx = self
            .table
            .get(doc)
            // lint:allow(panic) -- ReplacementPolicy contract: a hit on an
            // untracked doc is a caller bug (see trait docs).
            .unwrap_or_else(|| panic!("hit on untracked {doc}"));
        // The defining GDS move: restore full priority at the current clock.
        let seq = self.bump_seq();
        let priority = self.priority(self.nodes.get(idx).size);
        self.heap.remove(&mut self.nodes, idx);
        {
            let node = self.nodes.get_mut(idx);
            node.priority = priority;
            node.seq = seq;
        }
        self.heap.push(&mut self.nodes, idx);
    }

    fn on_remove(&mut self, doc: DocId) {
        let idx = self
            .table
            .remove(doc)
            // lint:allow(panic) -- ReplacementPolicy contract: removing an
            // untracked doc is a caller bug (see trait docs).
            .unwrap_or_else(|| panic!("remove of untracked {doc}"));
        self.heap.remove(&mut self.nodes, idx);
        let node = self.nodes.free(idx);
        self.clock = self.clock.max(node.priority);
    }

    fn victim(&self) -> Option<DocId> {
        self.heap.peek().map(|idx| self.nodes.get(idx).doc)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn growth_events(&self) -> u64 {
        self.nodes.growth_events() + self.table.growth_events() + self.heap.growth_events()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Gds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    #[test]
    fn big_docs_evicted_first() {
        let mut g = Gds::new();
        g.on_insert(d(1), ByteSize::from_kb(10));
        g.on_insert(d(2), ByteSize::from_kb(1));
        assert_eq!(g.victim(), Some(d(1)));
    }

    #[test]
    fn hit_restores_priority_at_current_clock() {
        let mut g = Gds::new();
        g.on_insert(d(1), ByteSize::from_kb(1)); // H = 1.0
        g.on_insert(d(2), ByteSize::from_kb(1));
        g.on_remove(d(2)); // clock -> 1.0
        g.on_insert(d(3), ByteSize::from_kb(1)); // H = 2.0
                                                 // Doc 1 still has H = 1.0 and is the victim...
        assert_eq!(g.victim(), Some(d(1)));
        // ...until a hit re-inflates it to H = 2.0; tie-break then favors
        // the less recently re-keyed doc 3? No: doc 3 has an earlier seq.
        g.on_hit(d(1));
        assert_eq!(g.victim(), Some(d(3)));
    }

    #[test]
    fn frequency_does_not_accumulate() {
        // Unlike GDSF, many hits at the same clock leave H unchanged.
        let mut g = Gds::new();
        g.on_insert(d(1), ByteSize::from_kb(1));
        g.on_insert(d(2), ByteSize::from_kb(2));
        for _ in 0..10 {
            g.on_hit(d(2)); // clock still 0: H stays 0.5
        }
        assert_eq!(g.victim(), Some(d(2)), "hits alone must not out-rank size");
    }

    #[test]
    fn steady_state_churn_is_allocation_free() {
        let mut g = Gds::new();
        for i in 0..64 {
            g.on_insert(d(i), ByteSize::from_kb(1 + i % 7));
        }
        let baseline = g.growth_events();
        for i in 64..4096 {
            let v = g.victim().unwrap();
            g.on_remove(v);
            g.on_insert(d(i), ByteSize::from_kb(1 + i % 7));
            g.on_hit(d(i));
        }
        assert_eq!(g.growth_events(), baseline);
    }

    #[test]
    #[should_panic(expected = "untracked")]
    fn hit_on_missing_panics() {
        Gds::new().on_hit(d(1));
    }
}
