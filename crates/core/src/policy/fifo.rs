//! First-in-first-out replacement.

use super::{PolicyKind, ReplacementPolicy};
use crate::index::{DocTable, Linked, Links, List, Slab, NIL};
use coopcache_types::{ByteSize, DocId};

const TABLE_SEED: u64 = 0x4649_464f_0000_0001; // "FIFO"

#[derive(Debug, Clone)]
struct Node {
    doc: DocId,
    links: Links,
}

impl Linked for Node {
    fn links(&self) -> &Links {
        &self.links
    }
    fn links_mut(&mut self) -> &mut Links {
        &mut self.links
    }
}

/// FIFO victim ordering: documents are evicted in insertion order and hits
/// do not refresh an entry. Included as the classic lower-bound baseline
/// for replacement-policy ablations.
///
/// Implemented as an intrusive queue over a flat arena (head = oldest =
/// victim, tail = newest) with an open-addressing doc→slot table; every
/// operation is pointer-free O(1).
///
/// # Example
///
/// ```
/// use coopcache_core::{Fifo, ReplacementPolicy};
/// use coopcache_types::{ByteSize, DocId};
///
/// let mut fifo = Fifo::new();
/// fifo.on_insert(DocId::new(1), ByteSize::from_kb(1));
/// fifo.on_insert(DocId::new(2), ByteSize::from_kb(1));
/// fifo.on_hit(DocId::new(1)); // ignored
/// assert_eq!(fifo.victim(), Some(DocId::new(1)));
/// ```
#[derive(Debug)]
pub struct Fifo {
    nodes: Slab<Node>,
    table: DocTable,
    queue: List,
}

impl Default for Fifo {
    fn default() -> Self {
        Self::new()
    }
}

impl Fifo {
    /// Creates an empty FIFO ordering.
    #[must_use]
    pub fn new() -> Self {
        Self {
            nodes: Slab::new(),
            table: DocTable::new(TABLE_SEED),
            queue: List::new(),
        }
    }
}

impl ReplacementPolicy for Fifo {
    fn on_insert(&mut self, doc: DocId, _size: ByteSize) {
        assert!(
            self.table.get(doc).is_none(),
            "{doc} inserted twice into FIFO"
        );
        let idx = self.nodes.alloc(Node {
            doc,
            links: Links::default(),
        });
        self.table.insert(doc, idx);
        self.queue.push_tail(&mut self.nodes, idx);
    }

    fn on_hit(&mut self, doc: DocId) {
        // FIFO ignores hits, but an untracked hit is still a caller bug.
        assert!(self.table.get(doc).is_some(), "hit on untracked {doc}");
    }

    fn on_remove(&mut self, doc: DocId) {
        let idx = self
            .table
            .remove(doc)
            // lint:allow(panic) -- ReplacementPolicy contract: removing an
            // untracked doc is a caller bug (see trait docs).
            .unwrap_or_else(|| panic!("remove of untracked {doc}"));
        self.queue.unlink(&mut self.nodes, idx);
        self.nodes.free(idx);
    }

    fn victim(&self) -> Option<DocId> {
        let head = self.queue.head();
        (head != NIL).then(|| self.nodes.get(head).doc)
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn growth_events(&self) -> u64 {
        self.nodes.growth_events() + self.table.growth_events()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Fifo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    fn sz() -> ByteSize {
        ByteSize::from_kb(1)
    }

    #[test]
    fn evicts_in_insertion_order_despite_hits() {
        let mut fifo = Fifo::new();
        for i in 1..=3 {
            fifo.on_insert(d(i), sz());
        }
        fifo.on_hit(d(1));
        fifo.on_hit(d(1));
        let mut order = Vec::new();
        while let Some(v) = fifo.victim() {
            order.push(v.as_u64());
            fifo.on_remove(v);
        }
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn remove_middle_keeps_order() {
        let mut fifo = Fifo::new();
        for i in 1..=3 {
            fifo.on_insert(d(i), sz());
        }
        fifo.on_remove(d(2));
        assert_eq!(fifo.victim(), Some(d(1)));
        fifo.on_remove(d(1));
        assert_eq!(fifo.victim(), Some(d(3)));
    }

    #[test]
    fn steady_state_churn_is_allocation_free() {
        let mut fifo = Fifo::new();
        for i in 0..64 {
            fifo.on_insert(d(i), sz());
        }
        let baseline = fifo.growth_events();
        for i in 64..4096 {
            let v = fifo.victim().unwrap();
            fifo.on_remove(v);
            fifo.on_insert(d(i), sz());
        }
        assert_eq!(fifo.growth_events(), baseline);
    }

    #[test]
    #[should_panic(expected = "untracked")]
    fn hit_on_missing_panics() {
        Fifo::new().on_hit(d(1));
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut fifo = Fifo::new();
        fifo.on_insert(d(1), sz());
        fifo.on_insert(d(1), sz());
    }
}
