//! First-in-first-out replacement.

use super::{PolicyKind, ReplacementPolicy};
use coopcache_types::{ByteSize, DocId};
use std::collections::{BTreeMap, HashMap};

/// FIFO victim ordering: documents are evicted in insertion order and hits
/// do not refresh an entry. Included as the classic lower-bound baseline
/// for replacement-policy ablations.
///
/// # Example
///
/// ```
/// use coopcache_core::{Fifo, ReplacementPolicy};
/// use coopcache_types::{ByteSize, DocId};
///
/// let mut fifo = Fifo::new();
/// fifo.on_insert(DocId::new(1), ByteSize::from_kb(1));
/// fifo.on_insert(DocId::new(2), ByteSize::from_kb(1));
/// fifo.on_hit(DocId::new(1)); // ignored
/// assert_eq!(fifo.victim(), Some(DocId::new(1)));
/// ```
#[derive(Debug, Default)]
pub struct Fifo {
    by_seq: BTreeMap<u64, DocId>,
    seq_of: HashMap<DocId, u64>,
    next_seq: u64,
}

impl Fifo {
    /// Creates an empty FIFO ordering.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for Fifo {
    fn on_insert(&mut self, doc: DocId, _size: ByteSize) {
        assert!(
            !self.seq_of.contains_key(&doc),
            "{doc} inserted twice into FIFO"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.seq_of.insert(doc, seq);
        self.by_seq.insert(seq, doc);
    }

    fn on_hit(&mut self, doc: DocId) {
        // FIFO ignores hits, but an untracked hit is still a caller bug.
        assert!(self.seq_of.contains_key(&doc), "hit on untracked {doc}");
    }

    fn on_remove(&mut self, doc: DocId) {
        let seq = self
            .seq_of
            .remove(&doc)
            // lint:allow(panic) -- ReplacementPolicy contract: removing an
            // untracked doc is a caller bug (see trait docs).
            .unwrap_or_else(|| panic!("remove of untracked {doc}"));
        self.by_seq.remove(&seq);
    }

    fn victim(&self) -> Option<DocId> {
        self.by_seq.values().next().copied()
    }

    fn len(&self) -> usize {
        self.seq_of.len()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Fifo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    fn sz() -> ByteSize {
        ByteSize::from_kb(1)
    }

    #[test]
    fn evicts_in_insertion_order_despite_hits() {
        let mut fifo = Fifo::new();
        for i in 1..=3 {
            fifo.on_insert(d(i), sz());
        }
        fifo.on_hit(d(1));
        fifo.on_hit(d(1));
        let mut order = Vec::new();
        while let Some(v) = fifo.victim() {
            order.push(v.as_u64());
            fifo.on_remove(v);
        }
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn remove_middle_keeps_order() {
        let mut fifo = Fifo::new();
        for i in 1..=3 {
            fifo.on_insert(d(i), sz());
        }
        fifo.on_remove(d(2));
        assert_eq!(fifo.victim(), Some(d(1)));
        fifo.on_remove(d(1));
        assert_eq!(fifo.victim(), Some(d(3)));
    }

    #[test]
    #[should_panic(expected = "untracked")]
    fn hit_on_missing_panics() {
        Fifo::new().on_hit(d(1));
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut fifo = Fifo::new();
        fifo.on_insert(d(1), sz());
        fifo.on_insert(d(1), sz());
    }
}
