//! Least-recently-used replacement.

use super::{PolicyKind, ReplacementPolicy};
use coopcache_types::{ByteSize, DocId};
use std::collections::{BTreeMap, HashMap};

/// LRU victim ordering: the document that has gone longest without a hit
/// is evicted first. Hits promote a document to the head of the recency
/// list; the EA scheme's responder-side rule works precisely by *skipping*
/// this promotion for redundant replicas.
///
/// Implemented as a monotonic sequence number per document: a `BTreeMap`
/// keyed by sequence gives the tail (victim) in O(log n), and a `HashMap`
/// resolves a document to its current sequence.
///
/// # Example
///
/// ```
/// use coopcache_core::{Lru, ReplacementPolicy};
/// use coopcache_types::{ByteSize, DocId};
///
/// let mut lru = Lru::new();
/// lru.on_insert(DocId::new(1), ByteSize::from_kb(1));
/// lru.on_insert(DocId::new(2), ByteSize::from_kb(1));
/// lru.on_hit(DocId::new(1)); // 1 is now most recent
/// assert_eq!(lru.victim(), Some(DocId::new(2)));
/// ```
#[derive(Debug, Default)]
pub struct Lru {
    by_seq: BTreeMap<u64, DocId>,
    seq_of: HashMap<DocId, u64>,
    next_seq: u64,
}

impl Lru {
    /// Creates an empty LRU ordering.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, doc: DocId) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(old) = self.seq_of.insert(doc, seq) {
            self.by_seq.remove(&old);
        }
        self.by_seq.insert(seq, doc);
    }
}

impl ReplacementPolicy for Lru {
    fn on_insert(&mut self, doc: DocId, _size: ByteSize) {
        assert!(
            !self.seq_of.contains_key(&doc),
            "{doc} inserted twice into LRU"
        );
        self.touch(doc);
    }

    fn on_hit(&mut self, doc: DocId) {
        assert!(self.seq_of.contains_key(&doc), "hit on untracked {doc}");
        self.touch(doc);
    }

    fn on_remove(&mut self, doc: DocId) {
        let seq = self
            .seq_of
            .remove(&doc)
            // lint:allow(panic) -- ReplacementPolicy contract: removing an
            // untracked doc is a caller bug (see trait docs).
            .unwrap_or_else(|| panic!("remove of untracked {doc}"));
        self.by_seq.remove(&seq);
    }

    fn victim(&self) -> Option<DocId> {
        self.by_seq.values().next().copied()
    }

    fn len(&self) -> usize {
        self.seq_of.len()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Lru
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    fn sz() -> ByteSize {
        ByteSize::from_kb(1)
    }

    #[test]
    fn evicts_least_recent_first() {
        let mut lru = Lru::new();
        for i in 1..=3 {
            lru.on_insert(d(i), sz());
        }
        assert_eq!(lru.victim(), Some(d(1)));
        lru.on_remove(d(1));
        assert_eq!(lru.victim(), Some(d(2)));
    }

    #[test]
    fn hit_promotes_to_head() {
        let mut lru = Lru::new();
        for i in 1..=3 {
            lru.on_insert(d(i), sz());
        }
        lru.on_hit(d(1));
        assert_eq!(lru.victim(), Some(d(2)));
        lru.on_hit(d(2));
        assert_eq!(lru.victim(), Some(d(3)));
    }

    #[test]
    fn skipping_promotion_leaves_order_unchanged() {
        // The EA responder-side rule: serving a remote hit WITHOUT calling
        // on_hit must leave the victim order untouched.
        let mut lru = Lru::new();
        for i in 1..=3 {
            lru.on_insert(d(i), sz());
        }
        let before = lru.victim();
        // ... responder serves doc 1 remotely but does not promote ...
        assert_eq!(lru.victim(), before);
    }

    #[test]
    fn full_drain_order() {
        let mut lru = Lru::new();
        for i in 1..=5 {
            lru.on_insert(d(i), sz());
        }
        lru.on_hit(d(2));
        lru.on_hit(d(4));
        let mut order = Vec::new();
        while let Some(v) = lru.victim() {
            order.push(v.as_u64());
            lru.on_remove(v);
        }
        assert_eq!(order, vec![1, 3, 5, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut lru = Lru::new();
        lru.on_insert(d(1), sz());
        lru.on_insert(d(1), sz());
    }

    #[test]
    #[should_panic(expected = "untracked")]
    fn hit_on_missing_panics() {
        Lru::new().on_hit(d(1));
    }

    #[test]
    #[should_panic(expected = "untracked")]
    fn remove_of_missing_panics() {
        Lru::new().on_remove(d(1));
    }
}
