//! Least-recently-used replacement.

use super::{PolicyKind, ReplacementPolicy};
use crate::index::{DocTable, Linked, Links, List, Slab, NIL};
use coopcache_types::{ByteSize, DocId};

/// Table seed for the policy's doc→slot index (fixed: policy-internal
/// bucket order never leaks into any externally visible order).
const TABLE_SEED: u64 = 0x4c52_5500_0000_0001; // "LRU"

#[derive(Debug, Clone)]
struct Node {
    doc: DocId,
    links: Links,
}

impl Linked for Node {
    fn links(&self) -> &Links {
        &self.links
    }
    fn links_mut(&mut self) -> &mut Links {
        &mut self.links
    }
}

/// LRU victim ordering: the document that has gone longest without a hit
/// is evicted first. Hits promote a document to the head of the recency
/// list; the EA scheme's responder-side rule works precisely by *skipping*
/// this promotion for redundant replicas.
///
/// Implemented as an intrusive doubly-linked recency list over a flat
/// arena: list head is the victim, inserts and hits relink to the tail,
/// and an open-addressing table resolves a document to its arena slot.
/// Every operation is pointer-free O(1) with zero steady-state allocation.
///
/// # Example
///
/// ```
/// use coopcache_core::{Lru, ReplacementPolicy};
/// use coopcache_types::{ByteSize, DocId};
///
/// let mut lru = Lru::new();
/// lru.on_insert(DocId::new(1), ByteSize::from_kb(1));
/// lru.on_insert(DocId::new(2), ByteSize::from_kb(1));
/// lru.on_hit(DocId::new(1)); // 1 is now most recent
/// assert_eq!(lru.victim(), Some(DocId::new(2)));
/// ```
#[derive(Debug)]
pub struct Lru {
    nodes: Slab<Node>,
    table: DocTable,
    order: List,
}

impl Default for Lru {
    fn default() -> Self {
        Self::new()
    }
}

impl Lru {
    /// Creates an empty LRU ordering.
    #[must_use]
    pub fn new() -> Self {
        Self {
            nodes: Slab::new(),
            table: DocTable::new(TABLE_SEED),
            order: List::new(),
        }
    }
}

impl ReplacementPolicy for Lru {
    fn on_insert(&mut self, doc: DocId, _size: ByteSize) {
        assert!(
            self.table.get(doc).is_none(),
            "{doc} inserted twice into LRU"
        );
        let idx = self.nodes.alloc(Node {
            doc,
            links: Links::default(),
        });
        self.table.insert(doc, idx);
        self.order.push_tail(&mut self.nodes, idx);
    }

    fn on_hit(&mut self, doc: DocId) {
        let idx = self
            .table
            .get(doc)
            // lint:allow(panic) -- ReplacementPolicy contract: hitting an
            // untracked doc is a caller bug (see trait docs).
            .unwrap_or_else(|| panic!("hit on untracked {doc}"));
        self.order.move_to_tail(&mut self.nodes, idx);
    }

    fn on_remove(&mut self, doc: DocId) {
        let idx = self
            .table
            .remove(doc)
            // lint:allow(panic) -- ReplacementPolicy contract: removing an
            // untracked doc is a caller bug (see trait docs).
            .unwrap_or_else(|| panic!("remove of untracked {doc}"));
        self.order.unlink(&mut self.nodes, idx);
        self.nodes.free(idx);
    }

    fn victim(&self) -> Option<DocId> {
        let head = self.order.head();
        (head != NIL).then(|| self.nodes.get(head).doc)
    }

    fn len(&self) -> usize {
        self.order.len()
    }

    fn growth_events(&self) -> u64 {
        self.nodes.growth_events() + self.table.growth_events()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Lru
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    fn sz() -> ByteSize {
        ByteSize::from_kb(1)
    }

    #[test]
    fn evicts_least_recent_first() {
        let mut lru = Lru::new();
        for i in 1..=3 {
            lru.on_insert(d(i), sz());
        }
        assert_eq!(lru.victim(), Some(d(1)));
        lru.on_remove(d(1));
        assert_eq!(lru.victim(), Some(d(2)));
    }

    #[test]
    fn hit_promotes_to_head() {
        let mut lru = Lru::new();
        for i in 1..=3 {
            lru.on_insert(d(i), sz());
        }
        lru.on_hit(d(1));
        assert_eq!(lru.victim(), Some(d(2)));
        lru.on_hit(d(2));
        assert_eq!(lru.victim(), Some(d(3)));
    }

    #[test]
    fn skipping_promotion_leaves_order_unchanged() {
        // The EA responder-side rule: serving a remote hit WITHOUT calling
        // on_hit must leave the victim order untouched.
        let mut lru = Lru::new();
        for i in 1..=3 {
            lru.on_insert(d(i), sz());
        }
        let before = lru.victim();
        // ... responder serves doc 1 remotely but does not promote ...
        assert_eq!(lru.victim(), before);
    }

    #[test]
    fn full_drain_order() {
        let mut lru = Lru::new();
        for i in 1..=5 {
            lru.on_insert(d(i), sz());
        }
        lru.on_hit(d(2));
        lru.on_hit(d(4));
        let mut order = Vec::new();
        while let Some(v) = lru.victim() {
            order.push(v.as_u64());
            lru.on_remove(v);
        }
        assert_eq!(order, vec![1, 3, 5, 2, 4]);
    }

    #[test]
    fn steady_state_churn_is_allocation_free() {
        let mut lru = Lru::new();
        for i in 0..64 {
            lru.on_insert(d(i), sz());
        }
        let baseline = lru.growth_events();
        for i in 64..4096 {
            let v = lru.victim().unwrap();
            lru.on_remove(v);
            lru.on_insert(d(i), sz());
            lru.on_hit(d(i));
        }
        assert_eq!(lru.growth_events(), baseline);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut lru = Lru::new();
        lru.on_insert(d(1), sz());
        lru.on_insert(d(1), sz());
    }

    #[test]
    #[should_panic(expected = "untracked")]
    fn hit_on_missing_panics() {
        Lru::new().on_hit(d(1));
    }

    #[test]
    #[should_panic(expected = "untracked")]
    fn remove_of_missing_panics() {
        Lru::new().on_remove(d(1));
    }
}
