//! Document replacement policies.
//!
//! A [`ReplacementPolicy`] maintains the *victim order* of a cache — which
//! document should be removed next under capacity pressure. The byte
//! accounting and metadata live in [`crate::Cache`]; the policy only orders
//! document ids.
//!
//! Seven policies are provided, all intrusive-list or arena-heap backed
//! (pointer-free O(1), O(log n) for the heap-ordered family):
//!
//! * [`Lru`] — least recently used (the paper's evaluation policy);
//! * [`Lfu`] — least frequently used, with LRU tie-breaking;
//! * [`Fifo`] — insertion order, hits do not refresh;
//! * [`Gdsf`] — GreedyDual-Size-Frequency (Cao & Irani's cost-aware family,
//!   cited by the paper as related document-replacement work);
//! * [`Gds`] — plain GreedyDual-Size (the same family, no frequency);
//! * [`Slru`] — segmented LRU, the scan-resistant LRU variant;
//! * [`S3Fifo`] — Small/Main/Ghost three-queue FIFO whose ghost queue
//!   reports observed inter-reference gaps to the eq. 5 tracker.

mod fifo;
mod gds;
mod gdsf;
mod lfu;
mod lru;
mod s3fifo;
mod slru;

pub use fifo::Fifo;
pub use gds::Gds;
pub use gdsf::Gdsf;
pub use lfu::Lfu;
pub use lru::Lru;
pub use s3fifo::S3Fifo;
pub use slru::Slru;

use coopcache_types::{ByteSize, DocId, DurationMs, Timestamp};
use std::fmt;

/// The victim ordering of a cache.
///
/// Implementations must uphold:
///
/// * every id passed to [`on_insert`](Self::on_insert) is tracked until
///   [`on_remove`](Self::on_remove);
/// * [`victim`](Self::victim) returns `Some` iff the policy tracks at least
///   one id, and never an id that was removed;
/// * [`on_hit`](Self::on_hit) / [`on_insert`](Self::on_insert) for an id
///   the policy does not track is a caller bug and may panic.
pub trait ReplacementPolicy: fmt::Debug + Send {
    /// Starts tracking a newly inserted document.
    ///
    /// # Panics
    ///
    /// May panic if `doc` is already tracked.
    fn on_insert(&mut self, doc: DocId, size: ByteSize);

    /// Records a hit on a tracked document (LRU promotes to head, LFU
    /// bumps frequency, FIFO ignores).
    ///
    /// # Panics
    ///
    /// May panic if `doc` is not tracked.
    fn on_hit(&mut self, doc: DocId);

    /// Stops tracking a document (evicted or explicitly removed).
    ///
    /// # Panics
    ///
    /// May panic if `doc` is not tracked.
    fn on_remove(&mut self, doc: DocId);

    /// The document that should be evicted next, if any.
    fn victim(&self) -> Option<DocId>;

    /// Number of tracked documents.
    fn len(&self) -> usize;

    /// True when nothing is tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which well-known policy this is (drives the expiration-age flavor).
    fn kind(&self) -> PolicyKind;

    /// Timestamped admission notice, called by the cache right after
    /// [`on_insert`](Self::on_insert). Policies that keep eviction history
    /// (the [`S3Fifo`] ghost queue) return the observed gap between the
    /// document's last capacity eviction and this re-admission — the
    /// "observed inter-reference gap" the cache feeds into the eq. 5
    /// expiration-age tracker. History-less policies return `None`.
    fn on_admit(&mut self, _doc: DocId, _now: Timestamp) -> Option<DurationMs> {
        None
    }

    /// Timestamped capacity-eviction notice, called by the cache right
    /// after [`on_remove`](Self::on_remove) — only for capacity-pressure
    /// evictions, never for explicit removals or TTL expiry. Lets
    /// history-keeping policies start a ghost clock for the document.
    fn on_evicted(&mut self, _doc: DocId, _now: Timestamp) {}

    /// Times this policy's backing storage reallocated (0 in steady
    /// state); feeds the `profile` feature's allocation-free audit.
    fn growth_events(&self) -> u64 {
        0
    }
}

/// Identifies a replacement policy; used in configuration and to select
/// the matching document-expiration-age formula (LRU-style or LFU-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PolicyKind {
    /// Least recently used.
    #[default]
    Lru,
    /// Least frequently used.
    Lfu,
    /// First in, first out.
    Fifo,
    /// GreedyDual-Size-Frequency.
    Gdsf,
    /// GreedyDual-Size (no frequency term).
    Gds,
    /// Segmented LRU.
    Slru,
    /// S3-FIFO-style Small/Main/Ghost three-queue policy.
    S3Fifo,
}

impl PolicyKind {
    /// Builds a fresh policy instance of this kind.
    #[must_use]
    pub fn build(self) -> Box<dyn ReplacementPolicy> {
        match self {
            Self::Lru => Box::new(Lru::new()),
            Self::Lfu => Box::new(Lfu::new()),
            Self::Fifo => Box::new(Fifo::new()),
            Self::Gdsf => Box::new(Gdsf::new()),
            Self::Gds => Box::new(Gds::new()),
            Self::Slru => Box::new(Slru::new()),
            Self::S3Fifo => Box::new(S3Fifo::new()),
        }
    }

    /// Whether the policy family keeps a last-hit timestamp (LRU-like) or
    /// a hit counter (LFU-like); decides which document-expiration-age
    /// formula applies (paper eq. 1).
    #[must_use]
    pub fn expiration_flavor(self) -> ExpirationFlavor {
        match self {
            Self::Lru | Self::Fifo | Self::Gds | Self::Slru | Self::S3Fifo => ExpirationFlavor::Lru,
            Self::Lfu | Self::Gdsf => ExpirationFlavor::Lfu,
        }
    }

    /// All provided policies, for sweeps and tests.
    #[must_use]
    pub const fn all() -> [PolicyKind; 7] {
        [
            Self::Lru,
            Self::Lfu,
            Self::Fifo,
            Self::Gdsf,
            Self::Gds,
            Self::Slru,
            Self::S3Fifo,
        ]
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::Lru => "lru",
            Self::Lfu => "lfu",
            Self::Fifo => "fifo",
            Self::Gdsf => "gdsf",
            Self::Gds => "gds",
            Self::Slru => "slru",
            Self::S3Fifo => "s3fifo",
        };
        f.write_str(name)
    }
}

/// Which document-expiration-age formula to apply (paper eq. 1): the
/// LRU formula (time since last hit) or the LFU formula (lifetime divided
/// by hit count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExpirationFlavor {
    /// `DocExpAge = T_evict − T_last_hit` (eq. 2).
    #[default]
    Lru,
    /// `DocExpAge = (T_evict − T_enter) / HIT_COUNTER`.
    Lfu,
}

impl fmt::Display for ExpirationFlavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lru => f.write_str("lru-expiration-age"),
            Self::Lfu => f.write_str("lfu-expiration-age"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    fn sz() -> ByteSize {
        ByteSize::from_kb(1)
    }

    /// Behavioural checks every policy must satisfy.
    fn exercise_common(policy: &mut dyn ReplacementPolicy) {
        assert!(policy.is_empty());
        assert_eq!(policy.victim(), None);
        policy.on_insert(d(1), sz());
        policy.on_insert(d(2), sz());
        policy.on_insert(d(3), sz());
        assert_eq!(policy.len(), 3);
        assert!(!policy.is_empty());
        let v = policy.victim().expect("non-empty policy has a victim");
        assert!([d(1), d(2), d(3)].contains(&v));
        policy.on_remove(v);
        assert_eq!(policy.len(), 2);
        assert_ne!(policy.victim(), Some(v), "victim survived removal");
        while let Some(v) = policy.victim() {
            policy.on_remove(v);
        }
        assert!(policy.is_empty());
    }

    #[test]
    fn all_policies_pass_common_contract() {
        for kind in PolicyKind::all() {
            let mut p = kind.build();
            exercise_common(p.as_mut());
            assert_eq!(p.kind(), kind);
        }
    }

    #[test]
    fn expiration_flavors() {
        assert_eq!(PolicyKind::Lru.expiration_flavor(), ExpirationFlavor::Lru);
        assert_eq!(PolicyKind::Fifo.expiration_flavor(), ExpirationFlavor::Lru);
        assert_eq!(PolicyKind::Gds.expiration_flavor(), ExpirationFlavor::Lru);
        assert_eq!(PolicyKind::Slru.expiration_flavor(), ExpirationFlavor::Lru);
        assert_eq!(
            PolicyKind::S3Fifo.expiration_flavor(),
            ExpirationFlavor::Lru
        );
        assert_eq!(PolicyKind::Lfu.expiration_flavor(), ExpirationFlavor::Lfu);
        assert_eq!(PolicyKind::Gdsf.expiration_flavor(), ExpirationFlavor::Lfu);
    }

    #[test]
    fn display_names() {
        assert_eq!(PolicyKind::Lru.to_string(), "lru");
        assert_eq!(PolicyKind::Gdsf.to_string(), "gdsf");
        assert_eq!(ExpirationFlavor::Lru.to_string(), "lru-expiration-age");
    }

    #[test]
    fn default_kind_is_lru() {
        assert_eq!(PolicyKind::default(), PolicyKind::Lru);
    }
}
