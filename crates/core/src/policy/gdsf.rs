//! GreedyDual-Size-Frequency replacement.

use super::{PolicyKind, ReplacementPolicy};
use crate::index::{DocTable, HeapKeyed, KeyedMinHeap, Slab, NIL};
use coopcache_types::{ByteSize, DocId};

const TABLE_SEED: u64 = 0x4744_5346_0000_0001; // "GDSF"

#[derive(Debug, Clone)]
struct Node {
    doc: DocId,
    priority: u64,
    seq: u64,
    freq: u64,
    size: ByteSize,
    heap_pos: u32,
}

impl HeapKeyed for Node {
    fn heap_key(&self) -> (u64, u64) {
        (self.priority, self.seq)
    }
    fn heap_pos(&self) -> u32 {
        self.heap_pos
    }
    fn set_heap_pos(&mut self, pos: u32) {
        self.heap_pos = pos;
    }
}

/// GreedyDual-Size-Frequency (GDSF) victim ordering.
///
/// Each document carries a priority `H = L + freq / size_kb`, where `L` is
/// the *inflation clock*: whenever a document is evicted, `L` rises to the
/// evictee's priority, so long-unreferenced documents eventually fall below
/// fresh ones regardless of size. Small, frequently hit documents are
/// retained longest — the behaviour that made GDSF the strongest
/// byte-hit-rate policy among the cost-aware family the paper cites
/// (Cao & Irani).
///
/// Priorities are kept as integer micro-units to give a total order
/// without floating-point `NaN` hazards. The order lives in an
/// arena-backed min-heap keyed by `(priority, seq)` with an
/// open-addressing doc→slot table; the unique seq totalizes the order,
/// reproducing the previous ordered-set representation exactly.
///
/// # Example
///
/// ```
/// use coopcache_core::{Gdsf, ReplacementPolicy};
/// use coopcache_types::{ByteSize, DocId};
///
/// let mut gdsf = Gdsf::new();
/// gdsf.on_insert(DocId::new(1), ByteSize::from_kb(100)); // big
/// gdsf.on_insert(DocId::new(2), ByteSize::from_kb(1));   // small
/// assert_eq!(gdsf.victim(), Some(DocId::new(1))); // big goes first
/// ```
#[derive(Debug)]
pub struct Gdsf {
    nodes: Slab<Node>,
    table: DocTable,
    heap: KeyedMinHeap,
    /// Inflation clock `L`, in micro-priority units.
    clock: u64,
    next_seq: u64,
}

/// Micro-units per 1.0 of priority.
const SCALE: u64 = 1_000_000;

impl Default for Gdsf {
    fn default() -> Self {
        Self::new()
    }
}

impl Gdsf {
    /// Creates an empty GDSF ordering.
    #[must_use]
    pub fn new() -> Self {
        Self {
            nodes: Slab::new(),
            table: DocTable::new(TABLE_SEED),
            heap: KeyedMinHeap::new(),
            clock: 0,
            next_seq: 0,
        }
    }

    /// The current inflation-clock value, in priority units.
    #[must_use]
    pub fn clock(&self) -> f64 {
        self.clock as f64 / SCALE as f64
    }

    fn priority(&self, freq: u64, size: ByteSize) -> u64 {
        // freq / size_kb, with size floored to 1 byte to stay total.
        let size_kb = (size.as_bytes().max(1)) as f64 / 1_000.0;
        let value = freq as f64 / size_kb;
        self.clock + (value * SCALE as f64) as u64
    }

    fn bump_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }
}

impl ReplacementPolicy for Gdsf {
    fn on_insert(&mut self, doc: DocId, size: ByteSize) {
        assert!(
            self.table.get(doc).is_none(),
            "{doc} inserted twice into GDSF"
        );
        let seq = self.bump_seq();
        let priority = self.priority(1, size);
        let idx = self.nodes.alloc(Node {
            doc,
            priority,
            seq,
            freq: 1,
            size,
            heap_pos: NIL,
        });
        self.table.insert(doc, idx);
        self.heap.push(&mut self.nodes, idx);
    }

    fn on_hit(&mut self, doc: DocId) {
        let idx = self
            .table
            .get(doc)
            // lint:allow(panic) -- ReplacementPolicy contract: a hit on an
            // untracked doc is a caller bug (see trait docs).
            .unwrap_or_else(|| panic!("hit on untracked {doc}"));
        let (freq, size) = {
            let node = self.nodes.get(idx);
            (node.freq + 1, node.size)
        };
        let seq = self.bump_seq();
        let priority = self.priority(freq, size);
        self.heap.remove(&mut self.nodes, idx);
        {
            let node = self.nodes.get_mut(idx);
            node.priority = priority;
            node.seq = seq;
            node.freq = freq;
        }
        self.heap.push(&mut self.nodes, idx);
    }

    fn on_remove(&mut self, doc: DocId) {
        let idx = self
            .table
            .remove(doc)
            // lint:allow(panic) -- ReplacementPolicy contract: removing an
            // untracked doc is a caller bug (see trait docs).
            .unwrap_or_else(|| panic!("remove of untracked {doc}"));
        self.heap.remove(&mut self.nodes, idx);
        let node = self.nodes.free(idx);
        // Inflate the clock to the departed priority (GreedyDual aging).
        self.clock = self.clock.max(node.priority);
    }

    fn victim(&self) -> Option<DocId> {
        self.heap.peek().map(|idx| self.nodes.get(idx).doc)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn growth_events(&self) -> u64 {
        self.nodes.growth_events() + self.table.growth_events() + self.heap.growth_events()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Gdsf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    #[test]
    fn larger_documents_evicted_first_at_equal_frequency() {
        let mut g = Gdsf::new();
        g.on_insert(d(1), ByteSize::from_kb(10));
        g.on_insert(d(2), ByteSize::from_kb(1));
        g.on_insert(d(3), ByteSize::from_kb(100));
        assert_eq!(g.victim(), Some(d(3)));
        g.on_remove(d(3));
        assert_eq!(g.victim(), Some(d(1)));
    }

    #[test]
    fn frequency_rescues_a_large_document() {
        let mut g = Gdsf::new();
        g.on_insert(d(1), ByteSize::from_kb(10));
        g.on_insert(d(2), ByteSize::from_kb(1));
        // 20 hits on the big doc: freq/size = 21/10 > 1/1.
        for _ in 0..20 {
            g.on_hit(d(1));
        }
        assert_eq!(g.victim(), Some(d(2)));
    }

    #[test]
    fn clock_inflates_on_eviction() {
        let mut g = Gdsf::new();
        assert_eq!(g.clock(), 0.0);
        g.on_insert(d(1), ByteSize::from_kb(1)); // priority 1.0
        g.on_remove(d(1));
        assert!((g.clock() - 1.0).abs() < 1e-6, "clock {}", g.clock());
        // A new same-shaped doc now sits above the old clock.
        g.on_insert(d(2), ByteSize::from_kb(1));
        g.on_remove(d(2));
        assert!((g.clock() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn aging_lets_new_docs_catch_old_frequent_ones() {
        let mut g = Gdsf::new();
        g.on_insert(d(1), ByteSize::from_kb(1));
        g.on_hit(d(1)); // freq 2, priority 2.0
        g.on_insert(d(2), ByteSize::from_kb(1)); // priority 1.0
        assert_eq!(g.victim(), Some(d(2)));
        g.on_remove(d(2)); // clock inflates to 1.0
                           // A fresh single-hit doc now ties the stale frequent one at 2.0;
                           // the tie breaks toward the older entry, so the stale frequent
                           // document has lost its immunity.
        g.on_insert(d(3), ByteSize::from_kb(1));
        assert_eq!(g.victim(), Some(d(1)));
    }

    #[test]
    fn zero_sized_doc_is_handled() {
        let mut g = Gdsf::new();
        g.on_insert(d(1), ByteSize::ZERO);
        g.on_insert(d(2), ByteSize::from_kb(1));
        assert_eq!(g.len(), 2);
        assert!(g.victim().is_some());
    }

    #[test]
    fn steady_state_churn_is_allocation_free() {
        let mut g = Gdsf::new();
        for i in 0..64 {
            g.on_insert(d(i), ByteSize::from_kb(1 + i % 7));
        }
        let baseline = g.growth_events();
        for i in 64..4096 {
            let v = g.victim().unwrap();
            g.on_remove(v);
            g.on_insert(d(i), ByteSize::from_kb(1 + i % 7));
            g.on_hit(d(i));
        }
        assert_eq!(g.growth_events(), baseline);
    }

    #[test]
    #[should_panic(expected = "untracked")]
    fn hit_on_missing_panics() {
        Gdsf::new().on_hit(d(1));
    }
}
