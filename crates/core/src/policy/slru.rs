//! Segmented LRU replacement.

use super::{PolicyKind, ReplacementPolicy};
use coopcache_types::{ByteSize, DocId};
use std::collections::{BTreeMap, HashMap};

/// Segmented LRU: a *probationary* segment for first-time documents and
/// a *protected* segment for documents hit at least twice. One-shot
/// documents wash through probation without displacing proven ones — the
/// classic scan-resistance fix for plain LRU.
///
/// The protected segment is bounded to half the tracked documents
/// (rounded up); overflowing demotes its LRU entry back to the MRU end
/// of probation. Victims come from probation first.
///
/// # Example
///
/// ```
/// use coopcache_core::{ReplacementPolicy, Slru};
/// use coopcache_types::{ByteSize, DocId};
///
/// let mut slru = Slru::new();
/// slru.on_insert(DocId::new(1), ByteSize::from_kb(1));
/// slru.on_insert(DocId::new(2), ByteSize::from_kb(1));
/// slru.on_hit(DocId::new(1)); // promoted to protected
/// assert_eq!(slru.victim(), Some(DocId::new(2)));
/// ```
#[derive(Debug, Default)]
pub struct Slru {
    probation: BTreeMap<u64, DocId>,
    protected: BTreeMap<u64, DocId>,
    // doc -> (seq, in_protected)
    state: HashMap<DocId, (u64, bool)>,
    next_seq: u64,
}

impl Slru {
    /// Creates an empty segmented-LRU ordering.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the document currently sits in the protected segment.
    #[must_use]
    pub fn is_protected(&self, doc: DocId) -> bool {
        self.state.get(&doc).is_some_and(|&(_, prot)| prot)
    }

    fn protected_limit(&self) -> usize {
        self.state.len().div_ceil(2)
    }

    fn push(&mut self, doc: DocId, protected: bool) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some((old_seq, was_protected)) = self.state.insert(doc, (seq, protected)) {
            let seg = if was_protected {
                &mut self.protected
            } else {
                &mut self.probation
            };
            seg.remove(&old_seq);
        }
        let seg = if protected {
            &mut self.protected
        } else {
            &mut self.probation
        };
        seg.insert(seq, doc);
    }

    fn rebalance(&mut self) {
        while self.protected.len() > self.protected_limit() {
            let Some((_, doc)) = self.protected.pop_first() else {
                break;
            };
            self.state.remove(&doc);
            self.push(doc, false); // demote to MRU of probation
        }
    }
}

impl ReplacementPolicy for Slru {
    fn on_insert(&mut self, doc: DocId, _size: ByteSize) {
        assert!(
            !self.state.contains_key(&doc),
            "{doc} inserted twice into SLRU"
        );
        self.push(doc, false);
    }

    fn on_hit(&mut self, doc: DocId) {
        assert!(self.state.contains_key(&doc), "hit on untracked {doc}");
        self.push(doc, true);
        self.rebalance();
    }

    fn on_remove(&mut self, doc: DocId) {
        let (seq, protected) = self
            .state
            .remove(&doc)
            // lint:allow(panic) -- ReplacementPolicy contract: removing an
            // untracked doc is a caller bug (see trait docs).
            .unwrap_or_else(|| panic!("remove of untracked {doc}"));
        if protected {
            self.protected.remove(&seq);
        } else {
            self.probation.remove(&seq);
        }
    }

    fn victim(&self) -> Option<DocId> {
        self.probation
            .values()
            .next()
            .or_else(|| self.protected.values().next())
            .copied()
    }

    fn len(&self) -> usize {
        self.state.len()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Slru
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    fn sz() -> ByteSize {
        ByteSize::from_kb(1)
    }

    #[test]
    fn scan_does_not_displace_protected_docs() {
        let mut s = Slru::new();
        s.on_insert(d(1), sz());
        s.on_hit(d(1)); // protected
        assert!(s.is_protected(d(1)));
        // A scan of one-shot docs flows through probation.
        for i in 10..20 {
            s.on_insert(d(i), sz());
            let v = s.victim().unwrap();
            assert_ne!(v, d(1), "scan evicted the protected doc");
            s.on_remove(v);
        }
        assert!(s.is_protected(d(1)));
    }

    #[test]
    fn victims_come_from_probation_first() {
        let mut s = Slru::new();
        s.on_insert(d(1), sz());
        s.on_insert(d(2), sz());
        s.on_hit(d(2));
        assert_eq!(s.victim(), Some(d(1)));
        s.on_remove(d(1));
        // Only protected docs remain; victim falls back to protected LRU.
        assert_eq!(s.victim(), Some(d(2)));
    }

    #[test]
    fn protected_overflow_demotes_to_probation() {
        let mut s = Slru::new();
        for i in 1..=4 {
            s.on_insert(d(i), sz());
        }
        // Protect three of four docs; the limit is ceil(4/2) = 2, so the
        // oldest protected doc gets demoted.
        s.on_hit(d(1));
        s.on_hit(d(2));
        s.on_hit(d(3));
        let protected = (1..=4).filter(|&i| s.is_protected(d(i))).count();
        assert_eq!(protected, 2);
        assert!(!s.is_protected(d(1)), "oldest promotion demoted first");
        assert!(s.is_protected(d(2)) && s.is_protected(d(3)));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn repeated_hits_keep_doc_protected_and_fresh() {
        let mut s = Slru::new();
        s.on_insert(d(1), sz());
        s.on_insert(d(2), sz());
        s.on_hit(d(1));
        s.on_hit(d(2));
        s.on_hit(d(1)); // doc 1 now fresher than doc 2
        s.on_remove(d(2));
        assert!(s.is_protected(d(1)));
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut s = Slru::new();
        s.on_insert(d(1), sz());
        s.on_insert(d(1), sz());
    }
}
