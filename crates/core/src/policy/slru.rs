//! Segmented LRU replacement.

use super::{PolicyKind, ReplacementPolicy};
use crate::index::{DocTable, Linked, Links, List, Slab, NIL};
use coopcache_types::{ByteSize, DocId};

const TABLE_SEED: u64 = 0x534c_5255_0000_0001; // "SLRU"

#[derive(Debug, Clone)]
struct Node {
    doc: DocId,
    protected: bool,
    links: Links,
}

impl Linked for Node {
    fn links(&self) -> &Links {
        &self.links
    }
    fn links_mut(&mut self) -> &mut Links {
        &mut self.links
    }
}

/// Segmented LRU: a *probationary* segment for first-time documents and
/// a *protected* segment for documents hit at least twice. One-shot
/// documents wash through probation without displacing proven ones — the
/// classic scan-resistance fix for plain LRU.
///
/// The protected segment is bounded to half the tracked documents
/// (rounded up); overflowing demotes its LRU entry back to the MRU end
/// of probation. Victims come from probation first.
///
/// Both segments are intrusive lists over one flat arena, so promotion
/// and demotion are O(1) relinks with zero steady-state allocation.
///
/// # Example
///
/// ```
/// use coopcache_core::{ReplacementPolicy, Slru};
/// use coopcache_types::{ByteSize, DocId};
///
/// let mut slru = Slru::new();
/// slru.on_insert(DocId::new(1), ByteSize::from_kb(1));
/// slru.on_insert(DocId::new(2), ByteSize::from_kb(1));
/// slru.on_hit(DocId::new(1)); // promoted to protected
/// assert_eq!(slru.victim(), Some(DocId::new(2)));
/// ```
#[derive(Debug)]
pub struct Slru {
    nodes: Slab<Node>,
    table: DocTable,
    probation: List,
    protected: List,
}

impl Default for Slru {
    fn default() -> Self {
        Self::new()
    }
}

impl Slru {
    /// Creates an empty segmented-LRU ordering.
    #[must_use]
    pub fn new() -> Self {
        Self {
            nodes: Slab::new(),
            table: DocTable::new(TABLE_SEED),
            probation: List::new(),
            protected: List::new(),
        }
    }

    /// True when the document currently sits in the protected segment.
    #[must_use]
    pub fn is_protected(&self, doc: DocId) -> bool {
        self.table
            .get(doc)
            .is_some_and(|idx| self.nodes.get(idx).protected)
    }

    fn protected_limit(&self) -> usize {
        self.len().div_ceil(2)
    }

    fn rebalance(&mut self) {
        while self.protected.len() > self.protected_limit() {
            let head = self.protected.head();
            debug_assert_ne!(head, NIL);
            self.protected.unlink(&mut self.nodes, head);
            self.nodes.get_mut(head).protected = false;
            self.probation.push_tail(&mut self.nodes, head); // demote to MRU of probation
        }
    }
}

impl ReplacementPolicy for Slru {
    fn on_insert(&mut self, doc: DocId, _size: ByteSize) {
        assert!(
            self.table.get(doc).is_none(),
            "{doc} inserted twice into SLRU"
        );
        let idx = self.nodes.alloc(Node {
            doc,
            protected: false,
            links: Links::default(),
        });
        self.table.insert(doc, idx);
        self.probation.push_tail(&mut self.nodes, idx);
    }

    fn on_hit(&mut self, doc: DocId) {
        let idx = self
            .table
            .get(doc)
            // lint:allow(panic) -- ReplacementPolicy contract: a hit on an
            // untracked doc is a caller bug (see trait docs).
            .unwrap_or_else(|| panic!("hit on untracked {doc}"));
        if self.nodes.get(idx).protected {
            self.protected.move_to_tail(&mut self.nodes, idx);
        } else {
            self.probation.unlink(&mut self.nodes, idx);
            self.nodes.get_mut(idx).protected = true;
            self.protected.push_tail(&mut self.nodes, idx);
        }
        self.rebalance();
    }

    fn on_remove(&mut self, doc: DocId) {
        let idx = self
            .table
            .remove(doc)
            // lint:allow(panic) -- ReplacementPolicy contract: removing an
            // untracked doc is a caller bug (see trait docs).
            .unwrap_or_else(|| panic!("remove of untracked {doc}"));
        if self.nodes.get(idx).protected {
            self.protected.unlink(&mut self.nodes, idx);
        } else {
            self.probation.unlink(&mut self.nodes, idx);
        }
        self.nodes.free(idx);
    }

    fn victim(&self) -> Option<DocId> {
        let head = if self.probation.is_empty() {
            self.protected.head()
        } else {
            self.probation.head()
        };
        (head != NIL).then(|| self.nodes.get(head).doc)
    }

    fn len(&self) -> usize {
        self.probation.len() + self.protected.len()
    }

    fn growth_events(&self) -> u64 {
        self.nodes.growth_events() + self.table.growth_events()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Slru
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    fn sz() -> ByteSize {
        ByteSize::from_kb(1)
    }

    #[test]
    fn scan_does_not_displace_protected_docs() {
        let mut s = Slru::new();
        s.on_insert(d(1), sz());
        s.on_hit(d(1)); // protected
        assert!(s.is_protected(d(1)));
        // A scan of one-shot docs flows through probation.
        for i in 10..20 {
            s.on_insert(d(i), sz());
            let v = s.victim().unwrap();
            assert_ne!(v, d(1), "scan evicted the protected doc");
            s.on_remove(v);
        }
        assert!(s.is_protected(d(1)));
    }

    #[test]
    fn victims_come_from_probation_first() {
        let mut s = Slru::new();
        s.on_insert(d(1), sz());
        s.on_insert(d(2), sz());
        s.on_hit(d(2));
        assert_eq!(s.victim(), Some(d(1)));
        s.on_remove(d(1));
        // Only protected docs remain; victim falls back to protected LRU.
        assert_eq!(s.victim(), Some(d(2)));
    }

    #[test]
    fn protected_overflow_demotes_to_probation() {
        let mut s = Slru::new();
        for i in 1..=4 {
            s.on_insert(d(i), sz());
        }
        // Protect three of four docs; the limit is ceil(4/2) = 2, so the
        // oldest protected doc gets demoted.
        s.on_hit(d(1));
        s.on_hit(d(2));
        s.on_hit(d(3));
        let protected = (1..=4).filter(|&i| s.is_protected(d(i))).count();
        assert_eq!(protected, 2);
        assert!(!s.is_protected(d(1)), "oldest promotion demoted first");
        assert!(s.is_protected(d(2)) && s.is_protected(d(3)));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn repeated_hits_keep_doc_protected_and_fresh() {
        let mut s = Slru::new();
        s.on_insert(d(1), sz());
        s.on_insert(d(2), sz());
        s.on_hit(d(1));
        s.on_hit(d(2));
        s.on_hit(d(1)); // doc 1 now fresher than doc 2
        s.on_remove(d(2));
        assert!(s.is_protected(d(1)));
    }

    #[test]
    fn steady_state_churn_is_allocation_free() {
        let mut s = Slru::new();
        for i in 0..64 {
            s.on_insert(d(i), sz());
        }
        let baseline = s.growth_events();
        for i in 64..4096 {
            let v = s.victim().unwrap();
            s.on_remove(v);
            s.on_insert(d(i), sz());
            if i % 3 == 0 {
                s.on_hit(d(i));
            }
        }
        assert_eq!(s.growth_events(), baseline);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut s = Slru::new();
        s.on_insert(d(1), sz());
        s.on_insert(d(1), sz());
    }
}
