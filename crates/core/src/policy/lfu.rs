//! Least-frequently-used replacement.

use super::{PolicyKind, ReplacementPolicy};
use coopcache_types::{ByteSize, DocId};
use std::collections::{BTreeSet, HashMap};

/// LFU victim ordering: the document with the fewest hits is evicted
/// first; ties break toward the least recently *inserted-or-hit* (so LFU
/// degenerates gracefully to LRU among equally popular documents instead
/// of thrashing on insertion order).
///
/// The hit counter starts at 1 when the document enters, matching the
/// paper's description of LFU bookkeeping (§3.2.2).
///
/// # Example
///
/// ```
/// use coopcache_core::{Lfu, ReplacementPolicy};
/// use coopcache_types::{ByteSize, DocId};
///
/// let mut lfu = Lfu::new();
/// lfu.on_insert(DocId::new(1), ByteSize::from_kb(1));
/// lfu.on_insert(DocId::new(2), ByteSize::from_kb(1));
/// lfu.on_hit(DocId::new(1));
/// assert_eq!(lfu.victim(), Some(DocId::new(2))); // fewer hits
/// ```
#[derive(Debug, Default)]
pub struct Lfu {
    // Ordered by (frequency, tie_seq): the minimum is the victim.
    order: BTreeSet<(u64, u64, DocId)>,
    state: HashMap<DocId, (u64, u64)>,
    next_seq: u64,
}

impl Lfu {
    /// Creates an empty LFU ordering.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current hit count of a tracked document (for tests and tools).
    #[must_use]
    pub fn frequency(&self, doc: DocId) -> Option<u64> {
        self.state.get(&doc).map(|&(f, _)| f)
    }

    fn reinsert(&mut self, doc: DocId, freq: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some((old_f, old_s)) = self.state.insert(doc, (freq, seq)) {
            self.order.remove(&(old_f, old_s, doc));
        }
        self.order.insert((freq, seq, doc));
    }
}

impl ReplacementPolicy for Lfu {
    fn on_insert(&mut self, doc: DocId, _size: ByteSize) {
        assert!(
            !self.state.contains_key(&doc),
            "{doc} inserted twice into LFU"
        );
        self.reinsert(doc, 1);
    }

    fn on_hit(&mut self, doc: DocId) {
        let freq = self
            .frequency(doc)
            // lint:allow(panic) -- ReplacementPolicy contract: a hit on an
            // untracked doc is a caller bug (see trait docs).
            .unwrap_or_else(|| panic!("hit on untracked {doc}"));
        self.reinsert(doc, freq + 1);
    }

    fn on_remove(&mut self, doc: DocId) {
        let (f, s) = self
            .state
            .remove(&doc)
            // lint:allow(panic) -- ReplacementPolicy contract: removing an
            // untracked doc is a caller bug (see trait docs).
            .unwrap_or_else(|| panic!("remove of untracked {doc}"));
        self.order.remove(&(f, s, doc));
    }

    fn victim(&self) -> Option<DocId> {
        self.order.iter().next().map(|&(_, _, doc)| doc)
    }

    fn len(&self) -> usize {
        self.state.len()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Lfu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    fn sz() -> ByteSize {
        ByteSize::from_kb(1)
    }

    #[test]
    fn evicts_least_frequent() {
        let mut lfu = Lfu::new();
        lfu.on_insert(d(1), sz());
        lfu.on_insert(d(2), sz());
        lfu.on_hit(d(1));
        lfu.on_hit(d(1));
        lfu.on_hit(d(2));
        assert_eq!(lfu.victim(), Some(d(2)));
        assert_eq!(lfu.frequency(d(1)), Some(3));
        assert_eq!(lfu.frequency(d(2)), Some(2));
    }

    #[test]
    fn entry_counts_as_first_hit() {
        let mut lfu = Lfu::new();
        lfu.on_insert(d(9), sz());
        assert_eq!(lfu.frequency(d(9)), Some(1));
    }

    #[test]
    fn ties_break_least_recently_touched() {
        let mut lfu = Lfu::new();
        lfu.on_insert(d(1), sz());
        lfu.on_insert(d(2), sz());
        lfu.on_insert(d(3), sz());
        // All frequency 1; doc 1 is the stalest.
        assert_eq!(lfu.victim(), Some(d(1)));
        lfu.on_hit(d(1)); // now 2 hits, docs 2 and 3 tie at 1
        assert_eq!(lfu.victim(), Some(d(2)));
    }

    #[test]
    fn frequency_of_untracked_is_none() {
        assert_eq!(Lfu::new().frequency(d(1)), None);
    }

    #[test]
    fn drain_order_respects_frequency_then_age() {
        let mut lfu = Lfu::new();
        for i in 1..=4 {
            lfu.on_insert(d(i), sz());
        }
        lfu.on_hit(d(1));
        lfu.on_hit(d(1));
        lfu.on_hit(d(3));
        let mut order = Vec::new();
        while let Some(v) = lfu.victim() {
            order.push(v.as_u64());
            lfu.on_remove(v);
        }
        // freq: 1->3, 3->2, 2->1 (older), 4->1 (newer)
        assert_eq!(order, vec![2, 4, 3, 1]);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut lfu = Lfu::new();
        lfu.on_insert(d(1), sz());
        lfu.on_insert(d(1), sz());
    }

    #[test]
    #[should_panic(expected = "untracked")]
    fn hit_on_missing_panics() {
        Lfu::new().on_hit(d(1));
    }
}
