//! Least-frequently-used replacement.

use super::{PolicyKind, ReplacementPolicy};
use crate::index::{DocTable, HeapKeyed, KeyedMinHeap, Slab, NIL};
use coopcache_types::{ByteSize, DocId};

const TABLE_SEED: u64 = 0x4c46_5500_0000_0001; // "LFU"

#[derive(Debug, Clone)]
struct Node {
    doc: DocId,
    freq: u64,
    seq: u64,
    heap_pos: u32,
}

impl HeapKeyed for Node {
    fn heap_key(&self) -> (u64, u64) {
        (self.freq, self.seq)
    }
    fn heap_pos(&self) -> u32 {
        self.heap_pos
    }
    fn set_heap_pos(&mut self, pos: u32) {
        self.heap_pos = pos;
    }
}

/// LFU victim ordering: the document with the fewest hits is evicted
/// first; ties break toward the least recently *inserted-or-hit* (so LFU
/// degenerates gracefully to LRU among equally popular documents instead
/// of thrashing on insertion order).
///
/// The hit counter starts at 1 when the document enters, matching the
/// paper's description of LFU bookkeeping (§3.2.2).
///
/// Implemented as an arena-backed binary min-heap keyed by `(frequency,
/// tie_seq)` — the unique monotone tie sequence makes the order total, so
/// the heap reproduces the old ordered-set order exactly — plus an
/// open-addressing doc→slot table. Operations are pointer-free O(log n)
/// with zero steady-state allocation.
///
/// # Example
///
/// ```
/// use coopcache_core::{Lfu, ReplacementPolicy};
/// use coopcache_types::{ByteSize, DocId};
///
/// let mut lfu = Lfu::new();
/// lfu.on_insert(DocId::new(1), ByteSize::from_kb(1));
/// lfu.on_insert(DocId::new(2), ByteSize::from_kb(1));
/// lfu.on_hit(DocId::new(1));
/// assert_eq!(lfu.victim(), Some(DocId::new(2))); // fewer hits
/// ```
#[derive(Debug)]
pub struct Lfu {
    nodes: Slab<Node>,
    table: DocTable,
    heap: KeyedMinHeap,
    next_seq: u64,
}

impl Default for Lfu {
    fn default() -> Self {
        Self::new()
    }
}

impl Lfu {
    /// Creates an empty LFU ordering.
    #[must_use]
    pub fn new() -> Self {
        Self {
            nodes: Slab::new(),
            table: DocTable::new(TABLE_SEED),
            heap: KeyedMinHeap::new(),
            next_seq: 0,
        }
    }

    /// The current hit count of a tracked document (for tests and tools).
    #[must_use]
    pub fn frequency(&self, doc: DocId) -> Option<u64> {
        self.table.get(doc).map(|idx| self.nodes.get(idx).freq)
    }

    fn bump_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }
}

impl ReplacementPolicy for Lfu {
    fn on_insert(&mut self, doc: DocId, _size: ByteSize) {
        assert!(
            self.table.get(doc).is_none(),
            "{doc} inserted twice into LFU"
        );
        let seq = self.bump_seq();
        let idx = self.nodes.alloc(Node {
            doc,
            freq: 1,
            seq,
            heap_pos: NIL,
        });
        self.table.insert(doc, idx);
        self.heap.push(&mut self.nodes, idx);
    }

    fn on_hit(&mut self, doc: DocId) {
        let idx = self
            .table
            .get(doc)
            // lint:allow(panic) -- ReplacementPolicy contract: a hit on an
            // untracked doc is a caller bug (see trait docs).
            .unwrap_or_else(|| panic!("hit on untracked {doc}"));
        let seq = self.bump_seq();
        self.heap.remove(&mut self.nodes, idx);
        {
            let node = self.nodes.get_mut(idx);
            node.freq += 1;
            node.seq = seq;
        }
        self.heap.push(&mut self.nodes, idx);
    }

    fn on_remove(&mut self, doc: DocId) {
        let idx = self
            .table
            .remove(doc)
            // lint:allow(panic) -- ReplacementPolicy contract: removing an
            // untracked doc is a caller bug (see trait docs).
            .unwrap_or_else(|| panic!("remove of untracked {doc}"));
        self.heap.remove(&mut self.nodes, idx);
        self.nodes.free(idx);
    }

    fn victim(&self) -> Option<DocId> {
        self.heap.peek().map(|idx| self.nodes.get(idx).doc)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn growth_events(&self) -> u64 {
        self.nodes.growth_events() + self.table.growth_events() + self.heap.growth_events()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Lfu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    fn sz() -> ByteSize {
        ByteSize::from_kb(1)
    }

    #[test]
    fn evicts_least_frequent() {
        let mut lfu = Lfu::new();
        lfu.on_insert(d(1), sz());
        lfu.on_insert(d(2), sz());
        lfu.on_hit(d(1));
        lfu.on_hit(d(1));
        lfu.on_hit(d(2));
        assert_eq!(lfu.victim(), Some(d(2)));
        assert_eq!(lfu.frequency(d(1)), Some(3));
        assert_eq!(lfu.frequency(d(2)), Some(2));
    }

    #[test]
    fn entry_counts_as_first_hit() {
        let mut lfu = Lfu::new();
        lfu.on_insert(d(9), sz());
        assert_eq!(lfu.frequency(d(9)), Some(1));
    }

    #[test]
    fn ties_break_least_recently_touched() {
        let mut lfu = Lfu::new();
        lfu.on_insert(d(1), sz());
        lfu.on_insert(d(2), sz());
        lfu.on_insert(d(3), sz());
        // All frequency 1; doc 1 is the stalest.
        assert_eq!(lfu.victim(), Some(d(1)));
        lfu.on_hit(d(1)); // now 2 hits, docs 2 and 3 tie at 1
        assert_eq!(lfu.victim(), Some(d(2)));
    }

    #[test]
    fn frequency_of_untracked_is_none() {
        assert_eq!(Lfu::new().frequency(d(1)), None);
    }

    #[test]
    fn drain_order_respects_frequency_then_age() {
        let mut lfu = Lfu::new();
        for i in 1..=4 {
            lfu.on_insert(d(i), sz());
        }
        lfu.on_hit(d(1));
        lfu.on_hit(d(1));
        lfu.on_hit(d(3));
        let mut order = Vec::new();
        while let Some(v) = lfu.victim() {
            order.push(v.as_u64());
            lfu.on_remove(v);
        }
        // freq: 1->3, 3->2, 2->1 (older), 4->1 (newer)
        assert_eq!(order, vec![2, 4, 3, 1]);
    }

    #[test]
    fn steady_state_churn_is_allocation_free() {
        let mut lfu = Lfu::new();
        for i in 0..64 {
            lfu.on_insert(d(i), sz());
        }
        let baseline = lfu.growth_events();
        for i in 64..4096 {
            let v = lfu.victim().unwrap();
            lfu.on_remove(v);
            lfu.on_insert(d(i), sz());
            lfu.on_hit(d(i));
        }
        assert_eq!(lfu.growth_events(), baseline);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut lfu = Lfu::new();
        lfu.on_insert(d(1), sz());
        lfu.on_insert(d(1), sz());
    }

    #[test]
    #[should_panic(expected = "untracked")]
    fn hit_on_missing_panics() {
        Lfu::new().on_hit(d(1));
    }
}
