//! Document placement schemes: the conventional ad-hoc rule and the
//! paper's expiration-age (EA) rule.

use coopcache_types::ExpirationAge;
use std::cmp::Ordering;
use std::fmt;

/// What the EA requester rule does when both expiration ages are exactly
/// equal — the point where the paper's two statements of the rule diverge
/// (§3.4 strict ">", §3.5 "≥").
///
/// Whatever the choice, the responder rule is its exact complement, so a
/// tie never leads to both sides (or neither side) refreshing the
/// document's lease on life.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TieBreak {
    /// §3.4: on a tie the requester does **not** store; the responder
    /// keeps (promotes) its copy. This is the default, being the reading
    /// consistent with the paper's Table 2.
    #[default]
    ResponderKeeps,
    /// §3.5: on a tie the requester stores and the responder lets its
    /// copy age out. Ablation variant (ABL-T).
    RequesterStores,
}

impl fmt::Display for TieBreak {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ResponderKeeps => f.write_str("responder-keeps"),
            Self::RequesterStores => f.write_str("requester-stores"),
        }
    }
}

/// A document placement scheme for cooperative caching.
///
/// The scheme answers the three decisions that arise when a miss is served
/// through the group (paper §3.4):
///
/// 1. should the **requester** store the copy it just received?
/// 2. should the **responder** refresh (promote) its own copy after
///    serving a remote hit?
/// 3. in a hierarchy, should a **parent** that resolved a miss keep a
///    copy on the way down?
///
/// [`PlacementScheme::AdHoc`] answers yes / yes / yes — the behaviour of
/// every pre-existing cooperative proxy, which the paper shows causes
/// uncontrolled replication. [`PlacementScheme::Ea`] decides each question
/// by comparing cache expiration ages so a replica is only created (or
/// kept alive) where it is expected to survive longest.
///
/// The paper states the requester rule twice with different tie handling
/// (§3.4 strict ">", §3.5 "≥"). The choice is the explicit [`TieBreak`]
/// config: [`PlacementScheme::Ea`] is `ea(TieBreak::ResponderKeeps)` (the
/// strict form, consistent with the paper's Table 2);
/// [`PlacementScheme::EaTieStore`] is `ea(TieBreak::RequesterStores)`
/// (the §3.5 reading, compared in the ABL-T ablation bench).
///
/// # Example
///
/// ```
/// use coopcache_core::PlacementScheme;
/// use coopcache_types::{DurationMs, ExpirationAge};
///
/// let busy = ExpirationAge::finite(DurationMs::from_secs(5));
/// let idle = ExpirationAge::finite(DurationMs::from_secs(500));
///
/// // A contended requester does not replicate a doc a roomier peer holds.
/// assert!(!PlacementScheme::Ea.requester_stores(busy, idle));
/// // The ad-hoc scheme always replicates.
/// assert!(PlacementScheme::AdHoc.requester_stores(busy, idle));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementScheme {
    /// Always store at the requester, always refresh at the responder —
    /// the conventional scheme (paper §2).
    #[default]
    AdHoc,
    /// The expiration-age based scheme (paper §3), strict-">" requester
    /// rule (ties do not replicate).
    Ea,
    /// The §3.5 "greater than or equal" reading of the EA requester rule
    /// (ties replicate at the requester, and the responder lets its copy
    /// age out). Ablation variant.
    EaTieStore,
}

impl PlacementScheme {
    /// The EA scheme with an explicit tie rule.
    #[must_use]
    pub const fn ea(tie: TieBreak) -> Self {
        match tie {
            TieBreak::ResponderKeeps => Self::Ea,
            TieBreak::RequesterStores => Self::EaTieStore,
        }
    }

    /// The tie rule in force (`None` for ad-hoc, which never compares
    /// ages).
    #[must_use]
    pub const fn tie_break(self) -> Option<TieBreak> {
        match self {
            Self::AdHoc => None,
            Self::Ea => Some(TieBreak::ResponderKeeps),
            Self::EaTieStore => Some(TieBreak::RequesterStores),
        }
    }

    /// Decision 1: does the requester store the document it received from
    /// a supplier (sibling responder, parent, or — degenerately — the
    /// origin server)?
    ///
    /// EA stores when strictly older than the supplier; an exact tie is
    /// resolved by the [`TieBreak`] config.
    #[must_use]
    pub fn requester_stores(self, requester: ExpirationAge, supplier: ExpirationAge) -> bool {
        match self.tie_break() {
            None => true,
            Some(tie) => match requester.cmp(&supplier) {
                Ordering::Greater => true,
                Ordering::Equal => tie == TieBreak::RequesterStores,
                Ordering::Less => false,
            },
        }
    }

    /// Decision 2: does the responder promote its copy to the head of its
    /// replacement order after serving a remote hit?
    ///
    /// Always the exact complement of the requester rule — on a tie the
    /// copy is refreshed at whichever side [`TieBreak`] keeps it — so for
    /// every age pair exactly one side keeps the document's lease on life:
    /// the paper's worst-case guarantee (§3.5) without double-refreshing.
    #[must_use]
    pub fn responder_promotes(self, responder: ExpirationAge, requester: ExpirationAge) -> bool {
        match self.tie_break() {
            None => true,
            Some(tie) => match responder.cmp(&requester) {
                Ordering::Greater => true,
                Ordering::Equal => tie == TieBreak::ResponderKeeps,
                Ordering::Less => false,
            },
        }
    }

    /// Decision 3 (hierarchical caching): does a parent that fetched the
    /// document from the origin on behalf of a child keep a copy?
    ///
    /// Under EA the parent stores iff its expiration age is strictly
    /// greater than the requesting child's (paper §3.4: "If the Cache
    /// Expiration Age of the parent cache is greater than that of the
    /// Requester, it stores a copy"); a tie is resolved by the same
    /// [`TieBreak`] as the requester rule.
    #[must_use]
    pub fn parent_stores(self, parent: ExpirationAge, requester: ExpirationAge) -> bool {
        match self.tie_break() {
            None => true,
            Some(tie) => match parent.cmp(&requester) {
                Ordering::Greater => true,
                Ordering::Equal => tie == TieBreak::RequesterStores,
                Ordering::Less => false,
            },
        }
    }

    /// All schemes, for sweeps.
    #[must_use]
    pub const fn all() -> [PlacementScheme; 3] {
        [Self::AdHoc, Self::Ea, Self::EaTieStore]
    }
}

impl fmt::Display for PlacementScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::AdHoc => f.write_str("ad-hoc"),
            Self::Ea => f.write_str("ea"),
            Self::EaTieStore => f.write_str("ea-tie-store"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coopcache_types::DurationMs;

    fn fin(ms: u64) -> ExpirationAge {
        ExpirationAge::finite(DurationMs::from_millis(ms))
    }

    const INF: ExpirationAge = ExpirationAge::Infinite;

    #[test]
    fn ad_hoc_always_says_yes() {
        for a in [fin(0), fin(100), INF] {
            for b in [fin(0), fin(100), INF] {
                assert!(PlacementScheme::AdHoc.requester_stores(a, b));
                assert!(PlacementScheme::AdHoc.responder_promotes(a, b));
                assert!(PlacementScheme::AdHoc.parent_stores(a, b));
            }
        }
    }

    #[test]
    fn ea_requester_rule_is_strict() {
        let ea = PlacementScheme::Ea;
        assert!(ea.requester_stores(fin(200), fin(100)));
        assert!(
            !ea.requester_stores(fin(100), fin(100)),
            "ties do not store"
        );
        assert!(!ea.requester_stores(fin(50), fin(100)));
        assert!(ea.requester_stores(INF, fin(100)));
        assert!(!ea.requester_stores(fin(50), INF));
        assert!(!ea.requester_stores(INF, INF), "infinite ties do not store");
    }

    #[test]
    fn ea_responder_rule_promotes_on_tie() {
        let ea = PlacementScheme::Ea;
        assert!(ea.responder_promotes(fin(200), fin(100)));
        assert!(ea.responder_promotes(fin(100), fin(100)), "ties promote");
        assert!(!ea.responder_promotes(fin(50), fin(100)));
        assert!(ea.responder_promotes(INF, fin(100)));
        assert!(ea.responder_promotes(INF, INF));
    }

    #[test]
    fn ea_tie_store_variant_mirrors() {
        let v = PlacementScheme::EaTieStore;
        assert!(v.requester_stores(fin(100), fin(100)), "ties store");
        assert!(v.requester_stores(INF, INF));
        assert!(!v.requester_stores(fin(50), fin(100)));
        assert!(
            !v.responder_promotes(fin(100), fin(100)),
            "ties do not promote"
        );
        assert!(v.responder_promotes(fin(200), fin(100)));
        assert!(v.parent_stores(fin(100), fin(100)));
    }

    #[test]
    fn ea_parent_rule_is_strict() {
        let ea = PlacementScheme::Ea;
        assert!(ea.parent_stores(fin(200), fin(100)));
        assert!(!ea.parent_stores(fin(100), fin(100)));
        assert!(!ea.parent_stores(fin(50), fin(100)));
    }

    #[test]
    fn ea_decisions_are_complementary() {
        // Exactly one of {requester stores, responder promotes} holds for
        // every age pair, under both EA variants: the paper's guarantee
        // that a surviving copy always retains a lease on life, without
        // double-refreshing.
        for scheme in [PlacementScheme::Ea, PlacementScheme::EaTieStore] {
            for a in [fin(0), fin(10), fin(999), INF] {
                for b in [fin(0), fin(10), fin(999), INF] {
                    let stores = scheme.requester_stores(a, b);
                    let promotes = scheme.responder_promotes(b, a);
                    assert_ne!(
                        stores, promotes,
                        "{scheme}: requester {a} / responder {b}: stores={stores} promotes={promotes}"
                    );
                }
            }
        }
    }

    #[test]
    fn tie_break_default_is_responder_keeps() {
        // Pins the chosen default: the §3.4 strict-">" reading.
        assert_eq!(TieBreak::default(), TieBreak::ResponderKeeps);
        assert_eq!(
            PlacementScheme::ea(TieBreak::default()),
            PlacementScheme::Ea
        );
        assert_eq!(
            PlacementScheme::Ea.tie_break(),
            Some(TieBreak::ResponderKeeps)
        );
        assert_eq!(
            PlacementScheme::EaTieStore.tie_break(),
            Some(TieBreak::RequesterStores)
        );
        assert_eq!(PlacementScheme::AdHoc.tie_break(), None);
        // Under the default, a tie does not store at the requester and
        // does promote at the responder.
        let ea = PlacementScheme::ea(TieBreak::default());
        assert!(!ea.requester_stores(fin(100), fin(100)));
        assert!(ea.responder_promotes(fin(100), fin(100)));
        assert!(!ea.parent_stores(fin(100), fin(100)));
    }

    #[test]
    fn tie_break_display() {
        assert_eq!(TieBreak::ResponderKeeps.to_string(), "responder-keeps");
        assert_eq!(TieBreak::RequesterStores.to_string(), "requester-stores");
    }

    #[test]
    fn display_and_all() {
        assert_eq!(PlacementScheme::AdHoc.to_string(), "ad-hoc");
        assert_eq!(PlacementScheme::Ea.to_string(), "ea");
        assert_eq!(PlacementScheme::EaTieStore.to_string(), "ea-tie-store");
        assert_eq!(PlacementScheme::all().len(), 3);
        assert_eq!(PlacementScheme::default(), PlacementScheme::AdHoc);
    }
}
