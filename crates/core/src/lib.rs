#![forbid(unsafe_code)]
//! Core cache engine for expiration-age based cooperative web caching.
//!
//! This crate implements the primary contribution of *"A New Document
//! Placement Scheme for Cooperative Caching on the Internet"* (Ramaswamy &
//! Liu, ICDCS 2002) as a reusable library:
//!
//! * [`Cache`] — a byte-capacity-bounded document store with pluggable
//!   replacement ([`Lru`], [`Lfu`], [`Fifo`], [`Gdsf`]);
//! * [`ExpirationTracker`] — the paper's *cache expiration age* (eq. 5),
//!   the windowed average of document expiration ages at eviction, used as
//!   a disk-contention signal;
//! * [`PlacementScheme`] — the conventional ad-hoc placement rule and the
//!   paper's EA rule, which consults expiration ages to decide where a
//!   document copy should live.
//!
//! The cooperative protocol that carries expiration ages between proxies
//! lives in `coopcache-proxy`; this crate is strictly single-cache.
//!
//! # Example: the EA decision in five lines
//!
//! ```
//! use coopcache_core::{Cache, PlacementScheme, PolicyKind};
//! use coopcache_types::{ByteSize, CacheId, DocId, Timestamp};
//!
//! let mut requester = Cache::new(CacheId::new(0), ByteSize::from_kb(64), PolicyKind::Lru);
//! let mut responder = Cache::new(CacheId::new(1), ByteSize::from_kb(64), PolicyKind::Lru);
//! let now = Timestamp::from_secs(1);
//! responder.insert(DocId::new(7), ByteSize::from_kb(4), now);
//!
//! let scheme = PlacementScheme::Ea;
//! let store = scheme.requester_stores(requester.expiration_age(),
//!                                     responder.expiration_age());
//! let promote = scheme.responder_promotes(responder.expiration_age(),
//!                                         requester.expiration_age());
//! responder.serve_remote(DocId::new(7), now, promote);
//! if store {
//!     requester.insert(DocId::new(7), ByteSize::from_kb(4), now);
//! }
//! ```

mod cache;
mod concurrent;
mod config;
mod entry;
mod expiration;
mod index;
mod placement;
mod policy;
mod profile;
mod stats;
mod store;

pub use cache::{Cache, InsertOutcome, InvariantViolation};
pub use concurrent::{ConcurrentCache, LockContention};
pub use config::{CacheConfig, DEFAULT_SHARD_SEED};
pub use entry::{CacheEntry, EvictionReason, EvictionRecord};
pub use expiration::{ExpirationTracker, ExpirationWindow};
pub use placement::{PlacementScheme, TieBreak};
pub use policy::{
    ExpirationFlavor, Fifo, Gds, Gdsf, Lfu, Lru, PolicyKind, ReplacementPolicy, S3Fifo, Slru,
};
pub use profile::{OpProfile, ProfileOp, ProfileSnapshot, Timer as ProfileTimer};
pub use stats::CacheStats;
pub use store::StoreOutcome;
