//! Cache expiration-age accounting (paper §3.1–§3.3).
//!
//! The expiration age of a cache over a finite period is the mean of the
//! document expiration ages of everything evicted in that period (eq. 5).
//! The paper leaves the period open ("a finite time duration"); the tracker
//! supports both natural readings — the last `N` evictions or the last
//! `Δt` of simulated time — and the window choice is swept by the ABL-W
//! experiment.

use crate::entry::EvictionRecord;
use crate::policy::ExpirationFlavor;
use coopcache_types::{DurationMs, ExpirationAge, Timestamp};
use std::collections::VecDeque;

/// The finite period over which eq. 5 averages document expiration ages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExpirationWindow {
    /// Average over the most recent `n` evictions (`n ≥ 1`).
    LastEvictions(usize),
    /// Average over evictions that happened within the trailing duration.
    ///
    /// The window advances **when evictions are recorded**: a cache that
    /// stops evicting keeps reporting the age computed at its last
    /// eviction rather than draining to `Infinite`. This matches the
    /// eviction-count window's behaviour (the value always reflects the
    /// most recent contention actually observed) and keeps
    /// [`ExpirationTracker::cache_expiration_age`] callable without a
    /// clock; callers that want idle caches to decay to "no contention"
    /// should prefer [`ExpirationWindow::LastEvictions`].
    LastDuration(DurationMs),
}

impl Default for ExpirationWindow {
    /// 256 evictions: long enough to smooth single outliers, short enough
    /// to track contention shifts within a trace day.
    fn default() -> Self {
        Self::LastEvictions(256)
    }
}

impl std::fmt::Display for ExpirationWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::LastEvictions(n) => write!(f, "last-{n}-evictions"),
            Self::LastDuration(d) => write!(f, "last-{d}"),
        }
    }
}

/// Tracks the expiration age of one cache.
///
/// Feed it every [`EvictionRecord`] the cache produces; read the current
/// windowed age with [`ExpirationTracker::cache_expiration_age`] (this is
/// the value piggybacked on inter-proxy messages) and whole-run statistics
/// with [`ExpirationTracker::lifetime_average`] (this is what the paper's
/// Table 1 reports).
///
/// # Example
///
/// ```
/// use coopcache_core::{ExpirationFlavor, ExpirationTracker, ExpirationWindow};
/// use coopcache_types::ExpirationAge;
///
/// let tracker = ExpirationTracker::new(
///     ExpirationFlavor::Lru,
///     ExpirationWindow::LastEvictions(100),
/// );
/// // No evictions yet: no contention observed, age is infinite.
/// assert_eq!(tracker.cache_expiration_age(), ExpirationAge::Infinite);
/// ```
#[derive(Debug, Clone)]
pub struct ExpirationTracker {
    flavor: ExpirationFlavor,
    window: ExpirationWindow,
    /// (evicted_at, doc expiration age) for evictions inside the window.
    recent: VecDeque<(Timestamp, DurationMs)>,
    recent_sum_ms: u128,
    lifetime_sum_ms: u128,
    lifetime_count: u64,
}

impl ExpirationTracker {
    /// Creates a tracker with the given expiration-age formula and window.
    #[must_use]
    pub fn new(flavor: ExpirationFlavor, window: ExpirationWindow) -> Self {
        if let ExpirationWindow::LastEvictions(n) = window {
            assert!(n >= 1, "eviction window must hold at least one record");
        }
        Self {
            flavor,
            window,
            recent: VecDeque::new(),
            recent_sum_ms: 0,
            lifetime_sum_ms: 0,
            lifetime_count: 0,
        }
    }

    /// The expiration-age formula in use.
    #[must_use]
    pub fn flavor(&self) -> ExpirationFlavor {
        self.flavor
    }

    /// The configured window.
    #[must_use]
    pub fn window(&self) -> ExpirationWindow {
        self.window
    }

    /// Records an eviction, computing the document expiration age with the
    /// configured formula (paper eq. 1).
    pub fn record_eviction(&mut self, record: &EvictionRecord) {
        let age = match self.flavor {
            ExpirationFlavor::Lru => record.entry.lru_expiration_age(record.evicted_at),
            ExpirationFlavor::Lfu => record.entry.lfu_expiration_age(record.evicted_at),
        };
        self.record_age(record.evicted_at, age);
    }

    /// Records a directly observed expiration-age sample that did not come
    /// from an eviction record.
    ///
    /// The S3-FIFO policy's ghost queue produces these: when a document is
    /// re-admitted after a ghost hit, the gap between its eviction and its
    /// return is an *observed* inter-reference gap — exactly the quantity
    /// eq. 5 estimates from bookkeeping timestamps for the other policies —
    /// so the gap is fed to the same windowed average.
    pub fn record_age(&mut self, at: Timestamp, age: DurationMs) {
        self.lifetime_sum_ms += u128::from(age.as_millis());
        self.lifetime_count += 1;
        self.recent.push_back((at, age));
        self.recent_sum_ms += u128::from(age.as_millis());
        if let ExpirationWindow::LastEvictions(n) = self.window {
            while self.recent.len() > n {
                let Some((_, old)) = self.recent.pop_front() else {
                    break;
                };
                self.recent_sum_ms -= u128::from(old.as_millis());
            }
        }
        if let ExpirationWindow::LastDuration(d) = self.window {
            self.expire_older_than(at, d);
        }
    }

    fn expire_older_than(&mut self, now: Timestamp, horizon: DurationMs) {
        let cutoff = now.as_millis().saturating_sub(horizon.as_millis());
        while let Some(&(t, age)) = self.recent.front() {
            if t.as_millis() >= cutoff {
                break;
            }
            self.recent.pop_front();
            self.recent_sum_ms -= u128::from(age.as_millis());
        }
    }

    /// The cache expiration age over the configured window (paper eq. 5):
    /// the value a proxy piggybacks on its requests and responses.
    ///
    /// Returns [`ExpirationAge::Infinite`] while no eviction has ever been
    /// observed in the window — the cache has shown no disk contention.
    #[must_use]
    pub fn cache_expiration_age(&self) -> ExpirationAge {
        if self.recent.is_empty() {
            return ExpirationAge::Infinite;
        }
        let mean = self.recent_sum_ms / self.recent.len() as u128;
        ExpirationAge::finite(DurationMs::from_millis(mean as u64))
    }

    /// Mean document expiration age over *all* evictions so far — the
    /// quantity averaged across caches in the paper's Table 1.
    ///
    /// Returns `None` when nothing has been evicted yet.
    #[must_use]
    pub fn lifetime_average(&self) -> Option<DurationMs> {
        if self.lifetime_count == 0 {
            None
        } else {
            Some(DurationMs::from_millis(
                (self.lifetime_sum_ms / u128::from(self.lifetime_count)) as u64,
            ))
        }
    }

    /// Total evictions observed over the tracker's lifetime.
    #[must_use]
    pub fn eviction_count(&self) -> u64 {
        self.lifetime_count
    }

    /// Number of evictions currently inside the window.
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.recent.len()
    }

    /// Sum of the ages inside the window, in milliseconds.
    ///
    /// Exposed so a sharded cache can combine per-shard windows into one
    /// aggregate eq. 5 mean (`Σ sums / Σ lens`) without flattening the
    /// per-shard deques.
    #[must_use]
    pub fn window_sum_ms(&self) -> u128 {
        self.recent_sum_ms
    }

    /// Sum of every age ever recorded, in milliseconds (pairs with
    /// [`ExpirationTracker::eviction_count`] for aggregate lifetime means).
    #[must_use]
    pub fn lifetime_sum_ms(&self) -> u128 {
        self.lifetime_sum_ms
    }

    /// Verifies the tracker's windowed bookkeeping (used by the cache's
    /// paranoid audits):
    ///
    /// * the running window sum equals the sum of the recorded ages;
    /// * an eviction-count window never holds more than `n` records;
    /// * the window never holds more records than the lifetime count.
    #[must_use]
    pub fn window_is_consistent(&self) -> bool {
        let sum: u128 = self
            .recent
            .iter()
            .map(|&(_, age)| u128::from(age.as_millis()))
            .sum();
        if sum != self.recent_sum_ms {
            return false;
        }
        if let ExpirationWindow::LastEvictions(n) = self.window {
            if self.recent.len() > n {
                return false;
            }
        }
        self.recent.len() as u64 <= self.lifetime_count
    }
}

impl Default for ExpirationTracker {
    fn default() -> Self {
        Self::new(ExpirationFlavor::default(), ExpirationWindow::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{CacheEntry, EvictionReason};
    use coopcache_types::{ByteSize, DocId};

    fn evict(last_hit_ms: u64, evicted_ms: u64) -> EvictionRecord {
        let mut entry = CacheEntry::new(
            DocId::new(1),
            ByteSize::from_kb(1),
            Timestamp::from_millis(0),
        );
        if last_hit_ms > 0 {
            entry.record_hit(Timestamp::from_millis(last_hit_ms));
        }
        EvictionRecord {
            entry,
            evicted_at: Timestamp::from_millis(evicted_ms),
            reason: EvictionReason::CapacityPressure,
        }
    }

    #[test]
    fn empty_tracker_reports_infinite() {
        let t = ExpirationTracker::default();
        assert_eq!(t.cache_expiration_age(), ExpirationAge::Infinite);
        assert_eq!(t.lifetime_average(), None);
        assert_eq!(t.eviction_count(), 0);
    }

    #[test]
    fn mean_of_recorded_ages() {
        let mut t =
            ExpirationTracker::new(ExpirationFlavor::Lru, ExpirationWindow::LastEvictions(10));
        t.record_eviction(&evict(100, 300)); // age 200
        t.record_eviction(&evict(100, 500)); // age 400
        assert_eq!(
            t.cache_expiration_age(),
            ExpirationAge::finite(DurationMs::from_millis(300))
        );
        assert_eq!(t.lifetime_average(), Some(DurationMs::from_millis(300)));
        assert_eq!(t.eviction_count(), 2);
    }

    #[test]
    fn eviction_window_slides() {
        let mut t =
            ExpirationTracker::new(ExpirationFlavor::Lru, ExpirationWindow::LastEvictions(2));
        t.record_eviction(&evict(0, 1_000)); // age 1000
        t.record_eviction(&evict(0, 100)); // age 100
        t.record_eviction(&evict(0, 100)); // age 100 — pushes out the 1000
        assert_eq!(t.window_len(), 2);
        assert_eq!(
            t.cache_expiration_age(),
            ExpirationAge::finite(DurationMs::from_millis(100))
        );
        // Lifetime average still covers everything.
        assert_eq!(t.lifetime_average(), Some(DurationMs::from_millis(400)));
    }

    #[test]
    fn duration_window_expires_old_entries() {
        let mut t = ExpirationTracker::new(
            ExpirationFlavor::Lru,
            ExpirationWindow::LastDuration(DurationMs::from_millis(1_000)),
        );
        t.record_eviction(&evict(0, 100)); // at t=100, age 100
        t.record_eviction(&evict(0, 200)); // at t=200, age 200
        assert_eq!(t.window_len(), 2);
        // An eviction far in the future pushes both out of the window.
        t.record_eviction(&evict(4_000, 5_000)); // at t=5000, age 1000
        assert_eq!(t.window_len(), 1);
        assert_eq!(
            t.cache_expiration_age(),
            ExpirationAge::finite(DurationMs::from_millis(1_000))
        );
    }

    #[test]
    fn lfu_flavor_uses_lifetime_over_hits() {
        let mut t =
            ExpirationTracker::new(ExpirationFlavor::Lfu, ExpirationWindow::LastEvictions(10));
        // Entry at t=0, one extra hit => hit_count 2, evicted at 1000:
        // LFU age = 1000 / 2 = 500.
        t.record_eviction(&evict(500, 1_000));
        assert_eq!(
            t.cache_expiration_age(),
            ExpirationAge::finite(DurationMs::from_millis(500))
        );
    }

    #[test]
    fn flavors_differ_on_same_record() {
        let rec = evict(900, 1_000);
        let mut lru =
            ExpirationTracker::new(ExpirationFlavor::Lru, ExpirationWindow::LastEvictions(1));
        let mut lfu =
            ExpirationTracker::new(ExpirationFlavor::Lfu, ExpirationWindow::LastEvictions(1));
        lru.record_eviction(&rec);
        lfu.record_eviction(&rec);
        // LRU: 1000-900 = 100. LFU: 1000/2 = 500.
        assert_eq!(
            lru.cache_expiration_age(),
            ExpirationAge::finite(DurationMs::from_millis(100))
        );
        assert_eq!(
            lfu.cache_expiration_age(),
            ExpirationAge::finite(DurationMs::from_millis(500))
        );
    }

    #[test]
    fn high_contention_means_low_age() {
        // The paper's central observation: rapid evictions after recent
        // hits => low expiration age; leisurely evictions => high age.
        let mut contended =
            ExpirationTracker::new(ExpirationFlavor::Lru, ExpirationWindow::LastEvictions(8));
        let mut relaxed =
            ExpirationTracker::new(ExpirationFlavor::Lru, ExpirationWindow::LastEvictions(8));
        for i in 0..8 {
            contended.record_eviction(&evict(i * 100, i * 100 + 50)); // age 50
            relaxed.record_eviction(&evict(i * 100, i * 100 + 5_000)); // age 5000
        }
        assert!(contended.cache_expiration_age() < relaxed.cache_expiration_age());
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn zero_eviction_window_rejected() {
        let _ = ExpirationTracker::new(ExpirationFlavor::Lru, ExpirationWindow::LastEvictions(0));
    }

    #[test]
    fn window_display() {
        assert_eq!(
            ExpirationWindow::LastEvictions(5).to_string(),
            "last-5-evictions"
        );
        assert_eq!(
            ExpirationWindow::LastDuration(DurationMs::from_secs(60)).to_string(),
            "last-60s"
        );
    }
}
