//! A shared-reference cache with one lock per shard.
//!
//! [`ConcurrentCache`] wraps the same [`Shard`]s as [`crate::Cache`] but
//! puts each behind its own `Mutex`, so requests touching different
//! shards never serialize: a hot lookup on shard 3 proceeds while an
//! evicting insert runs on shard 0. Every operation takes `&self`.
//!
//! # Lock discipline
//!
//! * A document operation locks exactly **one** shard (the document's).
//! * Aggregations (`stats`, `len`, `expiration_age`, `snapshot`, …) lock
//!   shards **one at a time in index order**, never holding two locks at
//!   once.
//!
//! No code path ever holds more than one shard lock, so lock-order
//! deadlock is impossible by construction — the `interleave` crate's
//! `shard_locks` model checks exactly this discipline, and the
//! `snapshot` consistency contract, under a bounded scheduler.
//!
//! # Contention accounting
//!
//! Every acquisition first tries `try_lock`; a miss is counted before
//! falling back to a blocking lock. [`ConcurrentCache::contention`]
//! exposes the totals, which is how the `bench-core` concurrent-reader
//! run demonstrates that disjoint-shard readers do not contend (the
//! interesting claim on any machine, and the only measurable one on a
//! single-CPU box where wall-clock scaling is physically impossible).

use crate::cache::InvariantViolation;
use crate::entry::{CacheEntry, EvictionRecord};
use crate::index::mix64;
use crate::policy::PolicyKind;
use crate::stats::CacheStats;
use crate::store::{Shard, StoreOutcome};
use coopcache_types::{ByteSize, CacheId, DocId, DurationMs, ExpirationAge, Timestamp};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, TryLockError};

/// Lock-acquisition counters (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LockContention {
    /// Total shard-lock acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that found the lock held and had to block.
    pub contended: u64,
}

/// A sharded cache safe to share across threads (`&self` everywhere).
#[derive(Debug)]
pub struct ConcurrentCache {
    id: CacheId,
    capacity: ByteSize,
    seed: u64,
    shard_mask: u64,
    shards: Vec<Mutex<Shard>>,
    acquisitions: AtomicU64,
    contended: AtomicU64,
}

impl ConcurrentCache {
    /// Assembles the cache from built shards (called by
    /// [`crate::CacheConfig::build_concurrent`]).
    pub(crate) fn from_parts(
        id: CacheId,
        capacity: ByteSize,
        seed: u64,
        shards: Vec<Shard>,
        _ttl: Option<DurationMs>,
    ) -> Self {
        debug_assert!(shards.len().is_power_of_two());
        Self {
            id,
            capacity,
            seed,
            shard_mask: shards.len() as u64 - 1,
            shards: shards.into_iter().map(Mutex::new).collect(),
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Which shard (and therefore which lock) serves `doc`. Stable for
    /// the life of the cache; lets callers partition work so threads
    /// never contend (the `bench-core` concurrent-reader run uses this
    /// to prove the disjoint-shard path lock-free in practice).
    #[inline]
    #[must_use]
    pub fn shard_of(&self, doc: DocId) -> usize {
        (mix64(doc.as_u64() ^ self.seed) & self.shard_mask) as usize
    }

    /// Locks shard `i`, counting the acquisition and whether it contended.
    ///
    /// A poisoned mutex is recovered rather than propagated: the shard's
    /// invariants are re-audited on the next paranoid pass, and refusing
    /// to serve the whole shard because one request panicked would turn a
    /// bug into an outage.
    fn lock_shard(&self, i: usize) -> MutexGuard<'_, Shard> {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        match self.shards[i].try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                match self.shards[i].lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                }
            }
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
        }
    }

    /// This cache's id.
    #[must_use]
    pub fn id(&self) -> CacheId {
        self.id
    }

    /// Configured capacity in bytes (split evenly over the shards).
    #[must_use]
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Number of shards (and therefore independent locks).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The lock-acquisition counters accumulated so far.
    #[must_use]
    pub fn contention(&self) -> LockContention {
        LockContention {
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
        }
    }

    /// The replacement policy in use.
    #[must_use]
    pub fn policy_kind(&self) -> PolicyKind {
        self.lock_shard(0).policy_kind()
    }

    /// Which expiration-age flavor (eq. 5 numerator) this cache records.
    #[must_use]
    pub fn expiration_flavor(&self) -> crate::policy::ExpirationFlavor {
        self.policy_kind().expiration_flavor()
    }

    /// Sets (or clears) the freshness TTL on every shard.
    pub fn set_ttl(&self, ttl: Option<DurationMs>) {
        for i in 0..self.shards.len() {
            self.lock_shard(i).set_ttl(ttl);
        }
    }

    /// Read-only ICP probe: is the document cached here?
    #[must_use]
    pub fn contains(&self, doc: DocId) -> bool {
        let shard = self.shard_of(doc);
        self.lock_shard(shard).contains(doc)
    }

    /// Copy of a cached entry (a reference cannot outlive the shard lock).
    #[must_use]
    pub fn entry(&self, doc: DocId) -> Option<CacheEntry> {
        let shard = self.shard_of(doc);
        self.lock_shard(shard).entry(doc).copied()
    }

    /// Serves a local client request (see [`crate::Cache::lookup`]).
    pub fn lookup(&self, doc: DocId, now: Timestamp) -> Option<ByteSize> {
        let timer = crate::profile::Timer::start();
        let shard = self.shard_of(doc);
        let mut guard = self.lock_shard(shard);
        let served = guard.lookup(doc, now);
        guard.audit();
        guard.record_profile(crate::profile::ProfileOp::Lookup, timer);
        served
    }

    /// Serves a sibling cache (see [`crate::Cache::serve_remote`]).
    pub fn serve_remote(&self, doc: DocId, now: Timestamp, promote: bool) -> Option<ByteSize> {
        let timer = crate::profile::Timer::start();
        let shard = self.shard_of(doc);
        let mut guard = self.lock_shard(shard);
        let served = guard.serve_remote(doc, now, promote);
        guard.audit();
        guard.record_profile(crate::profile::ProfileOp::ServeRemote, timer);
        served
    }

    /// Stores a document (see [`crate::Cache::insert`]).
    pub fn insert(&self, doc: DocId, size: ByteSize, now: Timestamp) -> crate::InsertOutcome {
        let mut evictions = Vec::new();
        match self.insert_into(doc, size, now, &mut evictions) {
            StoreOutcome::Stored => crate::InsertOutcome::Stored(evictions),
            StoreOutcome::AlreadyPresent => crate::InsertOutcome::AlreadyPresent,
            StoreOutcome::TooLarge => crate::InsertOutcome::TooLarge,
        }
    }

    /// Allocation-free insert into a caller buffer (see
    /// [`crate::Cache::insert_into`]).
    pub fn insert_into(
        &self,
        doc: DocId,
        size: ByteSize,
        now: Timestamp,
        evictions: &mut Vec<EvictionRecord>,
    ) -> StoreOutcome {
        let timer = crate::profile::Timer::start();
        let shard = self.shard_of(doc);
        let mut guard = self.lock_shard(shard);
        let outcome = guard.insert(doc, size, now, evictions);
        guard.audit();
        guard.record_profile(crate::profile::ProfileOp::Insert, timer);
        outcome
    }

    /// Explicitly removes a document (see [`crate::Cache::remove`]).
    pub fn remove(&self, doc: DocId, now: Timestamp) -> Option<EvictionRecord> {
        let shard = self.shard_of(doc);
        let mut guard = self.lock_shard(shard);
        let rec = guard.remove(doc, now);
        guard.audit();
        rec
    }

    /// Bytes currently stored (shards locked one at a time, so the value
    /// is a consistent *per-shard* sum, not a global atomic snapshot).
    #[must_use]
    pub fn used(&self) -> ByteSize {
        (0..self.shards.len())
            .map(|i| self.lock_shard(i).used())
            .sum()
    }

    /// Number of cached documents (same per-shard consistency as `used`).
    #[must_use]
    pub fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.lock_shard(i).len())
            .sum()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Operation counters, aggregated over the shards.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for i in 0..self.shards.len() {
            total.merge(self.lock_shard(i).stats());
        }
        total
    }

    /// Total contention samples recorded (see
    /// [`crate::Cache::eviction_count`]).
    #[must_use]
    pub fn eviction_count(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| self.lock_shard(i).tracker().eviction_count())
            .sum()
    }

    /// Lifetime mean expiration age (see
    /// [`crate::Cache::lifetime_average`]).
    #[must_use]
    pub fn lifetime_average(&self) -> Option<DurationMs> {
        let mut sum = 0u128;
        let mut count = 0u64;
        for i in 0..self.shards.len() {
            let guard = self.lock_shard(i);
            sum += guard.tracker().lifetime_sum_ms();
            count += guard.tracker().eviction_count();
        }
        if count == 0 {
            None
        } else {
            Some(DurationMs::from_millis((sum / u128::from(count)) as u64))
        }
    }

    /// The windowed cache expiration age (see
    /// [`crate::Cache::expiration_age`]).
    #[must_use]
    pub fn expiration_age(&self) -> ExpirationAge {
        let mut sum = 0u128;
        let mut len = 0usize;
        for i in 0..self.shards.len() {
            let guard = self.lock_shard(i);
            sum += guard.tracker().window_sum_ms();
            len += guard.tracker().window_len();
        }
        if len == 0 {
            return ExpirationAge::Infinite;
        }
        ExpirationAge::finite(DurationMs::from_millis((sum / len as u128) as u64))
    }

    /// Copies out every cached entry, shard by shard in index order,
    /// ascending [`DocId`] within each shard — the same deterministic
    /// order [`crate::Cache::iter`] walks.
    ///
    /// Shards are locked one at a time, so the snapshot is per-shard
    /// consistent: each shard's slice is an instant in that shard's
    /// history, and concurrent writers to *other* shards are not blocked
    /// while it is taken. The `interleave` model proves this weaker (and
    /// honestly documented) contract is actually delivered.
    #[must_use]
    pub fn snapshot(&self) -> Vec<CacheEntry> {
        let mut out = Vec::new();
        for i in 0..self.shards.len() {
            let guard = self.lock_shard(i);
            out.extend(guard.sorted_entries().into_iter().copied());
        }
        out
    }

    /// Verifies every shard's bookkeeping (see
    /// [`crate::Cache::check_invariants`]).
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        for i in 0..self.shards.len() {
            self.lock_shard(i).check_invariants()?;
        }
        Ok(())
    }

    /// Backing-vector growth events, summed over the shards.
    #[must_use]
    pub fn growth_events(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| self.lock_shard(i).growth_events())
            .sum()
    }

    /// The accumulated hot-path profile (see [`crate::Cache::profile`]).
    #[must_use]
    pub fn profile(&self) -> Option<crate::profile::ProfileSnapshot> {
        #[cfg(feature = "profile")]
        {
            let mut total = crate::profile::ProfileSnapshot::default();
            for i in 0..self.shards.len() {
                total.merge(&self.lock_shard(i).profile());
            }
            Some(total)
        }
        #[cfg(not(feature = "profile"))]
        {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use std::sync::Arc;

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn kb(n: u64) -> ByteSize {
        ByteSize::from_kb(n)
    }

    fn concurrent(cap_kb: u64, shards: usize) -> ConcurrentCache {
        CacheConfig::new(CacheId::new(0), kb(cap_kb), PolicyKind::Lru)
            .shards(shards)
            .build_concurrent()
    }

    #[test]
    fn shared_reference_roundtrip() {
        let c = concurrent(64, 4);
        assert!(c.insert(d(1), kb(4), t(0)).is_stored());
        assert_eq!(c.lookup(d(1), t(1)), Some(kb(4)));
        assert_eq!(c.lookup(d(2), t(1)), None);
        assert!(c.contains(d(1)));
        assert_eq!(c.entry(d(1)).unwrap().hit_count, 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used(), kb(4));
        let s = c.stats();
        assert_eq!(s.local_hits, 1);
        assert_eq!(s.local_misses, 1);
        c.check_invariants().expect("invariants hold");
    }

    #[test]
    fn matches_the_single_threaded_cache_per_doc_results() {
        let concurrent = concurrent(16, 4);
        let mut serial = CacheConfig::new(CacheId::new(0), kb(16), PolicyKind::Lru)
            .shards(4)
            .build();
        for i in 0..200u64 {
            let doc = d(i % 50);
            let now = t(i);
            let a = concurrent.insert(doc, kb(1), now);
            let b = serial.insert(doc, kb(1), now);
            assert_eq!(a, b, "insert #{i} diverged");
            let la = concurrent.lookup(doc, now);
            let lb = serial.lookup(doc, now);
            assert_eq!(la, lb, "lookup #{i} diverged");
        }
        assert_eq!(concurrent.len(), serial.len());
        assert_eq!(concurrent.used(), serial.used());
        assert_eq!(concurrent.stats(), serial.stats());
        assert_eq!(concurrent.expiration_age(), serial.expiration_age());
        let snap: Vec<u64> = concurrent
            .snapshot()
            .iter()
            .map(|e| e.doc.as_u64())
            .collect();
        let serial_iter: Vec<u64> = serial.iter().map(|e| e.doc.as_u64()).collect();
        assert_eq!(snap, serial_iter, "snapshot order matches Cache::iter");
    }

    #[test]
    fn parallel_readers_on_disjoint_shards() {
        let c = Arc::new(concurrent(256, 8));
        for i in 0..128u64 {
            c.insert(d(i), kb(1), t(i));
        }
        let mut handles = Vec::new();
        for reader in 0..4u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let mut hits = 0u64;
                for round in 0..200u64 {
                    let doc = d((reader * 31 + round) % 128);
                    if c.lookup(doc, t(1_000 + round)).is_some() {
                        hits += 1;
                    }
                }
                hits
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().expect("reader")).sum();
        assert!(total > 0, "readers must observe the preloaded docs");
        c.check_invariants().expect("invariants hold after racing");
        let contention = c.contention();
        assert!(contention.acquisitions >= 128 + 800);
    }

    #[test]
    fn snapshot_races_with_writers_without_deadlock() {
        let c = Arc::new(concurrent(64, 4));
        let writer = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    c.insert(d(i % 80), kb(1), t(i));
                }
            })
        };
        let snapshotter = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let snap = c.snapshot();
                    // Within each shard's slice the DocIds are sorted:
                    // per-shard consistency is the documented contract.
                    assert!(snap.len() <= 64);
                }
            })
        };
        writer.join().expect("writer");
        snapshotter.join().expect("snapshotter");
        c.check_invariants().expect("invariants hold");
    }

    #[test]
    fn contention_counters_start_at_zero() {
        let c = concurrent(8, 2);
        assert_eq!(c.contention(), LockContention::default());
        c.insert(d(1), kb(1), t(0));
        assert!(c.contention().acquisitions >= 1);
        assert_eq!(c.contention().contended, 0, "uncontended single thread");
    }
}
