//! A single byte-capacity-bounded proxy cache over N arena-backed shards.

use crate::config::CacheConfig;
use crate::entry::{CacheEntry, EvictionRecord};
use crate::expiration::ExpirationWindow;
use crate::index::mix64;
use crate::policy::PolicyKind;
use crate::store::{Shard, StoreOutcome};
use coopcache_types::{ByteSize, CacheId, DocId, DurationMs, ExpirationAge, Timestamp};
use std::fmt;

/// One proxy cache: a byte-bounded document store with a pluggable
/// replacement policy and expiration-age accounting.
///
/// The cache exposes exactly the three access paths the cooperative
/// protocol needs:
///
/// * [`lookup`](Cache::lookup) — a local client request (counts as a hit
///   and refreshes the entry);
/// * [`contains`](Cache::contains) — an ICP probe (read-only);
/// * [`serve_remote`](Cache::serve_remote) — serving a sibling, where the
///   EA scheme decides via `promote` whether the serve refreshes the
///   entry or leaves it to age out (paper §3.4).
///
/// # Storage layout
///
/// Documents live in shards: flat arenas with open-addressing doc→slot
/// tables and intrusive policy orders, so every hot-path operation is
/// pointer-free O(1) (O(log n) for the heap-ordered policies) with zero
/// steady-state allocation. A cache built through [`Cache::new`] has one
/// shard — bit-for-bit the old single-store behaviour; [`CacheConfig`]
/// can split the capacity over 2^k shards assigned by seeded document
/// hash, which is what [`crate::ConcurrentCache`] locks independently.
///
/// # Example
///
/// ```
/// use coopcache_core::{Cache, PolicyKind};
/// use coopcache_types::{ByteSize, CacheId, DocId, Timestamp};
///
/// let mut cache = Cache::new(CacheId::new(0), ByteSize::from_kb(8), PolicyKind::Lru);
/// let now = Timestamp::from_secs(1);
/// cache.insert(DocId::new(1), ByteSize::from_kb(4), now);
/// assert!(cache.lookup(DocId::new(1), now).is_some());
/// assert!(cache.lookup(DocId::new(2), now).is_none());
/// ```
#[derive(Debug)]
pub struct Cache {
    id: CacheId,
    capacity: ByteSize,
    seed: u64,
    shard_mask: u64,
    shards: Vec<Shard>,
    ttl: Option<DurationMs>,
}

/// A broken internal invariant, as reported by
/// [`Cache::check_invariants`]. Each variant names the bookkeeping
/// relation that failed and carries the observed values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// `used` does not equal the sum of the stored entry sizes.
    ByteAccounting {
        /// The cache's running byte counter.
        used: ByteSize,
        /// The recomputed sum over all entries.
        actual: ByteSize,
    },
    /// More bytes stored than the configured capacity.
    OverCapacity {
        /// The cache's running byte counter.
        used: ByteSize,
        /// The configured limit.
        capacity: ByteSize,
    },
    /// The doc→slot table and the entry arena disagree about occupancy.
    StoreDesync {
        /// Mappings in the open-addressing table.
        table_len: usize,
        /// Live slots in the entry arena.
        arena_len: usize,
    },
    /// The replacement policy tracks a different document set than the
    /// entry store.
    PolicyDesync {
        /// Documents the policy tracks.
        policy_len: usize,
        /// Documents the entry store holds.
        entries_len: usize,
    },
    /// The policy proposed a victim that is not cached.
    VictimNotCached {
        /// The phantom victim.
        victim: DocId,
    },
    /// The cache is non-empty but the policy has no victim to offer.
    VictimUnavailable,
    /// The expiration-age tracker's window exceeds its configured bound
    /// or its running sum drifted from the recorded ages (paper eq. 5).
    TrackerWindow,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ByteAccounting { used, actual } => {
                write!(
                    f,
                    "byte accounting drifted: used={used} but entries sum to {actual}"
                )
            }
            Self::OverCapacity { used, capacity } => {
                write!(f, "over capacity: used={used} > capacity={capacity}")
            }
            Self::StoreDesync {
                table_len,
                arena_len,
            } => write!(
                f,
                "doc table maps {table_len} docs but the arena holds {arena_len}"
            ),
            Self::PolicyDesync {
                policy_len,
                entries_len,
            } => write!(
                f,
                "policy tracks {policy_len} docs but the cache holds {entries_len}"
            ),
            Self::VictimNotCached { victim } => {
                write!(f, "policy victim {victim} is not in the entry store")
            }
            Self::VictimUnavailable => {
                f.write_str("cache is non-empty but the policy offers no victim")
            }
            Self::TrackerWindow => {
                f.write_str("expiration-age tracker window bounds or sums are inconsistent")
            }
        }
    }
}

/// Outcome of a [`Cache::insert`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The document was stored; the listed victims were evicted to make
    /// room (possibly none).
    Stored(Vec<EvictionRecord>),
    /// The document was already cached; nothing changed.
    AlreadyPresent,
    /// The document is larger than the whole cache and was not stored.
    TooLarge,
}

impl InsertOutcome {
    /// True when the insert stored the document.
    #[must_use]
    pub fn is_stored(&self) -> bool {
        matches!(self, Self::Stored(_))
    }

    /// The evictions the insert caused (empty unless `Stored`).
    #[must_use]
    pub fn evictions(&self) -> &[EvictionRecord] {
        match self {
            Self::Stored(e) => e,
            _ => &[],
        }
    }
}

impl Cache {
    /// Creates a single-shard cache with the default expiration-age window.
    ///
    /// The expiration-age *flavor* (LRU formula vs LFU formula) follows the
    /// replacement policy, per the paper's eq. 1. For shard, window, TTL
    /// and seed knobs use [`CacheConfig`].
    #[must_use]
    pub fn new(id: CacheId, capacity: ByteSize, policy: PolicyKind) -> Self {
        CacheConfig::new(id, capacity, policy).build()
    }

    /// Creates a single-shard cache with an explicit expiration-age window.
    #[must_use]
    pub fn with_window(
        id: CacheId,
        capacity: ByteSize,
        policy: PolicyKind,
        window: ExpirationWindow,
    ) -> Self {
        CacheConfig::new(id, capacity, policy)
            .window(window)
            .build()
    }

    /// Assembles a cache from built shards (called by [`CacheConfig`]).
    pub(crate) fn from_parts(
        id: CacheId,
        capacity: ByteSize,
        seed: u64,
        shards: Vec<Shard>,
        ttl: Option<DurationMs>,
    ) -> Self {
        debug_assert!(shards.len().is_power_of_two());
        Self {
            id,
            capacity,
            seed,
            shard_mask: shards.len() as u64 - 1,
            shards,
            ttl,
        }
    }

    /// The shard holding `doc`: seeded document hash masked to 2^k shards.
    #[inline]
    fn shard_of(&self, doc: DocId) -> usize {
        (mix64(doc.as_u64() ^ self.seed) & self.shard_mask) as usize
    }

    /// Sets (or clears) a freshness TTL: a document older than `ttl`
    /// since it entered the cache is discarded on access instead of
    /// served — the simplest form of the cache-coherence mechanisms the
    /// paper lists as orthogonal related work.
    ///
    /// Expirations do **not** feed the expiration-age tracker: that
    /// tracker measures *capacity* contention (paper eq. 5), and a
    /// freshness discard says nothing about disk pressure.
    pub fn set_ttl(&mut self, ttl: Option<DurationMs>) {
        self.ttl = ttl;
        for shard in &mut self.shards {
            shard.set_ttl(ttl);
        }
    }

    /// The configured freshness TTL, if any.
    #[must_use]
    pub fn ttl(&self) -> Option<DurationMs> {
        self.ttl
    }

    /// This cache's id.
    #[must_use]
    pub fn id(&self) -> CacheId {
        self.id
    }

    /// Configured capacity in bytes (split evenly over the shards).
    #[must_use]
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Number of shards the store is split into.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Bytes currently stored, summed over the shards.
    #[must_use]
    pub fn used(&self) -> ByteSize {
        self.shards.iter().map(Shard::used).sum()
    }

    /// Number of cached documents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The replacement policy in use.
    #[must_use]
    pub fn policy_kind(&self) -> PolicyKind {
        self.shards[0].policy_kind()
    }

    /// Read-only ICP probe: is the document cached here?
    #[must_use]
    pub fn contains(&self, doc: DocId) -> bool {
        self.shards[self.shard_of(doc)].contains(doc)
    }

    /// Read-only view of a cached entry.
    #[must_use]
    pub fn entry(&self, doc: DocId) -> Option<&CacheEntry> {
        self.shards[self.shard_of(doc)].entry(doc)
    }

    /// Operation counters, aggregated over the shards.
    #[must_use]
    pub fn stats(&self) -> crate::stats::CacheStats {
        let mut total = crate::stats::CacheStats::default();
        for shard in &self.shards {
            total.merge(shard.stats());
        }
        total
    }

    /// Total capacity-contention samples (evictions plus observed ghost
    /// re-admission gaps) recorded over the cache's lifetime.
    #[must_use]
    pub fn eviction_count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.tracker().eviction_count())
            .sum()
    }

    /// Mean document expiration age over *all* samples so far — the
    /// quantity averaged across caches in the paper's Table 1. `None`
    /// before anything has been evicted.
    #[must_use]
    pub fn lifetime_average(&self) -> Option<DurationMs> {
        let (sum, count) = self.shards.iter().fold((0u128, 0u64), |(s, c), shard| {
            (
                s + shard.tracker().lifetime_sum_ms(),
                c + shard.tracker().eviction_count(),
            )
        });
        if count == 0 {
            None
        } else {
            Some(DurationMs::from_millis((sum / u128::from(count)) as u64))
        }
    }

    /// The expiration-age formula the cache's trackers apply (follows the
    /// replacement policy, paper eq. 1).
    #[must_use]
    pub fn expiration_flavor(&self) -> crate::policy::ExpirationFlavor {
        self.policy_kind().expiration_flavor()
    }

    /// The cache expiration age piggybacked on inter-proxy messages
    /// (paper eq. 5), averaged over every shard's window.
    ///
    /// With one shard this is exactly the tracker's windowed mean; with N
    /// shards it is `Σ window sums / Σ window lengths`, which equals the
    /// mean over the union of the windows.
    #[must_use]
    pub fn expiration_age(&self) -> ExpirationAge {
        let (sum, len) = self.shards.iter().fold((0u128, 0usize), |(s, l), shard| {
            (
                s + shard.tracker().window_sum_ms(),
                l + shard.tracker().window_len(),
            )
        });
        if len == 0 {
            return ExpirationAge::Infinite;
        }
        ExpirationAge::finite(DurationMs::from_millis((sum / len as u128) as u64))
    }

    /// Serves a local client request. On a hit the entry is refreshed
    /// (last-hit time, hit counter, policy promotion) and its size is
    /// returned; on a miss, `None`.
    pub fn lookup(&mut self, doc: DocId, now: Timestamp) -> Option<ByteSize> {
        let timer = crate::profile::Timer::start();
        let shard = self.shard_of(doc);
        let served = self.shards[shard].lookup(doc, now);
        self.audit();
        self.shards[shard].record_profile(crate::profile::ProfileOp::Lookup, timer);
        served
    }

    /// Serves a sibling cache (a remote hit at this responder).
    ///
    /// With `promote == true` the serve counts as a hit exactly like a
    /// local lookup (the ad-hoc behaviour, and the EA behaviour when this
    /// responder's copy is the longer-lived one). With `promote == false`
    /// the entry is left completely untouched, so the redundant replica
    /// ages out (the EA behaviour when the requester keeps a copy).
    ///
    /// Returns the document size, or `None` if the document is not here
    /// (e.g. it was evicted between the ICP reply and the HTTP request).
    pub fn serve_remote(&mut self, doc: DocId, now: Timestamp, promote: bool) -> Option<ByteSize> {
        let timer = crate::profile::Timer::start();
        let shard = self.shard_of(doc);
        let served = self.shards[shard].serve_remote(doc, now, promote);
        self.audit();
        self.shards[shard].record_profile(crate::profile::ProfileOp::ServeRemote, timer);
        served
    }

    /// Stores a document, evicting victims as needed.
    ///
    /// Every eviction is fed to the expiration-age tracker and returned to
    /// the caller (the simulator logs them). A document wider than its
    /// shard is rejected rather than flushing everything.
    pub fn insert(&mut self, doc: DocId, size: ByteSize, now: Timestamp) -> InsertOutcome {
        let mut evictions = Vec::new();
        let outcome = self.insert_into(doc, size, now, &mut evictions);
        // insert_into runs the per-shard audit; repeating it here is free
        // outside paranoid builds and keeps this entry point audited even
        // if the delegation above ever changes.
        self.audit();
        match outcome {
            StoreOutcome::Stored => InsertOutcome::Stored(evictions),
            StoreOutcome::AlreadyPresent => InsertOutcome::AlreadyPresent,
            StoreOutcome::TooLarge => InsertOutcome::TooLarge,
        }
    }

    /// Allocation-free insert: victims are pushed onto the caller's
    /// buffer instead of a fresh `Vec`, so a steady-state caller that
    /// clears and reuses one buffer keeps the whole path off the
    /// allocator (the `bench-core` harness and the smoke check use this).
    pub fn insert_into(
        &mut self,
        doc: DocId,
        size: ByteSize,
        now: Timestamp,
        evictions: &mut Vec<EvictionRecord>,
    ) -> StoreOutcome {
        let timer = crate::profile::Timer::start();
        let shard = self.shard_of(doc);
        let outcome = self.shards[shard].insert(doc, size, now, evictions);
        self.audit();
        self.shards[shard].record_profile(crate::profile::ProfileOp::Insert, timer);
        outcome
    }

    /// Explicitly removes a document (tests, tools, invalidation).
    ///
    /// The removal is recorded with
    /// [`EvictionReason::Explicit`](crate::entry::EvictionReason::Explicit)
    /// and fed to the expiration-age tracker like any other departure.
    pub fn remove(&mut self, doc: DocId, now: Timestamp) -> Option<EvictionRecord> {
        let shard = self.shard_of(doc);
        let rec = self.shards[shard].remove(doc, now);
        self.audit();
        rec
    }

    /// Iterates over the cached documents shard by shard, in ascending
    /// [`DocId`] order within each shard.
    ///
    /// The order is deterministic (arena walks are sorted before leaving
    /// the shard, and shards are visited in index order), so report
    /// generation and event emission that walk the cache never depend on
    /// hasher state. A single-shard cache — the default — yields exactly
    /// the globally DocId-sorted order the old `BTreeMap` store produced.
    pub fn iter(&self) -> impl Iterator<Item = &CacheEntry> {
        self.shards.iter().flat_map(|s| s.sorted_entries())
    }

    /// Verifies the cache's internal bookkeeping relations, shard by
    /// shard.
    ///
    /// Checked relations (per shard):
    ///
    /// 1. `used` equals the sum of all stored entry sizes;
    /// 2. `used <= capacity`;
    /// 3. the doc→slot table and the entry arena agree on occupancy;
    /// 4. the replacement policy tracks exactly the cached document set
    ///    (by count), and its proposed victim is cached — with a victim
    ///    available whenever the shard is non-empty;
    /// 5. the expiration-age tracker's window respects its configured
    ///    bound and its running sums match the recorded ages (the inputs
    ///    to the paper's eq. 5).
    ///
    /// This is cheap enough for tests but linear in the cache size, so
    /// production paths only run it under the `paranoid` cargo feature
    /// (via the internal `audit` hook after every mutation, which
    /// additionally walks each arena's freelist).
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        for shard in &self.shards {
            shard.check_invariants()?;
        }
        Ok(())
    }

    /// The accumulated hot-path profile, aggregated over the shards.
    ///
    /// `Some` only when the crate is built with the `profile` feature;
    /// `None` otherwise, so callers can report "profiling off"
    /// explicitly instead of showing all-zero timings. The snapshot's
    /// `growth_events` field carries [`Cache::growth_events`].
    #[must_use]
    pub fn profile(&self) -> Option<crate::profile::ProfileSnapshot> {
        #[cfg(feature = "profile")]
        {
            let mut total = crate::profile::ProfileSnapshot::default();
            for shard in &self.shards {
                total.merge(&shard.profile());
            }
            Some(total)
        }
        #[cfg(not(feature = "profile"))]
        {
            None
        }
    }

    /// Times the store's backing vectors grew, summed over arenas, tables
    /// and policy internals. Flat under steady-state churn — the
    /// `bench-core --smoke` check asserts exactly that. Available with or
    /// without the `profile` feature.
    #[must_use]
    pub fn growth_events(&self) -> u64 {
        self.shards.iter().map(Shard::growth_events).sum()
    }

    /// Paranoid-mode hook: re-verifies every invariant after a mutation.
    ///
    /// A no-op unless the crate is built with the `paranoid` feature;
    /// with it, any bookkeeping corruption aborts immediately instead of
    /// silently skewing the EA-vs-ad-hoc comparison.
    #[inline]
    fn audit(&self) {
        #[cfg(feature = "paranoid")]
        for shard in &self.shards {
            shard.audit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EvictionReason;

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn kb(n: u64) -> ByteSize {
        ByteSize::from_kb(n)
    }

    fn cache(cap_kb: u64) -> Cache {
        Cache::new(CacheId::new(0), kb(cap_kb), PolicyKind::Lru)
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut c = cache(10);
        assert!(c.insert(d(1), kb(4), t(0)).is_stored());
        assert_eq!(c.lookup(d(1), t(10)), Some(kb(4)));
        assert_eq!(c.lookup(d(2), t(10)), None);
        assert_eq!(c.used(), kb(4));
        assert_eq!(c.len(), 1);
        assert!(c.contains(d(1)));
        assert!(!c.contains(d(2)));
    }

    #[test]
    fn insert_evicts_lru_victim() {
        let mut c = cache(10);
        c.insert(d(1), kb(4), t(0));
        c.insert(d(2), kb(4), t(1));
        c.lookup(d(1), t(2)); // doc 2 is now the LRU victim
        let out = c.insert(d(3), kb(4), t(3));
        let evs = out.evictions();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].entry.doc, d(2));
        assert!(!c.contains(d(2)));
        assert!(c.contains(d(1)) && c.contains(d(3)));
        assert_eq!(c.used(), kb(8));
    }

    #[test]
    fn insert_can_evict_multiple_victims() {
        let mut c = cache(10);
        c.insert(d(1), kb(3), t(0));
        c.insert(d(2), kb(3), t(1));
        c.insert(d(3), kb(3), t(2));
        let out = c.insert(d(4), kb(8), t(3));
        assert_eq!(out.evictions().len(), 3);
        assert_eq!(c.len(), 1);
        assert!(c.contains(d(4)));
    }

    #[test]
    fn oversized_document_is_rejected() {
        let mut c = cache(4);
        c.insert(d(1), kb(2), t(0));
        let out = c.insert(d(2), kb(5), t(1));
        assert_eq!(out, InsertOutcome::TooLarge);
        assert!(c.contains(d(1)), "rejection must not flush the cache");
        assert_eq!(c.stats().rejected_too_large, 1);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut c = cache(10);
        c.insert(d(1), kb(4), t(0));
        assert_eq!(c.insert(d(1), kb(4), t(5)), InsertOutcome::AlreadyPresent);
        assert_eq!(c.used(), kb(4));
        assert_eq!(c.stats().insertions, 1);
    }

    #[test]
    fn exact_fit_does_not_evict() {
        let mut c = cache(8);
        c.insert(d(1), kb(4), t(0));
        let out = c.insert(d(2), kb(4), t(1));
        assert!(out.evictions().is_empty());
        assert_eq!(c.used(), kb(8));
    }

    #[test]
    fn serve_remote_with_promotion_refreshes() {
        let mut c = cache(8);
        c.insert(d(1), kb(4), t(0));
        c.insert(d(2), kb(4), t(1));
        // Promoting remote serve makes doc 1 the most recent...
        assert_eq!(c.serve_remote(d(1), t(2), true), Some(kb(4)));
        // ...so doc 2 is the next victim.
        let out = c.insert(d(3), kb(4), t(3));
        assert_eq!(out.evictions()[0].entry.doc, d(2));
        assert_eq!(c.entry(d(1)).unwrap().hit_count, 2);
    }

    #[test]
    fn serve_remote_without_promotion_leaves_entry_cold() {
        let mut c = cache(8);
        c.insert(d(1), kb(4), t(0));
        c.insert(d(2), kb(4), t(1));
        // Non-promoting serve: doc 1 stays the LRU victim.
        assert_eq!(c.serve_remote(d(1), t(2), false), Some(kb(4)));
        assert_eq!(c.entry(d(1)).unwrap().hit_count, 1);
        assert_eq!(c.entry(d(1)).unwrap().last_hit_at, t(0));
        let out = c.insert(d(3), kb(4), t(3));
        assert_eq!(out.evictions()[0].entry.doc, d(1));
    }

    #[test]
    fn serve_remote_missing_doc() {
        let mut c = cache(8);
        assert_eq!(c.serve_remote(d(1), t(0), true), None);
        assert_eq!(c.stats().remote_serves, 0);
    }

    #[test]
    fn eviction_feeds_expiration_tracker() {
        let mut c = cache(4);
        assert_eq!(c.expiration_age(), ExpirationAge::Infinite);
        c.insert(d(1), kb(4), t(0));
        c.lookup(d(1), t(1_000));
        c.insert(d(2), kb(4), t(3_000)); // evicts doc 1, age 2000ms
        assert_eq!(
            c.expiration_age(),
            ExpirationAge::finite(coopcache_types::DurationMs::from_secs(2))
        );
        assert_eq!(c.eviction_count(), 1);
    }

    #[test]
    fn s3fifo_ghost_readmission_feeds_the_eq5_tracker() {
        // The S3-FIFO ghost queue is wired into the shard's expiration-age
        // bookkeeping: re-admitting a ghosted doc reports its
        // eviction→return gap as one extra capacity-contention sample
        // (paper eq. 5), on top of the eviction samples themselves.
        let mut c = Cache::new(CacheId::new(0), kb(4), PolicyKind::S3Fifo);
        c.insert(d(1), kb(1), t(0));
        // Fill past capacity: doc 1 washes out of the small queue into
        // the ghost queue.
        for i in 2..=6u64 {
            c.insert(d(i), kb(1), t(i * 100));
        }
        assert!(c.entry(d(1)).is_none(), "doc 1 was evicted");
        let evictions = c.stats().evictions;
        let samples = c.eviction_count();
        assert_eq!(samples, evictions, "so far every sample is an eviction");
        // Re-admission within the ghost window: one insert, one extra
        // observed-gap sample beyond the eviction it may itself cause.
        c.insert(d(1), kb(1), t(2_000));
        let new_evictions = c.stats().evictions;
        assert_eq!(
            c.eviction_count(),
            new_evictions + 1,
            "the ghost gap is an extra eq. 5 sample"
        );
    }

    #[test]
    fn explicit_remove_returns_record() {
        let mut c = cache(8);
        c.insert(d(1), kb(4), t(0));
        let rec = c.remove(d(1), t(500)).expect("doc was cached");
        assert_eq!(rec.reason, EvictionReason::Explicit);
        assert_eq!(rec.entry.doc, d(1));
        assert!(c.is_empty());
        assert_eq!(c.used(), ByteSize::ZERO);
        assert_eq!(c.remove(d(1), t(501)), None);
        assert_eq!(c.stats().explicit_removals, 1);
        // Capacity-pressure counter untouched by explicit removals.
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = cache(8);
        c.insert(d(1), kb(4), t(0));
        c.lookup(d(1), t(1));
        c.lookup(d(2), t(2));
        c.lookup(d(1), t(3));
        let s = c.stats();
        assert_eq!(s.local_hits, 2);
        assert_eq!(s.local_misses, 1);
        assert_eq!(s.insertions, 1);
    }

    #[test]
    fn bytes_accounting_is_exact_under_churn() {
        let mut c = cache(100);
        for i in 0..1000u64 {
            c.insert(d(i), kb(1 + i % 7), t(i));
        }
        let manual: ByteSize = c.iter().map(|e| e.size).sum();
        assert_eq!(c.used(), manual);
        assert!(c.used() <= c.capacity());
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut c = cache(10);
        c.insert(d(1), kb(2), t(0));
        c.insert(d(2), kb(2), t(1));
        let mut ids: Vec<u64> = c.iter().map(|e| e.doc.as_u64()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn single_shard_iter_is_globally_sorted() {
        let mut c = cache(100);
        for i in [9u64, 3, 7, 1, 5, 2, 8] {
            c.insert(d(i), kb(1), t(i));
        }
        let ids: Vec<u64> = c.iter().map(|e| e.doc.as_u64()).collect();
        assert_eq!(ids, vec![1, 2, 3, 5, 7, 8, 9], "BTreeMap-era order kept");
    }

    #[test]
    fn ttl_expires_stale_documents_on_lookup() {
        let mut c = cache(8);
        c.set_ttl(Some(coopcache_types::DurationMs::from_secs(10)));
        assert_eq!(c.ttl(), Some(coopcache_types::DurationMs::from_secs(10)));
        c.insert(d(1), kb(4), t(0));
        // Fresh: served.
        assert!(c.lookup(d(1), t(9_000)).is_some());
        // Hits do not renew freshness (entered_at governs).
        assert!(c.lookup(d(1), t(10_001)).is_none());
        assert!(!c.contains(d(1)), "stale doc must be gone");
        assert_eq!(c.stats().expirations, 1);
        assert_eq!(c.used(), ByteSize::ZERO);
        // Expirations do not pollute the contention tracker.
        assert_eq!(c.eviction_count(), 0);
    }

    #[test]
    fn ttl_expires_on_remote_serve() {
        let mut c = cache(8);
        c.set_ttl(Some(coopcache_types::DurationMs::from_secs(1)));
        c.insert(d(1), kb(4), t(0));
        assert_eq!(c.serve_remote(d(1), t(5_000), true), None);
        assert!(!c.contains(d(1)));
        assert_eq!(c.stats().expirations, 1);
    }

    #[test]
    fn no_ttl_means_documents_never_expire() {
        let mut c = cache(8);
        c.insert(d(1), kb(4), t(0));
        assert!(c.lookup(d(1), t(u64::MAX / 2)).is_some());
        assert_eq!(c.stats().expirations, 0);
    }

    #[test]
    fn exact_ttl_boundary_is_still_fresh() {
        let mut c = cache(8);
        c.set_ttl(Some(coopcache_types::DurationMs::from_secs(10)));
        c.insert(d(1), kb(4), t(0));
        assert!(c.lookup(d(1), t(10_000)).is_some(), "age == ttl is fresh");
    }

    #[test]
    fn works_with_every_policy_kind() {
        for kind in PolicyKind::all() {
            let mut c = Cache::new(CacheId::new(1), kb(4), kind);
            assert_eq!(c.policy_kind(), kind);
            for i in 0..10u64 {
                c.insert(d(i), kb(2), t(i));
                if i % 2 == 0 {
                    c.lookup(d(i), t(i) + coopcache_types::DurationMs::from_millis(1));
                }
            }
            assert!(c.used() <= c.capacity());
            assert!(c.len() <= 2);
            assert!(c.eviction_count() >= 8);
        }
    }

    #[test]
    fn insert_into_reuses_the_caller_buffer() {
        let mut c = cache(8);
        let mut evictions = Vec::with_capacity(8);
        assert_eq!(
            c.insert_into(d(1), kb(4), t(0), &mut evictions),
            StoreOutcome::Stored
        );
        assert_eq!(
            c.insert_into(d(1), kb(4), t(1), &mut evictions),
            StoreOutcome::AlreadyPresent
        );
        assert_eq!(
            c.insert_into(d(2), kb(8), t(2), &mut evictions),
            StoreOutcome::Stored
        );
        assert_eq!(evictions.len(), 1, "victim lands in the caller's buffer");
        assert_eq!(evictions[0].entry.doc, d(1));
        // The caller clears between calls; the buffer's capacity survives.
        evictions.clear();
        assert_eq!(
            c.insert_into(d(3), kb(9), t(3), &mut evictions),
            StoreOutcome::TooLarge
        );
        assert!(evictions.is_empty());
    }

    #[test]
    fn steady_state_churn_stops_growing() {
        let mut c = cache(64);
        let mut evictions = Vec::with_capacity(8);
        for i in 0..64u64 {
            c.insert_into(d(i), kb(1), t(i), &mut evictions);
            evictions.clear();
        }
        let baseline = c.growth_events();
        for i in 64..4096u64 {
            c.insert_into(d(i), kb(1), t(i), &mut evictions);
            evictions.clear();
            c.lookup(d(i), t(i));
        }
        assert_eq!(
            c.growth_events(),
            baseline,
            "hot path must not grow backing vectors at steady state"
        );
    }

    #[test]
    fn profile_matches_feature_state() {
        let mut c = cache(8);
        let now = t(5);
        c.insert(d(1), kb(4), now);
        c.lookup(d(1), now);
        c.lookup(d(2), now);
        c.serve_remote(d(1), now, true);
        c.insert(d(2), kb(8), now); // evicts d(1) under capacity pressure
        c.remove(d(2), now);
        assert_eq!(
            c.profile().is_some(),
            cfg!(feature = "profile"),
            "profile() must be Some exactly under the profile feature"
        );
        if let Some(profile) = c.profile() {
            assert_eq!(profile.lookup.calls, 2);
            assert_eq!(profile.serve_remote.calls, 1);
            assert_eq!(profile.insert.calls, 2);
            assert_eq!(
                profile.evict.calls, 2,
                "capacity eviction + explicit remove"
            );
            assert_eq!(profile.growth_events, c.growth_events());
        }
    }

    mod sharded {
        use super::*;
        use crate::store::Shard;

        fn sharded(cap_kb: u64, shards: usize) -> Cache {
            CacheConfig::new(CacheId::new(7), kb(cap_kb), PolicyKind::Lru)
                .shards(shards)
                .build()
        }

        #[test]
        fn documents_spread_over_shards() {
            // 64 KB per shard: the seeded spread is uneven, so give every
            // shard room for all 64 docs to keep eviction out of the test.
            let mut c = sharded(256, 4);
            assert_eq!(c.shard_count(), 4);
            for i in 0..64u64 {
                c.insert(d(i), kb(1), t(i));
            }
            // With 64 docs over 4 seeded shards, every shard should hold
            // something (P(an empty shard) ~ 4·(3/4)^64).
            let per_shard: Vec<usize> = c.shards.iter().map(Shard::len).collect();
            assert!(
                per_shard.iter().all(|&n| n > 0),
                "starved shard: {per_shard:?}"
            );
            assert_eq!(c.len(), 64);
            assert_eq!(c.used(), kb(64));
        }

        #[test]
        fn iter_is_sorted_within_each_shard() {
            let mut c = sharded(64, 4);
            for i in 0..48u64 {
                c.insert(d(i), kb(1), t(i));
            }
            let all: Vec<u64> = c.iter().map(|e| e.doc.as_u64()).collect();
            assert_eq!(all.len(), 48);
            // Reconstruct the expected order: shard index, then DocId.
            let mut expected: Vec<(usize, u64)> =
                (0..48u64).map(|i| (c.shard_of(d(i)), i)).collect();
            expected.sort_unstable();
            let expected: Vec<u64> = expected.into_iter().map(|(_, i)| i).collect();
            assert_eq!(all, expected, "shard-by-shard DocId order");
        }

        #[test]
        fn same_seed_same_placement() {
            let mut a = sharded(64, 8);
            let mut b = sharded(64, 8);
            for i in 0..32u64 {
                a.insert(d(i), kb(1), t(i));
                b.insert(d(i), kb(1), t(i));
            }
            let ids_a: Vec<u64> = a.iter().map(|e| e.doc.as_u64()).collect();
            let ids_b: Vec<u64> = b.iter().map(|e| e.doc.as_u64()).collect();
            assert_eq!(ids_a, ids_b, "placement is a pure function of the seed");
        }

        #[test]
        fn eviction_pressure_is_per_shard() {
            let mut c = sharded(8, 2); // 4 KB per shard
            let mut stored = 0u64;
            for i in 0..16u64 {
                if c.insert(d(i), kb(1), t(i)).is_stored() {
                    stored += 1;
                }
            }
            assert_eq!(stored, 16);
            assert!(c.used() <= c.capacity());
            c.check_invariants().expect("shard invariants hold");
        }

        #[test]
        fn aggregate_stats_and_tracker_sum_over_shards() {
            let mut c = sharded(8, 4); // 2 KB per shard -> heavy eviction
            for i in 0..40u64 {
                c.insert(d(i), kb(1), t(i));
                c.lookup(d(i), t(i));
                c.lookup(d(i + 1000), t(i));
            }
            let s = c.stats();
            assert_eq!(s.insertions, 40);
            assert_eq!(s.local_hits, 40);
            assert_eq!(s.local_misses, 40);
            assert_eq!(s.evictions, c.eviction_count());
            assert!(c.expiration_age() != ExpirationAge::Infinite);
            assert!(c.lifetime_average().is_some());
        }

        #[test]
        fn shard_count_must_be_a_power_of_two() {
            let cfg = CacheConfig::new(CacheId::new(0), kb(8), PolicyKind::Lru);
            assert!(std::panic::catch_unwind(move || cfg.shards(3)).is_err());
        }
    }
}
