//! A single byte-capacity-bounded proxy cache.

use crate::entry::{CacheEntry, EvictionReason, EvictionRecord};
use crate::expiration::{ExpirationTracker, ExpirationWindow};
use crate::policy::{PolicyKind, ReplacementPolicy};
use crate::stats::CacheStats;
use coopcache_types::{ByteSize, CacheId, DocId, DurationMs, ExpirationAge, Timestamp};
use std::collections::BTreeMap;
use std::fmt;

/// One proxy cache: a byte-bounded document store with a pluggable
/// replacement policy and expiration-age accounting.
///
/// The cache exposes exactly the three access paths the cooperative
/// protocol needs:
///
/// * [`lookup`](Cache::lookup) — a local client request (counts as a hit
///   and refreshes the entry);
/// * [`contains`](Cache::contains) — an ICP probe (read-only);
/// * [`serve_remote`](Cache::serve_remote) — serving a sibling, where the
///   EA scheme decides via `promote` whether the serve refreshes the
///   entry or leaves it to age out (paper §3.4).
///
/// # Example
///
/// ```
/// use coopcache_core::{Cache, PolicyKind};
/// use coopcache_types::{ByteSize, CacheId, DocId, Timestamp};
///
/// let mut cache = Cache::new(CacheId::new(0), ByteSize::from_kb(8), PolicyKind::Lru);
/// let now = Timestamp::from_secs(1);
/// cache.insert(DocId::new(1), ByteSize::from_kb(4), now);
/// assert!(cache.lookup(DocId::new(1), now).is_some());
/// assert!(cache.lookup(DocId::new(2), now).is_none());
/// ```
#[derive(Debug)]
pub struct Cache {
    id: CacheId,
    capacity: ByteSize,
    used: ByteSize,
    // BTreeMap, not HashMap: `iter` is part of the public API and feeds
    // reports and tests, so visit order must be deterministic.
    entries: BTreeMap<DocId, CacheEntry>,
    policy: Box<dyn ReplacementPolicy>,
    tracker: ExpirationTracker,
    stats: CacheStats,
    ttl: Option<DurationMs>,
    // Hot-path per-op wall-time accounting, compiled only under the
    // `profile` feature (see crate::profile).
    #[cfg(feature = "profile")]
    profile: crate::profile::ProfileSnapshot,
}

/// A broken internal invariant, as reported by
/// [`Cache::check_invariants`]. Each variant names the bookkeeping
/// relation that failed and carries the observed values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// `used` does not equal the sum of the stored entry sizes.
    ByteAccounting {
        /// The cache's running byte counter.
        used: ByteSize,
        /// The recomputed sum over all entries.
        actual: ByteSize,
    },
    /// More bytes stored than the configured capacity.
    OverCapacity {
        /// The cache's running byte counter.
        used: ByteSize,
        /// The configured limit.
        capacity: ByteSize,
    },
    /// The replacement policy tracks a different document set than the
    /// entry map.
    PolicyDesync {
        /// Documents the policy tracks.
        policy_len: usize,
        /// Documents the entry map holds.
        entries_len: usize,
    },
    /// The policy proposed a victim that is not cached.
    VictimNotCached {
        /// The phantom victim.
        victim: DocId,
    },
    /// The cache is non-empty but the policy has no victim to offer.
    VictimUnavailable,
    /// The expiration-age tracker's window exceeds its configured bound
    /// or its running sum drifted from the recorded ages (paper eq. 5).
    TrackerWindow,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ByteAccounting { used, actual } => {
                write!(
                    f,
                    "byte accounting drifted: used={used} but entries sum to {actual}"
                )
            }
            Self::OverCapacity { used, capacity } => {
                write!(f, "over capacity: used={used} > capacity={capacity}")
            }
            Self::PolicyDesync {
                policy_len,
                entries_len,
            } => write!(
                f,
                "policy tracks {policy_len} docs but the cache holds {entries_len}"
            ),
            Self::VictimNotCached { victim } => {
                write!(f, "policy victim {victim} is not in the entry map")
            }
            Self::VictimUnavailable => {
                f.write_str("cache is non-empty but the policy offers no victim")
            }
            Self::TrackerWindow => {
                f.write_str("expiration-age tracker window bounds or sums are inconsistent")
            }
        }
    }
}

/// Outcome of a [`Cache::insert`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The document was stored; the listed victims were evicted to make
    /// room (possibly none).
    Stored(Vec<EvictionRecord>),
    /// The document was already cached; nothing changed.
    AlreadyPresent,
    /// The document is larger than the whole cache and was not stored.
    TooLarge,
}

impl InsertOutcome {
    /// True when the insert stored the document.
    #[must_use]
    pub fn is_stored(&self) -> bool {
        matches!(self, Self::Stored(_))
    }

    /// The evictions the insert caused (empty unless `Stored`).
    #[must_use]
    pub fn evictions(&self) -> &[EvictionRecord] {
        match self {
            Self::Stored(e) => e,
            _ => &[],
        }
    }
}

impl Cache {
    /// Creates a cache with the default expiration-age window.
    ///
    /// The expiration-age *flavor* (LRU formula vs LFU formula) follows the
    /// replacement policy, per the paper's eq. 1.
    #[must_use]
    pub fn new(id: CacheId, capacity: ByteSize, policy: PolicyKind) -> Self {
        Self::with_window(id, capacity, policy, ExpirationWindow::default())
    }

    /// Creates a cache with an explicit expiration-age window.
    #[must_use]
    pub fn with_window(
        id: CacheId,
        capacity: ByteSize,
        policy: PolicyKind,
        window: ExpirationWindow,
    ) -> Self {
        Self {
            id,
            capacity,
            used: ByteSize::ZERO,
            entries: BTreeMap::new(),
            policy: policy.build(),
            tracker: ExpirationTracker::new(policy.expiration_flavor(), window),
            stats: CacheStats::default(),
            ttl: None,
            #[cfg(feature = "profile")]
            profile: crate::profile::ProfileSnapshot::default(),
        }
    }

    /// Sets (or clears) a freshness TTL: a document older than `ttl`
    /// since it entered the cache is discarded on access instead of
    /// served — the simplest form of the cache-coherence mechanisms the
    /// paper lists as orthogonal related work.
    ///
    /// Expirations do **not** feed the expiration-age tracker: that
    /// tracker measures *capacity* contention (paper eq. 5), and a
    /// freshness discard says nothing about disk pressure.
    pub fn set_ttl(&mut self, ttl: Option<DurationMs>) {
        self.ttl = ttl;
    }

    /// The configured freshness TTL, if any.
    #[must_use]
    pub fn ttl(&self) -> Option<DurationMs> {
        self.ttl
    }

    fn entry_expired(&self, entry: &CacheEntry, now: Timestamp) -> bool {
        self.ttl
            .is_some_and(|ttl| now.saturating_since(entry.entered_at) > ttl)
    }

    /// Discards `doc` if it has outlived the TTL; returns true if so.
    fn expire_if_stale(&mut self, doc: DocId, now: Timestamp) -> bool {
        let stale = match self.entries.get(&doc) {
            Some(entry) => self.entry_expired(entry, now),
            None => false,
        };
        if stale {
            self.expire(doc);
        }
        stale
    }

    fn expire(&mut self, doc: DocId) {
        let Some(entry) = self.entries.remove(&doc) else {
            return;
        };
        self.policy.on_remove(doc);
        self.used -= entry.size;
        self.stats.expirations += 1;
        // Intentionally NOT recorded in the expiration-age tracker.
    }

    /// This cache's id.
    #[must_use]
    pub fn id(&self) -> CacheId {
        self.id
    }

    /// Configured capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Bytes currently stored.
    #[must_use]
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// Number of cached documents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The replacement policy in use.
    #[must_use]
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy.kind()
    }

    /// Read-only ICP probe: is the document cached here?
    #[must_use]
    pub fn contains(&self, doc: DocId) -> bool {
        self.entries.contains_key(&doc)
    }

    /// Read-only view of a cached entry.
    #[must_use]
    pub fn entry(&self, doc: DocId) -> Option<&CacheEntry> {
        self.entries.get(&doc)
    }

    /// Operation counters.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The expiration-age tracker (windowed and lifetime views).
    #[must_use]
    pub fn tracker(&self) -> &ExpirationTracker {
        &self.tracker
    }

    /// The cache expiration age piggybacked on inter-proxy messages.
    #[must_use]
    pub fn expiration_age(&self) -> ExpirationAge {
        self.tracker.cache_expiration_age()
    }

    /// Serves a local client request. On a hit the entry is refreshed
    /// (last-hit time, hit counter, policy promotion) and its size is
    /// returned; on a miss, `None`.
    pub fn lookup(&mut self, doc: DocId, now: Timestamp) -> Option<ByteSize> {
        let timer = crate::profile::Timer::start();
        let served = self.lookup_inner(doc, now);
        self.audit();
        self.record_profile(crate::profile::ProfileOp::Lookup, timer);
        served
    }

    fn lookup_inner(&mut self, doc: DocId, now: Timestamp) -> Option<ByteSize> {
        if self.expire_if_stale(doc, now) {
            self.stats.local_misses += 1;
            return None;
        }
        match self.entries.get_mut(&doc) {
            Some(entry) => {
                entry.record_hit(now);
                self.policy.on_hit(doc);
                self.stats.local_hits += 1;
                Some(entry.size)
            }
            None => {
                self.stats.local_misses += 1;
                None
            }
        }
    }

    /// Serves a sibling cache (a remote hit at this responder).
    ///
    /// With `promote == true` the serve counts as a hit exactly like a
    /// local lookup (the ad-hoc behaviour, and the EA behaviour when this
    /// responder's copy is the longer-lived one). With `promote == false`
    /// the entry is left completely untouched, so the redundant replica
    /// ages out (the EA behaviour when the requester keeps a copy).
    ///
    /// Returns the document size, or `None` if the document is not here
    /// (e.g. it was evicted between the ICP reply and the HTTP request).
    pub fn serve_remote(&mut self, doc: DocId, now: Timestamp, promote: bool) -> Option<ByteSize> {
        let timer = crate::profile::Timer::start();
        let served = self.serve_remote_inner(doc, now, promote);
        self.audit();
        self.record_profile(crate::profile::ProfileOp::ServeRemote, timer);
        served
    }

    fn serve_remote_inner(
        &mut self,
        doc: DocId,
        now: Timestamp,
        promote: bool,
    ) -> Option<ByteSize> {
        if self.expire_if_stale(doc, now) {
            return None;
        }
        let size = match self.entries.get_mut(&doc) {
            Some(entry) => {
                if promote {
                    entry.record_hit(now);
                }
                entry.size
            }
            None => return None,
        };
        if promote {
            self.policy.on_hit(doc);
        }
        self.stats.remote_serves += 1;
        Some(size)
    }

    /// Stores a document, evicting victims as needed.
    ///
    /// Every eviction is fed to the expiration-age tracker and returned to
    /// the caller (the simulator logs them). A document wider than the
    /// whole cache is rejected rather than flushing everything.
    pub fn insert(&mut self, doc: DocId, size: ByteSize, now: Timestamp) -> InsertOutcome {
        let timer = crate::profile::Timer::start();
        let outcome = self.insert_inner(doc, size, now);
        self.audit();
        self.record_profile(crate::profile::ProfileOp::Insert, timer);
        outcome
    }

    fn insert_inner(&mut self, doc: DocId, size: ByteSize, now: Timestamp) -> InsertOutcome {
        if self.entries.contains_key(&doc) {
            return InsertOutcome::AlreadyPresent;
        }
        if size > self.capacity {
            self.stats.rejected_too_large += 1;
            return InsertOutcome::TooLarge;
        }
        let mut evictions = Vec::new();
        while self.used + size > self.capacity {
            let victim = self
                .policy
                .victim()
                // lint:allow(panic) -- used > 0 here, and every insert keeps
                // the policy and entry map in lockstep (paranoid-audited), so
                // a missing victim is unrecoverable bookkeeping corruption.
                .expect("used > 0 implies the policy tracks a victim");
            let record = self
                .evict(victim, now, EvictionReason::CapacityPressure)
                // lint:allow(panic) -- the victim came from the policy, which
                // mirrors the entry map (see PolicyDesync invariant).
                .expect("victim is tracked, so it is cached");
            evictions.push(record);
        }
        self.entries.insert(doc, CacheEntry::new(doc, size, now));
        self.policy.on_insert(doc, size);
        self.used += size;
        self.stats.insertions += 1;
        InsertOutcome::Stored(evictions)
    }

    /// Explicitly removes a document (tests, tools, invalidation).
    ///
    /// The removal is recorded with [`EvictionReason::Explicit`] and fed to
    /// the expiration-age tracker like any other departure.
    pub fn remove(&mut self, doc: DocId, now: Timestamp) -> Option<EvictionRecord> {
        let rec = self.evict(doc, now, EvictionReason::Explicit);
        if rec.is_some() {
            self.stats.explicit_removals += 1;
        }
        self.audit();
        rec
    }

    fn evict(
        &mut self,
        doc: DocId,
        now: Timestamp,
        reason: EvictionReason,
    ) -> Option<EvictionRecord> {
        let timer = crate::profile::Timer::start();
        let record = self.evict_inner(doc, now, reason);
        self.record_profile(crate::profile::ProfileOp::Evict, timer);
        record
    }

    fn evict_inner(
        &mut self,
        doc: DocId,
        now: Timestamp,
        reason: EvictionReason,
    ) -> Option<EvictionRecord> {
        let entry = self.entries.remove(&doc)?;
        self.policy.on_remove(doc);
        self.used -= entry.size;
        let record = EvictionRecord {
            entry,
            evicted_at: now,
            reason,
        };
        self.tracker.record_eviction(&record);
        if reason == EvictionReason::CapacityPressure {
            self.stats.evictions += 1;
            self.stats.bytes_evicted += entry.size;
        }
        Some(record)
    }

    /// Iterates over the cached documents in ascending [`DocId`] order.
    ///
    /// The order is deterministic (the store is a `BTreeMap`), so report
    /// generation and event emission that walk the cache never depend on
    /// hasher state.
    pub fn iter(&self) -> impl Iterator<Item = &CacheEntry> {
        self.entries.values()
    }

    /// Verifies the cache's internal bookkeeping relations.
    ///
    /// Checked relations:
    ///
    /// 1. `used` equals the sum of all stored entry sizes;
    /// 2. `used <= capacity`;
    /// 3. the replacement policy tracks exactly the cached document set
    ///    (by count), and its proposed victim is cached — with a victim
    ///    available whenever the cache is non-empty;
    /// 4. the expiration-age tracker's window respects its configured
    ///    bound and its running sums match the recorded ages (the inputs
    ///    to the paper's eq. 5).
    ///
    /// This is cheap enough for tests but linear in the cache size, so
    /// production paths only run it under the `paranoid` cargo feature
    /// (via the internal `audit` hook after every mutation).
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let actual: ByteSize = self.entries.values().map(|e| e.size).sum();
        if actual != self.used {
            return Err(InvariantViolation::ByteAccounting {
                used: self.used,
                actual,
            });
        }
        if self.used > self.capacity {
            return Err(InvariantViolation::OverCapacity {
                used: self.used,
                capacity: self.capacity,
            });
        }
        if self.policy.len() != self.entries.len() {
            return Err(InvariantViolation::PolicyDesync {
                policy_len: self.policy.len(),
                entries_len: self.entries.len(),
            });
        }
        match self.policy.victim() {
            Some(victim) if !self.entries.contains_key(&victim) => {
                return Err(InvariantViolation::VictimNotCached { victim });
            }
            None if !self.entries.is_empty() => {
                return Err(InvariantViolation::VictimUnavailable);
            }
            _ => {}
        }
        if !self.tracker.window_is_consistent() {
            return Err(InvariantViolation::TrackerWindow);
        }
        Ok(())
    }

    /// The accumulated hot-path profile.
    ///
    /// `Some` only when the crate is built with the `profile` feature;
    /// `None` otherwise, so callers can report "profiling off"
    /// explicitly instead of showing all-zero timings.
    #[must_use]
    pub fn profile(&self) -> Option<crate::profile::ProfileSnapshot> {
        #[cfg(feature = "profile")]
        {
            Some(self.profile)
        }
        #[cfg(not(feature = "profile"))]
        {
            None
        }
    }

    /// Accounts one timed hot-path call; compiles to nothing without the
    /// `profile` feature.
    #[inline]
    fn record_profile(&mut self, op: crate::profile::ProfileOp, timer: crate::profile::Timer) {
        #[cfg(feature = "profile")]
        self.profile.record(op, timer.elapsed_ns());
        #[cfg(not(feature = "profile"))]
        let _ = (op, timer);
    }

    /// Paranoid-mode hook: re-verifies every invariant after a mutation.
    ///
    /// A no-op unless the crate is built with the `paranoid` feature;
    /// with it, any bookkeeping corruption aborts immediately instead of
    /// silently skewing the EA-vs-ad-hoc comparison.
    #[inline]
    fn audit(&self) {
        #[cfg(feature = "paranoid")]
        if let Err(violation) = self.check_invariants() {
            // lint:allow(panic) -- paranoid mode exists to crash loudly on
            // corruption; release builds compile this block out.
            panic!("cache {} invariant violated: {violation}", self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn kb(n: u64) -> ByteSize {
        ByteSize::from_kb(n)
    }

    fn cache(cap_kb: u64) -> Cache {
        Cache::new(CacheId::new(0), kb(cap_kb), PolicyKind::Lru)
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut c = cache(10);
        assert!(c.insert(d(1), kb(4), t(0)).is_stored());
        assert_eq!(c.lookup(d(1), t(10)), Some(kb(4)));
        assert_eq!(c.lookup(d(2), t(10)), None);
        assert_eq!(c.used(), kb(4));
        assert_eq!(c.len(), 1);
        assert!(c.contains(d(1)));
        assert!(!c.contains(d(2)));
    }

    #[test]
    fn insert_evicts_lru_victim() {
        let mut c = cache(10);
        c.insert(d(1), kb(4), t(0));
        c.insert(d(2), kb(4), t(1));
        c.lookup(d(1), t(2)); // doc 2 is now the LRU victim
        let out = c.insert(d(3), kb(4), t(3));
        let evs = out.evictions();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].entry.doc, d(2));
        assert!(!c.contains(d(2)));
        assert!(c.contains(d(1)) && c.contains(d(3)));
        assert_eq!(c.used(), kb(8));
    }

    #[test]
    fn insert_can_evict_multiple_victims() {
        let mut c = cache(10);
        c.insert(d(1), kb(3), t(0));
        c.insert(d(2), kb(3), t(1));
        c.insert(d(3), kb(3), t(2));
        let out = c.insert(d(4), kb(8), t(3));
        assert_eq!(out.evictions().len(), 3);
        assert_eq!(c.len(), 1);
        assert!(c.contains(d(4)));
    }

    #[test]
    fn oversized_document_is_rejected() {
        let mut c = cache(4);
        c.insert(d(1), kb(2), t(0));
        let out = c.insert(d(2), kb(5), t(1));
        assert_eq!(out, InsertOutcome::TooLarge);
        assert!(c.contains(d(1)), "rejection must not flush the cache");
        assert_eq!(c.stats().rejected_too_large, 1);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut c = cache(10);
        c.insert(d(1), kb(4), t(0));
        assert_eq!(c.insert(d(1), kb(4), t(5)), InsertOutcome::AlreadyPresent);
        assert_eq!(c.used(), kb(4));
        assert_eq!(c.stats().insertions, 1);
    }

    #[test]
    fn exact_fit_does_not_evict() {
        let mut c = cache(8);
        c.insert(d(1), kb(4), t(0));
        let out = c.insert(d(2), kb(4), t(1));
        assert!(out.evictions().is_empty());
        assert_eq!(c.used(), kb(8));
    }

    #[test]
    fn serve_remote_with_promotion_refreshes() {
        let mut c = cache(8);
        c.insert(d(1), kb(4), t(0));
        c.insert(d(2), kb(4), t(1));
        // Promoting remote serve makes doc 1 the most recent...
        assert_eq!(c.serve_remote(d(1), t(2), true), Some(kb(4)));
        // ...so doc 2 is the next victim.
        let out = c.insert(d(3), kb(4), t(3));
        assert_eq!(out.evictions()[0].entry.doc, d(2));
        assert_eq!(c.entry(d(1)).unwrap().hit_count, 2);
    }

    #[test]
    fn serve_remote_without_promotion_leaves_entry_cold() {
        let mut c = cache(8);
        c.insert(d(1), kb(4), t(0));
        c.insert(d(2), kb(4), t(1));
        // Non-promoting serve: doc 1 stays the LRU victim.
        assert_eq!(c.serve_remote(d(1), t(2), false), Some(kb(4)));
        assert_eq!(c.entry(d(1)).unwrap().hit_count, 1);
        assert_eq!(c.entry(d(1)).unwrap().last_hit_at, t(0));
        let out = c.insert(d(3), kb(4), t(3));
        assert_eq!(out.evictions()[0].entry.doc, d(1));
    }

    #[test]
    fn serve_remote_missing_doc() {
        let mut c = cache(8);
        assert_eq!(c.serve_remote(d(1), t(0), true), None);
        assert_eq!(c.stats().remote_serves, 0);
    }

    #[test]
    fn eviction_feeds_expiration_tracker() {
        let mut c = cache(4);
        assert_eq!(c.expiration_age(), ExpirationAge::Infinite);
        c.insert(d(1), kb(4), t(0));
        c.lookup(d(1), t(1_000));
        c.insert(d(2), kb(4), t(3_000)); // evicts doc 1, age 2000ms
        assert_eq!(
            c.expiration_age(),
            ExpirationAge::finite(coopcache_types::DurationMs::from_secs(2))
        );
        assert_eq!(c.tracker().eviction_count(), 1);
    }

    #[test]
    fn explicit_remove_returns_record() {
        let mut c = cache(8);
        c.insert(d(1), kb(4), t(0));
        let rec = c.remove(d(1), t(500)).expect("doc was cached");
        assert_eq!(rec.reason, EvictionReason::Explicit);
        assert_eq!(rec.entry.doc, d(1));
        assert!(c.is_empty());
        assert_eq!(c.used(), ByteSize::ZERO);
        assert_eq!(c.remove(d(1), t(501)), None);
        assert_eq!(c.stats().explicit_removals, 1);
        // Capacity-pressure counter untouched by explicit removals.
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = cache(8);
        c.insert(d(1), kb(4), t(0));
        c.lookup(d(1), t(1));
        c.lookup(d(2), t(2));
        c.lookup(d(1), t(3));
        let s = c.stats();
        assert_eq!(s.local_hits, 2);
        assert_eq!(s.local_misses, 1);
        assert_eq!(s.insertions, 1);
    }

    #[test]
    fn bytes_accounting_is_exact_under_churn() {
        let mut c = cache(100);
        for i in 0..1000u64 {
            c.insert(d(i), kb(1 + i % 7), t(i));
        }
        let manual: ByteSize = c.iter().map(|e| e.size).sum();
        assert_eq!(c.used(), manual);
        assert!(c.used() <= c.capacity());
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut c = cache(10);
        c.insert(d(1), kb(2), t(0));
        c.insert(d(2), kb(2), t(1));
        let mut ids: Vec<u64> = c.iter().map(|e| e.doc.as_u64()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn ttl_expires_stale_documents_on_lookup() {
        let mut c = cache(8);
        c.set_ttl(Some(coopcache_types::DurationMs::from_secs(10)));
        assert_eq!(c.ttl(), Some(coopcache_types::DurationMs::from_secs(10)));
        c.insert(d(1), kb(4), t(0));
        // Fresh: served.
        assert!(c.lookup(d(1), t(9_000)).is_some());
        // Hits do not renew freshness (entered_at governs).
        assert!(c.lookup(d(1), t(10_001)).is_none());
        assert!(!c.contains(d(1)), "stale doc must be gone");
        assert_eq!(c.stats().expirations, 1);
        assert_eq!(c.used(), ByteSize::ZERO);
        // Expirations do not pollute the contention tracker.
        assert_eq!(c.tracker().eviction_count(), 0);
    }

    #[test]
    fn ttl_expires_on_remote_serve() {
        let mut c = cache(8);
        c.set_ttl(Some(coopcache_types::DurationMs::from_secs(1)));
        c.insert(d(1), kb(4), t(0));
        assert_eq!(c.serve_remote(d(1), t(5_000), true), None);
        assert!(!c.contains(d(1)));
        assert_eq!(c.stats().expirations, 1);
    }

    #[test]
    fn no_ttl_means_documents_never_expire() {
        let mut c = cache(8);
        c.insert(d(1), kb(4), t(0));
        assert!(c.lookup(d(1), t(u64::MAX / 2)).is_some());
        assert_eq!(c.stats().expirations, 0);
    }

    #[test]
    fn exact_ttl_boundary_is_still_fresh() {
        let mut c = cache(8);
        c.set_ttl(Some(coopcache_types::DurationMs::from_secs(10)));
        c.insert(d(1), kb(4), t(0));
        assert!(c.lookup(d(1), t(10_000)).is_some(), "age == ttl is fresh");
    }

    #[test]
    fn works_with_every_policy_kind() {
        for kind in PolicyKind::all() {
            let mut c = Cache::new(CacheId::new(1), kb(4), kind);
            assert_eq!(c.policy_kind(), kind);
            for i in 0..10u64 {
                c.insert(d(i), kb(2), t(i));
                if i % 2 == 0 {
                    c.lookup(d(i), t(i) + coopcache_types::DurationMs::from_millis(1));
                }
            }
            assert!(c.used() <= c.capacity());
            assert!(c.len() <= 2);
            assert!(c.tracker().eviction_count() >= 8);
        }
    }

    #[test]
    fn profile_matches_feature_state() {
        let mut c = cache(8);
        let now = t(5);
        c.insert(d(1), kb(4), now);
        c.lookup(d(1), now);
        c.lookup(d(2), now);
        c.serve_remote(d(1), now, true);
        c.insert(d(2), kb(8), now); // evicts d(1) under capacity pressure
        c.remove(d(2), now);
        assert_eq!(
            c.profile().is_some(),
            cfg!(feature = "profile"),
            "profile() must be Some exactly under the profile feature"
        );
        if let Some(profile) = c.profile() {
            assert_eq!(profile.lookup.calls, 2);
            assert_eq!(profile.serve_remote.calls, 1);
            assert_eq!(profile.insert.calls, 2);
            assert_eq!(
                profile.evict.calls, 2,
                "capacity eviction + explicit remove"
            );
        }
    }
}
