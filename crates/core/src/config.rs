//! Builder-style cache construction.
//!
//! [`CacheConfig`] replaces the positional-argument constructors that used
//! to be threaded through the simulator, the proxy layer and the daemons:
//! the required identity (id, capacity, policy) is given up front and the
//! optional knobs — shard count, expiration window, freshness TTL, shard
//! seed — are chained. The same config builds either a single-threaded
//! [`Cache`] or a lock-per-shard [`ConcurrentCache`].

use crate::cache::Cache;
use crate::concurrent::ConcurrentCache;
use crate::expiration::ExpirationWindow;
use crate::index::mix64;
use crate::policy::PolicyKind;
use crate::store::Shard;
use coopcache_types::{ByteSize, CacheId, DurationMs};

/// Default shard-assignment seed. Any fixed value works — determinism
/// only requires that the same seed is used across a comparison run.
pub const DEFAULT_SHARD_SEED: u64 = 0x5348_4152_4453_4545; // "SHARDSEE[D]"

/// Everything needed to build a cache.
///
/// # Example
///
/// ```
/// use coopcache_core::{CacheConfig, PolicyKind};
/// use coopcache_types::{ByteSize, CacheId};
///
/// let cache = CacheConfig::new(CacheId::new(0), ByteSize::from_mb(1), PolicyKind::S3Fifo)
///     .shards(4)
///     .build();
/// assert_eq!(cache.shard_count(), 4);
/// assert_eq!(cache.policy_kind(), PolicyKind::S3Fifo);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    id: CacheId,
    capacity: ByteSize,
    policy: PolicyKind,
    shards: usize,
    window: ExpirationWindow,
    ttl: Option<DurationMs>,
    seed: u64,
}

impl CacheConfig {
    /// Starts a config with the required identity; one shard, the default
    /// expiration window, no TTL.
    #[must_use]
    pub fn new(id: CacheId, capacity: ByteSize, policy: PolicyKind) -> Self {
        Self {
            id,
            capacity,
            policy,
            shards: 1,
            window: ExpirationWindow::default(),
            ttl: None,
            seed: DEFAULT_SHARD_SEED,
        }
    }

    /// Splits the store over `n` independently indexed shards.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two (the shard mask must cover the
    /// hash range evenly, or placement would be biased).
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "shard count must be a power of two, got {n}"
        );
        self.shards = n;
        self
    }

    /// Sets the expiration-age window (paper eq. 5's "finite duration").
    #[must_use]
    pub fn window(mut self, window: ExpirationWindow) -> Self {
        self.window = window;
        self
    }

    /// Sets a freshness TTL (see [`Cache::set_ttl`]).
    #[must_use]
    pub fn ttl(mut self, ttl: Option<DurationMs>) -> Self {
        self.ttl = ttl;
        self
    }

    /// Overrides the shard-assignment seed (decorrelates placements
    /// between runs while keeping each run reproducible).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The configured shard count.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    fn build_shards(&self) -> Vec<Shard> {
        let per_shard = self.capacity.split_evenly(self.shards as u64);
        (0..self.shards)
            .map(|i| {
                // Each shard's table gets its own derived seed so probe
                // sequences decorrelate between shards.
                let table_seed = mix64(self.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                let mut shard =
                    Shard::new(self.id, i, per_shard, self.policy, self.window, table_seed);
                shard.set_ttl(self.ttl);
                shard
            })
            .collect()
    }

    /// Builds a single-threaded [`Cache`].
    #[must_use]
    pub fn build(self) -> Cache {
        Cache::from_parts(
            self.id,
            self.capacity,
            self.seed,
            self.build_shards(),
            self.ttl,
        )
    }

    /// Builds a [`ConcurrentCache`] with one lock per shard.
    #[must_use]
    pub fn build_concurrent(self) -> ConcurrentCache {
        ConcurrentCache::from_parts(
            self.id,
            self.capacity,
            self.seed,
            self.build_shards(),
            self.ttl,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_a_single_shard_cache() {
        let c = CacheConfig::new(CacheId::new(3), ByteSize::from_kb(8), PolicyKind::Gdsf).build();
        assert_eq!(c.shard_count(), 1);
        assert_eq!(c.id(), CacheId::new(3));
        assert_eq!(c.capacity(), ByteSize::from_kb(8));
        assert_eq!(c.policy_kind(), PolicyKind::Gdsf);
        assert_eq!(c.ttl(), None);
    }

    #[test]
    fn ttl_and_window_carry_into_the_cache() {
        let c = CacheConfig::new(CacheId::new(0), ByteSize::from_kb(8), PolicyKind::Lru)
            .window(ExpirationWindow::LastEvictions(5))
            .ttl(Some(DurationMs::from_secs(60)))
            .build();
        assert_eq!(c.ttl(), Some(DurationMs::from_secs(60)));
    }

    #[test]
    fn capacity_splits_evenly_over_shards() {
        let c = CacheConfig::new(CacheId::new(0), ByteSize::from_mb(1), PolicyKind::Lru)
            .shards(4)
            .build();
        assert_eq!(c.capacity(), ByteSize::from_mb(1));
        assert_eq!(c.shard_count(), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_rejected() {
        let _ = CacheConfig::new(CacheId::new(0), ByteSize::from_kb(8), PolicyKind::Lru).shards(6);
    }
}
