//! Opt-in hot-path profiling for the cache's mutating operations.
//!
//! The `profile` cargo feature compiles per-operation wall-time
//! accounting into [`Cache::lookup`](crate::Cache::lookup),
//! `serve_remote`, `insert` and the internal eviction path, surfaced
//! through [`Cache::profile`](crate::Cache::profile) and the daemons'
//! `OP_STATS` body. With the feature off (the default) [`Timer`] is a
//! zero-sized value and every recording call compiles away, so the
//! deterministic simulators and the benchmarks pay nothing — the same
//! contract as the `paranoid` invariant audits.
//!
//! Readings never feed events, placement decisions, or any
//! deterministic output; they exist to give rewrites of the cache hot
//! paths a before/after baseline.

/// The profiled operation classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileOp {
    /// [`Cache::lookup`](crate::Cache::lookup) — local client serve.
    Lookup,
    /// [`Cache::serve_remote`](crate::Cache::serve_remote) — responder
    /// side of a peer fetch.
    ServeRemote,
    /// [`Cache::insert`](crate::Cache::insert) — store including any
    /// capacity evictions it triggers.
    Insert,
    /// The internal eviction of one victim (also counted inside its
    /// triggering `insert`/`remove`).
    Evict,
}

impl ProfileOp {
    /// All ops, in the order reports list them.
    pub const ALL: [ProfileOp; 4] = [
        ProfileOp::Lookup,
        ProfileOp::ServeRemote,
        ProfileOp::Insert,
        ProfileOp::Evict,
    ];

    /// Stable lowercase name used in the JSON encoding.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Lookup => "lookup",
            Self::ServeRemote => "serve_remote",
            Self::Insert => "insert",
            Self::Evict => "evict",
        }
    }
}

/// Accumulated cost of one operation class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpProfile {
    /// Number of calls.
    pub calls: u64,
    /// Total wall time across calls, in nanoseconds.
    pub total_ns: u64,
}

impl OpProfile {
    /// Mean nanoseconds per call, 0 before the first call.
    #[must_use]
    pub const fn mean_ns(&self) -> u64 {
        match self.total_ns.checked_div(self.calls) {
            Some(mean) => mean,
            None => 0,
        }
    }
}

/// Per-operation profile of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileSnapshot {
    /// Local lookups.
    pub lookup: OpProfile,
    /// Responder-side serves.
    pub serve_remote: OpProfile,
    /// Stores (inclusive of triggered evictions).
    pub insert: OpProfile,
    /// Individual evictions.
    pub evict: OpProfile,
    /// Backing-vector growth events across the cache's arenas, tables,
    /// heaps and ghost queues at snapshot time. Zero once the store
    /// reaches steady state — the `bench-core --smoke` check asserts the
    /// hot path stopped allocating by watching this stay flat.
    pub growth_events: u64,
}

impl ProfileSnapshot {
    /// The accumulator for `op`.
    #[must_use]
    pub const fn op(&self, op: ProfileOp) -> OpProfile {
        match op {
            ProfileOp::Lookup => self.lookup,
            ProfileOp::ServeRemote => self.serve_remote,
            ProfileOp::Insert => self.insert,
            ProfileOp::Evict => self.evict,
        }
    }

    /// Folds another snapshot into this one (per-shard → cache-wide).
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in [
            (&mut self.lookup, &other.lookup),
            (&mut self.serve_remote, &other.serve_remote),
            (&mut self.insert, &other.insert),
            (&mut self.evict, &other.evict),
        ] {
            mine.calls = mine.calls.saturating_add(theirs.calls);
            mine.total_ns = mine.total_ns.saturating_add(theirs.total_ns);
        }
        self.growth_events = self.growth_events.saturating_add(other.growth_events);
    }

    /// Folds one timed call into the accumulator for `op`.
    pub fn record(&mut self, op: ProfileOp, elapsed_ns: u64) {
        let slot = match op {
            ProfileOp::Lookup => &mut self.lookup,
            ProfileOp::ServeRemote => &mut self.serve_remote,
            ProfileOp::Insert => &mut self.insert,
            ProfileOp::Evict => &mut self.evict,
        };
        slot.calls = slot.calls.saturating_add(1);
        slot.total_ns = slot.total_ns.saturating_add(elapsed_ns);
    }
}

/// A start-of-operation marker: a real monotonic reading under the
/// `profile` feature, a zero-sized no-op otherwise.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    #[cfg(feature = "profile")]
    start: std::time::Instant,
}

impl Timer {
    /// Marks the start of an operation.
    #[inline]
    #[must_use]
    pub fn start() -> Self {
        Self {
            #[cfg(feature = "profile")]
            // lint:allow(wall-clock) -- opt-in profiling accumulator only:
            // readings never reach events, placement decisions, or any
            // deterministic output, and the feature is off by default.
            start: std::time::Instant::now(),
        }
    }

    /// Nanoseconds since [`Self::start`]; always 0 with the feature off.
    #[inline]
    #[must_use]
    pub fn elapsed_ns(self) -> u64 {
        #[cfg(feature = "profile")]
        {
            u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }
        #[cfg(not(feature = "profile"))]
        {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_names_and_order() {
        let names: Vec<&str> = ProfileOp::ALL.iter().map(|op| op.name()).collect();
        assert_eq!(names, ["lookup", "serve_remote", "insert", "evict"]);
    }

    #[test]
    fn snapshot_accumulates_per_op() {
        let mut snap = ProfileSnapshot::default();
        snap.record(ProfileOp::Lookup, 100);
        snap.record(ProfileOp::Lookup, 300);
        snap.record(ProfileOp::Evict, 40);
        assert_eq!(snap.op(ProfileOp::Lookup).calls, 2);
        assert_eq!(snap.op(ProfileOp::Lookup).total_ns, 400);
        assert_eq!(snap.op(ProfileOp::Lookup).mean_ns(), 200);
        assert_eq!(snap.op(ProfileOp::Evict).calls, 1);
        assert_eq!(snap.op(ProfileOp::Insert), OpProfile::default());
        assert_eq!(OpProfile::default().mean_ns(), 0);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut snap = ProfileSnapshot::default();
        snap.record(ProfileOp::Insert, u64::MAX);
        snap.record(ProfileOp::Insert, u64::MAX);
        assert_eq!(snap.op(ProfileOp::Insert).total_ns, u64::MAX);
        assert_eq!(snap.op(ProfileOp::Insert).calls, 2);
    }

    #[test]
    fn timer_is_monotone() {
        let timer = Timer::start();
        let a = timer.elapsed_ns();
        let b = timer.elapsed_ns();
        assert!(b >= a);
        #[cfg(not(feature = "profile"))]
        assert_eq!(b, 0, "disabled timer must read zero");
    }
}
