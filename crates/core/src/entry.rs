//! Per-document cache metadata.

use coopcache_types::{ByteSize, DocId, DurationMs, Timestamp};

/// Metadata a proxy keeps for every cached document.
///
/// Exactly the bookkeeping the paper observes that real proxies already
/// maintain: LRU proxies keep the last-hit timestamp, LFU proxies keep a
/// hit counter initialised to 1 on entry — which is why the EA scheme costs
/// nothing extra to support (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEntry {
    /// The document.
    pub doc: DocId,
    /// Its size in bytes.
    pub size: ByteSize,
    /// When the document entered this cache.
    pub entered_at: Timestamp,
    /// When the document was last hit here (entry counts as the first hit).
    pub last_hit_at: Timestamp,
    /// Number of hits, initialised to 1 on entry (paper §3.2.2).
    pub hit_count: u64,
}

impl CacheEntry {
    /// Creates the entry written when a document is first stored.
    #[must_use]
    pub const fn new(doc: DocId, size: ByteSize, now: Timestamp) -> Self {
        Self {
            doc,
            size,
            entered_at: now,
            last_hit_at: now,
            hit_count: 1,
        }
    }

    /// Records a hit: refreshes the last-hit time and bumps the counter.
    pub fn record_hit(&mut self, now: Timestamp) {
        self.last_hit_at = now;
        self.hit_count += 1;
    }

    /// LRU document expiration age at eviction time (paper eq. 2):
    /// `T_evict − T_last_hit`.
    #[must_use]
    pub fn lru_expiration_age(&self, evicted_at: Timestamp) -> DurationMs {
        evicted_at.saturating_since(self.last_hit_at)
    }

    /// LFU document expiration age at eviction time (paper §3.2.2):
    /// `(T_evict − T_enter) / HIT_COUNTER`.
    #[must_use]
    pub fn lfu_expiration_age(&self, evicted_at: Timestamp) -> DurationMs {
        let lifetime = evicted_at.saturating_since(self.entered_at);
        lifetime / self.hit_count.max(1)
    }
}

/// Why a document left the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictionReason {
    /// Removed by the replacement policy to make room.
    CapacityPressure,
    /// Explicitly removed (e.g. invalidation in tests and tools).
    Explicit,
    /// Removed because it outlived the cache's freshness TTL.
    Expired,
}

/// The record produced when a document is evicted; feeds the
/// expiration-age tracker and the simulator's logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionRecord {
    /// The entry as it stood at eviction.
    pub entry: CacheEntry,
    /// When the eviction happened.
    pub evicted_at: Timestamp,
    /// Why it happened.
    pub reason: EvictionReason,
}

impl EvictionRecord {
    /// Lifetime of the document in the cache (`T_evict − T_enter`).
    #[must_use]
    pub fn lifetime(&self) -> DurationMs {
        self.evicted_at.saturating_since(self.entry.entered_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_at(ms: u64) -> CacheEntry {
        CacheEntry::new(
            DocId::new(1),
            ByteSize::from_kb(4),
            Timestamp::from_millis(ms),
        )
    }

    #[test]
    fn new_entry_counts_as_first_hit() {
        let e = entry_at(100);
        assert_eq!(e.hit_count, 1);
        assert_eq!(e.last_hit_at, Timestamp::from_millis(100));
        assert_eq!(e.entered_at, Timestamp::from_millis(100));
    }

    #[test]
    fn record_hit_updates_both_fields() {
        let mut e = entry_at(100);
        e.record_hit(Timestamp::from_millis(250));
        assert_eq!(e.hit_count, 2);
        assert_eq!(e.last_hit_at, Timestamp::from_millis(250));
        assert_eq!(e.entered_at, Timestamp::from_millis(100));
    }

    #[test]
    fn lru_expiration_age_is_time_since_last_hit() {
        let mut e = entry_at(0);
        e.record_hit(Timestamp::from_millis(400));
        let age = e.lru_expiration_age(Timestamp::from_millis(1000));
        assert_eq!(age, DurationMs::from_millis(600));
    }

    #[test]
    fn lfu_expiration_age_divides_lifetime_by_hits() {
        let mut e = entry_at(0);
        e.record_hit(Timestamp::from_millis(100));
        e.record_hit(Timestamp::from_millis(200));
        e.record_hit(Timestamp::from_millis(300));
        // 4 hits over a 1000 ms lifetime => 250 ms per hit.
        let age = e.lfu_expiration_age(Timestamp::from_millis(1000));
        assert_eq!(age, DurationMs::from_millis(250));
    }

    #[test]
    fn expiration_ages_saturate_on_clock_skew() {
        let e = entry_at(1000);
        assert_eq!(
            e.lru_expiration_age(Timestamp::from_millis(500)),
            DurationMs::ZERO
        );
        assert_eq!(
            e.lfu_expiration_age(Timestamp::from_millis(500)),
            DurationMs::ZERO
        );
    }

    #[test]
    fn eviction_record_lifetime() {
        let e = entry_at(100);
        let rec = EvictionRecord {
            entry: e,
            evicted_at: Timestamp::from_millis(1100),
            reason: EvictionReason::CapacityPressure,
        };
        assert_eq!(rec.lifetime(), DurationMs::from_secs(1));
    }
}
