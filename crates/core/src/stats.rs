//! Per-cache operation counters.

use coopcache_types::ByteSize;

/// Counters maintained by a single [`crate::Cache`].
///
/// These are the cache's own view of its workload; the group-level metrics
/// of the paper (cumulative hit rate, byte hit rate, latency) are assembled
/// from the protocol layer in `coopcache-metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Local lookups served from this cache (local hits).
    pub local_hits: u64,
    /// Local lookups that missed.
    pub local_misses: u64,
    /// Documents served to sibling caches (remote serves).
    pub remote_serves: u64,
    /// Documents stored.
    pub insertions: u64,
    /// Documents evicted under capacity pressure.
    pub evictions: u64,
    /// Documents explicitly removed.
    pub explicit_removals: u64,
    /// Store attempts rejected because the document exceeds capacity.
    pub rejected_too_large: u64,
    /// Documents discarded because they outlived the freshness TTL.
    pub expirations: u64,
    /// Total bytes evicted under capacity pressure.
    pub bytes_evicted: ByteSize,
}

impl CacheStats {
    /// Folds another counter set into this one (used to aggregate
    /// per-shard counters into one cache-wide view).
    pub fn merge(&mut self, other: &Self) {
        self.local_hits += other.local_hits;
        self.local_misses += other.local_misses;
        self.remote_serves += other.remote_serves;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.explicit_removals += other.explicit_removals;
        self.rejected_too_large += other.rejected_too_large;
        self.expirations += other.expirations;
        self.bytes_evicted += other.bytes_evicted;
    }

    /// Local lookups observed (hits + misses).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.local_hits + self.local_misses
    }

    /// Fraction of local lookups that hit, or `None` before any lookup.
    #[must_use]
    pub fn local_hit_ratio(&self) -> Option<f64> {
        let total = self.lookups();
        if total == 0 {
            None
        } else {
            Some(self.local_hits as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let mut s = CacheStats::default();
        assert_eq!(s.local_hit_ratio(), None);
        s.local_hits = 3;
        s.local_misses = 1;
        assert_eq!(s.lookups(), 4);
        assert!((s.local_hit_ratio().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn default_is_zeroed() {
        let s = CacheStats::default();
        assert_eq!(s.insertions, 0);
        assert_eq!(s.bytes_evicted, ByteSize::ZERO);
    }
}
