//! ABL-L — ablation: how the EA scheme's latency benefit depends on the
//! ratio of inter-proxy communication time to server fetch time — the
//! open question the paper poses in §1.
//!
//! Hit rates are scheme properties; only the eq. 6 weights change, so one
//! simulation per scheme is re-scored under every RHL/ML ratio.

use coopcache_bench::{emit, trace_from_args};
use coopcache_core::PlacementScheme;
use coopcache_metrics::{LatencyModel, Table};
use coopcache_sim::{run, SimConfig};
use coopcache_types::ByteSize;

fn main() {
    let (trace, scale) = trace_from_args();
    let aggregate = ByteSize::from_mb(10);
    let cfg = SimConfig::new(aggregate).with_group_size(4);
    let adhoc = run(&cfg.clone().with_scheme(PlacementScheme::AdHoc), &trace);
    let ea = run(&cfg.with_scheme(PlacementScheme::Ea), &trace);

    let mut table = Table::new(vec![
        "RHL/ML ratio",
        "RHL (ms)",
        "ad-hoc latency ms",
        "EA latency ms",
        "EA saves ms",
    ]);
    for ratio in [0.05, 0.123, 0.25, 0.5, 0.75, 1.0] {
        let model = LatencyModel::with_remote_to_miss_ratio(ratio);
        let (a, e) = (
            model.average_latency_ms(&adhoc.metrics),
            model.average_latency_ms(&ea.metrics),
        );
        table.row(vec![
            format!("{ratio:.3}"),
            model.remote_hit.as_millis().to_string(),
            format!("{a:.0}"),
            format!("{e:.0}"),
            format!("{:+.0}", a - e),
        ]);
    }
    emit(
        "ablation_latency_ratio",
        "EA latency benefit vs remote-hit/miss cost ratio at 10MB aggregate (ABL-L; 0.123 is the paper's measured ratio)",
        scale,
        &table,
    );
}
