//! DES — extension: measured (not eq.-6-estimated) latencies from the
//! discrete-event simulator, where requests genuinely overlap in time and
//! a document can vanish between the ICP reply and the HTTP fetch.

use coopcache_bench::{emit, trace_from_args};
use coopcache_core::PlacementScheme;
use coopcache_metrics::{pct, Table};
use coopcache_sim::{run_des, NetworkModel, SimConfig};
use coopcache_types::ByteSize;

fn main() {
    let (trace, scale) = trace_from_args();
    let network = NetworkModel::paper_calibrated();
    let sizes = [
        ByteSize::from_kb(100),
        ByteSize::from_mb(1),
        ByteSize::from_mb(10),
        ByteSize::from_mb(100),
    ];
    let mut table = Table::new(vec![
        "aggregate",
        "scheme",
        "hit %",
        "mean lat ms",
        "p50 ms",
        "p95 ms",
        "icp fallbacks",
    ]);
    for &aggregate in &sizes {
        for scheme in [PlacementScheme::AdHoc, PlacementScheme::Ea] {
            let cfg = SimConfig::new(aggregate)
                .with_group_size(4)
                .with_scheme(scheme);
            let report = run_des(&cfg, &network, &trace);
            table.row(vec![
                aggregate.to_string(),
                scheme.to_string(),
                pct(report.metrics.hit_rate()),
                format!("{:.0}", report.mean_latency_ms),
                report.p50_latency_ms.to_string(),
                report.p95_latency_ms.to_string(),
                report.icp_fallbacks.to_string(),
            ]);
        }
    }
    emit(
        "des_latency",
        "Measured latencies from the discrete-event simulator (extension)",
        scale,
        &table,
    );
}
