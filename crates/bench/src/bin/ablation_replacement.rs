//! ABL-R — ablation: the paper claims the EA scheme is independent of the
//! replacement policy (§3.2 defines expiration ages for both LRU and LFU
//! bookkeeping). This bench runs the full pipeline under LRU, LFU, FIFO
//! and GDSF with the matching expiration-age flavor.

use coopcache_bench::{emit, trace_from_args};
use coopcache_core::{PlacementScheme, PolicyKind};
use coopcache_metrics::{pct, Table};
use coopcache_sim::{run, SimConfig};
use coopcache_types::ByteSize;

fn main() {
    let (trace, scale) = trace_from_args();
    let mut table = Table::new(vec![
        "policy",
        "aggregate",
        "ad-hoc hit %",
        "EA hit %",
        "gain (pp)",
    ]);
    for policy in PolicyKind::all() {
        for aggregate in [ByteSize::from_mb(1), ByteSize::from_mb(10)] {
            let cfg = SimConfig::new(aggregate)
                .with_group_size(4)
                .with_policy(policy);
            let adhoc = run(&cfg.clone().with_scheme(PlacementScheme::AdHoc), &trace);
            let ea = run(&cfg.clone().with_scheme(PlacementScheme::Ea), &trace);
            table.row(vec![
                policy.to_string(),
                aggregate.to_string(),
                pct(adhoc.metrics.hit_rate()),
                pct(ea.metrics.hit_rate()),
                format!(
                    "{:+.2}",
                    (ea.metrics.hit_rate() - adhoc.metrics.hit_rate()) * 100.0
                ),
            ]);
        }
    }
    emit(
        "ablation_replacement",
        "EA vs ad-hoc under different replacement policies (ABL-R)",
        scale,
        &table,
    );
}
