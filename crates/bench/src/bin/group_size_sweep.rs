//! GRP — §4.2 prose: the paper simulates groups of 2, 4 and 8 caches and
//! reports that the EA gains grow with group size (≈6.5 pp hit-rate gain
//! at 100 KB and ≈2.5 pp at 100 MB for 8 caches; byte-hit gains ≈4 pp and
//! ≈1.5 pp).

//! Pass `--fast` for the medium trace and `--json` for a
//! `results/group_size_sweep.json` copy of the table.

use coopcache_bench::{emit, trace_from_args};
use coopcache_metrics::{pct, Table};
use coopcache_sim::{capacity_sweep, SimConfig, PAPER_CACHE_SIZES, PAPER_GROUP_SIZES};
use coopcache_types::ByteSize;

fn main() {
    let (trace, scale) = trace_from_args();
    let mut table = Table::new(vec![
        "caches",
        "aggregate",
        "ad-hoc hit %",
        "EA hit %",
        "hit gain (pp)",
        "byte gain (pp)",
    ]);
    for &n in &PAPER_GROUP_SIZES {
        let cfg = SimConfig::new(ByteSize::ZERO).with_group_size(n);
        for p in capacity_sweep(&cfg, &PAPER_CACHE_SIZES, &trace) {
            table.row(vec![
                n.to_string(),
                p.aggregate.to_string(),
                pct(p.adhoc.metrics.hit_rate()),
                pct(p.ea.metrics.hit_rate()),
                format!("{:+.2}", p.hit_rate_gain() * 100.0),
                format!("{:+.2}", p.byte_hit_rate_gain() * 100.0),
            ]);
        }
    }
    emit(
        "group_size_sweep",
        "EA gains across group sizes 2/4/8 (paper §4.2 prose)",
        scale,
        &table,
    );
}
