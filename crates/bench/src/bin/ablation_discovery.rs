//! ABL-D — ablation: discovery mechanisms. ICP (the paper's setup) pays
//! 2·(N−1) messages per local miss; Summary-Cache digests (related work
//! \[6\]) pay periodic broadcasts instead and go stale in between; isolated
//! caches pay nothing and get nothing. The EA scheme itself adds zero
//! messages to any of them (§3.5).

use coopcache_bench::{emit, trace_from_args};
use coopcache_core::PlacementScheme;
use coopcache_metrics::{pct, Table};
use coopcache_proxy::Discovery;
use coopcache_sim::{run, SimConfig};
use coopcache_types::{ByteSize, DurationMs};

fn main() {
    let (trace, scale) = trace_from_args();
    let aggregate = ByteSize::from_mb(10);
    let discoveries = [
        ("icp", Discovery::Icp),
        (
            "digest/1min",
            Discovery::Digest {
                refresh_every: DurationMs::from_secs(60),
                fp_rate: 0.01,
            },
        ),
        (
            "digest/1h",
            Discovery::Digest {
                refresh_every: DurationMs::from_secs(3_600),
                fp_rate: 0.01,
            },
        ),
        (
            "digest/1day",
            Discovery::Digest {
                refresh_every: DurationMs::from_days(1),
                fp_rate: 0.01,
            },
        ),
        ("isolated", Discovery::Isolated),
    ];

    let mut table = Table::new(vec![
        "discovery",
        "scheme",
        "hit %",
        "remote %",
        "msgs/request",
        "misdirects",
    ]);
    for (name, discovery) in discoveries {
        for scheme in [PlacementScheme::AdHoc, PlacementScheme::Ea] {
            let cfg = SimConfig::new(aggregate)
                .with_group_size(4)
                .with_scheme(scheme)
                .with_discovery(discovery);
            let r = run(&cfg, &trace);
            table.row(vec![
                name.into(),
                scheme.to_string(),
                pct(r.metrics.hit_rate()),
                pct(r.metrics.remote_hit_rate()),
                format!("{:.2}", r.protocol.messages_per_request(r.metrics.requests)),
                r.protocol.digest_misdirections.to_string(),
            ]);
        }
    }
    emit(
        "ablation_discovery",
        "Discovery mechanisms at 10MB aggregate: ICP vs digests vs isolated (ABL-D)",
        scale,
        &table,
    );
}
