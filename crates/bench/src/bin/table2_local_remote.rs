//! TAB2 — Table 2: local hit %, remote hit % and estimated latency for
//! both schemes, 4-cache group, at every aggregate size.
//!
//! The headline row is 1 GB: the paper measured the EA remote-hit rate at
//! 32.02% against ad-hoc's 11.06% with a miss-rate difference of only
//! 0.6% — the signature of EA's tie rule keeping popular documents as
//! single group-wide copies.

use coopcache_bench::{emit, trace_from_args};
use coopcache_metrics::{pct, Table};
use coopcache_sim::{capacity_sweep, SimConfig, PAPER_CACHE_SIZES};
use coopcache_types::ByteSize;

fn main() {
    let (trace, scale) = trace_from_args();
    let cfg = SimConfig::new(ByteSize::ZERO).with_group_size(4);
    let points = capacity_sweep(&cfg, &PAPER_CACHE_SIZES, &trace);

    let mut table = Table::new(vec![
        "aggregate",
        "adhoc local %",
        "adhoc remote %",
        "adhoc lat ms",
        "EA local %",
        "EA remote %",
        "EA lat ms",
    ]);
    for p in &points {
        table.row(vec![
            p.aggregate.to_string(),
            pct(p.adhoc.metrics.local_hit_rate()),
            pct(p.adhoc.metrics.remote_hit_rate()),
            format!("{:.0}", p.adhoc.estimated_latency_ms),
            pct(p.ea.metrics.local_hit_rate()),
            pct(p.ea.metrics.remote_hit_rate()),
            format!("{:.0}", p.ea.estimated_latency_ms),
        ]);
    }
    emit(
        "table2_local_remote",
        "Local/remote hit split and latency for the 4-cache group (paper Table 2)",
        scale,
        &table,
    );
}
