//! ABL-T — ablation: the paper states the EA requester rule with strict
//! ">" in §3.4 but "≥" in §3.5. This bench compares the two readings.
//! The strict form (our default) is the one whose large-cache behaviour
//! matches the paper's Table 2 (EA remote-hit rate ≫ ad-hoc at 1 GB).

use coopcache_bench::{emit, trace_from_args};
use coopcache_core::PlacementScheme;
use coopcache_metrics::{pct, Table};
use coopcache_sim::{run, SimConfig, PAPER_CACHE_SIZES};

fn main() {
    let (trace, scale) = trace_from_args();
    let mut table = Table::new(vec![
        "aggregate",
        "scheme",
        "hit %",
        "remote %",
        "latency ms",
        "exp-age (s)",
    ]);
    for &aggregate in &PAPER_CACHE_SIZES {
        for scheme in [
            PlacementScheme::AdHoc,
            PlacementScheme::Ea,
            PlacementScheme::EaTieStore,
        ] {
            let cfg = SimConfig::new(aggregate)
                .with_group_size(4)
                .with_scheme(scheme);
            let report = run(&cfg, &trace);
            table.row(vec![
                aggregate.to_string(),
                scheme.to_string(),
                pct(report.metrics.hit_rate()),
                pct(report.metrics.remote_hit_rate()),
                format!("{:.0}", report.estimated_latency_ms),
                report
                    .avg_expiration_age_ms
                    .map_or("-".into(), |ms| format!("{:.2}", ms / 1_000.0)),
            ]);
        }
    }
    emit(
        "ablation_tiebreak",
        "Strict vs tie-store EA requester rule (ABL-T)",
        scale,
        &table,
    );
}
