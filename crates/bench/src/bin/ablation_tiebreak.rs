//! ABL-T — ablation: the paper states the EA requester rule with strict
//! ">" in §3.4 but "≥" in §3.5. This bench compares the two readings.
//! The strict form (our default) is the one whose large-cache behaviour
//! matches the paper's Table 2 (EA remote-hit rate ≫ ad-hoc at 1 GB).
//! The "ties" column counts placement decisions where both expiration
//! ages were equal — exactly the decisions the two readings resolve
//! differently (event-counted via `HistogramSink::placement_ties`).
//! Supports `--fast` and `--json` like every bench binary.

use coopcache_bench::{emit, trace_from_args};
use coopcache_core::PlacementScheme;
use coopcache_metrics::{pct, HistogramSink, SinkHandle, Table};
use coopcache_sim::{run_with_sink, SimConfig, PAPER_CACHE_SIZES};
use std::sync::{Arc, Mutex, PoisonError};

fn main() {
    let (trace, scale) = trace_from_args();
    let mut table = Table::new(vec![
        "aggregate",
        "scheme",
        "hit %",
        "remote %",
        "latency ms",
        "exp-age (s)",
        "ties",
    ]);
    for &aggregate in &PAPER_CACHE_SIZES {
        for scheme in [
            PlacementScheme::AdHoc,
            PlacementScheme::Ea,
            PlacementScheme::EaTieStore,
        ] {
            let cfg = SimConfig::new(aggregate)
                .with_group_size(4)
                .with_scheme(scheme);
            let sink = Arc::new(Mutex::new(HistogramSink::new()));
            let report = run_with_sink(&cfg, &trace, Some(SinkHandle::from_arc(Arc::clone(&sink))));
            let sink = Arc::try_unwrap(sink)
                .expect("runner drops its sink handles")
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner);
            table.row(vec![
                aggregate.to_string(),
                scheme.to_string(),
                pct(report.metrics.hit_rate()),
                pct(report.metrics.remote_hit_rate()),
                format!("{:.0}", report.estimated_latency_ms),
                report
                    .avg_expiration_age_ms
                    .map_or("-".into(), |ms| format!("{:.2}", ms / 1_000.0)),
                sink.placement_ties().to_string(),
            ]);
        }
    }
    emit(
        "ablation_tiebreak",
        "Strict vs tie-store EA requester rule (ABL-T)",
        scale,
        &table,
    );
}
