//! FIG1 — Figure 1: cumulative document hit rates, ad-hoc vs EA, for a
//! 4-cache distributed group at 100 KB – 1 GB aggregate capacity.
//! Pass `--fast` for the medium trace and `--json` for a
//! `results/fig1_hit_rates.json` copy of the table.

use coopcache_bench::{emit, trace_from_args};
use coopcache_metrics::{pct, Table};
use coopcache_sim::{capacity_sweep, SimConfig, PAPER_CACHE_SIZES};
use coopcache_types::ByteSize;

fn main() {
    let (trace, scale) = trace_from_args();
    let cfg = SimConfig::new(ByteSize::ZERO).with_group_size(4);
    let points = capacity_sweep(&cfg, &PAPER_CACHE_SIZES, &trace);

    let mut table = Table::new(vec!["aggregate", "ad-hoc hit %", "EA hit %", "gain (pp)"]);
    for p in &points {
        table.row(vec![
            p.aggregate.to_string(),
            pct(p.adhoc.metrics.hit_rate()),
            pct(p.ea.metrics.hit_rate()),
            format!("{:+.2}", p.hit_rate_gain() * 100.0),
        ]);
    }
    emit(
        "fig1_hit_rates",
        "Document hit rates for the 4-cache group (paper Figure 1)",
        scale,
        &table,
    );
}
