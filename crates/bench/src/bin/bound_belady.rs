//! BOUND — extension: the Belady-MIN offline upper bound. MIN over one
//! shared cache of the group's aggregate capacity bounds every
//! placement/replacement combination of the same total size; the table
//! shows how much of the ad-hoc→MIN headroom the EA scheme recovers.

use coopcache_analysis::belady_min;
use coopcache_bench::{emit, trace_from_args};
use coopcache_core::PlacementScheme;
use coopcache_metrics::{pct, Table};
use coopcache_sim::{run, SimConfig, PAPER_CACHE_SIZES};

fn main() {
    let (trace, scale) = trace_from_args();
    let sized: Vec<_> = trace.iter().map(|r| (r.doc, r.size)).collect();

    let mut table = Table::new(vec![
        "aggregate",
        "ad-hoc hit %",
        "EA hit %",
        "MIN bound %",
        "headroom closed %",
    ]);
    for &aggregate in &PAPER_CACHE_SIZES {
        let cfg = SimConfig::new(aggregate).with_group_size(4);
        let adhoc = run(&cfg.clone().with_scheme(PlacementScheme::AdHoc), &trace);
        let ea = run(&cfg.with_scheme(PlacementScheme::Ea), &trace);
        let bound = belady_min(&sized, aggregate);
        let headroom = bound.hit_rate() - adhoc.metrics.hit_rate();
        let closed = if headroom > 1e-9 {
            (ea.metrics.hit_rate() - adhoc.metrics.hit_rate()) / headroom * 100.0
        } else {
            0.0
        };
        table.row(vec![
            aggregate.to_string(),
            pct(adhoc.metrics.hit_rate()),
            pct(ea.metrics.hit_rate()),
            pct(bound.hit_rate()),
            format!("{closed:.1}"),
        ]);
    }
    emit(
        "bound_belady",
        "Group hit rates against the shared Belady-MIN offline bound (BOUND extension)",
        scale,
        &table,
    );
}
