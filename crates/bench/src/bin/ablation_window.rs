//! ABL-W — ablation: sensitivity of the EA scheme to the expiration-age
//! window (the paper leaves the "finite time period" of eq. 5 open).
//!
//! Sweeps eviction-count windows and one time-based window at two
//! aggregate sizes.

use coopcache_bench::{emit, trace_from_args};
use coopcache_core::{ExpirationWindow, PlacementScheme};
use coopcache_metrics::{pct, Table};
use coopcache_sim::{run, SimConfig};
use coopcache_types::{ByteSize, DurationMs};

fn main() {
    let (trace, scale) = trace_from_args();
    let sizes = [ByteSize::from_mb(1), ByteSize::from_mb(100)];
    let windows = [
        ExpirationWindow::LastEvictions(16),
        ExpirationWindow::LastEvictions(64),
        ExpirationWindow::LastEvictions(256),
        ExpirationWindow::LastEvictions(1024),
        ExpirationWindow::LastEvictions(4096),
        ExpirationWindow::LastDuration(DurationMs::from_days(1)),
        ExpirationWindow::LastDuration(DurationMs::from_days(7)),
    ];

    let mut table = Table::new(vec![
        "aggregate",
        "window",
        "EA hit %",
        "EA remote %",
        "EA latency ms",
    ]);
    for &aggregate in &sizes {
        for &window in &windows {
            let cfg = SimConfig::new(aggregate)
                .with_group_size(4)
                .with_scheme(PlacementScheme::Ea)
                .with_window(window);
            let report = run(&cfg, &trace);
            table.row(vec![
                aggregate.to_string(),
                window.to_string(),
                pct(report.metrics.hit_rate()),
                pct(report.metrics.remote_hit_rate()),
                format!("{:.0}", report.estimated_latency_ms),
            ]);
        }
    }
    emit(
        "ablation_window",
        "EA sensitivity to the expiration-age window (ABL-W)",
        scale,
        &table,
    );
}
