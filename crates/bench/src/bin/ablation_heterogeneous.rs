//! ABL-S — ablation: unequal cache sizes. The paper assumes every cache
//! gets `X/N` bytes; real deployments are lopsided. Skewed splits create
//! persistent expiration-age differences, which is precisely the signal
//! the EA scheme consumes — so its gains should survive (or grow under)
//! heterogeneity.

use coopcache_bench::{emit, trace_from_args};
use coopcache_core::PlacementScheme;
use coopcache_metrics::{pct, Table};
use coopcache_sim::{run, SimConfig};
use coopcache_types::ByteSize;

fn main() {
    let (trace, scale) = trace_from_args();
    let splits: [(&str, Vec<u32>); 4] = [
        ("equal 1:1:1:1", vec![1, 1, 1, 1]),
        ("mild 1:1:2:2", vec![1, 1, 2, 2]),
        ("skewed 1:1:1:5", vec![1, 1, 1, 5]),
        ("extreme 1:1:1:13", vec![1, 1, 1, 13]),
    ];

    let mut table = Table::new(vec![
        "split",
        "aggregate",
        "ad-hoc hit %",
        "EA hit %",
        "gain (pp)",
    ]);
    for (name, weights) in splits {
        for aggregate in [ByteSize::from_mb(1), ByteSize::from_mb(10)] {
            let base = SimConfig::new(aggregate).with_capacity_weights(weights.clone());
            let adhoc = run(&base.clone().with_scheme(PlacementScheme::AdHoc), &trace);
            let ea = run(&base.clone().with_scheme(PlacementScheme::Ea), &trace);
            table.row(vec![
                name.into(),
                aggregate.to_string(),
                pct(adhoc.metrics.hit_rate()),
                pct(ea.metrics.hit_rate()),
                format!(
                    "{:+.2}",
                    (ea.metrics.hit_rate() - adhoc.metrics.hit_rate()) * 100.0
                ),
            ]);
        }
    }
    emit(
        "ablation_heterogeneous",
        "EA vs ad-hoc under unequal cache sizes (ABL-S)",
        scale,
        &table,
    );
}
