//! BENCH-CORE — microbenchmark of the sharded arena-backed cache store.
//!
//! Three claims, measured directly:
//!
//! 1. **Single-thread throughput** — the index-linked arena store (flat
//!    `Vec` nodes, open-addressing doc table, intrusive lists) against a
//!    `BTreeMap`-based store of the same shape as the pre-arena
//!    implementation, on an identical hit/miss/insert/evict mix at 100k
//!    and 1M resident entries.
//! 2. **O(1) scaling** — per-op cost must stay flat as the store grows
//!    10×; a tree store degrades with `log n` and pointer chasing.
//! 3. **Concurrent readers** — at 10M entries over a lock-per-shard
//!    [`ConcurrentCache`], reader threads pinned to disjoint shards
//!    record **zero contended lock acquisitions**: no reader ever waits
//!    on another, which is the machine-checkable form of "concurrent
//!    readers on different shards do not serialize". (Wall-clock scaling
//!    is additionally reported but is only meaningful on multi-core
//!    hosts; the contended count is the honest signal everywhere.)
//!
//! Modes: `--smoke` runs a seconds-scale version and *asserts* the O(1)
//! scaling sanity bound, the allocation-free steady-state hot path
//! (growth events stay flat across the timed mix), and the
//! zero-contention disjoint-reader property — exiting nonzero on any
//! failure (wired into `scripts/check.sh`). `--fast` shrinks the big
//! runs for quick local iteration. `--json` writes
//! `results/bench_core.json` for `scripts/bench.sh`.

use coopcache_bench::{emit, json_requested};
use coopcache_core::{
    Cache, CacheConfig, CacheEntry, CacheStats, EvictionReason, EvictionRecord, ExpirationFlavor,
    ExpirationTracker, ExpirationWindow, PolicyKind,
};
use coopcache_metrics::Table;
use coopcache_types::{ByteSize, CacheId, DocId, Timestamp};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
// lint:allow(wall-clock) -- this binary IS the stopwatch: it measures
// store throughput; readings feed the report only, never cache logic.
use std::time::Instant;

/// Splitmix64 finalizer: a bijection on u64, used to give workload doc
/// ids a hash distribution. Real document ids are URL digests, not
/// consecutive integers — consecutive ids would hand the `BTreeMap`
/// baseline best-case edge inserts it never sees in practice.
fn doc(raw: u64) -> DocId {
    let mut x = raw.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    DocId::new(x ^ (x >> 31))
}

/// Xorshift64*: deterministic workload generation, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// The pre-arena store, replicated faithfully from the repo's own
/// history (the `Cache` as of the "hot-path profiling" revision): a
/// `BTreeMap<DocId, CacheEntry>` entry map, an LRU policy made of a
/// sequence-keyed `BTreeMap` plus a `HashMap` reverse index, and the
/// same expiration-age tracker and stats bookkeeping the real store
/// carried on every operation — including the per-insert `Vec`
/// allocation for eviction records and the extra staleness probe each
/// lookup performed. This is the baseline the arena is measured
/// against: same observable behaviour, pointer-chasing `O(log n)`
/// structures underneath.
struct BTreeStore {
    entries: BTreeMap<DocId, CacheEntry>,
    /// LRU recency: monotone sequence number → doc. Oldest first.
    by_seq: BTreeMap<u64, DocId>,
    /// Reverse index so a hit can reposition its doc.
    seq_of: HashMap<DocId, u64>,
    next_seq: u64,
    tracker: ExpirationTracker,
    stats: CacheStats,
    capacity: ByteSize,
    used: ByteSize,
}

impl BTreeStore {
    fn new(capacity: ByteSize) -> Self {
        Self {
            entries: BTreeMap::new(),
            by_seq: BTreeMap::new(),
            seq_of: HashMap::new(),
            next_seq: 0,
            tracker: ExpirationTracker::new(ExpirationFlavor::Lru, ExpirationWindow::default()),
            stats: CacheStats::default(),
            capacity,
            used: ByteSize::ZERO,
        }
    }

    fn touch(&mut self, doc: DocId) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(old) = self.seq_of.insert(doc, seq) {
            self.by_seq.remove(&old);
        }
        self.by_seq.insert(seq, doc);
    }

    fn lookup(&mut self, doc: DocId, now: Timestamp) -> Option<ByteSize> {
        // The historical lookup path ran a TTL staleness probe against
        // the entry map before the hit probe proper; no TTL is set here
        // but the tree search was still paid. black_box stops the
        // optimiser from deleting the probe.
        std::hint::black_box(self.entries.contains_key(&doc));
        let size = match self.entries.get_mut(&doc) {
            Some(entry) => {
                entry.record_hit(now);
                entry.size
            }
            None => {
                self.stats.local_misses += 1;
                return None;
            }
        };
        self.touch(doc);
        self.stats.local_hits += 1;
        Some(size)
    }

    fn insert(&mut self, doc: DocId, size: ByteSize, now: Timestamp) -> bool {
        if self.entries.contains_key(&doc) || size > self.capacity {
            return false;
        }
        // Per-insert allocation, exactly as the historical API returned
        // an owned Vec<EvictionRecord> from every store.
        let mut evictions: Vec<EvictionRecord> = Vec::new();
        while self.used + size > self.capacity {
            let victim = self
                .by_seq
                .values()
                .next()
                .copied()
                // lint:allow(panic) -- bench-internal invariant: over
                // capacity implies a resident doc to evict.
                .expect("over capacity implies a victim");
            // lint:allow(panic) -- same bookkeeping invariant as above.
            let seq = self.seq_of.remove(&victim).expect("victim is tracked");
            self.by_seq.remove(&seq);
            // lint:allow(panic) -- same bookkeeping invariant as above.
            let entry = self.entries.remove(&victim).expect("victim is resident");
            self.used -= entry.size;
            let record = EvictionRecord {
                entry,
                evicted_at: now,
                reason: EvictionReason::CapacityPressure,
            };
            self.tracker.record_eviction(&record);
            self.stats.evictions += 1;
            self.stats.bytes_evicted += entry.size;
            evictions.push(record);
        }
        self.entries.insert(doc, CacheEntry::new(doc, size, now));
        self.touch(doc);
        self.used += size;
        self.stats.insertions += 1;
        std::hint::black_box(evictions.len());
        true
    }
}

/// One measured run: ops performed and elapsed nanoseconds.
struct Measured {
    ops: u64,
    elapsed_ns: u64,
}

impl Measured {
    fn ops_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return f64::INFINITY;
        }
        self.ops as f64 * 1e9 / self.elapsed_ns as f64
    }

    fn ns_per_op(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        self.elapsed_ns as f64 / self.ops as f64
    }
}

/// One pre-resolved workload operation. The stream is generated once,
/// outside any timed region, so both stores execute an identical op
/// list and the stopwatch measures store work only — not the RNG.
#[derive(Clone, Copy)]
enum Op {
    /// Lookup of a resident doc (hit) or a never-inserted doc (miss).
    Lookup(DocId),
    /// Insert of a fresh doc, evicting at capacity.
    Insert(DocId),
}

/// The shared operation mix: ~55% hot lookups (drawn from the most
/// recently inserted `resident` docs, so they are mostly hits under
/// LRU), ~15% cold lookups (guaranteed misses), ~30% inserts of fresh
/// docs (each one evicting at capacity). `next_fresh` carries the fresh
/// counter across repetitions so later reps keep inserting novel docs
/// instead of degenerating into `AlreadyPresent` no-ops.
fn mixed_workload(resident: u64, ops: u64, seed: u64, next_fresh: &mut u64) -> Vec<Op> {
    let mut rng = Rng(seed);
    // Raw ids at 2^40 and beyond are never inserted by preload or any
    // rep, so these lookups always miss.
    let miss_base = 1u64 << 40;
    (0..ops)
        .map(|_| match rng.below(100) {
            0..=54 => Op::Lookup(doc(*next_fresh - 1 - rng.below(resident))),
            55..=69 => Op::Lookup(doc(miss_base + rng.below(resident))),
            _ => {
                let d = doc(*next_fresh);
                *next_fresh += 1;
                Op::Insert(d)
            }
        })
        .collect()
}

fn mixed_ops_cache(cache: &mut Cache, workload: &[Op]) -> Measured {
    let mut evictions: Vec<EvictionRecord> = Vec::with_capacity(16);
    let start = Instant::now(); // lint:allow(wall-clock) -- stopwatch only
    for (i, op) in workload.iter().enumerate() {
        let now = Timestamp::from_millis(i as u64);
        match *op {
            Op::Lookup(doc) => {
                cache.lookup(doc, now);
            }
            Op::Insert(doc) => {
                evictions.clear();
                cache.insert_into(doc, ByteSize::from_bytes(1), now, &mut evictions);
            }
        }
    }
    Measured {
        ops: workload.len() as u64,
        elapsed_ns: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
    }
}

/// The identical op stream against the `BTreeMap` baseline.
fn mixed_ops_btree(store: &mut BTreeStore, workload: &[Op]) -> Measured {
    let start = Instant::now(); // lint:allow(wall-clock) -- stopwatch only
    for (i, op) in workload.iter().enumerate() {
        let now = Timestamp::from_millis(i as u64);
        match *op {
            Op::Lookup(doc) => {
                store.lookup(doc, now);
            }
            Op::Insert(doc) => {
                store.insert(doc, ByteSize::from_bytes(1), now);
            }
        }
    }
    Measured {
        ops: workload.len() as u64,
        elapsed_ns: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
    }
}

/// Builds an arena cache preloaded with `resident` one-byte docs.
fn preloaded_cache(resident: u64, shards: usize) -> Cache {
    let mut cache = CacheConfig::new(
        CacheId::new(0),
        ByteSize::from_bytes(resident),
        PolicyKind::Lru,
    )
    .shards(shards)
    .build();
    for raw in 0..resident {
        cache.insert(doc(raw), ByteSize::from_bytes(1), Timestamp::from_millis(0));
    }
    cache
}

/// Concurrent-reader run: `threads` readers over a preloaded
/// [`ConcurrentCache`], each pinned to the docs of its own shard subset
/// so no two threads ever touch the same lock. Returns per-run ops/s
/// plus the cache's contention counters.
fn concurrent_readers(
    resident: u64,
    shards: usize,
    threads: usize,
    ops_per_thread: u64,
) -> (Measured, u64, u64) {
    let cache = Arc::new(
        CacheConfig::new(
            CacheId::new(0),
            ByteSize::from_bytes(resident),
            PolicyKind::Lru,
        )
        .shards(shards)
        .build_concurrent(),
    );
    // Preload, remembering each doc's shard so readers can be pinned.
    let mut docs_by_shard: Vec<Vec<DocId>> = vec![Vec::new(); shards];
    for raw in 0..resident {
        let d = doc(raw);
        cache.insert(d, ByteSize::from_bytes(1), Timestamp::from_millis(0));
        docs_by_shard[cache.shard_of(d)].push(d);
    }
    let preload = cache.contention();
    let start = Instant::now(); // lint:allow(wall-clock) -- stopwatch only
    let mut handles = Vec::new();
    for t in 0..threads {
        let cache = Arc::clone(&cache);
        // Thread t owns shards t, t+threads, t+2*threads, ... — disjoint
        // from every other thread by construction.
        let mine: Vec<DocId> = docs_by_shard
            .iter()
            .enumerate()
            .filter(|(s, _)| s % threads == t)
            .flat_map(|(_, docs)| docs.iter().copied())
            .collect();
        handles.push(std::thread::spawn(move || {
            let mut rng = Rng(0x1234_5678 + t as u64);
            let n = mine.len().max(1) as u64;
            for i in 0..ops_per_thread {
                let d = mine[(rng.below(n)) as usize % mine.len().max(1)];
                cache.lookup(d, Timestamp::from_millis(i));
            }
        }));
    }
    for h in handles {
        // lint:allow(panic) -- a panicked reader is a bench failure.
        h.join().expect("reader thread");
    }
    let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let after = cache.contention();
    (
        Measured {
            ops: ops_per_thread * threads as u64,
            elapsed_ns,
        },
        after.acquisitions - preload.acquisitions,
        after.contended - preload.contended,
    )
}

fn fmt_rate(rate: f64) -> String {
    format!("{:.0}", rate)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let fast = args.iter().any(|a| a == "--fast");

    // Scales: smoke is seconds-fast; fast trims the 10M run; full is the
    // BENCH_7 configuration.
    let (small_n, big_n, huge_n, ops, reader_ops) = if smoke {
        (10_000u64, 100_000u64, 200_000u64, 200_000u64, 50_000u64)
    } else if fast {
        (100_000, 1_000_000, 2_000_000, 2_000_000, 500_000)
    } else {
        (100_000, 1_000_000, 10_000_000, 4_000_000, 1_000_000)
    };

    let mut table = Table::new(vec![
        "experiment",
        "entries",
        "threads",
        "store",
        "ops",
        "ns/op",
        "ops/sec",
        "notes",
    ]);

    // --- 1. Single-thread arena vs BTreeMap at two scales -------------
    let mut speedup_big = 0.0;
    let mut arena_small_ns = 0.0;
    let mut arena_big_ns = 0.0;
    // Best-of-N repetitions: the op stream is deterministic and both
    // stores stay in steady state across reps, so the minimum is the
    // least scheduler-disturbed reading (this host has a single CPU).
    let reps = if smoke { 2 } else { 3 };
    for (label, resident) in [("small", small_n), ("large", big_n)] {
        // Each rep gets its own op stream (novel fresh docs), replayed
        // identically on both stores.
        let mut next_fresh = resident;
        let workloads: Vec<Vec<Op>> = (0..reps)
            .map(|r| mixed_workload(resident, ops, 0xA11C_0FFE ^ r as u64, &mut next_fresh))
            .collect();

        let mut cache = preloaded_cache(resident, 1);
        let churn_before = cache.growth_events();
        let arena = workloads
            .iter()
            .map(|wl| mixed_ops_cache(&mut cache, wl))
            .min_by(|a, b| a.elapsed_ns.cmp(&b.elapsed_ns))
            // lint:allow(panic) -- reps >= 2, the iterator is never empty
            .expect("at least one rep");
        let churn_after = cache.growth_events();

        let mut btree = BTreeStore::new(ByteSize::from_bytes(resident));
        for raw in 0..resident {
            btree.insert(doc(raw), ByteSize::from_bytes(1), Timestamp::from_millis(0));
        }
        let tree = workloads
            .iter()
            .map(|wl| mixed_ops_btree(&mut btree, wl))
            .min_by(|a, b| a.elapsed_ns.cmp(&b.elapsed_ns))
            // lint:allow(panic) -- reps >= 2, the iterator is never empty
            .expect("at least one rep");

        let speedup = tree.ns_per_op() / arena.ns_per_op();
        if label == "large" {
            speedup_big = speedup;
            arena_big_ns = arena.ns_per_op();
        } else {
            arena_small_ns = arena.ns_per_op();
        }
        table.row(vec![
            "single_thread".into(),
            resident.to_string(),
            "1".into(),
            "arena".into(),
            arena.ops.to_string(),
            format!("{:.1}", arena.ns_per_op()),
            fmt_rate(arena.ops_per_sec()),
            format!(
                "growth_events {}→{} over timed mix",
                churn_before, churn_after
            ),
        ]);
        table.row(vec![
            "single_thread".into(),
            resident.to_string(),
            "1".into(),
            "btreemap".into(),
            tree.ops.to_string(),
            format!("{:.1}", tree.ns_per_op()),
            fmt_rate(tree.ops_per_sec()),
            format!("arena speedup {speedup:.1}x"),
        ]);

        if smoke {
            assert_eq!(
                churn_after - churn_before,
                0,
                "steady-state hot path must not grow any backing vector \
                 (allocation-free contract)"
            );
        }
    }

    // --- 2. O(1) scaling sanity ---------------------------------------
    let scaling = arena_big_ns / arena_small_ns.max(f64::MIN_POSITIVE);
    table.row(vec![
        "scaling".into(),
        format!("{small_n}→{big_n}"),
        "1".into(),
        "arena".into(),
        "-".into(),
        format!("{arena_small_ns:.1}→{arena_big_ns:.1}"),
        "-".into(),
        format!("per-op cost ratio {scaling:.2} across 10x entries"),
    ]);
    if smoke {
        // O(1) structure: 10× more entries must not cost anywhere near
        // 10× per op. Cache effects make some growth legitimate; 4x is
        // far below any O(log n)+pointer-chase degradation at this gap.
        assert!(
            scaling < 4.0,
            "per-op cost grew {scaling:.2}x across a 10x size increase — \
             the store is not behaving O(1)"
        );
    }

    // --- 3. Concurrent readers on disjoint shards ---------------------
    let shards = 64usize;
    for threads in [1usize, 2, 4, 8] {
        let (m, acquisitions, contended) = concurrent_readers(huge_n, shards, threads, reader_ops);
        table.row(vec![
            "concurrent_readers".into(),
            huge_n.to_string(),
            threads.to_string(),
            format!("arena/{shards}sh"),
            m.ops.to_string(),
            format!("{:.1}", m.ns_per_op()),
            fmt_rate(m.ops_per_sec()),
            format!("locks {acquisitions}, contended {contended}"),
        ]);
        if smoke {
            assert_eq!(
                contended, 0,
                "{threads} readers pinned to disjoint shards must never \
                 contend on a lock"
            );
        }
    }

    if smoke {
        println!("bench-core --smoke: OK");
        println!("  single-thread arena speedup over btreemap: {speedup_big:.1}x");
        println!("  per-op scaling across 10x entries: {scaling:.2}x (O(1)-ish)");
        println!("  disjoint-shard readers: 0 contended acquisitions");
        #[cfg(feature = "profile")]
        println!("  profile feature: per-op timers active");
        return;
    }

    emit(
        "bench_core",
        "sharded arena store: throughput, O(1) scaling, reader concurrency (BENCH-CORE)",
        if fast { "reduced (--fast)" } else { "full" },
        &table,
    );
    let _ = json_requested(); // documented flag; emit() consults it too
}
