//! ABL-H — the hierarchical architecture (paper §3.4 describes the EA
//! parent rule but §4 evaluates only the distributed one). This bench
//! runs ad-hoc vs EA on a 4-leaves + 1-parent hierarchy.
//!
//! The leaf tier splits the aggregate like the distributed experiments;
//! the parent gets an additional share of the same per-leaf size.

use coopcache_bench::{emit, trace_from_args};
use coopcache_core::{PlacementScheme, PolicyKind};
use coopcache_metrics::{pct, GroupMetrics, LatencyModel, Table};
use coopcache_proxy::HierarchicalGroup;
use coopcache_trace::Partitioner;
use coopcache_types::{ByteSize, CacheId};

fn main() {
    let (trace, scale) = trace_from_args();
    let leaves = 4u16;
    let sizes = [
        ByteSize::from_kb(100),
        ByteSize::from_mb(1),
        ByteSize::from_mb(10),
        ByteSize::from_mb(100),
    ];
    let latency = LatencyModel::paper_2002();
    let partitioner = Partitioner::default();

    let mut table = Table::new(vec![
        "aggregate",
        "scheme",
        "hit %",
        "local %",
        "remote %",
        "latency ms",
        "parent docs",
    ]);
    for &aggregate in &sizes {
        for scheme in [PlacementScheme::AdHoc, PlacementScheme::Ea] {
            let per_leaf = aggregate.split_evenly(u64::from(leaves));
            let mut group = HierarchicalGroup::two_level(
                leaves,
                per_leaf,
                per_leaf, // the parent gets one extra leaf-sized share
                PolicyKind::Lru,
                scheme,
            );
            let mut metrics = GroupMetrics::default();
            for (seq, r) in trace.iter().enumerate() {
                // Clients attach to the leaf tier only.
                let leaf = partitioner.assign(r, seq, leaves as usize);
                let outcome = group.handle_request(leaf, r.doc, r.size, r.time);
                metrics.record(outcome, r.size);
            }
            let parent_docs = group.node(CacheId::new(leaves)).cache().len();
            table.row(vec![
                aggregate.to_string(),
                scheme.to_string(),
                pct(metrics.hit_rate()),
                pct(metrics.local_hit_rate()),
                pct(metrics.remote_hit_rate()),
                format!("{:.0}", latency.average_latency_ms(&metrics)),
                parent_docs.to_string(),
            ]);
        }
    }
    emit(
        "hierarchy_compare",
        "Ad-hoc vs EA on a 4-leaves + 1-parent hierarchy (ABL-H)",
        scale,
        &table,
    );
}
