//! ABL-N — ablation: ICP packet loss. ICP runs over UDP (§2), so lost
//! query/reply pairs silently hide peers for that round. The DES sweeps
//! the loss rate and reports how gracefully each scheme degrades —
//! ad-hoc's replicas give it redundancy EA intentionally removes.

use coopcache_bench::{emit, trace_from_args};
use coopcache_core::PlacementScheme;
use coopcache_metrics::{pct, Table};
use coopcache_sim::{run_des, NetworkModel, SimConfig};
use coopcache_types::ByteSize;

fn main() {
    let (trace, scale) = trace_from_args();
    let cfg_base = SimConfig::new(ByteSize::from_mb(10)).with_group_size(4);

    let mut table = Table::new(vec![
        "ICP loss %",
        "scheme",
        "hit %",
        "remote %",
        "mean lat ms",
    ]);
    for permille in [0u32, 10, 50, 100, 300] {
        let network = NetworkModel::paper_calibrated().with_icp_loss_permille(permille);
        for scheme in [PlacementScheme::AdHoc, PlacementScheme::Ea] {
            let report = run_des(&cfg_base.clone().with_scheme(scheme), &network, &trace);
            table.row(vec![
                format!("{:.1}", permille as f64 / 10.0),
                scheme.to_string(),
                pct(report.metrics.hit_rate()),
                pct(report.metrics.remote_hit_rate()),
                format!("{:.0}", report.mean_latency_ms),
            ]);
        }
    }
    emit(
        "ablation_icp_loss",
        "ICP/UDP packet loss in the discrete-event simulator (ABL-N)",
        scale,
        &table,
    );
}
