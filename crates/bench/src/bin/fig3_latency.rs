//! FIG3 — Figure 3: estimated average document latency (paper eq. 6 with
//! the measured constants LHL = 146 ms, RHL = 342 ms, ML = 2784 ms) for a
//! 4-cache group at 100 KB – 1 GB.

use coopcache_bench::{emit, trace_from_args};
use coopcache_metrics::Table;
use coopcache_sim::{capacity_sweep, SimConfig, PAPER_CACHE_SIZES};
use coopcache_types::ByteSize;

fn main() {
    let (trace, scale) = trace_from_args();
    let cfg = SimConfig::new(ByteSize::ZERO).with_group_size(4);
    let points = capacity_sweep(&cfg, &PAPER_CACHE_SIZES, &trace);

    let mut table = Table::new(vec![
        "aggregate",
        "ad-hoc latency (ms)",
        "EA latency (ms)",
        "EA saves (ms)",
    ]);
    for p in &points {
        table.row(vec![
            p.aggregate.to_string(),
            format!("{:.0}", p.adhoc.estimated_latency_ms),
            format!("{:.0}", p.ea.estimated_latency_ms),
            format!("{:+.0}", p.latency_gain_ms()),
        ]);
    }
    emit(
        "fig3_latency",
        "Estimated average latency for the 4-cache group (paper Figure 3, eq. 6)",
        scale,
        &table,
    );
}
