//! ABL-C — ablation: freshness TTLs. The paper treats cache coherence as
//! orthogonal related work; this bench quantifies how expiring documents
//! interacts with the two placement schemes (EA's single-copy placement
//! re-fetches an expired document once; ad-hoc re-fetches it per replica).

use coopcache_bench::{emit, trace_from_args};
use coopcache_core::PlacementScheme;
use coopcache_metrics::{pct, Table};
use coopcache_sim::{run, SimConfig};
use coopcache_types::{ByteSize, DurationMs};

fn main() {
    let (trace, scale) = trace_from_args();
    let aggregate = ByteSize::from_mb(10);
    let ttls = [
        ("none", None),
        ("7 days", Some(DurationMs::from_days(7))),
        ("1 day", Some(DurationMs::from_days(1))),
        ("1 hour", Some(DurationMs::from_secs(3_600))),
    ];

    let mut table = Table::new(vec!["ttl", "scheme", "hit %", "byte hit %", "latency ms"]);
    for (name, ttl) in ttls {
        for scheme in [PlacementScheme::AdHoc, PlacementScheme::Ea] {
            let mut cfg = SimConfig::new(aggregate)
                .with_group_size(4)
                .with_scheme(scheme);
            cfg.ttl = ttl;
            let r = run(&cfg, &trace);
            table.row(vec![
                name.into(),
                scheme.to_string(),
                pct(r.metrics.hit_rate()),
                pct(r.metrics.byte_hit_rate()),
                format!("{:.0}", r.estimated_latency_ms),
            ]);
        }
    }
    emit(
        "ablation_coherence",
        "Freshness TTLs at 10MB aggregate (ABL-C)",
        scale,
        &table,
    );
}
