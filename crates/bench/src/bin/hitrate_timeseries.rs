//! SERIES — extension: cumulative hit rate over time for both schemes,
//! showing the warm-up transient and when the EA gap opens. One row per
//! window of the simulator's built-in time series (20 windows = one row
//! per 5% of the trace), straight from `SimReport::windows`.
//! Supports `--fast` and `--json` like every bench binary.

use coopcache_bench::{emit, trace_from_args};
use coopcache_core::PlacementScheme;
use coopcache_metrics::{pct, Table};
use coopcache_sim::{run, SimConfig, WindowStat};
use coopcache_types::ByteSize;

fn main() {
    let (trace, scale) = trace_from_args();
    let cfg = SimConfig::new(ByteSize::from_mb(10)).with_group_size(4);

    let series = |scheme: PlacementScheme| -> Vec<WindowStat> {
        run(&cfg.clone().with_scheme(scheme), &trace).windows
    };
    let adhoc = series(PlacementScheme::AdHoc);
    let ea = series(PlacementScheme::Ea);
    assert_eq!(adhoc.len(), ea.len(), "same trace, same window grid");

    let mut table = Table::new(vec![
        "trace %",
        "ad-hoc hit %",
        "EA hit %",
        "gap (pp)",
        "EA win age (s)",
    ]);
    let windows = adhoc.len();
    for (i, (a, e)) in adhoc.iter().zip(&ea).enumerate() {
        table.row(vec![
            format!("{:.0}", (i + 1) as f64 * 100.0 / windows as f64),
            pct(a.cumulative_hit_rate),
            pct(e.cumulative_hit_rate),
            format!(
                "{:+.2}",
                (e.cumulative_hit_rate - a.cumulative_hit_rate) * 100.0
            ),
            e.mean_age_ms
                .map_or("-".into(), |ms| format!("{:.2}", ms as f64 / 1_000.0)),
        ]);
    }
    emit(
        "hitrate_timeseries",
        "Cumulative hit rate over the trace at 10MB aggregate (SERIES extension)",
        scale,
        &table,
    );
}
