//! SERIES — extension: cumulative hit rate over time for both schemes,
//! showing the warm-up transient and when the EA gap opens. Emits one row
//! per 5% of the trace.

use coopcache_bench::{emit, trace_from_args};
use coopcache_core::PlacementScheme;
use coopcache_metrics::{pct, GroupMetrics, Table};
use coopcache_sim::{run_with_observer, SimConfig};
use coopcache_types::ByteSize;

fn main() {
    let (trace, scale) = trace_from_args();
    let cfg = SimConfig::new(ByteSize::from_mb(10)).with_group_size(4);
    let bucket = (trace.len() / 20).max(1);

    let series = |scheme: PlacementScheme| -> Vec<f64> {
        let mut running = GroupMetrics::default();
        let mut points = Vec::new();
        run_with_observer(
            &cfg.clone().with_scheme(scheme),
            &trace,
            |seq, request, outcome| {
                running.record(outcome, request.size);
                if (seq + 1) % bucket == 0 {
                    points.push(running.hit_rate());
                }
            },
        );
        points
    };
    let adhoc = series(PlacementScheme::AdHoc);
    let ea = series(PlacementScheme::Ea);

    let mut table = Table::new(vec!["trace %", "ad-hoc hit %", "EA hit %", "gap (pp)"]);
    for (i, (a, e)) in adhoc.iter().zip(&ea).enumerate() {
        table.row(vec![
            format!("{}", (i + 1) * 5),
            pct(*a),
            pct(*e),
            format!("{:+.2}", (e - a) * 100.0),
        ]);
    }
    emit(
        "hitrate_timeseries",
        "Cumulative hit rate over the trace at 10MB aggregate (SERIES extension)",
        scale,
        &table,
    );
}
