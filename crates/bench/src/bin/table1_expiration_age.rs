//! TAB1 — Table 1: average cache expiration age (seconds), ad-hoc vs EA,
//! for a 4-cache group at 100 KB – 100 MB.
//!
//! The paper reports this for 100 KB, 1 MB, 10 MB and 100 MB (at 1 GB its
//! caches, like ours, stop evicting and the quantity is undefined).
//! Pass `--fast` for the medium trace and `--json` for a
//! `results/table1_expiration_age.json` copy of the table.

use coopcache_bench::{emit, trace_from_args};
use coopcache_metrics::{secs, Table};
use coopcache_sim::{capacity_sweep, SimConfig, PAPER_CACHE_SIZES};
use coopcache_types::ByteSize;

fn main() {
    let (trace, scale) = trace_from_args();
    let cfg = SimConfig::new(ByteSize::ZERO).with_group_size(4);
    // Table 1 stops at 100 MB.
    let sizes = &PAPER_CACHE_SIZES[..4];
    let points = capacity_sweep(&cfg, sizes, &trace);

    let mut table = Table::new(vec![
        "aggregate",
        "ad-hoc exp-age (s)",
        "EA exp-age (s)",
        "ratio",
    ]);
    for p in &points {
        let (a, e) = (
            p.adhoc.avg_expiration_age_ms.unwrap_or(0.0),
            p.ea.avg_expiration_age_ms.unwrap_or(0.0),
        );
        table.row(vec![
            p.aggregate.to_string(),
            secs(a),
            secs(e),
            if a > 0.0 {
                format!("{:.2}x", e / a)
            } else {
                "-".into()
            },
        ]);
    }
    emit(
        "table1_expiration_age",
        "Average cache expiration age for the 4-cache group (paper Table 1)",
        scale,
        &table,
    );
}
