//! HASH — baseline: consistent-hash (CARP-style) document homes, the
//! alternative cooperation style from the paper's related work (\[8\],
//! \[16\]). Zero replication and zero discovery traffic by construction;
//! compare hit rates and latency against ad-hoc and EA.

use coopcache_bench::{emit, trace_from_args};
use coopcache_core::{PlacementScheme, PolicyKind};
use coopcache_metrics::{pct, GroupMetrics, LatencyModel, Table};
use coopcache_proxy::HashRoutedGroup;
use coopcache_sim::{run, SimConfig, PAPER_CACHE_SIZES};
use coopcache_trace::Partitioner;

fn main() {
    let (trace, scale) = trace_from_args();
    let latency = LatencyModel::paper_2002();
    let partitioner = Partitioner::default();

    let mut table = Table::new(vec![
        "aggregate",
        "scheme",
        "hit %",
        "local %",
        "remote %",
        "latency ms",
    ]);
    for &aggregate in &PAPER_CACHE_SIZES {
        for scheme in [PlacementScheme::AdHoc, PlacementScheme::Ea] {
            let cfg = SimConfig::new(aggregate)
                .with_group_size(4)
                .with_scheme(scheme);
            let r = run(&cfg, &trace);
            table.row(vec![
                aggregate.to_string(),
                scheme.to_string(),
                pct(r.metrics.hit_rate()),
                pct(r.metrics.local_hit_rate()),
                pct(r.metrics.remote_hit_rate()),
                format!("{:.0}", r.estimated_latency_ms),
            ]);
        }
        // Hash routing, driven directly.
        let mut group = HashRoutedGroup::new(4, aggregate, PolicyKind::Lru);
        let mut metrics = GroupMetrics::default();
        for (seq, r) in trace.iter().enumerate() {
            let requester = partitioner.assign(r, seq, 4);
            let outcome = group.handle_request(requester, r.doc, r.size, r.time);
            metrics.record(outcome, r.size);
        }
        table.row(vec![
            aggregate.to_string(),
            "hash-routed".into(),
            pct(metrics.hit_rate()),
            pct(metrics.local_hit_rate()),
            pct(metrics.remote_hit_rate()),
            format!("{:.0}", latency.average_latency_ms(&metrics)),
        ]);
    }
    emit(
        "baseline_hash_routing",
        "Ad-hoc vs EA vs consistent-hash homes (HASH baseline)",
        scale,
        &table,
    );
}
