#![forbid(unsafe_code)]
//! Shared plumbing for the experiment binaries that regenerate every
//! table and figure of the paper (see `DESIGN.md` §3 for the index).
//!
//! Each binary in `src/bin/` prints its table to stdout and writes a CSV
//! copy under `results/`. Pass `--fast` to any binary to run on the
//! medium-scale trace (~120k requests) instead of the full BU-94-scale
//! one (575,775 requests); the full run takes a few seconds per
//! experiment. Pass `--json` to additionally write
//! `results/<id>.json` — a machine-readable
//! `{"id":…,"title":…,"trace":…,"headers":[…],"rows":[[…]]}` record
//! rendered by the workspace's hand-rolled JSON writer.

use coopcache_metrics::{JsonWriter, Table};
use coopcache_trace::{generate, Trace, TraceProfile};
use std::path::PathBuf;

/// The trace the experiment binaries replay, scale chosen by CLI args.
///
/// Returns the trace and a scale label used in output headers.
///
/// # Panics
///
/// Panics if the built-in profiles fail to generate (they cannot).
#[must_use]
pub fn trace_from_args() -> (Trace, &'static str) {
    let fast = std::env::args().any(|a| a == "--fast");
    if fast {
        (
            generate(&TraceProfile::medium()).expect("medium profile is valid"),
            "medium (--fast)",
        )
    } else {
        (
            generate(&TraceProfile::bu94()).expect("bu94 profile is valid"),
            "bu94-scale",
        )
    }
}

/// True when the binary was invoked with `--json`: [`emit`] then also
/// writes a `results/<id>.json` copy of the table.
#[must_use]
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Where CSV copies of the experiment tables land.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("can create results/");
    dir
}

/// Prints an experiment header, the table, and writes `results/<id>.csv`;
/// with `--json` on the command line it also writes `results/<id>.json`.
///
/// # Panics
///
/// Panics if an output file cannot be written.
pub fn emit(id: &str, title: &str, scale: &str, table: &Table) {
    println!("== {id}: {title}");
    println!("   trace: {scale}\n");
    print!("{table}");
    let path = results_dir().join(format!("{id}.csv"));
    let mut file = std::fs::File::create(&path).expect("can create csv");
    table.write_csv(&mut file).expect("can write csv");
    println!("\n(csv: {})", path.display());
    if json_requested() {
        let path = results_dir().join(format!("{id}.json"));
        std::fs::write(&path, table_json(id, title, scale, table)).expect("can write json");
        println!("(json: {})", path.display());
    }
    println!();
}

/// The JSON record [`emit`] writes for `--json` runs.
#[must_use]
pub fn table_json(id: &str, title: &str, scale: &str, table: &Table) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("id");
    w.string(id);
    w.key("title");
    w.string(title);
    w.key("trace");
    w.string(scale);
    w.key("headers");
    w.begin_array();
    for h in table.headers() {
        w.string(h);
    }
    w.end_array();
    w.key("rows");
    w.begin_array();
    for row in table.rows() {
        w.begin_array();
        for cell in row {
            w.string(cell);
        }
        w.end_array();
    }
    w.end_array();
    w.end_object();
    let mut s = w.finish();
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_created() {
        let dir = results_dir();
        assert!(dir.is_dir());
    }

    #[test]
    fn emit_writes_csv() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into()]);
        emit("selftest", "emit smoke test", "none", &t);
        let path = results_dir().join("selftest.csv");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a\n1\n");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn table_json_record_shape() {
        let mut t = Table::new(vec!["size", "ea"]);
        t.row(vec!["1MB".into(), "31.40".into()]);
        assert_eq!(
            table_json("fig1", "hit rates", "medium", &t),
            concat!(
                r#"{"id":"fig1","title":"hit rates","trace":"medium","#,
                r#""headers":["size","ea"],"rows":[["1MB","31.40"]]}"#,
                "\n"
            )
        );
    }
}
