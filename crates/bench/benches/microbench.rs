//! MICRO — self-contained micro-benchmarks of the core data structures
//! and the simulator's end-to-end throughput.
//!
//! Hand-rolled timing harness (`harness = false`, no external bench
//! framework): each benchmark warms up, then reports the median of
//! several timed passes in ns/op plus ops/s. Run with
//! `cargo bench -p coopcache-bench`.

use coopcache_core::{Cache, PlacementScheme, PolicyKind};
use coopcache_proxy::DistributedGroup;
use coopcache_sim::{run, SimConfig};
use coopcache_trace::{generate, Distribution, Rng, TraceProfile, Zipf};
use coopcache_types::{ByteSize, CacheId, DocId, Timestamp};
use std::hint::black_box;
use std::time::Instant;

/// Times `ops` iterations of `f` per pass: one warm-up pass, then
/// `PASSES` measured passes; prints the median ns/op.
fn bench(name: &str, ops: u64, mut f: impl FnMut()) {
    const PASSES: usize = 5;
    let run_pass = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        for _ in 0..ops {
            f();
        }
        start.elapsed()
    };
    run_pass(&mut f); // warm-up
    let mut ns_per_op: Vec<f64> = (0..PASSES)
        .map(|_| run_pass(&mut f).as_nanos() as f64 / ops as f64)
        .collect();
    ns_per_op.sort_by(|a, b| a.total_cmp(b));
    let median = ns_per_op[PASSES / 2];
    let rate = if median > 0.0 {
        1e9 / median
    } else {
        f64::INFINITY
    };
    println!("{name:<34} {median:>12.1} ns/op {rate:>14.0} ops/s");
}

fn bench_replacement_policies() {
    for policy in PolicyKind::all() {
        let mut cache = Cache::new(CacheId::new(0), ByteSize::from_kb(100), policy);
        let mut i = 0u64;
        bench(&format!("cache_insert_evict/{policy}"), 10_000, || {
            i += 1;
            cache.insert(
                DocId::new(i % 4_096),
                ByteSize::from_kb(1 + i % 4),
                Timestamp::from_millis(i),
            );
            if i.is_multiple_of(3) {
                black_box(cache.lookup(DocId::new(i % 4_096), Timestamp::from_millis(i + 1)));
            }
        });
    }
}

fn bench_lookup_hit() {
    let mut cache = Cache::new(CacheId::new(0), ByteSize::from_mb(10), PolicyKind::Lru);
    for i in 0..1_000u64 {
        cache.insert(
            DocId::new(i),
            ByteSize::from_kb(4),
            Timestamp::from_millis(i),
        );
    }
    let mut i = 0u64;
    bench("cache_lookup_hit_lru", 100_000, || {
        i = (i + 1) % 1_000;
        black_box(cache.lookup(DocId::new(i), Timestamp::from_millis(1_000_000 + i)));
    });
}

fn bench_zipf_sampling() {
    let zipf = Zipf::new(46_830, 1.05).expect("valid zipf");
    let mut rng = Rng::seed_from(7);
    bench("zipf_sample_46830", 100_000, || {
        black_box(zipf.sample(&mut rng));
    });
}

fn bench_trace_generation() {
    let profile = TraceProfile::small();
    bench("generate_small_trace_20k", 3, || {
        black_box(generate(&profile).expect("valid profile"));
    });
}

fn bench_group_request() {
    for scheme in [PlacementScheme::AdHoc, PlacementScheme::Ea] {
        let mut group = DistributedGroup::new(4, ByteSize::from_mb(1), PolicyKind::Lru, scheme);
        let mut i = 0u64;
        bench(&format!("group_request/{scheme}"), 50_000, || {
            i += 1;
            black_box(group.handle_request(
                CacheId::new((i % 4) as u16),
                DocId::new(i % 512),
                ByteSize::from_kb(4),
                Timestamp::from_millis(i),
            ));
        });
    }
}

fn bench_simulation_throughput() {
    let trace = generate(&TraceProfile::small()).expect("valid profile");
    for scheme in [PlacementScheme::AdHoc, PlacementScheme::Ea] {
        let cfg = SimConfig::new(ByteSize::from_mb(1)).with_scheme(scheme);
        bench(&format!("simulate_20k_requests/{scheme}"), 3, || {
            black_box(run(&cfg, &trace));
        });
    }
}

fn main() {
    println!("{:<34} {:>15} {:>20}", "benchmark", "median", "throughput");
    bench_replacement_policies();
    bench_lookup_hit();
    bench_zipf_sampling();
    bench_trace_generation();
    bench_group_request();
    bench_simulation_throughput();
}
