//! MICRO — criterion micro-benchmarks of the core data structures and
//! the simulator's end-to-end throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use coopcache_core::{Cache, PlacementScheme, PolicyKind};
use coopcache_proxy::DistributedGroup;
use coopcache_sim::{run, SimConfig};
use coopcache_trace::{generate, Distribution, Rng, TraceProfile, Zipf};
use coopcache_types::{ByteSize, CacheId, DocId, Timestamp};

fn bench_replacement_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_insert_evict");
    for policy in PolicyKind::all() {
        group.throughput(Throughput::Elements(10_000));
        group.bench_function(policy.to_string(), |b| {
            b.iter_batched(
                || Cache::new(CacheId::new(0), ByteSize::from_kb(100), policy),
                |mut cache| {
                    for i in 0..10_000u64 {
                        cache.insert(
                            DocId::new(i),
                            ByteSize::from_kb(1 + i % 4),
                            Timestamp::from_millis(i),
                        );
                        if i % 3 == 0 {
                            cache.lookup(DocId::new(i), Timestamp::from_millis(i + 1));
                        }
                    }
                    cache
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_lookup_hit(c: &mut Criterion) {
    let mut cache = Cache::new(CacheId::new(0), ByteSize::from_mb(10), PolicyKind::Lru);
    for i in 0..1_000u64 {
        cache.insert(DocId::new(i), ByteSize::from_kb(4), Timestamp::from_millis(i));
    }
    let mut i = 0u64;
    c.bench_function("cache_lookup_hit_lru", |b| {
        b.iter(|| {
            i = (i + 1) % 1_000;
            cache.lookup(DocId::new(i), Timestamp::from_millis(1_000_000 + i))
        });
    });
}

fn bench_zipf_sampling(c: &mut Criterion) {
    let zipf = Zipf::new(46_830, 1.05).expect("valid zipf");
    let mut rng = Rng::seed_from(7);
    c.bench_function("zipf_sample_46830", |b| b.iter(|| zipf.sample(&mut rng)));
}

fn bench_trace_generation(c: &mut Criterion) {
    let profile = TraceProfile::small();
    c.bench_function("generate_small_trace_20k", |b| {
        b.iter(|| generate(&profile).expect("valid profile"));
    });
}

fn bench_group_request(c: &mut Criterion) {
    let mut criterion_group = c.benchmark_group("group_request");
    for scheme in [PlacementScheme::AdHoc, PlacementScheme::Ea] {
        criterion_group.bench_function(scheme.to_string(), |b| {
            let mut group =
                DistributedGroup::new(4, ByteSize::from_mb(1), PolicyKind::Lru, scheme);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                group.handle_request(
                    CacheId::new((i % 4) as u16),
                    DocId::new(i % 512),
                    ByteSize::from_kb(4),
                    Timestamp::from_millis(i),
                )
            });
        });
    }
    criterion_group.finish();
}

fn bench_simulation_throughput(c: &mut Criterion) {
    let trace = generate(&TraceProfile::small()).expect("valid profile");
    let mut group = c.benchmark_group("simulate_20k_requests");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    for scheme in [PlacementScheme::AdHoc, PlacementScheme::Ea] {
        group.bench_function(scheme.to_string(), |b| {
            let cfg = SimConfig::new(ByteSize::from_mb(1)).with_scheme(scheme);
            b.iter(|| run(&cfg, &trace));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_replacement_policies,
    bench_lookup_hit,
    bench_zipf_sampling,
    bench_trace_generation,
    bench_group_request,
    bench_simulation_throughput
);
criterion_main!(benches);
