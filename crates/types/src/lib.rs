#![forbid(unsafe_code)]
//! Shared vocabulary types for the `coopcache` workspace.
//!
//! Every crate in the workspace speaks in terms of the newtypes defined here:
//! document and node identifiers ([`DocId`], [`CacheId`], [`ClientId`]),
//! simulated wall-clock time ([`Timestamp`], [`DurationMs`]), byte quantities
//! ([`ByteSize`]), trace records ([`Request`]) and the paper's central
//! quantity, the [`ExpirationAge`] of a cache.
//!
//! The types are deliberately small `Copy` newtypes (Rust API guideline
//! C-NEWTYPE): they make it impossible to, say, pass a client id where a
//! cache id is expected, or to confuse a point in time with a duration.
//!
//! # Example
//!
//! ```
//! use coopcache_types::{ByteSize, DocId, Request, ClientId, Timestamp};
//!
//! let req = Request::new(
//!     Timestamp::from_millis(1_000),
//!     ClientId::new(7),
//!     DocId::new(42),
//!     ByteSize::from_bytes(4096),
//! );
//! assert_eq!(req.size.as_bytes(), 4096);
//! ```

mod expage;
mod id;
mod request;
mod size;
mod time;

pub use expage::ExpirationAge;
pub use id::{CacheId, ClientId, DocId};
pub use request::Request;
pub use size::ByteSize;
pub use time::{DurationMs, Timestamp};
