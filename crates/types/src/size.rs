//! Byte quantities for documents and cache capacities.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A quantity of bytes: a document size or a cache capacity.
///
/// The paper sweeps aggregate group capacities of 100 KB, 1 MB, 10 MB,
/// 100 MB and 1 GB; [`ByteSize::split_evenly`] implements the paper's
/// equal-share rule (`X / N` bytes per cache).
///
/// Decimal units are used (1 KB = 1000 B), matching how the paper reports
/// capacities.
///
/// # Example
///
/// ```
/// use coopcache_types::ByteSize;
/// let aggregate = ByteSize::from_mb(1);
/// assert_eq!(aggregate.split_evenly(4), ByteSize::from_bytes(250_000));
/// assert_eq!(aggregate.to_string(), "1MB");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: Self = Self(0);

    /// Creates a size from a raw byte count.
    #[must_use]
    pub const fn from_bytes(bytes: u64) -> Self {
        Self(bytes)
    }

    /// Creates a size from decimal kilobytes (1 KB = 1000 B).
    #[must_use]
    pub const fn from_kb(kb: u64) -> Self {
        Self(kb * 1_000)
    }

    /// Creates a size from decimal megabytes.
    #[must_use]
    pub const fn from_mb(mb: u64) -> Self {
        Self(mb * 1_000_000)
    }

    /// Creates a size from decimal gigabytes.
    #[must_use]
    pub const fn from_gb(gb: u64) -> Self {
        Self(gb * 1_000_000_000)
    }

    /// Returns the raw byte count.
    #[must_use]
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Returns true if this is zero bytes.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Splits an aggregate capacity evenly over `n` caches (the paper's
    /// `X / N` rule, integer division).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub const fn split_evenly(self, n: u64) -> Self {
        assert!(n > 0, "cannot split capacity over zero caches");
        Self(self.0 / n)
    }

    /// Saturating subtraction; clamps at [`ByteSize::ZERO`].
    #[must_use]
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl Add for ByteSize {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = Self;
    /// # Panics
    ///
    /// Panics in debug builds on underflow; use
    /// [`ByteSize::saturating_sub`] when the operands may cross.
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, Add::add)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1_000_000_000 && b.is_multiple_of(1_000_000_000) {
            write!(f, "{}GB", b / 1_000_000_000)
        } else if b >= 1_000_000 && b.is_multiple_of(1_000_000) {
            write!(f, "{}MB", b / 1_000_000)
        } else if b >= 1_000 && b.is_multiple_of(1_000) {
            write!(f, "{}KB", b / 1_000)
        } else {
            write!(f, "{b}B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors() {
        assert_eq!(ByteSize::from_kb(100).as_bytes(), 100_000);
        assert_eq!(ByteSize::from_mb(10).as_bytes(), 10_000_000);
        assert_eq!(ByteSize::from_gb(1).as_bytes(), 1_000_000_000);
    }

    #[test]
    fn split_evenly_matches_paper_rule() {
        // 1 GB aggregate over 8 caches = 125 MB each.
        assert_eq!(ByteSize::from_gb(1).split_evenly(8), ByteSize::from_mb(125));
        // Non-divisible splits truncate.
        assert_eq!(ByteSize::from_bytes(10).split_evenly(3).as_bytes(), 3);
    }

    #[test]
    #[should_panic(expected = "zero caches")]
    fn split_by_zero_panics() {
        let _ = ByteSize::from_kb(1).split_evenly(0);
    }

    #[test]
    fn arithmetic() {
        let a = ByteSize::from_bytes(1000);
        let b = ByteSize::from_bytes(300);
        assert_eq!((a + b).as_bytes(), 1300);
        assert_eq!((a - b).as_bytes(), 700);
        assert_eq!(b.saturating_sub(a), ByteSize::ZERO);
        let mut c = a;
        c += b;
        c -= ByteSize::from_bytes(100);
        assert_eq!(c.as_bytes(), 1200);
    }

    #[test]
    fn sum_of_sizes() {
        let total: ByteSize = [1u64, 2, 3].into_iter().map(ByteSize::from_bytes).sum();
        assert_eq!(total.as_bytes(), 6);
    }

    #[test]
    fn display_picks_largest_exact_unit() {
        assert_eq!(ByteSize::from_bytes(512).to_string(), "512B");
        assert_eq!(ByteSize::from_kb(100).to_string(), "100KB");
        assert_eq!(ByteSize::from_mb(1).to_string(), "1MB");
        assert_eq!(ByteSize::from_gb(2).to_string(), "2GB");
        assert_eq!(ByteSize::from_bytes(1500).to_string(), "1500B");
    }

    #[test]
    fn zero_checks() {
        assert!(ByteSize::ZERO.is_zero());
        assert!(!ByteSize::from_bytes(1).is_zero());
    }
}
