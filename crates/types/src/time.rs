//! Simulated time: absolute [`Timestamp`]s and [`DurationMs`] spans.
//!
//! The simulator and the expiration-age bookkeeping both operate on a
//! millisecond-resolution virtual clock anchored at the start of the trace.
//! Millisecond resolution comfortably covers the paper's latency constants
//! (146 ms / 342 ms / 2784 ms) and the multi-month trace horizon
//! (`u64` milliseconds ≈ 584 million years).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of simulated time in milliseconds.
///
/// # Example
///
/// ```
/// use coopcache_types::DurationMs;
/// let d = DurationMs::from_secs(2) + DurationMs::from_millis(500);
/// assert_eq!(d.as_millis(), 2_500);
/// assert_eq!(d.as_secs_f64(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DurationMs(u64);

impl DurationMs {
    /// The zero-length span.
    pub const ZERO: Self = Self(0);

    /// Creates a span from whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms)
    }

    /// Creates a span from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * 1_000)
    }

    /// Creates a span from whole days (useful for trace horizons).
    #[must_use]
    pub const fn from_days(days: u64) -> Self {
        Self(days * 24 * 60 * 60 * 1_000)
    }

    /// Returns the span in whole milliseconds.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Returns the span in seconds as a float (used by reports).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction; clamps at [`DurationMs::ZERO`].
    #[must_use]
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    #[must_use]
    pub const fn saturating_mul(self, factor: u64) -> Self {
        Self(self.0.saturating_mul(factor))
    }
}

impl Add for DurationMs {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for DurationMs {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for DurationMs {
    type Output = Self;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self`; use
    /// [`DurationMs::saturating_sub`] when underflow is possible.
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Mul<u64> for DurationMs {
    type Output = Self;
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<u64> for DurationMs {
    type Output = Self;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> Self {
        Self(self.0 / rhs)
    }
}

impl fmt::Display for DurationMs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000 && self.0.is_multiple_of(100) {
            write!(f, "{}s", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

/// An absolute point on the simulated clock, in milliseconds since the
/// start of the trace.
///
/// # Example
///
/// ```
/// use coopcache_types::{DurationMs, Timestamp};
/// let t0 = Timestamp::ZERO;
/// let t1 = t0 + DurationMs::from_secs(10);
/// assert_eq!(t1 - t0, DurationMs::from_secs(10));
/// assert!(t1 > t0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The trace epoch.
    pub const ZERO: Self = Self(0);

    /// Creates a timestamp from milliseconds since the trace epoch.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms)
    }

    /// Creates a timestamp from seconds since the trace epoch.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * 1_000)
    }

    /// Returns milliseconds since the trace epoch.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Duration elapsed since an earlier timestamp, clamped at zero.
    ///
    /// Out-of-order trace records can make `earlier` exceed `self`; clamping
    /// keeps expiration-age arithmetic total.
    #[must_use]
    pub const fn saturating_since(self, earlier: Self) -> DurationMs {
        DurationMs::from_millis(self.0.saturating_sub(earlier.0))
    }
}

impl Add<DurationMs> for Timestamp {
    type Output = Self;
    fn add(self, rhs: DurationMs) -> Self {
        Self(self.0 + rhs.as_millis())
    }
}

impl AddAssign<DurationMs> for Timestamp {
    fn add_assign(&mut self, rhs: DurationMs) {
        self.0 += rhs.as_millis();
    }
}

impl Sub for Timestamp {
    type Output = DurationMs;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Timestamp::saturating_since`] for possibly out-of-order inputs.
    fn sub(self, rhs: Self) -> DurationMs {
        DurationMs::from_millis(self.0 - rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(DurationMs::from_secs(3).as_millis(), 3_000);
        assert_eq!(DurationMs::from_days(1).as_millis(), 86_400_000);
        assert_eq!(DurationMs::ZERO.as_millis(), 0);
    }

    #[test]
    fn duration_arithmetic() {
        let a = DurationMs::from_millis(1500);
        let b = DurationMs::from_millis(500);
        assert_eq!((a + b).as_millis(), 2000);
        assert_eq!((a - b).as_millis(), 1000);
        assert_eq!((a * 2).as_millis(), 3000);
        assert_eq!((a / 3).as_millis(), 500);
        assert_eq!(b.saturating_sub(a), DurationMs::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_millis(), 2000);
    }

    #[test]
    fn duration_saturating_mul_caps() {
        let d = DurationMs::from_millis(u64::MAX / 2 + 1);
        assert_eq!(d.saturating_mul(3).as_millis(), u64::MAX);
    }

    #[test]
    fn timestamp_arithmetic() {
        let t0 = Timestamp::from_secs(1);
        let t1 = t0 + DurationMs::from_millis(250);
        assert_eq!(t1.as_millis(), 1250);
        assert_eq!(t1 - t0, DurationMs::from_millis(250));
        assert_eq!(t0.saturating_since(t1), DurationMs::ZERO);
        assert_eq!(t1.saturating_since(t0), DurationMs::from_millis(250));
        let mut t2 = t0;
        t2 += DurationMs::from_secs(1);
        assert_eq!(t2.as_millis(), 2000);
    }

    #[test]
    fn display_formats() {
        assert_eq!(DurationMs::from_millis(42).to_string(), "42ms");
        assert_eq!(DurationMs::from_millis(2500).to_string(), "2.5s");
        assert_eq!(Timestamp::from_millis(9).to_string(), "t+9ms");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(Timestamp::from_millis(5) < Timestamp::from_millis(6));
        assert!(DurationMs::from_millis(5) < DurationMs::from_secs(1));
    }
}
