//! Trace records: one client request for one document.

use crate::{ByteSize, ClientId, DocId, Timestamp};
use std::fmt;

/// A single record of a workload trace: at `time`, `client` requested
/// document `doc` of `size` bytes.
///
/// Records carry the document size so that trace files are self-contained
/// (the Boston University trace the paper uses records a size per request;
/// the generator guarantees a stable size per document).
///
/// # Example
///
/// ```
/// use coopcache_types::{ByteSize, ClientId, DocId, Request, Timestamp};
/// let r = Request::new(
///     Timestamp::from_secs(60),
///     ClientId::new(3),
///     DocId::new(99),
///     ByteSize::from_kb(4),
/// );
/// assert_eq!(r.doc, DocId::new(99));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// When the client issued the request.
    pub time: Timestamp,
    /// Which client issued it.
    pub client: ClientId,
    /// The document requested.
    pub doc: DocId,
    /// The document's size in bytes.
    pub size: ByteSize,
}

impl Request {
    /// Creates a trace record.
    #[must_use]
    pub const fn new(time: Timestamp, client: ClientId, doc: DocId, size: ByteSize) -> Self {
        Self {
            time,
            client,
            doc,
            size,
        }
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {}",
            self.time, self.client, self.doc, self.size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_fields() {
        let r = Request::new(
            Timestamp::from_millis(5),
            ClientId::new(1),
            DocId::new(2),
            ByteSize::from_bytes(3),
        );
        assert_eq!(r.time.as_millis(), 5);
        assert_eq!(r.client.as_u32(), 1);
        assert_eq!(r.doc.as_u64(), 2);
        assert_eq!(r.size.as_bytes(), 3);
    }

    #[test]
    fn display_is_nonempty_and_stable() {
        let r = Request::new(
            Timestamp::from_millis(5),
            ClientId::new(1),
            DocId::new(2),
            ByteSize::from_bytes(3),
        );
        assert_eq!(r.to_string(), "t+5ms client:1 doc:2 3B");
    }

    #[test]
    fn equality_is_structural() {
        let a = Request::new(
            Timestamp::ZERO,
            ClientId::new(0),
            DocId::new(0),
            ByteSize::ZERO,
        );
        let b = a;
        assert_eq!(a, b);
    }
}
