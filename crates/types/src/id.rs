//! Identifier newtypes for documents, caches and clients.

use std::fmt;

/// Identifier of a unique web document (a URL interned to an integer).
///
/// Trace generators and parsers intern URLs into dense `DocId`s; the cache
/// layers never see URL strings, which keeps the hot path allocation-free.
///
/// # Example
///
/// ```
/// use coopcache_types::DocId;
/// let d = DocId::new(17);
/// assert_eq!(d.as_u64(), 17);
/// assert_eq!(d.to_string(), "doc:17");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DocId(u64);

impl DocId {
    /// Creates a document id from its raw integer value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw integer value.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc:{}", self.0)
    }
}

impl From<u64> for DocId {
    fn from(raw: u64) -> Self {
        Self::new(raw)
    }
}

/// Identifier of a proxy cache within a cooperation group.
///
/// Cache ids are dense indices (`0..group_size`) so they can double as
/// indices into per-cache vectors.
///
/// # Example
///
/// ```
/// use coopcache_types::CacheId;
/// let c = CacheId::new(2);
/// assert_eq!(c.index(), 2);
/// assert_eq!(c.to_string(), "cache:2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CacheId(u16);

impl CacheId {
    /// Creates a cache id from a dense group index.
    #[must_use]
    pub const fn new(index: u16) -> Self {
        Self(index)
    }

    /// Returns the dense index as a `usize`, suitable for vector indexing.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u16` value.
    #[must_use]
    pub const fn as_u16(self) -> u16 {
        self.0
    }
}

impl fmt::Display for CacheId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cache:{}", self.0)
    }
}

impl From<u16> for CacheId {
    fn from(raw: u16) -> Self {
        Self::new(raw)
    }
}

/// Identifier of a client (an end user's browser) issuing requests.
///
/// The trace substrate models the Boston University trace population of 591
/// users; clients are mapped onto caches by a
/// partitioning strategy (see `coopcache-trace`).
///
/// # Example
///
/// ```
/// use coopcache_types::ClientId;
/// let u = ClientId::new(590);
/// assert_eq!(u.as_u32(), 590);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClientId(u32);

impl ClientId {
    /// Creates a client id from its raw integer value.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Returns the raw integer value.
    #[must_use]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client:{}", self.0)
    }
}

impl From<u32> for ClientId {
    fn from(raw: u32) -> Self {
        Self::new(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn doc_id_roundtrip_and_display() {
        let d = DocId::new(123);
        assert_eq!(d.as_u64(), 123);
        assert_eq!(format!("{d}"), "doc:123");
        assert_eq!(DocId::from(123u64), d);
    }

    #[test]
    fn cache_id_indexing() {
        let c = CacheId::new(3);
        assert_eq!(c.index(), 3);
        assert_eq!(c.as_u16(), 3);
        let v = [10, 20, 30, 40];
        assert_eq!(v[c.index()], 40);
    }

    #[test]
    fn client_id_roundtrip() {
        let u = ClientId::from(9u32);
        assert_eq!(u.as_u32(), 9);
        assert_eq!(format!("{u}"), "client:9");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(DocId::new(1));
        set.insert(DocId::new(1));
        set.insert(DocId::new(2));
        assert_eq!(set.len(), 2);
        assert!(DocId::new(1) < DocId::new(2));
        assert!(CacheId::new(0) < CacheId::new(1));
        assert!(ClientId::new(5) > ClientId::new(4));
    }

    #[test]
    fn default_ids_are_zero() {
        assert_eq!(DocId::default().as_u64(), 0);
        assert_eq!(CacheId::default().index(), 0);
        assert_eq!(ClientId::default().as_u32(), 0);
    }
}
