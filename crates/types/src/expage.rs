//! The cache expiration age — the paper's measure of disk-space contention.

use crate::DurationMs;
use std::cmp::Ordering;
use std::fmt;

/// The expiration age of a cache: the average time a document is expected to
/// survive in the cache after its last hit (paper, §3.3, eq. 5).
///
/// A *high* expiration age means *low* disk-space contention. A cache that
/// has never evicted anything has observed **no contention at all**, which
/// this type models as [`ExpirationAge::Infinite`]; `Infinite` compares
/// greater than every finite age. This makes the EA placement rule total:
///
/// * a requester that has never evicted always stores a copy, and
/// * two never-evicting caches tie, in which case the requester stores
///   (the paper's "greater than or equal" rule for the requester side).
///
/// # Example
///
/// ```
/// use coopcache_types::{DurationMs, ExpirationAge};
///
/// let young = ExpirationAge::finite(DurationMs::from_secs(10));
/// let old = ExpirationAge::finite(DurationMs::from_secs(500));
/// assert!(old > young);
/// assert!(ExpirationAge::Infinite > old);
/// assert!(young.allows_store_given(old) == false);
/// assert!(old.allows_store_given(young));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExpirationAge {
    /// An observed average post-last-hit survival time.
    Finite(DurationMs),
    /// No eviction observed yet: zero contention, maximal age.
    #[default]
    Infinite,
}

impl ExpirationAge {
    /// Convenience constructor for a finite age.
    #[must_use]
    pub const fn finite(age: DurationMs) -> Self {
        Self::Finite(age)
    }

    /// Returns the finite age, or `None` when infinite.
    #[must_use]
    pub const fn as_finite(self) -> Option<DurationMs> {
        match self {
            Self::Finite(d) => Some(d),
            Self::Infinite => None,
        }
    }

    /// Returns `true` when no eviction has been observed yet.
    #[must_use]
    pub const fn is_infinite(self) -> bool {
        matches!(self, Self::Infinite)
    }

    /// The requester-side EA placement rule: should a cache with expiration
    /// age `self` store a copy of a document obtained from a cache with
    /// expiration age `supplier`?
    ///
    /// Stores only when `self > supplier` **strictly** (paper §3.4: "if
    /// the Cache Expiration Age of the Requester is greater than that of
    /// the Responder, it stores a copy"). On ties — including the
    /// no-contention `Infinite`/`Infinite` state of uncontended caches —
    /// the requester does *not* replicate; the responder keeps the copy
    /// alive instead (see [`allows_promote_given`]). This tie handling is
    /// what reproduces the paper's Table 2: at 1 GB nothing ever evicts,
    /// yet the EA remote-hit rate stays ~32% against ad-hoc's ~11%, which
    /// is only possible if tied requesters keep *not* storing.
    ///
    /// (§3.5 of the paper describes a "greater than or equal" variant;
    /// that reading is available as
    /// `PlacementScheme::EaTieStore` in `coopcache-core` and is compared
    /// in the ABL-T ablation.)
    ///
    /// [`allows_promote_given`]: ExpirationAge::allows_promote_given
    #[must_use]
    pub fn allows_store_given(self, supplier: Self) -> bool {
        self > supplier
    }

    /// The responder-side EA rule: should the responder refresh (promote)
    /// its own copy after serving a remote hit to a requester with
    /// expiration age `requester`?
    ///
    /// Promotes when `self >= requester` — the exact complement of the
    /// requester rule, so for every age pair **exactly one** side keeps
    /// the document's lease on life: either the requester stored a
    /// longer-lived copy, or the responder's copy is refreshed. This
    /// preserves the paper's worst-case guarantee (EA never reports a
    /// miss where ad-hoc would have hit) under the strict requester rule.
    #[must_use]
    pub fn allows_promote_given(self, requester: Self) -> bool {
        self >= requester
    }
}

impl PartialOrd for ExpirationAge {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ExpirationAge {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Self::Infinite, Self::Infinite) => Ordering::Equal,
            (Self::Infinite, Self::Finite(_)) => Ordering::Greater,
            (Self::Finite(_), Self::Infinite) => Ordering::Less,
            (Self::Finite(a), Self::Finite(b)) => a.cmp(b),
        }
    }
}

impl From<DurationMs> for ExpirationAge {
    fn from(age: DurationMs) -> Self {
        Self::Finite(age)
    }
}

impl fmt::Display for ExpirationAge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Finite(d) => write!(f, "{d}"),
            Self::Infinite => write!(f, "inf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fin(ms: u64) -> ExpirationAge {
        ExpirationAge::finite(DurationMs::from_millis(ms))
    }

    #[test]
    fn ordering_infinite_dominates() {
        assert!(ExpirationAge::Infinite > fin(u64::MAX));
        assert_eq!(ExpirationAge::Infinite, ExpirationAge::Infinite);
        assert!(fin(10) < fin(20));
        assert_eq!(fin(7), fin(7));
    }

    #[test]
    fn requester_rule_is_strict() {
        // Equal ages: requester does NOT store (strict > rule); the
        // responder keeps the copy alive instead.
        assert!(!fin(100).allows_store_given(fin(100)));
        assert!(!ExpirationAge::Infinite.allows_store_given(ExpirationAge::Infinite));
        // Strictly younger requester does not store.
        assert!(!fin(50).allows_store_given(fin(100)));
        assert!(!fin(50).allows_store_given(ExpirationAge::Infinite));
        // Strictly older requester stores.
        assert!(fin(200).allows_store_given(fin(100)));
        assert!(ExpirationAge::Infinite.allows_store_given(fin(1)));
    }

    #[test]
    fn responder_rule_promotes_on_tie() {
        // Equal ages: the requester did not store, so the responder must
        // keep the sole copy hot.
        assert!(fin(100).allows_promote_given(fin(100)));
        assert!(ExpirationAge::Infinite.allows_promote_given(ExpirationAge::Infinite));
        // Responder strictly older: promotes.
        assert!(fin(200).allows_promote_given(fin(100)));
        assert!(ExpirationAge::Infinite.allows_promote_given(fin(100)));
        // Responder younger: no promote (the requester stored).
        assert!(!fin(50).allows_promote_given(fin(100)));
    }

    #[test]
    fn exactly_one_side_keeps_the_replica_alive() {
        // Invariant from the paper's rationale: for any pair of ages, either
        // the requester stores a new copy or the responder refreshes its
        // copy — never neither, and "both" only on the requester side of a
        // tie where the responder lets its copy age out.
        for a in [fin(0), fin(10), fin(999), ExpirationAge::Infinite] {
            for b in [fin(0), fin(10), fin(999), ExpirationAge::Infinite] {
                let requester_stores = a.allows_store_given(b);
                let responder_promotes = b.allows_promote_given(a);
                assert!(
                    requester_stores || responder_promotes,
                    "neither side kept {a} vs {b} alive"
                );
                assert!(
                    !(requester_stores && responder_promotes),
                    "both sides refreshed for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn conversions_and_display() {
        let d = DurationMs::from_secs(3);
        let e: ExpirationAge = d.into();
        assert_eq!(e.as_finite(), Some(d));
        assert!(ExpirationAge::Infinite.as_finite().is_none());
        assert!(ExpirationAge::Infinite.is_infinite());
        assert_eq!(ExpirationAge::Infinite.to_string(), "inf");
        assert_eq!(fin(2500).to_string(), "2.5s");
    }

    #[test]
    fn default_is_infinite() {
        assert_eq!(ExpirationAge::default(), ExpirationAge::Infinite);
    }
}
