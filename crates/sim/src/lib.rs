#![forbid(unsafe_code)]
//! Trace-driven simulation of cooperative cache groups.
//!
//! Reproduces the paper's experimental apparatus (§4.1) in two flavors:
//!
//! * [`run`] — the fast synchronous driver: replays a trace through a
//!   [`coopcache_proxy::DistributedGroup`], producing hit rates, byte hit
//!   rates, the Table 1 expiration ages and the eq. 6 latency estimate.
//!   This is what regenerates every table and figure.
//! * [`run_des`] — a discrete-event simulation over a latency/bandwidth
//!   [`NetworkModel`], where requests overlap in time and latency is
//!   *measured* instead of estimated (the authors ran their simulator
//!   across real machines; this is the deterministic equivalent).
//!
//! [`capacity_sweep`] and the [`PAPER_CACHE_SIZES`] / [`PAPER_GROUP_SIZES`]
//! constants encode the paper's standard parameter grid.
//!
//! # Example — one line of Figure 1
//!
//! ```
//! use coopcache_sim::{capacity_sweep, SimConfig, PAPER_CACHE_SIZES};
//! use coopcache_trace::{generate, TraceProfile};
//! use coopcache_types::ByteSize;
//!
//! let trace = generate(&TraceProfile::small()).unwrap();
//! let points = capacity_sweep(
//!     &SimConfig::new(ByteSize::ZERO),
//!     &PAPER_CACHE_SIZES[..2], // 100KB and 1MB, for speed
//!     &trace,
//! );
//! for p in &points {
//!     println!("{}: ad-hoc {:.2}% vs EA {:.2}%",
//!              p.aggregate,
//!              100.0 * p.adhoc.metrics.hit_rate(),
//!              100.0 * p.ea.metrics.hit_rate());
//! }
//! ```

mod config;
mod des;
mod experiment;
mod runner;

pub use config::SimConfig;
pub use des::{
    run_des, run_des_with_health, run_des_with_rollups, run_des_with_series, run_des_with_sink,
    DesReport, HealthConfig, HealthReport, NetworkModel,
};
pub use experiment::{capacity_sweep, SweepPoint, PAPER_CACHE_SIZES, PAPER_GROUP_SIZES};
pub use runner::{run, run_with_observer, run_with_sink, SimReport, WindowStat};
