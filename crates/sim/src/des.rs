//! A discrete-event simulation of the cooperative protocol over a
//! latency/bandwidth network model.
//!
//! The synchronous driver in [`crate::run`] processes each request
//! atomically and *estimates* latency with the paper's eq. 6. This module
//! instead simulates the protocol's phases as timed events — ICP round,
//! peer transfer, origin fetch — so requests genuinely overlap: a
//! document can be evicted between the ICP reply and the HTTP fetch
//! (the responder then misses and the requester falls back to the
//! origin), and per-request latency is *measured* rather than estimated.

use crate::config::SimConfig;
use coopcache_metrics::GroupMetrics;
use coopcache_obs::{
    age_to_ms, event_cache, AlertEngine, AlertRule, Event, EventSink, Rollup, RollupConfig,
    SeriesGauges, SeriesRecorder, SeriesRing, SinkHandle, Span, SpanKind,
};
use coopcache_proxy::{DistributedGroup, HttpRequest, IcpQuery, RequestOutcome};
use coopcache_trace::Trace;
use coopcache_types::{ByteSize, CacheId, DocId, DurationMs, Timestamp};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Simulated-time µs for a span timestamp.
fn sim_us(t: Timestamp) -> u64 {
    t.as_millis().saturating_mul(1_000)
}

/// The root span of request `idx` (always the first id of its trace).
fn root_span(idx: usize) -> u64 {
    ((idx as u64) << 16) | 1
}

/// Allocates the next span id of request `idx`'s trace: ids are
/// `(idx << 16) | k` with `k` sequential, so two same-seed runs assemble
/// byte-identical trace trees.
fn alloc_span(span_next: &mut [u64], idx: usize) -> u64 {
    let k = span_next[idx];
    span_next[idx] += 1;
    ((idx as u64) << 16) | k
}

/// One-way delays and transfer rates of the simulated network.
///
/// The defaults are calibrated so that a 4 KB document reproduces the
/// paper's measured constants: local hit ≈ 146 ms, remote hit ≈ 342 ms,
/// miss ≈ 2784 ms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkModel {
    /// Service time of a local hit (lookup + transfer to the client).
    pub local_service: DurationMs,
    /// Duration of one ICP round (query out, replies back).
    pub icp_round: DurationMs,
    /// Connection setup time to a peer cache.
    pub peer_rtt: DurationMs,
    /// Peer-to-peer transfer rate, bytes per millisecond.
    pub peer_bytes_per_ms: u64,
    /// Connection setup time to the origin server.
    pub origin_rtt: DurationMs,
    /// Origin transfer rate, bytes per millisecond.
    pub origin_bytes_per_ms: u64,
    /// Probability, in permille, that an ICP query/reply pair is lost
    /// (ICP rides on UDP; a lost exchange makes the peer invisible for
    /// that round and can turn a would-be remote hit into an origin
    /// fetch). Deterministic per (request, peer) via `loss_seed`.
    pub icp_loss_permille: u32,
    /// Seed for the deterministic loss process.
    pub loss_seed: u64,
}

impl NetworkModel {
    /// Calibrated to the paper's measured latencies for a 4 KB document:
    /// 146 / ~342 / ~2784 ms.
    #[must_use]
    pub const fn paper_calibrated() -> Self {
        Self {
            local_service: DurationMs::from_millis(146),
            icp_round: DurationMs::from_millis(42),
            peer_rtt: DurationMs::from_millis(100),
            peer_bytes_per_ms: 20, // 4 KB in 200 ms
            origin_rtt: DurationMs::from_millis(1_492),
            origin_bytes_per_ms: 3, // ≈4 KB in ~1333 ms
            icp_loss_permille: 0,
            loss_seed: 0x1C9_1055,
        }
    }

    /// Returns a copy with the given ICP loss rate in permille (0–1000).
    ///
    /// # Panics
    ///
    /// Panics if `permille > 1000`.
    #[must_use]
    pub fn with_icp_loss_permille(mut self, permille: u32) -> Self {
        assert!(permille <= 1000, "loss is at most 1000 permille");
        self.icp_loss_permille = permille;
        self
    }

    /// Deterministically decides whether the ICP exchange between a
    /// request and a peer was lost.
    fn icp_lost(&self, request_idx: usize, peer: CacheId) -> bool {
        if self.icp_loss_permille == 0 {
            return false;
        }
        let mut z = self
            .loss_seed
            .wrapping_add((request_idx as u64) << 16)
            .wrapping_add(u64::from(peer.as_u16()));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % 1000) < u64::from(self.icp_loss_permille)
    }

    /// Transfer time for `size` bytes at `rate` bytes/ms (ceiling).
    fn transfer(size: ByteSize, rate: u64) -> DurationMs {
        let rate = rate.max(1);
        DurationMs::from_millis(size.as_bytes().div_ceil(rate))
    }

    /// End-to-end remote-hit latency for a document of `size`.
    #[must_use]
    pub fn remote_hit_latency(&self, size: ByteSize) -> DurationMs {
        self.icp_round + self.peer_rtt + Self::transfer(size, self.peer_bytes_per_ms)
    }

    /// End-to-end miss latency for a document of `size`.
    #[must_use]
    pub fn miss_latency(&self, size: ByteSize) -> DurationMs {
        self.icp_round + self.origin_rtt + Self::transfer(size, self.origin_bytes_per_ms)
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

/// Result of a discrete-event run.
#[derive(Debug, Clone, PartialEq)]
pub struct DesReport {
    /// The same counters the synchronous driver produces.
    pub metrics: GroupMetrics,
    /// Measured mean latency over all requests, in milliseconds.
    pub mean_latency_ms: f64,
    /// Measured median latency.
    pub p50_latency_ms: u64,
    /// Measured 95th-percentile latency.
    pub p95_latency_ms: u64,
    /// Times an ICP-located document vanished before the HTTP fetch and
    /// the requester fell back to the origin (impossible in the
    /// synchronous driver; a genuine concurrency effect).
    pub icp_fallbacks: u64,
    /// Mean lifetime-average expiration age across caches, ms.
    pub avg_expiration_age_ms: Option<f64>,
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    /// A client request enters its cache.
    Arrival,
    /// The ICP round completed; pick a responder or go to the origin.
    IcpDone,
    /// The peer transfer completed.
    PeerFetchDone {
        responder: CacheId,
        sent: HttpRequest,
    },
    /// The origin transfer completed (`started` = when the fetch began,
    /// for the origin-fetch span).
    OriginFetchDone { started: Timestamp },
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    requester: CacheId,
    doc: DocId,
    size: ByteSize,
    arrival: Timestamp,
}

/// Counts events per cache into series recorders while forwarding them
/// to the caller's sink, if any. Installed as the run's sink whenever a
/// sink *or* a series is requested, so placement and eviction events
/// from inside the group are counted exactly once.
struct SeriesTap {
    inner: Option<SinkHandle>,
    recorders: Vec<SeriesRecorder>,
    /// One SLO engine per recorder (empty when no rules are installed);
    /// fed each boundary point as the recorders cross it.
    engines: Vec<AlertEngine>,
    /// Alert state transitions in virtual-time order — pure function of
    /// the trace, so same-seed runs produce identical streams.
    alerts: Vec<Event>,
    /// Online aggregate replacing raw JSONL for large sweeps.
    rollup: Option<Rollup>,
}

impl EventSink for SeriesTap {
    fn emit(&mut self, event: &Event) {
        if !self.recorders.is_empty() {
            if let Some(cache) = event_cache(event) {
                if let Some(rec) = self.recorders.get_mut(cache.index()) {
                    rec.observe(event);
                }
            }
        }
        if let Some(rollup) = &mut self.rollup {
            rollup.observe(event);
        }
        if let Some(inner) = &self.inner {
            inner.emit(event);
        }
    }
}

/// Locks the tap, recovering from poisoning — the DES is single-threaded,
/// but the sim crate stays panic-free regardless.
fn lock_tap(tap: &Mutex<SeriesTap>) -> MutexGuard<'_, SeriesTap> {
    tap.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Advances every recorder to virtual time `now`, reading occupancy
/// gauges from the group only when a sample boundary is actually due.
fn advance_series(tap: &Mutex<SeriesTap>, group: &DistributedGroup, now: Timestamp) {
    let now_ms = now.as_millis();
    let mut guard = lock_tap(tap);
    let tap = &mut *guard;
    let mut fired: Vec<Event> = Vec::new();
    for (i, rec) in tap.recorders.iter_mut().enumerate() {
        if now_ms < rec.next_sample_ms() {
            continue;
        }
        let node = group.node(rec.cache());
        let cache = node.cache();
        let gauges = SeriesGauges {
            docs: u64::try_from(cache.len()).unwrap_or(u64::MAX),
            used_bytes: cache.used().as_bytes(),
            capacity_bytes: cache.capacity().as_bytes(),
            expiration_age_ms: age_to_ms(node.expiration_age()),
            // The DES has no peer-health plane; quarantine is a live-
            // daemon concept.
            quarantined: 0,
        };
        let engine = tap.engines.get_mut(i);
        match engine {
            Some(engine) => rec.advance_with(now_ms, gauges, |point| {
                for f in engine.observe(point) {
                    fired.push(Event::Alert {
                        cache: f.cache,
                        metric: f.metric,
                        op: f.op,
                        threshold: f.threshold,
                        value: f.value,
                        windows: f.windows,
                        state: f.state,
                    });
                }
            }),
            None => rec.advance(now_ms, gauges),
        }
    }
    // Alert events flow like any other event — counted into the firing
    // node's own series, folded into the rollup, forwarded to the
    // caller's sink — and are additionally collected for the report.
    for event in fired {
        tap.emit(&event);
        tap.alerts.push(event);
    }
}

/// Runs the discrete-event simulation of a distributed group.
///
/// Uses `config` for the group shape/scheme and `network` for timing.
/// The eq. 6 latency constants in `config.latency` are ignored — latency
/// is measured from the event timeline instead.
///
/// # Example
///
/// ```
/// use coopcache_sim::{run_des, NetworkModel, SimConfig};
/// use coopcache_trace::{generate, TraceProfile};
/// use coopcache_types::ByteSize;
///
/// let trace = generate(&TraceProfile::small().with_requests(2_000)).unwrap();
/// let report = run_des(
///     &SimConfig::new(ByteSize::from_mb(1)),
///     &NetworkModel::paper_calibrated(),
///     &trace,
/// );
/// assert_eq!(report.metrics.requests, 2_000);
/// assert!(report.mean_latency_ms > 0.0);
/// ```
#[must_use]
pub fn run_des(config: &SimConfig, network: &NetworkModel, trace: &Trace) -> DesReport {
    run_des_inner(config, network, trace, None, None).0
}

/// Health-plane configuration for a DES run: series cadence, SLO rules
/// and the optional online rollup.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Virtual-time sampling interval for the per-node series rings.
    pub interval_ms: u64,
    /// Points retained per node ring.
    pub capacity: usize,
    /// SLO rules evaluated on every node at each sample boundary.
    /// Each state transition becomes an [`Event::Alert`].
    pub rules: Vec<AlertRule>,
    /// When set, an online [`Rollup`] aggregates the full event stream
    /// in bounded memory alongside the rings.
    pub rollup: Option<RollupConfig>,
}

/// Everything the health plane produced during a DES run.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Per-node series rings, ascending by cache id.
    pub rings: Vec<SeriesRing>,
    /// Alert state transitions ([`Event::Alert`]) in virtual-time order.
    /// A pure function of the trace: same seed → identical stream.
    pub alerts: Vec<Event>,
    /// The rollup aggregate, when one was configured.
    pub rollup: Option<Rollup>,
}

/// Like [`run_des`], but streams events into `sink` when one is supplied.
/// Request events carry the *measured* completion latency (in µs), and
/// ICP query/reply events reflect the peers actually probed — including
/// queries whose replies were lost.
#[must_use]
pub fn run_des_with_sink(
    config: &SimConfig,
    network: &NetworkModel,
    trace: &Trace,
    sink: Option<SinkHandle>,
) -> DesReport {
    run_des_inner(config, network, trace, sink, None).0
}

/// Like [`run_des_with_sink`], but additionally samples every node's
/// cumulative counters, request latency and occupancy into a per-node
/// time-series ring at `interval_ms` boundaries of *virtual* time
/// (`capacity` retained points per node, oldest evicted first).
///
/// Fully deterministic: the same trace and config produce byte-identical
/// rings ([`SeriesRing::to_json`]) on every run — the pinned fixture
/// behind `coopcache top --replay` and the determinism suite.
#[must_use]
pub fn run_des_with_series(
    config: &SimConfig,
    network: &NetworkModel,
    trace: &Trace,
    sink: Option<SinkHandle>,
    interval_ms: u64,
    capacity: usize,
) -> (DesReport, Vec<SeriesRing>) {
    let spec = TapSpec {
        series: Some((interval_ms, capacity)),
        rules: Vec::new(),
        rollup: None,
    };
    let (report, health) = run_des_inner(config, network, trace, sink, Some(spec));
    (report, health.rings)
}

/// Like [`run_des_with_series`], additionally evaluating SLO rules at
/// every virtual-time sample boundary and (optionally) folding the full
/// event stream into an online [`Rollup`]. The alert stream and the
/// rollup are pure functions of the trace: same seed, same bytes.
#[must_use]
pub fn run_des_with_health(
    config: &SimConfig,
    network: &NetworkModel,
    trace: &Trace,
    sink: Option<SinkHandle>,
    health: HealthConfig,
) -> (DesReport, HealthReport) {
    let spec = TapSpec {
        series: Some((health.interval_ms, health.capacity)),
        rules: health.rules,
        rollup: health.rollup,
    };
    run_des_inner(config, network, trace, sink, Some(spec))
}

/// Runs the DES with *only* an online rollup observing the event
/// stream: no per-event JSONL, no per-node rings — the whole
/// observability cost of a sweep is the rollup's fixed-size state, so a
/// 256-node × 10M-request run stays in bounded memory.
#[must_use]
pub fn run_des_with_rollups(
    config: &SimConfig,
    network: &NetworkModel,
    trace: &Trace,
    rollup: RollupConfig,
) -> (DesReport, Rollup) {
    let spec = TapSpec {
        series: None,
        rules: Vec::new(),
        rollup: Some(rollup),
    };
    let (report, health) = run_des_inner(config, network, trace, None, Some(spec));
    // The tap was configured with a rollup, so one always comes back;
    // the fallback only keeps this path panic-free.
    let rollup = health.rollup.unwrap_or_else(|| Rollup::new(rollup));
    (report, rollup)
}

/// What a run's tap should record beyond forwarding to the caller's
/// sink (internal shape behind the public entry points).
struct TapSpec {
    series: Option<(u64, usize)>,
    rules: Vec<AlertRule>,
    rollup: Option<RollupConfig>,
}

fn run_des_inner(
    config: &SimConfig,
    network: &NetworkModel,
    trace: &Trace,
    sink: Option<SinkHandle>,
    spec: Option<TapSpec>,
) -> (DesReport, HealthReport) {
    let mut group = DistributedGroup::with_window(
        config.group_size,
        config.aggregate_capacity,
        config.policy,
        config.scheme,
        config.window,
    );
    let n = config.group_size as usize;
    // The tap fronts the caller's sink whenever anything observes the
    // run; with neither a sink nor a series requested there is no tap
    // and the run pays nothing.
    let tap = (sink.is_some() || spec.is_some()).then(|| {
        let (recorders, engines, rollup) = spec.as_ref().map_or_else(
            || (Vec::new(), Vec::new(), None),
            |spec| {
                let recorders: Vec<SeriesRecorder> =
                    spec.series
                        .map_or_else(Vec::new, |(interval_ms, capacity)| {
                            (0..n)
                                .map(|i| {
                                    SeriesRecorder::new(
                                        CacheId::new(i as u16),
                                        interval_ms,
                                        capacity,
                                    )
                                })
                                .collect()
                        });
                let engines = if spec.rules.is_empty() {
                    Vec::new()
                } else {
                    recorders
                        .iter()
                        .map(|r| AlertEngine::new(r.cache(), spec.rules.clone()))
                        .collect()
                };
                (recorders, engines, spec.rollup.map(Rollup::new))
            },
        );
        Arc::new(Mutex::new(SeriesTap {
            inner: sink.clone(),
            recorders,
            engines,
            alerts: Vec::new(),
            rollup,
        }))
    });
    let sink = tap.as_ref().map(|t| SinkHandle::from_arc(Arc::clone(t)));
    if let Some(sink) = &sink {
        group.set_sink(sink.clone());
    }

    let requests: Vec<InFlight> = trace
        .iter()
        .enumerate()
        .map(|(seq, r)| InFlight {
            requester: config.partitioner.assign(r, seq, n),
            doc: r.doc,
            size: r.size,
            arrival: r.time,
        })
        .collect();

    // Min-heap of (time, tiebreak seq, request index, phase).
    let mut queue: BinaryHeap<Reverse<(Timestamp, u64, usize)>> = BinaryHeap::new();
    let mut phases: Vec<Phase> = vec![Phase::Arrival; requests.len()];
    // Next span-id suffix per request; the root span is always k = 1.
    let mut span_next: Vec<u64> = vec![2; requests.len()];
    let mut seq = 0u64;
    let push = |queue: &mut BinaryHeap<Reverse<(Timestamp, u64, usize)>>,
                seq: &mut u64,
                at: Timestamp,
                idx: usize| {
        queue.push(Reverse((at, *seq, idx)));
        *seq += 1;
    };
    for (idx, r) in requests.iter().enumerate() {
        push(&mut queue, &mut seq, r.arrival, idx);
    }

    let mut metrics = GroupMetrics::default();
    let mut latencies: Vec<u64> = Vec::with_capacity(requests.len());
    let mut icp_fallbacks = 0u64;

    let complete = |metrics: &mut GroupMetrics,
                    latencies: &mut Vec<u64>,
                    idx: usize,
                    r: &InFlight,
                    outcome: RequestOutcome,
                    done: Timestamp| {
        metrics.record(outcome, r.size);
        let latency_ms = done.saturating_since(r.arrival).as_millis();
        latencies.push(latency_ms);
        if let Some(sink) = &sink {
            let (class, responder, stored) = outcome.event_parts();
            // The root span closes when the request completes; its id is
            // fixed (`k = 1`), so it sorts first in the assembled tree
            // even though the child spans were emitted earlier.
            sink.emit(&Event::Span(Span {
                trace_id: idx as u64,
                span_id: root_span(idx),
                parent: None,
                cache: r.requester,
                kind: SpanKind::Request,
                doc: Some(r.doc),
                peer: None,
                start_us: sim_us(r.arrival),
                end_us: sim_us(done),
                status: class.name(),
            }));
            sink.emit(&Event::Request {
                seq: idx as u64,
                cache: r.requester,
                doc: r.doc,
                class,
                responder,
                stored,
                latency_us: Some(latency_ms * 1_000),
            });
        }
    };

    let mut end_time = Timestamp::from_millis(0);
    while let Some(Reverse((now, _, idx))) = queue.pop() {
        if let Some(tap) = &tap {
            advance_series(tap, &group, now);
        }
        end_time = end_time.max(now);
        let r = requests[idx];
        match phases[idx] {
            Phase::Arrival => {
                if group
                    .node_mut(r.requester)
                    .handle_client_lookup(r.doc, now)
                    .is_some()
                {
                    complete(
                        &mut metrics,
                        &mut latencies,
                        idx,
                        &r,
                        RequestOutcome::LocalHit,
                        now + network.local_service,
                    );
                } else {
                    phases[idx] = Phase::IcpDone;
                    push(&mut queue, &mut seq, now + network.icp_round, idx);
                }
            }
            Phase::IcpDone => {
                let query = IcpQuery {
                    from: r.requester,
                    doc: r.doc,
                };
                let round = sink.as_ref().map(|_| alloc_span(&mut span_next, idx));
                let mut responder = None;
                for off in 1..n {
                    let peer = CacheId::new(((r.requester.index() + off) % n) as u16);
                    if let Some(sink) = &sink {
                        sink.emit(&Event::IcpQuery {
                            from: r.requester,
                            to: peer,
                            doc: r.doc,
                        });
                    }
                    if network.icp_lost(idx, peer) {
                        // The exchange vanished on the wire: the query
                        // event stands, but no reply ever arrives (and
                        // no icp-handle span — the peer never saw it).
                        continue;
                    }
                    let hit = group.node(peer).handle_icp_query(query).hit;
                    if let Some(sink) = &sink {
                        sink.emit(&Event::IcpReply {
                            from: peer,
                            doc: r.doc,
                            hit,
                        });
                        if let Some(round) = round {
                            sink.emit(&Event::Span(Span {
                                trace_id: idx as u64,
                                span_id: alloc_span(&mut span_next, idx),
                                parent: Some(round),
                                cache: peer,
                                kind: SpanKind::IcpHandle,
                                doc: Some(r.doc),
                                peer: Some(r.requester),
                                start_us: sim_us(now),
                                end_us: sim_us(now),
                                status: if hit { "hit" } else { "miss" },
                            }));
                        }
                    }
                    if hit {
                        responder = Some(peer);
                        break;
                    }
                }
                if let (Some(sink), Some(round)) = (&sink, round) {
                    sink.emit(&Event::Span(Span {
                        trace_id: idx as u64,
                        span_id: round,
                        parent: Some(root_span(idx)),
                        cache: r.requester,
                        kind: SpanKind::IcpRound,
                        doc: Some(r.doc),
                        peer: None,
                        start_us: sim_us(r.arrival),
                        end_us: sim_us(now),
                        status: if responder.is_some() { "hit" } else { "miss" },
                    }));
                }
                match responder {
                    Some(peer) => {
                        let sent = group.node(r.requester).build_http_request(r.doc);
                        phases[idx] = Phase::PeerFetchDone {
                            responder: peer,
                            sent,
                        };
                        let at = now
                            + network.peer_rtt
                            + NetworkModel::transfer(r.size, network.peer_bytes_per_ms);
                        push(&mut queue, &mut seq, at, idx);
                    }
                    None => {
                        phases[idx] = Phase::OriginFetchDone { started: now };
                        let at = now
                            + network.origin_rtt
                            + NetworkModel::transfer(r.size, network.origin_bytes_per_ms);
                        push(&mut queue, &mut seq, at, idx);
                    }
                }
            }
            Phase::PeerFetchDone { responder, sent } => {
                let served = group.node_mut(responder).handle_http_request(sent, now);
                let spans = sink.as_ref().map(|_| {
                    (
                        alloc_span(&mut span_next, idx),
                        alloc_span(&mut span_next, idx),
                    )
                });
                // Mirrors the live daemon: the requester's peer-fetch
                // span covers the TCP leg, the responder's doc-serve
                // span hangs under it.
                let emit_spans = |fetch_status: &'static str, serve_status: &'static str| {
                    if let (Some(sink), Some((fetch, serve))) = (&sink, spans) {
                        sink.emit(&Event::Span(Span {
                            trace_id: idx as u64,
                            span_id: fetch,
                            parent: Some(root_span(idx)),
                            cache: r.requester,
                            kind: SpanKind::PeerFetch,
                            doc: Some(r.doc),
                            peer: Some(responder),
                            start_us: sim_us(r.arrival + network.icp_round),
                            end_us: sim_us(now),
                            status: fetch_status,
                        }));
                        sink.emit(&Event::Span(Span {
                            trace_id: idx as u64,
                            span_id: serve,
                            parent: Some(fetch),
                            cache: responder,
                            kind: SpanKind::DocServe,
                            doc: Some(r.doc),
                            peer: Some(r.requester),
                            start_us: sim_us(now),
                            end_us: sim_us(now),
                            status: serve_status,
                        }));
                    }
                };
                match served {
                    Some(response) => {
                        let promoted = group
                            .node(responder)
                            .scheme()
                            .responder_promotes(response.responder_age, sent.requester_age);
                        let stored = group
                            .node_mut(r.requester)
                            .complete_remote_fetch(sent, response, now);
                        emit_spans(
                            if stored { "stored" } else { "declined" },
                            if promoted { "promoted" } else { "kept" },
                        );
                        complete(
                            &mut metrics,
                            &mut latencies,
                            idx,
                            &r,
                            RequestOutcome::RemoteHit {
                                responder,
                                stored_locally: stored,
                                promoted_at_responder: promoted,
                            },
                            now,
                        );
                    }
                    None => {
                        // The document vanished between ICP and HTTP:
                        // fall back to the origin server.
                        emit_spans("not-found", "not-found");
                        icp_fallbacks += 1;
                        phases[idx] = Phase::OriginFetchDone { started: now };
                        let at = now
                            + network.origin_rtt
                            + NetworkModel::transfer(r.size, network.origin_bytes_per_ms);
                        push(&mut queue, &mut seq, at, idx);
                    }
                }
            }
            Phase::OriginFetchDone { started } => {
                let stored = group
                    .node_mut(r.requester)
                    .complete_origin_fetch(r.doc, r.size, now);
                if let Some(sink) = &sink {
                    sink.emit(&Event::Span(Span {
                        trace_id: idx as u64,
                        span_id: alloc_span(&mut span_next, idx),
                        parent: Some(root_span(idx)),
                        cache: r.requester,
                        kind: SpanKind::OriginFetch,
                        doc: Some(r.doc),
                        peer: None,
                        start_us: sim_us(started),
                        end_us: sim_us(now),
                        status: if stored { "stored" } else { "declined" },
                    }));
                }
                complete(
                    &mut metrics,
                    &mut latencies,
                    idx,
                    &r,
                    RequestOutcome::Miss {
                        stored_locally: stored,
                        stored_at_ancestor: false,
                    },
                    now,
                );
            }
        }
    }

    latencies.sort_unstable();
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    let percentile = |p: f64| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
            latencies[idx]
        }
    };
    // Flush trailing sample boundaries up to the last event time, then
    // hand the health plane's output back.
    let health = tap.map_or_else(
        || HealthReport {
            rings: Vec::new(),
            alerts: Vec::new(),
            rollup: None,
        },
        |tap| {
            advance_series(&tap, &group, end_time);
            let mut guard = lock_tap(&tap);
            let tap = &mut *guard;
            HealthReport {
                rings: tap
                    .recorders
                    .drain(..)
                    .map(SeriesRecorder::into_ring)
                    .collect(),
                alerts: std::mem::take(&mut tap.alerts),
                rollup: tap.rollup.take(),
            }
        },
    );
    (
        DesReport {
            metrics,
            mean_latency_ms: mean,
            p50_latency_ms: percentile(0.50),
            p95_latency_ms: percentile(0.95),
            icp_fallbacks,
            avg_expiration_age_ms: group.average_expiration_age_ms(),
        },
        health,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;
    use coopcache_core::PlacementScheme;
    use coopcache_trace::{generate, TraceProfile};

    fn trace() -> Trace {
        generate(&TraceProfile::small().with_requests(5_000)).unwrap()
    }

    fn cfg(kb: u64) -> SimConfig {
        SimConfig::new(ByteSize::from_kb(kb))
    }

    #[test]
    fn network_model_matches_paper_constants_at_4kb() {
        let net = NetworkModel::paper_calibrated();
        let four_kb = ByteSize::from_kb(4);
        assert_eq!(net.local_service.as_millis(), 146);
        let remote = net.remote_hit_latency(four_kb).as_millis();
        assert!((330..=350).contains(&remote), "remote {remote}");
        let miss = net.miss_latency(four_kb).as_millis();
        assert!((2_700..=2_900).contains(&miss), "miss {miss}");
    }

    #[test]
    fn transfer_rounds_up() {
        assert_eq!(
            NetworkModel::transfer(ByteSize::from_bytes(41), 20),
            DurationMs::from_millis(3)
        );
        assert_eq!(NetworkModel::transfer(ByteSize::ZERO, 20), DurationMs::ZERO);
        // Zero rate is clamped rather than dividing by zero.
        assert_eq!(
            NetworkModel::transfer(ByteSize::from_bytes(5), 0),
            DurationMs::from_millis(5)
        );
    }

    #[test]
    fn des_processes_every_request() {
        let t = trace();
        let rep = run_des(&cfg(500), &NetworkModel::default(), &t);
        assert_eq!(rep.metrics.requests as usize, t.len());
        assert_eq!(
            rep.metrics.local_hits + rep.metrics.remote_hits + rep.metrics.misses,
            rep.metrics.requests
        );
    }

    #[test]
    fn des_is_deterministic() {
        let t = trace();
        let a = run_des(&cfg(500), &NetworkModel::default(), &t);
        let b = run_des(&cfg(500), &NetworkModel::default(), &t);
        assert_eq!(a, b);
    }

    #[test]
    fn des_series_is_byte_identical_across_runs() {
        let t = trace();
        let (_, a) = run_des_with_series(&cfg(500), &NetworkModel::default(), &t, None, 500, 64);
        let (_, b) = run_des_with_series(&cfg(500), &NetworkModel::default(), &t, None, 500, 64);
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty(), "a group run must produce rings");
        for (ra, rb) in a.iter().zip(&b) {
            assert!(!ra.points().is_empty(), "virtual time crosses boundaries");
            assert_eq!(ra.to_json(), rb.to_json(), "cache {}", ra.cache());
        }
    }

    #[test]
    fn des_series_does_not_change_the_report() {
        let t = trace();
        let plain = run_des(&cfg(500), &NetworkModel::default(), &t);
        let (sampled, rings) =
            run_des_with_series(&cfg(500), &NetworkModel::default(), &t, None, 500, 64);
        assert_eq!(plain, sampled);
        // Counters accumulate: the last point of each ring dominates the
        // first, and the per-node request counts sum to the run's total.
        let req_idx = coopcache_obs::EventKind::Request.index();
        let total: u64 = rings
            .iter()
            .filter_map(|r| r.points().last())
            .map(|p| p.counters[req_idx])
            .sum();
        assert!(
            total <= plain.metrics.requests,
            "cumulative counters cannot exceed the request total"
        );
        assert!(total > 0, "sampling must observe requests");
    }

    #[test]
    fn des_health_alerts_are_deterministic_and_fire() {
        // An impossible hit-rate floor (above 1000‰) violates on every
        // window with traffic, so the alert plane must fire somewhere.
        let t = trace();
        let health = || HealthConfig {
            interval_ms: 500,
            capacity: 64,
            rules: vec![AlertRule::hit_rate_floor(1_001, 2)],
            rollup: None,
        };
        let (_, a) = run_des_with_health(&cfg(500), &NetworkModel::default(), &t, None, health());
        let (_, b) = run_des_with_health(&cfg(500), &NetworkModel::default(), &t, None, health());
        assert!(!a.alerts.is_empty(), "floor above 100% must fire");
        assert_eq!(a.alerts, b.alerts, "same seed, same alert stream");
        assert!(
            a.alerts.iter().all(|e| matches!(e, Event::Alert { .. })),
            "only alerts in the stream"
        );
        // Alert events are counted into the firing node's own series.
        let alert_idx = coopcache_obs::EventKind::Alert.index();
        let counted: u64 = a
            .rings
            .iter()
            .filter_map(|r| r.points().last())
            .map(|p| p.counters[alert_idx])
            .sum();
        assert!(counted > 0, "alerts count into the series plane");
    }

    #[test]
    fn des_rollup_totals_match_the_report() {
        let t = trace();
        let (report, rollup) = run_des_with_rollups(
            &cfg(500),
            &NetworkModel::default(),
            &t,
            RollupConfig::default(),
        );
        let (requests, hits, _) = rollup.totals();
        assert_eq!(requests, report.metrics.requests);
        assert_eq!(hits, report.metrics.local_hits + report.metrics.remote_hits);
        // And the rollup JSON is deterministic across runs.
        let (_, again) = run_des_with_rollups(
            &cfg(500),
            &NetworkModel::default(),
            &t,
            RollupConfig::default(),
        );
        assert_eq!(rollup.to_json(), again.to_json());
    }

    #[test]
    fn des_hit_rates_track_synchronous_driver() {
        // The DES interleaves requests, so counts differ slightly from the
        // synchronous driver — but the overall rates must agree closely.
        let t = trace();
        let sync_report = run(&cfg(500), &t);
        let des_report = run_des(&cfg(500), &NetworkModel::default(), &t);
        let diff = (sync_report.metrics.hit_rate() - des_report.metrics.hit_rate()).abs();
        assert!(
            diff < 0.05,
            "sync {} vs des {}",
            sync_report.metrics.hit_rate(),
            des_report.metrics.hit_rate()
        );
    }

    #[test]
    fn des_measured_latency_is_plausible() {
        let t = trace();
        let rep = run_des(&cfg(500), &NetworkModel::default(), &t);
        assert!(rep.mean_latency_ms >= 146.0, "mean {}", rep.mean_latency_ms);
        assert!(rep.p50_latency_ms <= rep.p95_latency_ms);
        // With misses present, p95 should reflect origin fetches.
        assert!(rep.p95_latency_ms >= 342, "p95 {}", rep.p95_latency_ms);
    }

    #[test]
    fn des_ea_beats_adhoc_on_small_caches() {
        let t = trace();
        let adhoc = run_des(&cfg(100), &NetworkModel::default(), &t);
        let ea = run_des(
            &cfg(100).with_scheme(PlacementScheme::Ea),
            &NetworkModel::default(),
            &t,
        );
        assert!(
            ea.metrics.hit_rate() >= adhoc.metrics.hit_rate() - 0.01,
            "EA {} vs ad-hoc {}",
            ea.metrics.hit_rate(),
            adhoc.metrics.hit_rate()
        );
    }

    #[test]
    fn total_icp_loss_behaves_like_isolation() {
        let t = trace();
        let lossless = run_des(&cfg(500), &NetworkModel::default(), &t);
        let all_lost = run_des(
            &cfg(500),
            &NetworkModel::default().with_icp_loss_permille(1_000),
            &t,
        );
        assert_eq!(all_lost.metrics.remote_hits, 0, "no ICP, no remote hits");
        assert!(all_lost.metrics.hit_rate() < lossless.metrics.hit_rate());
    }

    #[test]
    fn moderate_icp_loss_degrades_gracefully() {
        let t = trace();
        let lossless = run_des(&cfg(500), &NetworkModel::default(), &t);
        let lossy = run_des(
            &cfg(500),
            &NetworkModel::default().with_icp_loss_permille(100), // 10%
            &t,
        );
        assert!(lossy.metrics.remote_hits < lossless.metrics.remote_hits);
        assert!(lossy.metrics.remote_hits > 0);
        assert!(
            lossy.metrics.hit_rate() > lossless.metrics.hit_rate() - 0.05,
            "10% ICP loss should not crater the hit rate"
        );
        // Determinism holds under loss.
        let again = run_des(
            &cfg(500),
            &NetworkModel::default().with_icp_loss_permille(100),
            &t,
        );
        assert_eq!(lossy, again);
    }

    #[test]
    #[should_panic(expected = "at most 1000")]
    fn overrange_loss_panics() {
        let _ = NetworkModel::default().with_icp_loss_permille(1_001);
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let rep = run_des(&cfg(100), &NetworkModel::default(), &Trace::default());
        assert_eq!(rep.metrics.requests, 0);
        assert_eq!(rep.mean_latency_ms, 0.0);
        assert_eq!(rep.p95_latency_ms, 0);
    }

    #[test]
    fn sink_measures_latency_for_every_request() {
        use coopcache_obs::{EventKind, HistogramSink, SinkHandle};
        use std::sync::{Arc, Mutex};
        let t = trace();
        let sink = Arc::new(Mutex::new(HistogramSink::new()));
        let handle = SinkHandle::from_arc(Arc::clone(&sink));
        let rep = run_des_with_sink(
            &cfg(100).with_scheme(PlacementScheme::Ea),
            &NetworkModel::default(),
            &t,
            Some(handle),
        );
        let agg = sink.lock().unwrap();
        assert_eq!(agg.count(EventKind::Request) as usize, t.len());
        // Every DES request carries a measured latency.
        assert_eq!(agg.request_latency_us.count() as usize, t.len());
        // The histogram's mean agrees with the report's (µs vs ms).
        let mean_ms = agg.request_latency_us.mean().unwrap() / 1_000.0;
        assert!(
            (mean_ms - rep.mean_latency_ms).abs() < 1.0,
            "histogram {mean_ms} vs report {}",
            rep.mean_latency_ms
        );
        // Contended EA runs produce placement and eviction events.
        assert!(agg.count(EventKind::Placement) > 0);
        assert!(agg.count(EventKind::Eviction) > 0);
        assert!(agg.count(EventKind::IcpQuery) >= agg.count(EventKind::IcpReply));
    }

    #[test]
    fn every_request_assembles_into_a_trace_tree() {
        use coopcache_obs::{SinkHandle, TraceAssembler};
        use std::sync::{Arc, Mutex};
        let t = generate(&TraceProfile::small().with_requests(400)).unwrap();
        let run_once = || {
            let asm = Arc::new(Mutex::new(TraceAssembler::new()));
            let handle = SinkHandle::from_arc(Arc::clone(&asm));
            let _ = run_des_with_sink(
                &cfg(100).with_scheme(PlacementScheme::Ea),
                &NetworkModel::default(),
                &t,
                Some(handle),
            );
            let asm = asm.lock().unwrap();
            (asm.trace_ids(), asm.render_all(true))
        };
        let (ids, rendered) = run_once();
        assert_eq!(ids.len(), t.len(), "one trace per request");
        assert!(rendered.contains("request"));
        assert!(rendered.contains("icp-round"));
        // Simulated timestamps make even the timed render reproducible.
        let (_, again) = run_once();
        assert_eq!(rendered, again);
    }

    #[test]
    fn sink_does_not_change_des_report() {
        use coopcache_obs::{NullSink, SinkHandle};
        let t = trace();
        let plain = run_des(&cfg(500), &NetworkModel::default(), &t);
        let observed = run_des_with_sink(
            &cfg(500),
            &NetworkModel::default(),
            &t,
            Some(SinkHandle::new(NullSink)),
        );
        assert_eq!(plain, observed);
    }
}
