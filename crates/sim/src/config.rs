//! Simulation configuration.

use coopcache_core::{ExpirationWindow, PlacementScheme, PolicyKind};
use coopcache_metrics::LatencyModel;
use coopcache_proxy::Discovery;
use coopcache_trace::Partitioner;
use coopcache_types::{ByteSize, DurationMs};
use std::fmt;

/// Configuration of one trace-driven simulation run.
///
/// Defaults mirror the paper's headline setup: a distributed group of
/// 4 caches sharing the aggregate capacity evenly, LRU replacement, the
/// client-to-proxy pinning partitioner and the measured latency constants.
///
/// # Example
///
/// ```
/// use coopcache_sim::SimConfig;
/// use coopcache_core::PlacementScheme;
/// use coopcache_types::ByteSize;
///
/// let cfg = SimConfig::new(ByteSize::from_mb(10))
///     .with_group_size(8)
///     .with_scheme(PlacementScheme::Ea);
/// assert_eq!(cfg.group_size, 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of caches in the (distributed) group.
    pub group_size: u16,
    /// Aggregate disk space, split evenly across the group (paper §4.1).
    pub aggregate_capacity: ByteSize,
    /// Replacement policy at every cache.
    pub policy: PolicyKind,
    /// Placement scheme under test.
    pub scheme: PlacementScheme,
    /// Expiration-age window.
    pub window: ExpirationWindow,
    /// How clients map onto caches.
    pub partitioner: Partitioner,
    /// Latency constants for the eq. 6 estimate.
    pub latency: LatencyModel,
    /// How local misses locate documents in the group (ICP, Summary-Cache
    /// digests, or no cooperation).
    pub discovery: Discovery,
    /// Optional freshness TTL enforced at every cache.
    pub ttl: Option<DurationMs>,
    /// Fraction of the trace treated as warm-up: requests are processed
    /// but excluded from the metrics (0.0 = count everything, the paper's
    /// cold-start methodology).
    pub warmup_fraction: f64,
    /// Optional per-cache capacity weights; the aggregate is split
    /// proportionally instead of evenly (the paper assumes equal shares).
    pub capacity_weights: Option<Vec<u32>>,
    /// Number of reporting windows the trace is divided into for the
    /// per-window hit-rate / expiration-age time series in `SimReport`
    /// (each rollover also emits a `WindowRollover` event).
    pub timeseries_windows: usize,
}

impl SimConfig {
    /// Creates a 4-cache ad-hoc configuration with the given aggregate
    /// capacity; chain `with_*` calls to customise.
    #[must_use]
    pub fn new(aggregate_capacity: ByteSize) -> Self {
        Self {
            group_size: 4,
            aggregate_capacity,
            policy: PolicyKind::Lru,
            scheme: PlacementScheme::AdHoc,
            window: ExpirationWindow::default(),
            partitioner: Partitioner::default(),
            latency: LatencyModel::paper_2002(),
            discovery: Discovery::Icp,
            ttl: None,
            warmup_fraction: 0.0,
            capacity_weights: None,
            timeseries_windows: 20,
        }
    }

    /// Sets the number of reporting windows for the time series.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn with_timeseries_windows(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one reporting window is required");
        self.timeseries_windows = n;
        self
    }

    /// Sets the group size.
    #[must_use]
    pub fn with_group_size(mut self, n: u16) -> Self {
        self.group_size = n;
        self
    }

    /// Sets the placement scheme.
    #[must_use]
    pub fn with_scheme(mut self, scheme: PlacementScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the replacement policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the expiration-age window.
    #[must_use]
    pub fn with_window(mut self, window: ExpirationWindow) -> Self {
        self.window = window;
        self
    }

    /// Sets the client partitioner.
    #[must_use]
    pub fn with_partitioner(mut self, partitioner: Partitioner) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Sets the latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the discovery mechanism.
    #[must_use]
    pub fn with_discovery(mut self, discovery: Discovery) -> Self {
        self.discovery = discovery;
        self
    }

    /// Sets a freshness TTL at every cache.
    #[must_use]
    pub fn with_ttl(mut self, ttl: DurationMs) -> Self {
        self.ttl = Some(ttl);
        self
    }

    /// Excludes the first `fraction` of requests from the metrics.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= fraction < 1.0`.
    #[must_use]
    pub fn with_warmup_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "warm-up fraction must be in [0, 1)"
        );
        self.warmup_fraction = fraction;
        self
    }

    /// Splits the aggregate capacity proportionally to `weights` instead
    /// of evenly (heterogeneous deployments; an ablation of the paper's
    /// equal-share assumption).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero; the group size is
    /// set to `weights.len()`.
    #[must_use]
    pub fn with_capacity_weights(mut self, weights: Vec<u32>) -> Self {
        assert!(!weights.is_empty(), "weights must not be empty");
        assert!(
            weights.iter().any(|&w| w > 0),
            "weights must not all be zero"
        );
        self.group_size = weights.len() as u16;
        self.capacity_weights = Some(weights);
        self
    }

    /// The capacity of every cache under the configured split.
    #[must_use]
    pub fn cache_capacities(&self) -> Vec<ByteSize> {
        match &self.capacity_weights {
            None => vec![self.per_cache_capacity(); usize::from(self.group_size)],
            Some(weights) => {
                let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
                weights
                    .iter()
                    .map(|&w| {
                        ByteSize::from_bytes(
                            self.aggregate_capacity.as_bytes() * u64::from(w) / total,
                        )
                    })
                    .collect()
            }
        }
    }

    /// Per-cache capacity under the even split.
    ///
    /// # Panics
    ///
    /// Panics if the group size is zero.
    #[must_use]
    pub fn per_cache_capacity(&self) -> ByteSize {
        self.aggregate_capacity
            .split_evenly(u64::from(self.group_size))
    }
}

impl fmt::Display for SimConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} caches x {} ({} total), {} replacement, {} placement",
            self.group_size,
            self.per_cache_capacity(),
            self.aggregate_capacity,
            self.policy,
            self.scheme
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let cfg = SimConfig::new(ByteSize::from_mb(1));
        assert_eq!(cfg.group_size, 4);
        assert_eq!(cfg.policy, PolicyKind::Lru);
        assert_eq!(cfg.scheme, PlacementScheme::AdHoc);
        assert_eq!(cfg.latency, LatencyModel::paper_2002());
        assert_eq!(cfg.per_cache_capacity(), ByteSize::from_bytes(250_000));
    }

    #[test]
    fn builders_chain() {
        let cfg = SimConfig::new(ByteSize::from_kb(100))
            .with_group_size(8)
            .with_scheme(PlacementScheme::Ea)
            .with_policy(PolicyKind::Lfu)
            .with_partitioner(Partitioner::RoundRobin);
        assert_eq!(cfg.group_size, 8);
        assert_eq!(cfg.scheme, PlacementScheme::Ea);
        assert_eq!(cfg.policy, PolicyKind::Lfu);
        assert_eq!(cfg.per_cache_capacity(), ByteSize::from_bytes(12_500));
    }

    #[test]
    fn capacity_weights_split_proportionally() {
        let cfg = SimConfig::new(ByteSize::from_kb(100)).with_capacity_weights(vec![1, 3]);
        assert_eq!(cfg.group_size, 2);
        assert_eq!(
            cfg.cache_capacities(),
            vec![ByteSize::from_kb(25), ByteSize::from_kb(75)]
        );
        // Even split without weights.
        let even = SimConfig::new(ByteSize::from_kb(100));
        assert_eq!(even.cache_capacities(), vec![ByteSize::from_kb(25); 4]);
    }

    #[test]
    #[should_panic(expected = "warm-up fraction")]
    fn warmup_out_of_range_panics() {
        let _ = SimConfig::new(ByteSize::from_kb(1)).with_warmup_fraction(1.0);
    }

    #[test]
    #[should_panic(expected = "weights must not be empty")]
    fn empty_weights_panic() {
        let _ = SimConfig::new(ByteSize::from_kb(1)).with_capacity_weights(vec![]);
    }

    #[test]
    fn ttl_and_discovery_builders() {
        use coopcache_proxy::Discovery;
        let cfg = SimConfig::new(ByteSize::from_kb(1))
            .with_ttl(DurationMs::from_days(1))
            .with_discovery(Discovery::Isolated)
            .with_warmup_fraction(0.25);
        assert_eq!(cfg.ttl, Some(DurationMs::from_days(1)));
        assert_eq!(cfg.discovery, Discovery::Isolated);
        assert!((cfg.warmup_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn timeseries_windows_builder() {
        let cfg = SimConfig::new(ByteSize::from_kb(1)).with_timeseries_windows(5);
        assert_eq!(cfg.timeseries_windows, 5);
        assert_eq!(SimConfig::new(ByteSize::from_kb(1)).timeseries_windows, 20);
    }

    #[test]
    #[should_panic(expected = "at least one reporting window")]
    fn zero_timeseries_windows_panics() {
        let _ = SimConfig::new(ByteSize::from_kb(1)).with_timeseries_windows(0);
    }

    #[test]
    fn display_mentions_scheme() {
        let text = SimConfig::new(ByteSize::from_mb(1))
            .with_scheme(PlacementScheme::Ea)
            .to_string();
        assert!(text.contains("ea"), "{text}");
        assert!(text.contains("4 caches"), "{text}");
    }
}
