//! Experiment helpers shared by the table/figure reproduction binaries.

use crate::config::SimConfig;
use crate::runner::{run, SimReport};
use coopcache_core::PlacementScheme;
use coopcache_trace::Trace;
use coopcache_types::ByteSize;

/// The aggregate cache sizes the paper sweeps in every experiment:
/// 100 KB, 1 MB, 10 MB, 100 MB and 1 GB (§4.1).
pub const PAPER_CACHE_SIZES: [ByteSize; 5] = [
    ByteSize::from_kb(100),
    ByteSize::from_mb(1),
    ByteSize::from_mb(10),
    ByteSize::from_mb(100),
    ByteSize::from_gb(1),
];

/// The group sizes the paper simulates: 2, 4 and 8 caches (§4.1).
pub const PAPER_GROUP_SIZES: [u16; 3] = [2, 4, 8];

/// One point of a capacity sweep: both schemes run at one aggregate size
/// on the identical trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Aggregate capacity of the group.
    pub aggregate: ByteSize,
    /// Report for the conventional ad-hoc scheme.
    pub adhoc: SimReport,
    /// Report for the EA scheme.
    pub ea: SimReport,
}

impl SweepPoint {
    /// EA hit rate minus ad-hoc hit rate (positive = EA wins).
    #[must_use]
    pub fn hit_rate_gain(&self) -> f64 {
        self.ea.metrics.hit_rate() - self.adhoc.metrics.hit_rate()
    }

    /// EA byte hit rate minus ad-hoc byte hit rate.
    #[must_use]
    pub fn byte_hit_rate_gain(&self) -> f64 {
        self.ea.metrics.byte_hit_rate() - self.adhoc.metrics.byte_hit_rate()
    }

    /// Ad-hoc estimated latency minus EA's (positive = EA is faster).
    #[must_use]
    pub fn latency_gain_ms(&self) -> f64 {
        self.adhoc.estimated_latency_ms - self.ea.estimated_latency_ms
    }
}

/// Runs the paper's standard two-scheme comparison over a set of
/// aggregate capacities, holding everything else in `base` fixed.
///
/// # Example
///
/// ```
/// use coopcache_sim::{capacity_sweep, SimConfig};
/// use coopcache_trace::{generate, TraceProfile};
/// use coopcache_types::ByteSize;
///
/// let trace = generate(&TraceProfile::small()).unwrap();
/// let points = capacity_sweep(
///     &SimConfig::new(ByteSize::ZERO),
///     &[ByteSize::from_kb(100), ByteSize::from_mb(1)],
///     &trace,
/// );
/// assert_eq!(points.len(), 2);
/// ```
#[must_use]
pub fn capacity_sweep(base: &SimConfig, sizes: &[ByteSize], trace: &Trace) -> Vec<SweepPoint> {
    sizes
        .iter()
        .map(|&aggregate| {
            let mut cfg = base.clone();
            cfg.aggregate_capacity = aggregate;
            let adhoc = run(&cfg.clone().with_scheme(PlacementScheme::AdHoc), trace);
            let ea = run(&cfg.with_scheme(PlacementScheme::Ea), trace);
            SweepPoint {
                aggregate,
                adhoc,
                ea,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coopcache_trace::{generate, TraceProfile};

    #[test]
    fn paper_constants() {
        assert_eq!(PAPER_CACHE_SIZES[0], ByteSize::from_kb(100));
        assert_eq!(PAPER_CACHE_SIZES[4], ByteSize::from_gb(1));
        assert_eq!(PAPER_GROUP_SIZES, [2, 4, 8]);
    }

    #[test]
    fn sweep_covers_requested_sizes_and_preserves_shape() {
        let trace = generate(&TraceProfile::small()).unwrap();
        let sizes = [ByteSize::from_kb(50), ByteSize::from_kb(2_000)];
        let points = capacity_sweep(&SimConfig::new(ByteSize::ZERO), &sizes, &trace);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].aggregate, sizes[0]);
        assert_eq!(points[1].aggregate, sizes[1]);
        for p in &points {
            // The paper's worst-case guarantee, at every size.
            assert!(p.hit_rate_gain() >= -1e-9, "EA lost at {}", p.aggregate);
        }
        // Hit rate grows with capacity for both schemes.
        assert!(points[1].adhoc.metrics.hit_rate() > points[0].adhoc.metrics.hit_rate());
        assert!(points[1].ea.metrics.hit_rate() > points[0].ea.metrics.hit_rate());
    }

    #[test]
    fn gains_are_consistent_with_reports() {
        let trace = generate(&TraceProfile::small()).unwrap();
        let points = capacity_sweep(
            &SimConfig::new(ByteSize::ZERO),
            &[ByteSize::from_kb(100)],
            &trace,
        );
        let p = &points[0];
        let expect = p.ea.metrics.hit_rate() - p.adhoc.metrics.hit_rate();
        assert!((p.hit_rate_gain() - expect).abs() < 1e-15);
        let expect_latency = p.adhoc.estimated_latency_ms - p.ea.estimated_latency_ms;
        assert!((p.latency_gain_ms() - expect_latency).abs() < 1e-12);
    }
}
