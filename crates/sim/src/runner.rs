//! The fast synchronous trace driver — the workhorse behind every
//! table and figure reproduction.

use crate::config::SimConfig;
use coopcache_metrics::{GroupMetrics, LatencyModel};
use coopcache_proxy::{DistributedGroup, RequestOutcome};
use coopcache_trace::Trace;
use coopcache_types::Request;

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Group-wide request counters and rates.
    pub metrics: GroupMetrics,
    /// Inter-proxy message counters (includes warm-up traffic).
    pub protocol: coopcache_proxy::ProtocolStats,
    /// Mean (over caches) of the lifetime-average document expiration age
    /// at eviction, in milliseconds — the paper's Table 1 quantity.
    /// `None` when no cache ever evicted.
    pub avg_expiration_age_ms: Option<f64>,
    /// Estimated average latency per eq. 6, in milliseconds.
    pub estimated_latency_ms: f64,
    /// Unique documents resident somewhere in the group at the end.
    pub unique_docs_cached: usize,
    /// Total resident documents counting replicas — `total - unique` is
    /// the amount of replication the placement scheme allowed.
    pub total_docs_cached: usize,
}

impl SimReport {
    /// Number of replicated document slots at the end of the run.
    #[must_use]
    pub fn replica_overhead(&self) -> usize {
        self.total_docs_cached - self.unique_docs_cached
    }
}

/// Replays a trace through a distributed cache group.
///
/// Deterministic: same config + same trace = identical report.
///
/// # Example
///
/// ```
/// use coopcache_sim::{run, SimConfig};
/// use coopcache_core::PlacementScheme;
/// use coopcache_trace::{generate, TraceProfile};
/// use coopcache_types::ByteSize;
///
/// let trace = generate(&TraceProfile::small()).unwrap();
/// let adhoc = run(&SimConfig::new(ByteSize::from_mb(1)), &trace);
/// let ea = run(
///     &SimConfig::new(ByteSize::from_mb(1)).with_scheme(PlacementScheme::Ea),
///     &trace,
/// );
/// // The paper's guarantee: EA never loses to ad-hoc on hit rate.
/// assert!(ea.metrics.hit_rate() >= adhoc.metrics.hit_rate() - 1e-9);
/// ```
#[must_use]
pub fn run(config: &SimConfig, trace: &Trace) -> SimReport {
    run_with_observer(config, trace, |_, _, _| {})
}

/// Like [`run`], but invokes `observe(seq, request, outcome)` after every
/// request — used for time-series output and for tests that need
/// per-request visibility.
pub fn run_with_observer<F>(config: &SimConfig, trace: &Trace, mut observe: F) -> SimReport
where
    F: FnMut(usize, &Request, RequestOutcome),
{
    let mut group = DistributedGroup::with_capacities(
        &config.cache_capacities(),
        config.policy,
        config.scheme,
        config.window,
        config.discovery,
    );
    group.set_ttl(config.ttl);
    let mut metrics = GroupMetrics::default();
    let n = config.group_size as usize;
    let warmup_until = (trace.len() as f64 * config.warmup_fraction) as usize;
    for (seq, request) in trace.iter().enumerate() {
        let requester = config.partitioner.assign(request, seq, n);
        let outcome = group.handle_request(requester, request.doc, request.size, request.time);
        if seq >= warmup_until {
            metrics.record(outcome, request.size);
        }
        observe(seq, request, outcome);
    }
    finish(config.latency, metrics, &group)
}

fn finish(latency: LatencyModel, metrics: GroupMetrics, group: &DistributedGroup) -> SimReport {
    SimReport {
        estimated_latency_ms: latency.average_latency_ms(&metrics),
        avg_expiration_age_ms: group.average_expiration_age_ms(),
        unique_docs_cached: group.unique_cached_docs(),
        total_docs_cached: group.total_cached_docs(),
        protocol: *group.protocol_stats(),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coopcache_core::PlacementScheme;
    use coopcache_trace::{generate, TraceProfile};
    use coopcache_types::ByteSize;

    fn small_trace() -> Trace {
        generate(&TraceProfile::small()).unwrap()
    }

    fn cfg(kb: u64) -> SimConfig {
        SimConfig::new(ByteSize::from_kb(kb))
    }

    #[test]
    fn run_is_deterministic() {
        let trace = small_trace();
        let a = run(&cfg(500), &trace);
        let b = run(&cfg(500), &trace);
        assert_eq!(a, b);
    }

    #[test]
    fn rates_are_consistent() {
        let trace = small_trace();
        let r = run(&cfg(500), &trace);
        let m = &r.metrics;
        assert_eq!(m.requests as usize, trace.len());
        assert_eq!(m.local_hits + m.remote_hits + m.misses, m.requests);
        assert!(m.hit_rate() > 0.0, "some re-references must hit");
        assert!(m.miss_rate() > 0.0, "compulsory misses exist");
        assert!(r.estimated_latency_ms > 146.0);
        assert!(r.estimated_latency_ms < 2784.0);
    }

    #[test]
    fn bigger_cache_hits_more() {
        let trace = small_trace();
        let small = run(&cfg(100), &trace);
        let big = run(&cfg(10_000), &trace);
        assert!(
            big.metrics.hit_rate() > small.metrics.hit_rate(),
            "100KB {} vs 10MB {}",
            small.metrics.hit_rate(),
            big.metrics.hit_rate()
        );
    }

    #[test]
    fn ea_beats_or_ties_adhoc_on_hit_rate() {
        // The paper's per-decision guarantee (a surviving copy always
        // keeps its lease) does not forbid tiny per-trace losses once the
        // two runs' cache contents diverge, so allow a small tolerance
        // per size but require EA to win overall.
        let trace = small_trace();
        let mut total_gain = 0.0;
        for kb in [50, 200, 1_000, 5_000] {
            let adhoc = run(&cfg(kb), &trace);
            let ea = run(&cfg(kb).with_scheme(PlacementScheme::Ea), &trace);
            let gain = ea.metrics.hit_rate() - adhoc.metrics.hit_rate();
            assert!(
                gain >= -0.005,
                "{kb}KB: EA {} well below ad-hoc {}",
                ea.metrics.hit_rate(),
                adhoc.metrics.hit_rate()
            );
            total_gain += gain;
        }
        assert!(total_gain > 0.0, "EA should win in aggregate: {total_gain}");
    }

    #[test]
    fn ea_raises_expiration_age_under_contention() {
        let trace = small_trace();
        let adhoc = run(&cfg(100), &trace);
        let ea = run(&cfg(100).with_scheme(PlacementScheme::Ea), &trace);
        let (a, e) = (
            adhoc.avg_expiration_age_ms.expect("contended run evicts"),
            ea.avg_expiration_age_ms.expect("contended run evicts"),
        );
        assert!(e > a, "EA age {e} should exceed ad-hoc age {a}");
    }

    #[test]
    fn ea_reduces_replication() {
        let trace = small_trace();
        let adhoc = run(&cfg(200), &trace);
        let ea = run(&cfg(200).with_scheme(PlacementScheme::Ea), &trace);
        assert!(
            ea.replica_overhead() <= adhoc.replica_overhead(),
            "EA replicas {} > ad-hoc {}",
            ea.replica_overhead(),
            adhoc.replica_overhead()
        );
    }

    #[test]
    fn ea_shifts_hits_remote() {
        let trace = small_trace();
        let adhoc = run(&cfg(1_000), &trace);
        let ea = run(&cfg(1_000).with_scheme(PlacementScheme::Ea), &trace);
        assert!(
            ea.metrics.remote_hit_rate() >= adhoc.metrics.remote_hit_rate(),
            "EA remote {} < ad-hoc remote {}",
            ea.metrics.remote_hit_rate(),
            adhoc.metrics.remote_hit_rate()
        );
        assert!(ea.metrics.stores_skipped > 0, "EA never skipped a store");
    }

    #[test]
    fn observer_sees_every_request() {
        let trace = small_trace();
        let mut count = 0usize;
        let mut last_seq = None;
        run_with_observer(&cfg(500), &trace, |seq, req, outcome| {
            count += 1;
            last_seq = Some(seq);
            assert!(req.size.as_bytes() > 0);
            let _ = outcome.is_hit();
        });
        assert_eq!(count, trace.len());
        assert_eq!(last_seq, Some(trace.len() - 1));
    }

    #[test]
    fn single_cache_has_no_remote_hits() {
        let trace = small_trace();
        let r = run(&cfg(500).with_group_size(1), &trace);
        assert_eq!(r.metrics.remote_hits, 0);
        assert!(r.metrics.local_hits > 0);
    }

    #[test]
    fn warmup_excludes_early_requests_from_metrics() {
        let trace = small_trace();
        let full = run(&cfg(500), &trace);
        let warmed = run(&cfg(500).with_warmup_fraction(0.5), &trace);
        assert_eq!(warmed.metrics.requests as usize, trace.len() - trace.len() / 2);
        // Measuring only the warm half must raise the observed hit rate.
        assert!(
            warmed.metrics.hit_rate() > full.metrics.hit_rate(),
            "warm {} <= cold-inclusive {}",
            warmed.metrics.hit_rate(),
            full.metrics.hit_rate()
        );
    }

    #[test]
    fn ttl_lowers_hit_rate() {
        let trace = small_trace();
        let fresh_forever = run(&cfg(2_000), &trace);
        let one_hour = run(
            &cfg(2_000).with_ttl(coopcache_types::DurationMs::from_secs(3_600)),
            &trace,
        );
        assert!(
            one_hour.metrics.hit_rate() < fresh_forever.metrics.hit_rate(),
            "ttl {} should cost hits vs {}",
            one_hour.metrics.hit_rate(),
            fresh_forever.metrics.hit_rate()
        );
    }

    #[test]
    fn isolated_discovery_loses_remote_hits() {
        use coopcache_proxy::Discovery;
        let trace = small_trace();
        let coop = run(&cfg(1_000), &trace);
        let iso = run(&cfg(1_000).with_discovery(Discovery::Isolated), &trace);
        assert_eq!(iso.metrics.remote_hits, 0);
        assert!(iso.metrics.hit_rate() < coop.metrics.hit_rate());
        assert_eq!(iso.protocol.messages(), 0);
        assert!(coop.protocol.messages() > 0);
    }

    #[test]
    fn digest_discovery_trades_messages_for_accuracy() {
        use coopcache_proxy::Discovery;
        use coopcache_types::DurationMs;
        let trace = small_trace();
        let icp = run(&cfg(1_000), &trace);
        let digest = run(
            &cfg(1_000).with_discovery(Discovery::Digest {
                refresh_every: DurationMs::from_secs(600),
                fp_rate: 0.01,
            }),
            &trace,
        );
        // Digests cut per-miss query traffic dramatically...
        assert!(
            digest.protocol.messages() < icp.protocol.messages() / 2,
            "digest msgs {} vs icp {}",
            digest.protocol.messages(),
            icp.protocol.messages()
        );
        // ...at a small hit-rate cost from staleness.
        assert!(digest.metrics.hit_rate() <= icp.metrics.hit_rate());
        assert!(
            digest.metrics.hit_rate() > icp.metrics.hit_rate() - 0.10,
            "digest hit rate collapsed: {} vs {}",
            digest.metrics.hit_rate(),
            icp.metrics.hit_rate()
        );
    }

    #[test]
    fn heterogeneous_capacities_run() {
        let trace = small_trace();
        let even = run(&cfg(1_000), &trace);
        let skewed = run(&cfg(1_000).with_capacity_weights(vec![1, 1, 1, 5]), &trace);
        assert_eq!(skewed.metrics.requests, even.metrics.requests);
        assert!(skewed.metrics.hit_rate() > 0.0);
    }

    #[test]
    fn empty_trace_reports_zeroes() {
        let r = run(&cfg(100), &Trace::default());
        assert_eq!(r.metrics.requests, 0);
        assert_eq!(r.estimated_latency_ms, 0.0);
        assert_eq!(r.avg_expiration_age_ms, None);
        assert_eq!(r.unique_docs_cached, 0);
    }
}
