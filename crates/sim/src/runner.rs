//! The fast synchronous trace driver — the workhorse behind every
//! table and figure reproduction.

use crate::config::SimConfig;
use coopcache_metrics::{GroupMetrics, LatencyModel};
use coopcache_obs::{Event, SinkHandle};
use coopcache_proxy::{DistributedGroup, RequestOutcome};
use coopcache_trace::Trace;
use coopcache_types::Request;

/// One reporting window of the trace: the per-window and cumulative view
/// of hit rate and group expiration age (the `SimReport` time series).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStat {
    /// Zero-based window index.
    pub index: u64,
    /// Requests inside this window.
    pub requests: u64,
    /// Local hits inside this window.
    pub local_hits: u64,
    /// Remote hits inside this window.
    pub remote_hits: u64,
    /// Hit rate (local + remote) inside this window.
    pub hit_rate: f64,
    /// Hit rate over everything up to and including this window.
    pub cumulative_hit_rate: f64,
    /// Mean of the caches' *current windowed* expiration ages at
    /// rollover, in milliseconds; `None` while every cache is still
    /// infinite (no contention observed).
    pub mean_age_ms: Option<u64>,
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Group-wide request counters and rates.
    pub metrics: GroupMetrics,
    /// Inter-proxy message counters (includes warm-up traffic).
    pub protocol: coopcache_proxy::ProtocolStats,
    /// Mean (over caches) of the lifetime-average document expiration age
    /// at eviction, in milliseconds — the paper's Table 1 quantity.
    /// `None` when no cache ever evicted.
    pub avg_expiration_age_ms: Option<f64>,
    /// Estimated average latency per eq. 6, in milliseconds.
    pub estimated_latency_ms: f64,
    /// Unique documents resident somewhere in the group at the end.
    pub unique_docs_cached: usize,
    /// Total resident documents counting replicas — `total - unique` is
    /// the amount of replication the placement scheme allowed.
    pub total_docs_cached: usize,
    /// Per-window hit-rate / expiration-age time series
    /// (`config.timeseries_windows` windows; empty for an empty trace).
    pub windows: Vec<WindowStat>,
}

impl SimReport {
    /// Number of replicated document slots at the end of the run.
    #[must_use]
    pub fn replica_overhead(&self) -> usize {
        self.total_docs_cached - self.unique_docs_cached
    }
}

/// Mean of the caches' current (windowed) expiration ages in ms, skipping
/// infinite ones; `None` when all are infinite.
fn mean_current_age_ms(group: &DistributedGroup) -> Option<u64> {
    let finite: Vec<u64> = group
        .expiration_ages()
        .iter()
        .filter_map(|a| a.as_finite().map(|d| d.as_millis()))
        .collect();
    if finite.is_empty() {
        None
    } else {
        Some(finite.iter().sum::<u64>() / finite.len() as u64)
    }
}

/// Replays a trace through a distributed cache group.
///
/// Deterministic: same config + same trace = identical report.
///
/// # Example
///
/// ```
/// use coopcache_sim::{run, SimConfig};
/// use coopcache_core::PlacementScheme;
/// use coopcache_trace::{generate, TraceProfile};
/// use coopcache_types::ByteSize;
///
/// let trace = generate(&TraceProfile::small()).unwrap();
/// let adhoc = run(&SimConfig::new(ByteSize::from_mb(1)), &trace);
/// let ea = run(
///     &SimConfig::new(ByteSize::from_mb(1)).with_scheme(PlacementScheme::Ea),
///     &trace,
/// );
/// // The paper's guarantee: EA never loses to ad-hoc on hit rate.
/// assert!(ea.metrics.hit_rate() >= adhoc.metrics.hit_rate() - 1e-9);
/// ```
#[must_use]
pub fn run(config: &SimConfig, trace: &Trace) -> SimReport {
    run_inner(config, trace, None, |_, _, _| {})
}

/// Like [`run`], but streams every event (requests, placements,
/// evictions, ICP traffic, window rollovers) into `sink` when one is
/// supplied — the synchronous driver's entry point for `--events`.
#[must_use]
pub fn run_with_sink(config: &SimConfig, trace: &Trace, sink: Option<SinkHandle>) -> SimReport {
    run_inner(config, trace, sink, |_, _, _| {})
}

/// Like [`run`], but invokes `observe(seq, request, outcome)` after every
/// request — used for time-series output and for tests that need
/// per-request visibility.
pub fn run_with_observer<F>(config: &SimConfig, trace: &Trace, observe: F) -> SimReport
where
    F: FnMut(usize, &Request, RequestOutcome),
{
    run_inner(config, trace, None, observe)
}

fn run_inner<F>(
    config: &SimConfig,
    trace: &Trace,
    sink: Option<SinkHandle>,
    mut observe: F,
) -> SimReport
where
    F: FnMut(usize, &Request, RequestOutcome),
{
    let mut group = DistributedGroup::with_capacities(
        &config.cache_capacities(),
        config.policy,
        config.scheme,
        config.window,
        config.discovery,
    );
    group.set_ttl(config.ttl);
    if let Some(sink) = &sink {
        group.set_sink(sink.clone());
    }
    let mut metrics = GroupMetrics::default();
    let n = config.group_size as usize;
    let warmup_until = (trace.len() as f64 * config.warmup_fraction) as usize;
    // Window bookkeeping: the trace splits into `timeseries_windows`
    // near-equal windows (the last one absorbs the remainder and any
    // short trace simply yields fewer, shorter windows).
    let window_len = (trace.len() / config.timeseries_windows).max(1);
    let mut windows: Vec<WindowStat> = Vec::new();
    let mut win = (0u64, 0u64, 0u64); // (requests, local hits, remote hits)
    let mut cum_hits = 0u64;
    for (seq, request) in trace.iter().enumerate() {
        let requester = config.partitioner.assign(request, seq, n);
        let outcome = group.handle_request(requester, request.doc, request.size, request.time);
        if seq >= warmup_until {
            metrics.record(outcome, request.size);
        }
        if let Some(sink) = &sink {
            let (class, responder, stored) = outcome.event_parts();
            sink.emit(&Event::Request {
                seq: seq as u64,
                cache: requester,
                doc: request.doc,
                class,
                responder,
                stored,
                latency_us: None,
            });
        }
        win.0 += 1;
        if outcome.is_local_hit() {
            win.1 += 1;
        } else if outcome.is_remote_hit() {
            win.2 += 1;
        }
        let last = seq + 1 == trace.len();
        // Roll over on the boundary, except that the final window runs to
        // the end of the trace so no short tail window is emitted.
        let boundary = (seq + 1) % window_len == 0 && trace.len() - (seq + 1) >= window_len;
        if last || boundary {
            cum_hits += win.1 + win.2;
            let served = (seq + 1) as u64;
            let mean_age_ms = mean_current_age_ms(&group);
            let stat = WindowStat {
                index: windows.len() as u64,
                requests: win.0,
                local_hits: win.1,
                remote_hits: win.2,
                hit_rate: (win.1 + win.2) as f64 / win.0 as f64,
                cumulative_hit_rate: cum_hits as f64 / served as f64,
                mean_age_ms,
            };
            if let Some(sink) = &sink {
                sink.emit(&Event::WindowRollover {
                    index: stat.index,
                    requests: stat.requests,
                    local_hits: stat.local_hits,
                    remote_hits: stat.remote_hits,
                    mean_age_ms,
                });
            }
            windows.push(stat);
            win = (0, 0, 0);
        }
        observe(seq, request, outcome);
    }
    finish(config.latency, metrics, &group, windows)
}

fn finish(
    latency: LatencyModel,
    metrics: GroupMetrics,
    group: &DistributedGroup,
    windows: Vec<WindowStat>,
) -> SimReport {
    SimReport {
        estimated_latency_ms: latency.average_latency_ms(&metrics),
        avg_expiration_age_ms: group.average_expiration_age_ms(),
        unique_docs_cached: group.unique_cached_docs(),
        total_docs_cached: group.total_cached_docs(),
        protocol: *group.protocol_stats(),
        metrics,
        windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coopcache_core::PlacementScheme;
    use coopcache_trace::{generate, TraceProfile};
    use coopcache_types::ByteSize;

    fn small_trace() -> Trace {
        generate(&TraceProfile::small()).unwrap()
    }

    fn cfg(kb: u64) -> SimConfig {
        SimConfig::new(ByteSize::from_kb(kb))
    }

    #[test]
    fn run_is_deterministic() {
        let trace = small_trace();
        let a = run(&cfg(500), &trace);
        let b = run(&cfg(500), &trace);
        assert_eq!(a, b);
    }

    #[test]
    fn rates_are_consistent() {
        let trace = small_trace();
        let r = run(&cfg(500), &trace);
        let m = &r.metrics;
        assert_eq!(m.requests as usize, trace.len());
        assert_eq!(m.local_hits + m.remote_hits + m.misses, m.requests);
        assert!(m.hit_rate() > 0.0, "some re-references must hit");
        assert!(m.miss_rate() > 0.0, "compulsory misses exist");
        assert!(r.estimated_latency_ms > 146.0);
        assert!(r.estimated_latency_ms < 2784.0);
    }

    #[test]
    fn bigger_cache_hits_more() {
        let trace = small_trace();
        let small = run(&cfg(100), &trace);
        let big = run(&cfg(10_000), &trace);
        assert!(
            big.metrics.hit_rate() > small.metrics.hit_rate(),
            "100KB {} vs 10MB {}",
            small.metrics.hit_rate(),
            big.metrics.hit_rate()
        );
    }

    #[test]
    fn ea_beats_or_ties_adhoc_on_hit_rate() {
        // The paper's per-decision guarantee (a surviving copy always
        // keeps its lease) does not forbid tiny per-trace losses once the
        // two runs' cache contents diverge, so allow a small tolerance
        // per size but require EA to win overall.
        let trace = small_trace();
        let mut total_gain = 0.0;
        for kb in [50, 200, 1_000, 5_000] {
            let adhoc = run(&cfg(kb), &trace);
            let ea = run(&cfg(kb).with_scheme(PlacementScheme::Ea), &trace);
            let gain = ea.metrics.hit_rate() - adhoc.metrics.hit_rate();
            assert!(
                gain >= -0.005,
                "{kb}KB: EA {} well below ad-hoc {}",
                ea.metrics.hit_rate(),
                adhoc.metrics.hit_rate()
            );
            total_gain += gain;
        }
        assert!(total_gain > 0.0, "EA should win in aggregate: {total_gain}");
    }

    #[test]
    fn ea_raises_expiration_age_under_contention() {
        let trace = small_trace();
        let adhoc = run(&cfg(100), &trace);
        let ea = run(&cfg(100).with_scheme(PlacementScheme::Ea), &trace);
        let (a, e) = (
            adhoc.avg_expiration_age_ms.expect("contended run evicts"),
            ea.avg_expiration_age_ms.expect("contended run evicts"),
        );
        assert!(e > a, "EA age {e} should exceed ad-hoc age {a}");
    }

    #[test]
    fn ea_reduces_replication() {
        let trace = small_trace();
        let adhoc = run(&cfg(200), &trace);
        let ea = run(&cfg(200).with_scheme(PlacementScheme::Ea), &trace);
        assert!(
            ea.replica_overhead() <= adhoc.replica_overhead(),
            "EA replicas {} > ad-hoc {}",
            ea.replica_overhead(),
            adhoc.replica_overhead()
        );
    }

    #[test]
    fn ea_shifts_hits_remote() {
        let trace = small_trace();
        let adhoc = run(&cfg(1_000), &trace);
        let ea = run(&cfg(1_000).with_scheme(PlacementScheme::Ea), &trace);
        assert!(
            ea.metrics.remote_hit_rate() >= adhoc.metrics.remote_hit_rate(),
            "EA remote {} < ad-hoc remote {}",
            ea.metrics.remote_hit_rate(),
            adhoc.metrics.remote_hit_rate()
        );
        assert!(ea.metrics.stores_skipped > 0, "EA never skipped a store");
    }

    #[test]
    fn observer_sees_every_request() {
        let trace = small_trace();
        let mut count = 0usize;
        let mut last_seq = None;
        run_with_observer(&cfg(500), &trace, |seq, req, outcome| {
            count += 1;
            last_seq = Some(seq);
            assert!(req.size.as_bytes() > 0);
            let _ = outcome.is_hit();
        });
        assert_eq!(count, trace.len());
        assert_eq!(last_seq, Some(trace.len() - 1));
    }

    #[test]
    fn single_cache_has_no_remote_hits() {
        let trace = small_trace();
        let r = run(&cfg(500).with_group_size(1), &trace);
        assert_eq!(r.metrics.remote_hits, 0);
        assert!(r.metrics.local_hits > 0);
    }

    #[test]
    fn warmup_excludes_early_requests_from_metrics() {
        let trace = small_trace();
        let full = run(&cfg(500), &trace);
        let warmed = run(&cfg(500).with_warmup_fraction(0.5), &trace);
        assert_eq!(
            warmed.metrics.requests as usize,
            trace.len() - trace.len() / 2
        );
        // Measuring only the warm half must raise the observed hit rate.
        assert!(
            warmed.metrics.hit_rate() > full.metrics.hit_rate(),
            "warm {} <= cold-inclusive {}",
            warmed.metrics.hit_rate(),
            full.metrics.hit_rate()
        );
    }

    #[test]
    fn ttl_lowers_hit_rate() {
        let trace = small_trace();
        let fresh_forever = run(&cfg(2_000), &trace);
        let one_hour = run(
            &cfg(2_000).with_ttl(coopcache_types::DurationMs::from_secs(3_600)),
            &trace,
        );
        assert!(
            one_hour.metrics.hit_rate() < fresh_forever.metrics.hit_rate(),
            "ttl {} should cost hits vs {}",
            one_hour.metrics.hit_rate(),
            fresh_forever.metrics.hit_rate()
        );
    }

    #[test]
    fn isolated_discovery_loses_remote_hits() {
        use coopcache_proxy::Discovery;
        let trace = small_trace();
        let coop = run(&cfg(1_000), &trace);
        let iso = run(&cfg(1_000).with_discovery(Discovery::Isolated), &trace);
        assert_eq!(iso.metrics.remote_hits, 0);
        assert!(iso.metrics.hit_rate() < coop.metrics.hit_rate());
        assert_eq!(iso.protocol.messages(), 0);
        assert!(coop.protocol.messages() > 0);
    }

    #[test]
    fn digest_discovery_trades_messages_for_accuracy() {
        use coopcache_proxy::Discovery;
        use coopcache_types::DurationMs;
        let trace = small_trace();
        let icp = run(&cfg(1_000), &trace);
        let digest = run(
            &cfg(1_000).with_discovery(Discovery::Digest {
                refresh_every: DurationMs::from_secs(600),
                fp_rate: 0.01,
            }),
            &trace,
        );
        // Digests cut per-miss query traffic dramatically...
        assert!(
            digest.protocol.messages() < icp.protocol.messages() / 2,
            "digest msgs {} vs icp {}",
            digest.protocol.messages(),
            icp.protocol.messages()
        );
        // ...at a small hit-rate cost from staleness.
        assert!(digest.metrics.hit_rate() <= icp.metrics.hit_rate());
        assert!(
            digest.metrics.hit_rate() > icp.metrics.hit_rate() - 0.10,
            "digest hit rate collapsed: {} vs {}",
            digest.metrics.hit_rate(),
            icp.metrics.hit_rate()
        );
    }

    #[test]
    fn heterogeneous_capacities_run() {
        let trace = small_trace();
        let even = run(&cfg(1_000), &trace);
        let skewed = run(&cfg(1_000).with_capacity_weights(vec![1, 1, 1, 5]), &trace);
        assert_eq!(skewed.metrics.requests, even.metrics.requests);
        assert!(skewed.metrics.hit_rate() > 0.0);
    }

    #[test]
    fn empty_trace_reports_zeroes() {
        let r = run(&cfg(100), &Trace::default());
        assert_eq!(r.metrics.requests, 0);
        assert_eq!(r.estimated_latency_ms, 0.0);
        assert_eq!(r.avg_expiration_age_ms, None);
        assert_eq!(r.unique_docs_cached, 0);
        assert!(r.windows.is_empty());
    }

    #[test]
    fn windows_partition_the_trace() {
        let trace = small_trace();
        let r = run(&cfg(500).with_timeseries_windows(10), &trace);
        assert_eq!(r.windows.len(), 10);
        let total: u64 = r.windows.iter().map(|w| w.requests).sum();
        assert_eq!(total as usize, trace.len());
        for (i, w) in r.windows.iter().enumerate() {
            assert_eq!(w.index, i as u64);
            assert!(w.local_hits + w.remote_hits <= w.requests);
            assert!((0.0..=1.0).contains(&w.hit_rate));
        }
        // The final cumulative figure matches the run-wide hit rate
        // (no warm-up configured, so both count everything).
        let last = r.windows.last().unwrap();
        assert!(
            (last.cumulative_hit_rate - r.metrics.hit_rate()).abs() < 1e-9,
            "cumulative {} vs metrics {}",
            last.cumulative_hit_rate,
            r.metrics.hit_rate()
        );
        // A contended run should develop a finite mean age by the end.
        let contended = run(&cfg(100).with_scheme(PlacementScheme::Ea), &trace);
        assert!(contended.windows.last().unwrap().mean_age_ms.is_some());
    }

    #[test]
    fn more_windows_than_requests_degrades_gracefully() {
        let trace = small_trace();
        let r = run(&cfg(500).with_timeseries_windows(10 * trace.len()), &trace);
        // One window per request is the finest possible split.
        assert_eq!(r.windows.len(), trace.len());
        assert!(r.windows.iter().all(|w| w.requests == 1));
    }

    #[test]
    fn sink_sees_every_request_and_rollover() {
        use coopcache_obs::{EventKind, HistogramSink, SinkHandle};
        use std::sync::{Arc, Mutex};
        let trace = small_trace();
        let sink = Arc::new(Mutex::new(HistogramSink::new()));
        let handle = SinkHandle::from_arc(Arc::clone(&sink));
        let report = run_with_sink(
            &cfg(500).with_scheme(PlacementScheme::Ea),
            &trace,
            Some(handle),
        );
        let agg = sink.lock().unwrap();
        assert_eq!(agg.count(EventKind::Request) as usize, trace.len());
        assert_eq!(
            agg.count(EventKind::WindowRollover) as usize,
            report.windows.len()
        );
        // The event-level split agrees with the run-wide metrics
        // (no warm-up, so the metrics count everything too).
        let (local, remote, miss) = agg.request_split();
        assert_eq!(local, report.metrics.local_hits);
        assert_eq!(remote, report.metrics.remote_hits);
        assert_eq!(miss, report.metrics.misses);
        // ICP traffic in the events mirrors the protocol counters.
        assert_eq!(agg.count(EventKind::IcpQuery), report.protocol.icp_queries);
        // EA placement decisions under contention flow through too.
        assert!(agg.count(EventKind::Placement) > 0);
        assert!(agg.count(EventKind::Eviction) > 0);
    }

    #[test]
    fn sink_does_not_change_the_report() {
        use coopcache_obs::{NullSink, SinkHandle};
        let trace = small_trace();
        let plain = run(&cfg(500).with_scheme(PlacementScheme::Ea), &trace);
        let observed = run_with_sink(
            &cfg(500).with_scheme(PlacementScheme::Ea),
            &trace,
            Some(SinkHandle::new(NullSink)),
        );
        assert_eq!(plain, observed);
    }
}
