#![forbid(unsafe_code)]
//! The cooperative caching protocol layer.
//!
//! This crate turns the single-cache engine of `coopcache-core` into a
//! *cooperating group*: ICP query/reply for document location, HTTP
//! request/response with the EA scheme's piggybacked cache expiration ages
//! (the protocol's only addition — no extra messages, no extra
//! connections), and the two architectures the paper discusses:
//!
//! * [`DistributedGroup`] — flat peers, the configuration of all the
//!   paper's experiments;
//! * [`HierarchicalGroup`] — a parent/child tree where misses resolve
//!   upward and each parent applies the EA parent rule on the way down.
//!
//! Everything here is I/O-free: [`ProxyNode`] exposes pure protocol
//! handlers that the synchronous driver, the discrete-event simulator
//! (`coopcache-sim`) and the real-socket runtime (`coopcache-net`) all
//! share, so every execution mode runs identical placement logic.
//!
//! # Example
//!
//! ```
//! use coopcache_proxy::{DistributedGroup, RequestOutcome};
//! use coopcache_core::{PlacementScheme, PolicyKind};
//! use coopcache_types::{ByteSize, CacheId, DocId, Timestamp};
//!
//! let mut group = DistributedGroup::new(
//!     4, ByteSize::from_mb(1), PolicyKind::Lru, PlacementScheme::Ea);
//!
//! // Cache 0 misses and fetches from the origin...
//! let doc = DocId::new(42);
//! let size = ByteSize::from_kb(8);
//! group.handle_request(CacheId::new(0), doc, size, Timestamp::from_secs(1));
//! // ...then cache 1 finds it at cache 0 via ICP.
//! let out = group.handle_request(CacheId::new(1), doc, size, Timestamp::from_secs(2));
//! assert!(matches!(out, RequestOutcome::RemoteHit { .. }));
//! ```

mod bloom;
mod concurrent;
mod discovery;
mod distributed;
mod hashring;
mod hierarchy;
mod message;
mod node;
mod outcome;

pub use bloom::BloomFilter;
pub use concurrent::ConcurrentNode;
pub use discovery::{Discovery, ProtocolStats};
pub use distributed::DistributedGroup;
pub use hashring::{HashRing, HashRoutedGroup};
pub use hierarchy::{HierarchicalGroup, TopologyError};
pub use message::{HttpRequest, HttpResponse, IcpQuery, IcpReply};
pub use node::ProxyNode;
pub use outcome::RequestOutcome;
