//! The classification of a served request.

use coopcache_types::CacheId;
use std::fmt;

/// How a client request was ultimately served by the group.
///
/// The three-way split drives every metric in the paper: cumulative hit
/// rate counts local + remote hits, Table 2 separates the two, and the
/// latency estimate (eq. 6) weighs each class by its measured latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestOutcome {
    /// Served from the cache the client is attached to.
    LocalHit,
    /// Served by another cache in the group.
    RemoteHit {
        /// The cache that supplied the document.
        responder: CacheId,
        /// Whether the requester kept a local copy (always `true` under
        /// ad-hoc; an EA decision otherwise).
        stored_locally: bool,
        /// Whether the responder refreshed its own copy (always `true`
        /// under ad-hoc; an EA decision otherwise).
        promoted_at_responder: bool,
    },
    /// Fetched from the origin server.
    Miss {
        /// Whether the requester kept a copy (always `true` in the
        /// distributed architecture; in a hierarchy, EA may decline).
        stored_locally: bool,
        /// Whether some ancestor kept a copy on the way down (hierarchy
        /// only; `false` in the distributed architecture).
        stored_at_ancestor: bool,
    },
}

impl RequestOutcome {
    /// True for local and remote hits.
    #[must_use]
    pub fn is_hit(&self) -> bool {
        !matches!(self, Self::Miss { .. })
    }

    /// True only for local hits.
    #[must_use]
    pub fn is_local_hit(&self) -> bool {
        matches!(self, Self::LocalHit)
    }

    /// True only for remote hits.
    #[must_use]
    pub fn is_remote_hit(&self) -> bool {
        matches!(self, Self::RemoteHit { .. })
    }

    /// The observability view of this outcome: its event class, the
    /// supplying peer (remote hits only) and whether the requester kept a
    /// local copy. Drivers use this to build `Event::Request`s.
    #[must_use]
    pub fn event_parts(&self) -> (coopcache_obs::RequestClass, Option<CacheId>, bool) {
        use coopcache_obs::RequestClass;
        match self {
            Self::LocalHit => (RequestClass::LocalHit, None, false),
            Self::RemoteHit {
                responder,
                stored_locally,
                ..
            } => (RequestClass::RemoteHit, Some(*responder), *stored_locally),
            Self::Miss { stored_locally, .. } => (RequestClass::Miss, None, *stored_locally),
        }
    }
}

impl fmt::Display for RequestOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LocalHit => f.write_str("local-hit"),
            Self::RemoteHit { responder, .. } => write!(f, "remote-hit({responder})"),
            Self::Miss { .. } => f.write_str("miss"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        let local = RequestOutcome::LocalHit;
        let remote = RequestOutcome::RemoteHit {
            responder: CacheId::new(2),
            stored_locally: true,
            promoted_at_responder: false,
        };
        let miss = RequestOutcome::Miss {
            stored_locally: true,
            stored_at_ancestor: false,
        };
        assert!(local.is_hit() && local.is_local_hit() && !local.is_remote_hit());
        assert!(remote.is_hit() && remote.is_remote_hit() && !remote.is_local_hit());
        assert!(!miss.is_hit() && !miss.is_local_hit() && !miss.is_remote_hit());
    }

    #[test]
    fn display() {
        assert_eq!(RequestOutcome::LocalHit.to_string(), "local-hit");
        let remote = RequestOutcome::RemoteHit {
            responder: CacheId::new(2),
            stored_locally: false,
            promoted_at_responder: true,
        };
        assert_eq!(remote.to_string(), "remote-hit(cache:2)");
    }
}
