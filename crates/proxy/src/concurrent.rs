//! A shared-reference proxy node for the socket daemons.
//!
//! [`ConcurrentNode`] is [`crate::ProxyNode`] rebuilt over
//! [`ConcurrentCache`]: every protocol handler takes `&self`, so the
//! ICP responder, the document server and the client request path of a
//! `coopcache-net` daemon operate on the node simultaneously — two
//! requests touching different shards no longer serialize on a
//! node-wide mutex. The handlers themselves are line-for-line the same
//! protocol logic as `ProxyNode`; only the locking moved (into the
//! cache's per-shard mutexes, plus one short-lived mutex around the
//! optional event sink).
//!
//! The event vocabulary, ordering *per document*, and placement
//! decisions are identical to `ProxyNode` — the daemons' determinism
//! tests run the same trace through both and compare streams.

use crate::message::{HttpRequest, HttpResponse, IcpQuery, IcpReply};
use coopcache_core::{
    CacheConfig, ConcurrentCache, EvictionReason, EvictionRecord, ExpirationFlavor, InsertOutcome,
    PlacementScheme, StoreOutcome,
};
use coopcache_obs::{Event, EventKind, EvictionCause, PlacementRole, SinkHandle, StatsRegistry};
use coopcache_types::{ByteSize, CacheId, DocId, ExpirationAge, Timestamp};
use std::sync::{Arc, Mutex, PoisonError};

/// One cooperative proxy, sharable across server threads by reference.
#[derive(Debug)]
pub struct ConcurrentNode {
    cache: ConcurrentCache,
    scheme: PlacementScheme,
    /// Optional event sink. Guarded by its own mutex (held only while
    /// emitting) so sinks can be installed on a node that is already
    /// shared; the cache's shard locks are never held across an emit of
    /// a placement event, and eviction events are emitted after the
    /// owning shard's lock is released.
    sink: Mutex<Option<SinkHandle>>,
    /// Optional live counters (relaxed atomics inside, so recording
    /// takes no lock; the mutex only guards installation).
    stats: Mutex<Option<Arc<StatsRegistry>>>,
}

impl ConcurrentNode {
    /// Creates a node from a full cache configuration.
    #[must_use]
    pub fn from_config(config: CacheConfig, scheme: PlacementScheme) -> Self {
        Self {
            cache: config.build_concurrent(),
            scheme,
            sink: Mutex::new(None),
            stats: Mutex::new(None),
        }
    }

    /// Attaches an event sink; placement decisions and evictions from
    /// this node flow into it.
    pub fn set_sink(&self, sink: SinkHandle) {
        *lock(&self.sink) = Some(sink);
    }

    /// Detaches the event sink (back to the zero-cost default).
    pub fn clear_sink(&self) {
        *lock(&self.sink) = None;
    }

    /// Attaches a live stats registry; placement and eviction counts
    /// from this node land in it whether or not a sink is installed.
    pub fn set_stats(&self, stats: Arc<StatsRegistry>) {
        *lock(&self.stats) = Some(stats);
    }

    fn emit(&self, event: &Event) {
        if let Some(sink) = lock(&self.sink).as_ref() {
            sink.emit(event);
        }
    }

    fn record_stat(&self, kind: EventKind) {
        if let Some(stats) = lock(&self.stats).as_ref() {
            stats.record(kind);
        }
    }

    fn emit_placement(
        &self,
        doc: DocId,
        role: PlacementRole,
        self_age: ExpirationAge,
        peer_age: ExpirationAge,
        stored: bool,
    ) {
        self.record_stat(EventKind::Placement);
        // A muted thread (the head sampler dropped this request's trace)
        // would have the event dropped by the sink handle anyway; bail
        // before paying the sink lock and the event build.
        if coopcache_obs::request_scoped_muted() {
            return;
        }
        // One lock for both the presence check and the emit — placement
        // fires on every request, so the second acquisition would be on
        // the hot path.
        let guard = lock(&self.sink);
        if let Some(sink) = guard.as_ref() {
            sink.emit(&Event::Placement {
                cache: self.id(),
                doc,
                role,
                self_age,
                peer_age,
                stored,
                tie: self_age == peer_age,
            });
        }
    }

    fn emit_evictions(&self, evictions: &[EvictionRecord]) {
        for _ in evictions {
            self.record_stat(EventKind::Eviction);
        }
        if lock(&self.sink).is_none() {
            return;
        }
        let flavor = self.cache.expiration_flavor();
        for rec in evictions {
            let age = match flavor {
                ExpirationFlavor::Lru => rec.entry.lru_expiration_age(rec.evicted_at),
                ExpirationFlavor::Lfu => rec.entry.lfu_expiration_age(rec.evicted_at),
            };
            self.emit(&Event::Eviction {
                cache: self.id(),
                doc: rec.entry.doc,
                age_ms: age.as_millis(),
                cause: match rec.reason {
                    EvictionReason::CapacityPressure => EvictionCause::Capacity,
                    EvictionReason::Explicit => EvictionCause::Explicit,
                    EvictionReason::Expired => EvictionCause::Expired,
                },
            });
        }
    }

    /// Inserts, reusing the node-shared protocol: emits eviction events
    /// and returns whether a copy was stored.
    fn insert_and_emit(&self, doc: DocId, size: ByteSize, now: Timestamp) -> InsertOutcome {
        let outcome = self.cache.insert(doc, size, now);
        self.emit_evictions(outcome.evictions());
        outcome
    }

    /// This node's cache id.
    #[must_use]
    pub fn id(&self) -> CacheId {
        self.cache.id()
    }

    /// Sets (or clears) the underlying cache's freshness TTL.
    pub fn set_ttl(&self, ttl: Option<coopcache_types::DurationMs>) {
        self.cache.set_ttl(ttl);
    }

    /// The placement scheme in force.
    #[must_use]
    pub fn scheme(&self) -> PlacementScheme {
        self.scheme
    }

    /// Read access to the underlying cache (stats, snapshots, entries).
    #[must_use]
    pub fn cache(&self) -> &ConcurrentCache {
        &self.cache
    }

    /// This node's current cache expiration age.
    #[must_use]
    pub fn expiration_age(&self) -> ExpirationAge {
        self.cache.expiration_age()
    }

    /// Serves a local client request; `Some(size)` on a local hit.
    pub fn handle_client_lookup(&self, doc: DocId, now: Timestamp) -> Option<ByteSize> {
        self.cache.lookup(doc, now)
    }

    /// Answers an ICP query (read-only).
    #[must_use]
    pub fn handle_icp_query(&self, query: IcpQuery) -> IcpReply {
        IcpReply {
            from: self.id(),
            doc: query.doc,
            hit: self.cache.contains(query.doc),
        }
    }

    /// Responder side of a remote hit (see
    /// [`crate::ProxyNode::handle_http_request`]).
    pub fn handle_http_request(
        &self,
        request: HttpRequest,
        now: Timestamp,
    ) -> Option<HttpResponse> {
        let responder_age = self.expiration_age();
        let promote = self
            .scheme
            .responder_promotes(responder_age, request.requester_age);
        let size = self.cache.serve_remote(request.doc, now, promote)?;
        self.emit_placement(
            request.doc,
            PlacementRole::ResponderPromote,
            responder_age,
            request.requester_age,
            promote,
        );
        Some(HttpResponse {
            from: self.id(),
            doc: request.doc,
            size,
            responder_age,
        })
    }

    /// Builds the HTTP request this node sends after a positive ICP
    /// reply, capturing the node's current expiration age.
    #[must_use]
    pub fn build_http_request(&self, doc: DocId) -> HttpRequest {
        HttpRequest {
            from: self.id(),
            doc,
            requester_age: self.expiration_age(),
        }
    }

    /// Requester side of a remote hit (see
    /// [`crate::ProxyNode::complete_remote_fetch`]).
    pub fn complete_remote_fetch(
        &self,
        sent: HttpRequest,
        response: HttpResponse,
        now: Timestamp,
    ) -> bool {
        debug_assert_eq!(sent.doc, response.doc, "response for a different doc");
        let store = self
            .scheme
            .requester_stores(sent.requester_age, response.responder_age);
        self.emit_placement(
            sent.doc,
            PlacementRole::RequesterStore,
            sent.requester_age,
            response.responder_age,
            store,
        );
        if !store {
            return false;
        }
        self.insert_and_emit(response.doc, response.size, now)
            .is_stored()
    }

    /// Requester side of a group miss: the document came from the origin
    /// server and is always stored (both schemes; paper §4.1).
    pub fn complete_origin_fetch(&self, doc: DocId, size: ByteSize, now: Timestamp) -> bool {
        self.insert_and_emit(doc, size, now).is_stored()
    }

    /// Parent side of a hierarchical miss (see
    /// [`crate::ProxyNode::resolve_miss_for_child`]).
    pub fn resolve_miss_for_child(
        &self,
        request: HttpRequest,
        size: ByteSize,
        now: Timestamp,
    ) -> (HttpResponse, bool) {
        let parent_age = self.expiration_age();
        let keep = self.scheme.parent_stores(parent_age, request.requester_age);
        self.emit_placement(
            request.doc,
            PlacementRole::ParentStore,
            parent_age,
            request.requester_age,
            keep,
        );
        let stored = if keep {
            let outcome = self.insert_and_emit(request.doc, size, now);
            matches!(
                outcome,
                InsertOutcome::Stored(_) | InsertOutcome::AlreadyPresent
            )
        } else {
            false
        };
        (
            HttpResponse {
                from: self.id(),
                doc: request.doc,
                size,
                responder_age: parent_age,
            },
            stored,
        )
    }

    /// Allocation-free origin-store variant used by tight benchmark
    /// loops: evictions land in the caller's buffer instead of a fresh
    /// `Vec`, and no events are emitted.
    pub fn store_quiet(
        &self,
        doc: DocId,
        size: ByteSize,
        now: Timestamp,
        evictions: &mut Vec<EvictionRecord>,
    ) -> StoreOutcome {
        self.cache.insert_into(doc, size, now, evictions)
    }
}

/// Locks a mutex, recovering from poisoning (a panicked peer thread
/// should degrade the node, not wedge it — same stance as the daemons).
fn lock<T: ?Sized>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProxyNode;
    use coopcache_core::PolicyKind;

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    fn t(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn kb(n: u64) -> ByteSize {
        ByteSize::from_kb(n)
    }

    fn pair() -> (ConcurrentNode, ProxyNode) {
        let config = CacheConfig::new(CacheId::new(0), kb(64), PolicyKind::Lru).shards(4);
        (
            ConcurrentNode::from_config(config, PlacementScheme::Ea),
            ProxyNode::from_config(config, PlacementScheme::Ea),
        )
    }

    #[test]
    fn mirrors_the_single_threaded_node() {
        let (shared, mut serial) = pair();
        for i in 0..40u64 {
            let doc = d(i % 10);
            let a = shared.complete_origin_fetch(doc, kb(4), t(i));
            let b = serial.complete_origin_fetch(doc, kb(4), t(i));
            assert_eq!(a, b, "origin fetch #{i} diverged");
            assert_eq!(
                shared.handle_client_lookup(doc, t(i)),
                serial.handle_client_lookup(doc, t(i)),
                "lookup #{i} diverged"
            );
            assert_eq!(shared.expiration_age(), serial.expiration_age());
        }
        assert_eq!(shared.cache().len(), serial.cache().len());
        assert_eq!(shared.cache().stats(), serial.cache().stats());
    }

    #[test]
    fn responder_and_requester_handlers_work_through_shared_refs() {
        // AdHoc always stores at the requester, which keeps the assertion
        // independent of the EA tie rule (both nodes start at age ∞).
        let responder = ConcurrentNode::from_config(
            CacheConfig::new(CacheId::new(0), kb(64), PolicyKind::Lru).shards(4),
            PlacementScheme::AdHoc,
        );
        let requester = ConcurrentNode::from_config(
            CacheConfig::new(CacheId::new(1), kb(64), PolicyKind::Lru).shards(4),
            PlacementScheme::AdHoc,
        );
        responder.complete_origin_fetch(d(7), kb(4), t(1));
        let reply = responder.handle_icp_query(IcpQuery {
            from: requester.id(),
            doc: d(7),
        });
        assert!(reply.hit);
        let sent = requester.build_http_request(d(7));
        let response = responder.handle_http_request(sent, t(2)).expect("hit");
        assert!(requester.complete_remote_fetch(sent, response, t(2)));
        assert!(requester.cache().contains(d(7)));
    }

    #[test]
    fn handlers_run_from_multiple_threads() {
        let node = Arc::new(ConcurrentNode::from_config(
            CacheConfig::new(CacheId::new(0), kb(256), PolicyKind::S3Fifo).shards(8),
            PlacementScheme::Ea,
        ));
        let mut handles = Vec::new();
        for worker in 0..4u64 {
            let node = Arc::clone(&node);
            handles.push(std::thread::spawn(move || {
                for round in 0..100u64 {
                    let doc = d(worker * 1_000 + round % 40);
                    node.complete_origin_fetch(doc, kb(1), t(round));
                    node.handle_client_lookup(doc, t(round));
                    let _ = node.handle_icp_query(IcpQuery {
                        from: CacheId::new(9),
                        doc,
                    });
                }
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        node.cache().check_invariants().expect("invariants hold");
    }
}
