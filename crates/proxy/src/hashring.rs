//! Hash-routed cooperative caching — the CARP / consistent-hashing
//! alternative the paper's related-work section cites (Karger et al. [8],
//! Wu & Yu [16]).
//!
//! Instead of searching the group (ICP) or deciding replication per
//! document (ad-hoc/EA), every document has a *home cache* determined by
//! a consistent-hash ring; requests that miss locally go straight to the
//! home. Exactly one copy exists per document, with zero discovery
//! traffic — but every shared document costs a remote hop, and home
//! assignment ignores popularity.

use crate::node::ProxyNode;
use crate::outcome::RequestOutcome;
use coopcache_core::{ExpirationWindow, PlacementScheme, PolicyKind};
use coopcache_types::{ByteSize, CacheId, DocId, Timestamp};

/// A consistent-hash ring over cache ids with virtual nodes.
///
/// # Example
///
/// ```
/// use coopcache_proxy::HashRing;
/// use coopcache_types::{CacheId, DocId};
///
/// let ring = HashRing::new(4, 64);
/// let home = ring.home(DocId::new(42));
/// assert!(home.index() < 4);
/// assert_eq!(home, ring.home(DocId::new(42))); // stable
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// (ring position, owner), sorted by position.
    points: Vec<(u64, CacheId)>,
}

fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl HashRing {
    /// Builds a ring for `n` caches with `vnodes` virtual nodes each
    /// (more virtual nodes = smoother load split; 64–128 is typical).
    ///
    /// # Panics
    ///
    /// Panics if `n` or `vnodes` is zero.
    #[must_use]
    pub fn new(n: u16, vnodes: u16) -> Self {
        assert!(n > 0, "a ring needs at least one cache");
        assert!(vnodes > 0, "a ring needs at least one virtual node");
        let mut points = Vec::with_capacity(usize::from(n) * usize::from(vnodes));
        for cache in 0..n {
            for v in 0..vnodes {
                let key = (u64::from(cache) << 32) | u64::from(v);
                points.push((mix(key), CacheId::new(cache)));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|(pos, _)| *pos);
        Self { points }
    }

    /// The cache responsible for a document: the first ring point at or
    /// after the document's hash, wrapping.
    #[must_use]
    pub fn home(&self, doc: DocId) -> CacheId {
        let h = mix(doc.as_u64() ^ 0xD6E8_FEB8_6659_FD93);
        let idx = self.points.partition_point(|&(pos, _)| pos < h);
        self.points[idx % self.points.len()].1
    }

    /// Number of distinct ring points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the ring is empty (never constructible via `new`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// A cache group where documents live only at their hash-assigned home.
///
/// Serves as the third placement baseline next to ad-hoc and EA: zero
/// replication and zero discovery messages by construction, at the price
/// of a remote hop for every locally requested shared document.
///
/// # Example
///
/// ```
/// use coopcache_proxy::HashRoutedGroup;
/// use coopcache_core::PolicyKind;
/// use coopcache_types::{ByteSize, CacheId, DocId, Timestamp};
///
/// let mut group = HashRoutedGroup::new(4, ByteSize::from_mb(1), PolicyKind::Lru);
/// let out = group.handle_request(
///     CacheId::new(0), DocId::new(9), ByteSize::from_kb(4), Timestamp::ZERO);
/// assert!(!out.is_hit());
/// ```
#[derive(Debug)]
pub struct HashRoutedGroup {
    nodes: Vec<ProxyNode>,
    ring: HashRing,
}

impl HashRoutedGroup {
    /// Creates a hash-routed group of `n` caches sharing `aggregate`
    /// bytes evenly, with 64 virtual nodes per cache.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: u16, aggregate: ByteSize, policy: PolicyKind) -> Self {
        assert!(n > 0, "a group needs at least one cache");
        let per_cache = aggregate.split_evenly(u64::from(n));
        let nodes = (0..n)
            .map(|i| {
                ProxyNode::with_window(
                    CacheId::new(i),
                    per_cache,
                    policy,
                    // The placement scheme is irrelevant: hash routing
                    // never replicates, so no EA decision ever fires.
                    PlacementScheme::AdHoc,
                    ExpirationWindow::default(),
                )
            })
            .collect();
        Self {
            nodes,
            ring: HashRing::new(n, 64),
        }
    }

    /// Number of caches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the group is empty (never constructible via `new`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Read access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: CacheId) -> &ProxyNode {
        &self.nodes[id.index()]
    }

    /// The ring (for inspecting home assignments).
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Handles one client request at `requester`: a hit at the home
    /// cache is local (if the requester *is* the home) or remote; a miss
    /// is fetched from the origin and stored **only at the home**.
    ///
    /// # Panics
    ///
    /// Panics if `requester` is out of range.
    pub fn handle_request(
        &mut self,
        requester: CacheId,
        doc: DocId,
        size: ByteSize,
        now: Timestamp,
    ) -> RequestOutcome {
        assert!(requester.index() < self.nodes.len(), "unknown requester");
        let home = self.ring.home(doc);
        if home == requester {
            if self.nodes[home.index()]
                .handle_client_lookup(doc, now)
                .is_some()
            {
                return RequestOutcome::LocalHit;
            }
            let stored = self.nodes[home.index()].complete_origin_fetch(doc, size, now);
            return RequestOutcome::Miss {
                stored_locally: stored,
                stored_at_ancestor: false,
            };
        }
        // Remote home: serve from it (counts as a promoted remote hit) or
        // have it fetch and store on our behalf.
        if self.nodes[home.index()].cache().contains(doc) {
            self.nodes[home.index()].handle_client_lookup(doc, now);
            RequestOutcome::RemoteHit {
                responder: home,
                stored_locally: false,
                promoted_at_responder: true,
            }
        } else {
            let stored = self.nodes[home.index()].complete_origin_fetch(doc, size, now);
            RequestOutcome::Miss {
                stored_locally: false,
                stored_at_ancestor: stored,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    fn kb(n: u64) -> ByteSize {
        ByteSize::from_kb(n)
    }

    #[test]
    fn ring_assigns_every_cache_some_share() {
        let ring = HashRing::new(8, 64);
        let mut counts = [0usize; 8];
        for i in 0..80_000 {
            counts[ring.home(d(i)).index()] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            // Perfect balance would be 10_000; allow generous skew.
            assert!(
                (5_000..17_000).contains(&count),
                "cache {i} got {count} of 80k docs"
            );
        }
    }

    #[test]
    fn ring_is_stable_and_deterministic() {
        let a = HashRing::new(4, 32);
        let b = HashRing::new(4, 32);
        assert_eq!(a, b);
        for i in 0..1_000 {
            assert_eq!(a.home(d(i)), b.home(d(i)));
        }
    }

    #[test]
    fn growing_the_ring_moves_few_documents() {
        // The consistent-hashing property: adding a cache relocates only
        // ~1/(n+1) of the documents.
        let before = HashRing::new(4, 64);
        let after = HashRing::new(5, 64);
        let moved = (0..50_000)
            .filter(|&i| {
                let b = before.home(d(i));
                let a = after.home(d(i));
                // Documents may only move TO the new cache.
                if b != a {
                    assert_eq!(a, CacheId::new(4), "doc {i} moved between old caches");
                    true
                } else {
                    false
                }
            })
            .count();
        let fraction = moved as f64 / 50_000.0;
        assert!(
            (0.10..0.35).contains(&fraction),
            "moved fraction {fraction}"
        );
    }

    #[test]
    fn exactly_one_copy_ever_exists() {
        let mut g = HashRoutedGroup::new(4, kb(400), PolicyKind::Lru);
        for i in 0..200u64 {
            g.handle_request(CacheId::new((i % 4) as u16), d(i % 50), kb(2), t(i));
        }
        use std::collections::HashMap;
        let mut copies: HashMap<DocId, usize> = HashMap::new();
        for idx in 0..4u16 {
            for e in g.node(CacheId::new(idx)).cache().iter() {
                *copies.entry(e.doc).or_default() += 1;
            }
        }
        assert!(copies.values().all(|&c| c == 1), "found a replica");
        assert!(!copies.is_empty());
    }

    #[test]
    fn docs_live_at_their_home() {
        let mut g = HashRoutedGroup::new(3, kb(300), PolicyKind::Lru);
        for i in 0..60u64 {
            g.handle_request(CacheId::new(0), d(i), kb(1), t(i));
        }
        for idx in 0..3u16 {
            let id = CacheId::new(idx);
            for e in g.node(id).cache().iter() {
                assert_eq!(g.ring().home(e.doc), id, "doc {} strayed", e.doc);
            }
        }
    }

    #[test]
    fn request_outcomes_are_classified_correctly() {
        let mut g = HashRoutedGroup::new(2, kb(100), PolicyKind::Lru);
        // Find a doc homed at cache 1.
        let doc = (0..100)
            .map(d)
            .find(|&doc| g.ring().home(doc) == CacheId::new(1))
            .expect("some doc homes at cache 1");
        // Requested at cache 0: miss fetched+stored at the home.
        let out = g.handle_request(CacheId::new(0), doc, kb(2), t(0));
        assert_eq!(
            out,
            RequestOutcome::Miss {
                stored_locally: false,
                stored_at_ancestor: true
            }
        );
        // Again from cache 0: remote hit at the home.
        let out = g.handle_request(CacheId::new(0), doc, kb(2), t(1));
        assert!(out.is_remote_hit());
        // From cache 1 itself: local hit.
        let out = g.handle_request(CacheId::new(1), doc, kb(2), t(2));
        assert_eq!(out, RequestOutcome::LocalHit);
    }

    #[test]
    #[should_panic(expected = "at least one cache")]
    fn zero_ring_panics() {
        let _ = HashRing::new(0, 8);
    }
}
