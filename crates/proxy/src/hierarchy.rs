//! The hierarchical cooperative caching architecture (paper §3.4).
//!
//! Caches form a forest: each cache may have a parent. A local miss is
//! first probed via ICP at the cache's siblings and its parent; if nobody
//! has the document, the HTTP request travels **up** the tree carrying the
//! requester's expiration age, each ancestor resolving the miss on its
//! behalf. On the way down, every parent applies the EA parent rule
//! (store only if strictly older than the requesting child); the original
//! requester applies the ordinary requester rule.

use crate::message::{HttpRequest, HttpResponse, IcpQuery};
use crate::node::ProxyNode;
use crate::outcome::RequestOutcome;
use coopcache_core::{CacheConfig, ExpirationWindow, PlacementScheme, PolicyKind};
use coopcache_types::{ByteSize, CacheId, DocId, Timestamp};
use std::fmt;

/// Error building a [`HierarchicalGroup`] from an invalid topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The node lists are empty or of mismatched lengths.
    Shape(&'static str),
    /// A parent index points outside the node list or at the node itself.
    BadParent {
        /// The offending node.
        node: u16,
    },
    /// Following parent links from this node never reaches a root.
    Cycle {
        /// A node on the cycle.
        node: u16,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Shape(why) => write!(f, "invalid hierarchy shape: {why}"),
            Self::BadParent { node } => write!(f, "node {node} has an invalid parent index"),
            Self::Cycle { node } => write!(f, "hierarchy contains a cycle through node {node}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A tree (or forest) of cooperating caches.
///
/// # Example — the classic 4-leaves-1-parent hierarchy
///
/// ```
/// use coopcache_proxy::HierarchicalGroup;
/// use coopcache_core::{PlacementScheme, PolicyKind};
/// use coopcache_types::{ByteSize, CacheId, DocId, Timestamp};
///
/// let mut group = HierarchicalGroup::two_level(
///     4,
///     ByteSize::from_kb(64),  // per leaf
///     ByteSize::from_kb(256), // parent
///     PolicyKind::Lru,
///     PlacementScheme::Ea,
/// );
/// let out = group.handle_request(
///     CacheId::new(0), DocId::new(1), ByteSize::from_kb(4), Timestamp::ZERO);
/// assert!(!out.is_hit());
/// ```
#[derive(Debug)]
pub struct HierarchicalGroup {
    nodes: Vec<ProxyNode>,
    parent: Vec<Option<u16>>,
}

/// Result of resolving a miss through the ancestor chain.
#[derive(Debug, Clone, Copy)]
struct UpwardResult {
    /// The response handed down to the requesting child.
    response: HttpResponse,
    /// Whether some ancestor already held the document.
    hit_above: bool,
    /// Whether some ancestor stored a new copy while resolving.
    stored_above: bool,
    /// Whether the serving ancestor promoted its copy (meaningful only
    /// when `hit_above`).
    promoted_at_hit: bool,
}

impl HierarchicalGroup {
    /// Builds a hierarchy from explicit parent links.
    ///
    /// `capacities[i]` is the capacity of node `i`; `parents[i]` is its
    /// parent's index (or `None` for a root). Node `i`'s [`CacheId`] is
    /// `i`.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] for empty input, mismatched lengths,
    /// out-of-range or self parents, or cyclic parent chains.
    pub fn from_parents(
        capacities: &[ByteSize],
        parents: &[Option<u16>],
        policy: PolicyKind,
        scheme: PlacementScheme,
        window: ExpirationWindow,
    ) -> Result<Self, TopologyError> {
        if capacities.is_empty() {
            return Err(TopologyError::Shape("no nodes"));
        }
        if capacities.len() != parents.len() {
            return Err(TopologyError::Shape(
                "capacities and parents differ in length",
            ));
        }
        if capacities.len() > usize::from(u16::MAX) {
            return Err(TopologyError::Shape("too many nodes for u16 ids"));
        }
        let n = capacities.len() as u16;
        for (i, p) in parents.iter().enumerate() {
            if let Some(p) = p {
                if *p >= n || usize::from(*p) == i {
                    return Err(TopologyError::BadParent { node: i as u16 });
                }
            }
        }
        // Cycle check: each chain must reach a root within n steps.
        for start in 0..n {
            let mut cur = parents[usize::from(start)];
            let mut steps = 0u16;
            while let Some(p) = cur {
                steps += 1;
                if steps > n {
                    return Err(TopologyError::Cycle { node: start });
                }
                cur = parents[usize::from(p)];
            }
        }
        let nodes = capacities
            .iter()
            .enumerate()
            .map(|(i, &cap)| {
                ProxyNode::from_config(
                    CacheConfig::new(CacheId::new(i as u16), cap, policy).window(window),
                    scheme,
                )
            })
            .collect();
        Ok(Self {
            nodes,
            parent: parents.to_vec(),
        })
    }

    /// Convenience constructor: `leaves` children under one parent. Node
    /// ids `0..leaves` are the leaves; the parent is node `leaves`.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is zero.
    #[must_use]
    pub fn two_level(
        leaves: u16,
        leaf_capacity: ByteSize,
        parent_capacity: ByteSize,
        policy: PolicyKind,
        scheme: PlacementScheme,
    ) -> Self {
        assert!(leaves > 0, "a hierarchy needs at least one leaf");
        let mut capacities = vec![leaf_capacity; usize::from(leaves)];
        capacities.push(parent_capacity);
        let mut parents: Vec<Option<u16>> = vec![Some(leaves); usize::from(leaves)];
        parents.push(None);
        Self::from_parents(
            &capacities,
            &parents,
            policy,
            scheme,
            ExpirationWindow::default(),
        )
        // lint:allow(panic) -- the star topology built above is acyclic by
        // construction; a failure here is a bug in this constructor.
        .expect("two-level topology is always valid")
    }

    /// Number of caches (leaves + interior).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the hierarchy has no nodes (not constructible).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Read access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: CacheId) -> &ProxyNode {
        &self.nodes[id.index()]
    }

    /// The parent of `id`, if any.
    #[must_use]
    pub fn parent_of(&self, id: CacheId) -> Option<CacheId> {
        self.parent[id.index()].map(CacheId::new)
    }

    /// Iterates over the nodes in id order.
    pub fn iter(&self) -> impl Iterator<Item = &ProxyNode> {
        self.nodes.iter()
    }

    fn siblings_then_parent(&self, id: CacheId) -> Vec<CacheId> {
        let me = id.index();
        let my_parent = self.parent[me];
        let mut probe: Vec<CacheId> = Vec::new();
        if my_parent.is_some() {
            for (i, p) in self.parent.iter().enumerate() {
                if i != me && *p == my_parent {
                    probe.push(CacheId::new(i as u16));
                }
            }
        }
        if let Some(p) = my_parent {
            probe.push(CacheId::new(p));
        }
        probe
    }

    /// Handles one client request arriving at `requester` (usually a
    /// leaf): local lookup → ICP probe of siblings and parent → HTTP up
    /// the tree with piggybacked expiration ages.
    ///
    /// # Panics
    ///
    /// Panics if `requester` is out of range.
    pub fn handle_request(
        &mut self,
        requester: CacheId,
        doc: DocId,
        size: ByteSize,
        now: Timestamp,
    ) -> RequestOutcome {
        assert!(requester.index() < self.nodes.len(), "unknown requester");

        if self.nodes[requester.index()]
            .handle_client_lookup(doc, now)
            .is_some()
        {
            return RequestOutcome::LocalHit;
        }

        // ICP to siblings and parent; first positive reply wins.
        let query = IcpQuery {
            from: requester,
            doc,
        };
        let responder = self
            .siblings_then_parent(requester)
            .into_iter()
            .find(|peer| self.nodes[peer.index()].handle_icp_query(query).hit);

        if let Some(peer) = responder {
            let sent = self.nodes[requester.index()].build_http_request(doc);
            // The ICP reply can go stale before the HTTP request lands
            // (e.g. a freshness TTL expires the copy in between); in that
            // case the fetch falls through to the parent path below, just
            // as if the probe had missed.
            if let Some(response) = self.nodes[peer.index()].handle_http_request(sent, now) {
                let promoted = self.nodes[peer.index()]
                    .scheme()
                    .responder_promotes(response.responder_age, sent.requester_age);
                let stored =
                    self.nodes[requester.index()].complete_remote_fetch(sent, response, now);
                return RequestOutcome::RemoteHit {
                    responder: peer,
                    stored_locally: stored,
                    promoted_at_responder: promoted,
                };
            }
        }

        match self.parent[requester.index()] {
            Some(parent) => {
                let sent = self.nodes[requester.index()].build_http_request(doc);
                let up = self.fetch_through(parent, sent, size, now);
                let mut stored =
                    self.nodes[requester.index()].complete_remote_fetch(sent, up.response, now);
                if up.hit_above {
                    RequestOutcome::RemoteHit {
                        responder: up.response.from,
                        stored_locally: stored,
                        promoted_at_responder: up.promoted_at_hit,
                    }
                } else {
                    // Starvation guard: on a true miss the paper's strict
                    // tie rules can leave the document stored NOWHERE
                    // (e.g. a completely cold hierarchy where every age is
                    // still infinite). A copy must land somewhere or the
                    // hierarchy never warms up, so the requester falls
                    // back to the distributed-architecture behaviour
                    // (store at the requester) when no node kept one.
                    if !stored && !up.stored_above {
                        stored =
                            self.nodes[requester.index()].complete_origin_fetch(doc, size, now);
                    }
                    RequestOutcome::Miss {
                        stored_locally: stored,
                        stored_at_ancestor: up.stored_above,
                    }
                }
            }
            None => {
                // A root miss resolves directly against the origin and is
                // always stored (as in the distributed architecture).
                let stored = self.nodes[requester.index()].complete_origin_fetch(doc, size, now);
                RequestOutcome::Miss {
                    stored_locally: stored,
                    stored_at_ancestor: false,
                }
            }
        }
    }

    /// Resolves a child's miss at ancestor `node`, recursing upward.
    fn fetch_through(
        &mut self,
        node: u16,
        request: HttpRequest,
        size: ByteSize,
        now: Timestamp,
    ) -> UpwardResult {
        let idx = usize::from(node);
        // The ancestor itself may hold the document (it is only ICP-probed
        // by its direct children, not by deeper descendants). A TTL-stale
        // copy is expired inside the handler and resolves as a miss, so
        // the fetch continues upward instead of serving stale bytes.
        if let Some(response) = self.nodes[idx].handle_http_request(request, now) {
            let scheme = self.nodes[idx].scheme();
            return UpwardResult {
                response,
                hit_above: true,
                stored_above: false,
                promoted_at_hit: scheme
                    .responder_promotes(response.responder_age, request.requester_age),
            };
        }
        match self.parent[idx] {
            Some(grandparent) => {
                // Ask upward with THIS node's own age piggybacked.
                let up_request = self.nodes[idx].build_http_request(request.doc);
                let up = self.fetch_through(grandparent, up_request, size, now);
                // This node decides as a parent serving `request.from`.
                let (response, stored_here) =
                    self.nodes[idx].resolve_miss_for_child(request, up.response.size, now);
                UpwardResult {
                    response,
                    hit_above: up.hit_above,
                    stored_above: up.stored_above || stored_here,
                    promoted_at_hit: up.promoted_at_hit,
                }
            }
            None => {
                // Root: fetch from the origin on the child's behalf.
                let (response, stored_here) =
                    self.nodes[idx].resolve_miss_for_child(request, size, now);
                UpwardResult {
                    response,
                    hit_above: false,
                    stored_above: stored_here,
                    promoted_at_hit: false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    fn kb(n: u64) -> ByteSize {
        ByteSize::from_kb(n)
    }

    fn c(i: u16) -> CacheId {
        CacheId::new(i)
    }

    fn two_level(scheme: PlacementScheme) -> HierarchicalGroup {
        HierarchicalGroup::two_level(3, kb(10), kb(20), PolicyKind::Lru, scheme)
    }

    #[test]
    fn topology_accessors() {
        let g = two_level(PlacementScheme::Ea);
        assert_eq!(g.len(), 4);
        assert_eq!(g.parent_of(c(0)), Some(c(3)));
        assert_eq!(g.parent_of(c(3)), None);
        assert_eq!(g.iter().count(), 4);
    }

    #[test]
    fn invalid_topologies_rejected() {
        let w = ExpirationWindow::default();
        let (p, s) = (PolicyKind::Lru, PlacementScheme::Ea);
        assert_eq!(
            HierarchicalGroup::from_parents(&[], &[], p, s, w).unwrap_err(),
            TopologyError::Shape("no nodes")
        );
        assert!(matches!(
            HierarchicalGroup::from_parents(&[kb(1)], &[], p, s, w).unwrap_err(),
            TopologyError::Shape(_)
        ));
        assert_eq!(
            HierarchicalGroup::from_parents(&[kb(1)], &[Some(0)], p, s, w).unwrap_err(),
            TopologyError::BadParent { node: 0 }
        );
        assert_eq!(
            HierarchicalGroup::from_parents(&[kb(1)], &[Some(5)], p, s, w).unwrap_err(),
            TopologyError::BadParent { node: 0 }
        );
        // Two nodes pointing at each other.
        let err = HierarchicalGroup::from_parents(&[kb(1), kb(1)], &[Some(1), Some(0)], p, s, w)
            .unwrap_err();
        assert!(matches!(err, TopologyError::Cycle { .. }), "{err}");
    }

    #[test]
    fn ad_hoc_miss_stores_at_leaf_and_parent() {
        let mut g = two_level(PlacementScheme::AdHoc);
        let out = g.handle_request(c(0), d(1), kb(4), t(0));
        assert_eq!(
            out,
            RequestOutcome::Miss {
                stored_locally: true,
                stored_at_ancestor: true
            }
        );
        assert!(g.node(c(0)).cache().contains(d(1)));
        assert!(g.node(c(3)).cache().contains(d(1)), "parent keeps a copy");
    }

    #[test]
    fn ea_tied_ages_store_at_leaf_only() {
        // All ages infinite: requester rule (>=) stores at the leaf, the
        // strict parent rule declines at the parent — EA's first replica
        // saving.
        let mut g = two_level(PlacementScheme::Ea);
        let out = g.handle_request(c(0), d(1), kb(4), t(0));
        assert_eq!(
            out,
            RequestOutcome::Miss {
                stored_locally: true,
                stored_at_ancestor: false
            }
        );
        assert!(g.node(c(0)).cache().contains(d(1)));
        assert!(!g.node(c(3)).cache().contains(d(1)));
    }

    #[test]
    fn sibling_copy_is_a_remote_hit() {
        let mut g = two_level(PlacementScheme::AdHoc);
        g.handle_request(c(0), d(1), kb(4), t(0));
        let out = g.handle_request(c(1), d(1), kb(4), t(1));
        match out {
            RequestOutcome::RemoteHit { responder, .. } => assert_eq!(responder, c(0)),
            other => panic!("expected remote hit, got {other:?}"),
        }
    }

    #[test]
    fn parent_copy_is_a_remote_hit() {
        let mut g = two_level(PlacementScheme::AdHoc);
        g.handle_request(c(0), d(1), kb(4), t(0)); // stores at leaf 0 + parent
                                                   // Leaf 1's siblings probe order: leaf 0 first (holds it).
                                                   // Remove leaf 0's copy to force the parent to answer.
                                                   // (Reach in through a fresh request pattern instead: ask from leaf
                                                   // 2 for a doc only the parent holds.)
        let mut g2 = two_level(PlacementScheme::AdHoc);
        g2.handle_request(c(0), d(9), kb(4), t(0));
        // Evict leaf 0's copy by churning it with big docs.
        g2.handle_request(c(0), d(100), kb(10), t(1));
        assert!(!g2.node(c(0)).cache().contains(d(9)));
        assert!(g2.node(c(3)).cache().contains(d(9)));
        let out = g2.handle_request(c(1), d(9), kb(4), t(2));
        match out {
            RequestOutcome::RemoteHit { responder, .. } => assert_eq!(responder, c(3)),
            other => panic!("expected parent remote hit, got {other:?}"),
        }
        drop(g);
    }

    #[test]
    fn three_level_chain_resolves_to_origin() {
        // leaf(0) -> mid(1) -> root(2)
        let g = HierarchicalGroup::from_parents(
            &[kb(10), kb(10), kb(10)],
            &[Some(1), Some(2), None],
            PolicyKind::Lru,
            PlacementScheme::AdHoc,
            ExpirationWindow::default(),
        );
        let mut g = g.unwrap();
        let out = g.handle_request(c(0), d(1), kb(2), t(0));
        assert_eq!(
            out,
            RequestOutcome::Miss {
                stored_locally: true,
                stored_at_ancestor: true
            }
        );
        // Ad-hoc: every level keeps a copy.
        for i in 0..3 {
            assert!(
                g.node(c(i)).cache().contains(d(1)),
                "node {i} lost the copy"
            );
        }
    }

    #[test]
    fn grandparent_copy_found_on_the_way_up() {
        let mut g = HierarchicalGroup::from_parents(
            &[kb(10), kb(10), kb(10)],
            &[Some(1), Some(2), None],
            PolicyKind::Lru,
            PlacementScheme::AdHoc,
            ExpirationWindow::default(),
        )
        .unwrap();
        // Seed the ROOT only: ask from the root itself.
        g.handle_request(c(2), d(7), kb(2), t(0));
        assert!(g.node(c(2)).cache().contains(d(7)));
        // Leaf misses, mid misses; ICP probes only mid (no siblings), so
        // the root copy is discovered during upward resolution.
        let out = g.handle_request(c(0), d(7), kb(2), t(1));
        match out {
            RequestOutcome::RemoteHit { responder, .. } => assert_eq!(responder, c(1)),
            other => panic!("expected remote hit via mid, got {other:?}"),
        }
    }

    #[test]
    fn root_request_is_plain_origin_fetch() {
        let mut g = two_level(PlacementScheme::Ea);
        let out = g.handle_request(c(3), d(1), kb(4), t(0));
        assert_eq!(
            out,
            RequestOutcome::Miss {
                stored_locally: true,
                stored_at_ancestor: false
            }
        );
        assert_eq!(
            g.handle_request(c(3), d(1), kb(4), t(1)),
            RequestOutcome::LocalHit
        );
    }

    #[test]
    fn topology_error_display() {
        let e = TopologyError::Cycle { node: 3 };
        assert!(e.to_string().contains("cycle"));
        assert!(TopologyError::BadParent { node: 1 }
            .to_string()
            .contains("parent"));
    }
}
