//! Inter-proxy protocol messages.
//!
//! The EA scheme adds **no messages** to the conventional protocol: the
//! only change is one [`ExpirationAge`] piggybacked on the HTTP request
//! and one on the HTTP response (paper §3.4). The ICP query/reply pair is
//! unchanged from RFC 2186-style ICP.

use coopcache_types::{ByteSize, CacheId, DocId, ExpirationAge};

/// ICP query: "do you have `doc`?", sent by a cache that just missed
/// locally to all its siblings/peers (and parents, in a hierarchy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IcpQuery {
    /// The cache that missed (the requester).
    pub from: CacheId,
    /// The wanted document.
    pub doc: DocId,
}

/// ICP reply: whether the replying cache holds the document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IcpReply {
    /// The replying cache.
    pub from: CacheId,
    /// The document asked about.
    pub doc: DocId,
    /// `true` = ICP_HIT, `false` = ICP_MISS.
    pub hit: bool,
}

/// HTTP request from requester to responder, carrying the requester's
/// cache expiration age (the EA scheme's only addition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HttpRequest {
    /// The requesting cache.
    pub from: CacheId,
    /// The wanted document.
    pub doc: DocId,
    /// The requester's current cache expiration age.
    pub requester_age: ExpirationAge,
}

/// HTTP response carrying the document (represented by its size) and the
/// responder's cache expiration age.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HttpResponse {
    /// The responding cache.
    pub from: CacheId,
    /// The served document.
    pub doc: DocId,
    /// The document's size (stands in for the body).
    pub size: ByteSize,
    /// The responder's current cache expiration age.
    pub responder_age: ExpirationAge,
}

#[cfg(test)]
mod tests {
    use super::*;
    use coopcache_types::DurationMs;

    #[test]
    fn messages_are_plain_data() {
        let q = IcpQuery {
            from: CacheId::new(0),
            doc: DocId::new(9),
        };
        let r = IcpReply {
            from: CacheId::new(1),
            doc: q.doc,
            hit: true,
        };
        assert_eq!(q.doc, r.doc);
        let req = HttpRequest {
            from: q.from,
            doc: q.doc,
            requester_age: ExpirationAge::Infinite,
        };
        let resp = HttpResponse {
            from: r.from,
            doc: req.doc,
            size: ByteSize::from_kb(4),
            responder_age: ExpirationAge::finite(DurationMs::from_secs(10)),
        };
        assert!(req.requester_age > resp.responder_age);
        // Copy semantics: the originals remain usable.
        let (_q2, _r2, _req2, _resp2) = (q, r, req, resp);
        assert_eq!(q.from, CacheId::new(0));
    }
}
