//! A Bloom filter, built from scratch for cache-content digests.
//!
//! Summary Cache (Fan et al., SIGCOMM '98 — the paper's reference [6])
//! replaces per-miss ICP queries with periodically exchanged Bloom-filter
//! digests of each cache's contents. [`BloomFilter`] is the underlying
//! structure: k-fold double hashing over a fixed bit array, sized from a
//! capacity hint and a target false-positive rate.

use coopcache_types::DocId;

/// A fixed-size Bloom filter over document ids.
///
/// # Example
///
/// ```
/// use coopcache_proxy::BloomFilter;
/// use coopcache_types::DocId;
///
/// let mut filter = BloomFilter::with_rate(1_000, 0.01);
/// filter.insert(DocId::new(7));
/// assert!(filter.contains(DocId::new(7)));       // no false negatives
/// // false positives are possible but rare at the configured rate
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: u64,
    n_hashes: u32,
    inserted: usize,
}

impl BloomFilter {
    /// Sizes a filter for `expected_items` at the given false-positive
    /// rate, using the standard optimum `m = -n·ln(p)/ln(2)²`,
    /// `k = (m/n)·ln(2)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fp_rate < 1`.
    #[must_use]
    pub fn with_rate(expected_items: usize, fp_rate: f64) -> Self {
        assert!(
            fp_rate > 0.0 && fp_rate < 1.0,
            "false-positive rate must be in (0, 1)"
        );
        let n = expected_items.max(1) as f64;
        let ln2 = std::f64::consts::LN_2;
        let m = (-n * fp_rate.ln() / (ln2 * ln2)).ceil().max(64.0) as u64;
        let k = ((m as f64 / n) * ln2).round().clamp(1.0, 16.0) as u32;
        Self {
            bits: vec![0u64; m.div_ceil(64) as usize],
            n_bits: m,
            n_hashes: k,
            inserted: 0,
        }
    }

    /// Number of bits in the filter.
    #[must_use]
    pub fn n_bits(&self) -> u64 {
        self.n_bits
    }

    /// Number of hash probes per operation.
    #[must_use]
    pub fn n_hashes(&self) -> u32 {
        self.n_hashes
    }

    /// Number of items inserted since construction.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inserted
    }

    /// True when nothing has been inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inserted == 0
    }

    /// Size of the digest on the wire, in bytes (what a Summary-Cache
    /// style broadcast would transmit).
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        self.bits.len() as u64 * 8
    }

    fn hashes(&self, doc: DocId) -> (u64, u64) {
        // Two independent 64-bit mixes (SplitMix64 finalizers with
        // different constants) drive k-fold double hashing.
        let mut h1 = doc.as_u64().wrapping_add(0x9E37_79B9_7F4A_7C15);
        h1 = (h1 ^ (h1 >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h1 = (h1 ^ (h1 >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h1 ^= h1 >> 31;
        let mut h2 = doc.as_u64().wrapping_add(0xC2B2_AE3D_27D4_EB4F);
        h2 = (h2 ^ (h2 >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h2 = (h2 ^ (h2 >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        h2 ^= h2 >> 33;
        (h1, h2 | 1) // odd step ensures full-period probing
    }

    fn bit_index(&self, h1: u64, h2: u64, i: u32) -> usize {
        (h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % self.n_bits) as usize
    }

    /// Sets the document's bits.
    pub fn insert(&mut self, doc: DocId) {
        let (h1, h2) = self.hashes(doc);
        for i in 0..self.n_hashes {
            let idx = self.bit_index(h1, h2, i);
            self.bits[idx / 64] |= 1u64 << (idx % 64);
        }
        self.inserted += 1;
    }

    /// Tests the document's bits. Never a false negative for inserted
    /// documents; false positives occur at roughly the configured rate.
    #[must_use]
    pub fn contains(&self, doc: DocId) -> bool {
        let (h1, h2) = self.hashes(doc);
        (0..self.n_hashes).all(|i| {
            let idx = self.bit_index(h1, h2, i);
            self.bits[idx / 64] & (1u64 << (idx % 64)) != 0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_rate(500, 0.01);
        for i in 0..500 {
            f.insert(DocId::new(i * 31 + 7));
        }
        for i in 0..500 {
            assert!(f.contains(DocId::new(i * 31 + 7)), "lost doc {i}");
        }
        assert_eq!(f.len(), 500);
    }

    #[test]
    fn false_positive_rate_near_target() {
        let mut f = BloomFilter::with_rate(1_000, 0.01);
        for i in 0..1_000u64 {
            f.insert(DocId::new(i));
        }
        let probes = 100_000u64;
        let fps = (1_000..1_000 + probes)
            .filter(|&i| f.contains(DocId::new(i)))
            .count() as f64;
        let rate = fps / probes as f64;
        assert!(rate < 0.03, "false-positive rate {rate} too high");
        assert!(rate > 0.001, "rate {rate} suspiciously low — sizing bug?");
    }

    #[test]
    fn empty_filter_matches_nothing() {
        let f = BloomFilter::with_rate(100, 0.01);
        assert!(f.is_empty());
        assert!((0..1_000).all(|i| !f.contains(DocId::new(i))));
    }

    #[test]
    fn sizing_follows_the_standard_formulas() {
        let f = BloomFilter::with_rate(1_000, 0.01);
        // m ≈ 9585 bits, k ≈ 7 for n=1000, p=0.01.
        assert!((9_000..10_500).contains(&f.n_bits()), "{}", f.n_bits());
        assert_eq!(f.n_hashes(), 7);
        assert_eq!(f.wire_bytes(), f.n_bits().div_ceil(64) * 8);
    }

    #[test]
    fn tiny_filters_are_clamped() {
        let f = BloomFilter::with_rate(0, 0.5);
        assert!(f.n_bits() >= 64);
        assert!(f.n_hashes() >= 1);
    }

    #[test]
    #[should_panic(expected = "false-positive rate")]
    fn bad_rate_panics() {
        let _ = BloomFilter::with_rate(10, 1.5);
    }
}
