//! Document-discovery mechanisms and inter-proxy message accounting.
//!
//! The paper's experiments use ICP (query every peer on every local
//! miss). Its related-work section surveys the alternatives this module
//! also implements: **Summary-Cache-style Bloom digests** (periodically
//! broadcast content summaries, checked locally, occasionally wrong) and
//! **no cooperation at all** (the isolated-caches baseline that motivates
//! cooperative caching in the first place).

use coopcache_types::DurationMs;

/// How a cache that missed locally locates the document in the group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Discovery {
    /// Query every peer on every local miss (ICP, the paper's setup).
    Icp,
    /// Summary-Cache-style digests: every `refresh_every` of simulated
    /// time each cache rebuilds a Bloom filter of its contents (at the
    /// given false-positive rate) and broadcasts it; misses consult the
    /// local digest copies instead of sending queries. Digests go stale
    /// between refreshes, so lookups can be wrong in both directions.
    Digest {
        /// Rebuild-and-broadcast period.
        refresh_every: DurationMs,
        /// Target false-positive rate of each digest.
        fp_rate: f64,
    },
    /// No cooperation: a local miss goes straight to the origin.
    Isolated,
}

impl Default for Discovery {
    /// The paper's mechanism.
    fn default() -> Self {
        Self::Icp
    }
}

impl std::fmt::Display for Discovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Icp => f.write_str("icp"),
            Self::Digest { refresh_every, .. } => write!(f, "digest/{refresh_every}"),
            Self::Isolated => f.write_str("isolated"),
        }
    }
}

/// Counters of inter-proxy traffic, the currency in which cooperative
/// caching pays for its hit-rate gains. The EA scheme's selling point
/// (§3.5) is that it adds **zero** to every column — its expiration ages
/// ride on messages that are sent anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtocolStats {
    /// ICP queries sent.
    pub icp_queries: u64,
    /// ICP replies received.
    pub icp_replies: u64,
    /// Inter-cache document requests (HTTP GETs between proxies).
    pub doc_requests: u64,
    /// Digest rebuild-and-broadcast events (one per cache per period).
    pub digest_refreshes: u64,
    /// Total digest bytes broadcast.
    pub digest_bytes: u64,
    /// Digest consultations that pointed at a cache which turned out not
    /// to hold the document (false positives + staleness).
    pub digest_misdirections: u64,
}

impl ProtocolStats {
    /// Total discrete messages exchanged between proxies.
    #[must_use]
    pub fn messages(&self) -> u64 {
        self.icp_queries + self.icp_replies + self.doc_requests + self.digest_refreshes
    }

    /// Messages per request, the Summary-Cache cost metric.
    #[must_use]
    pub fn messages_per_request(&self, requests: u64) -> f64 {
        if requests == 0 {
            0.0
        } else {
            self.messages() as f64 / requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_icp() {
        assert_eq!(Discovery::default(), Discovery::Icp);
    }

    #[test]
    fn display_names() {
        assert_eq!(Discovery::Icp.to_string(), "icp");
        assert_eq!(Discovery::Isolated.to_string(), "isolated");
        let d = Discovery::Digest {
            refresh_every: DurationMs::from_secs(60),
            fp_rate: 0.01,
        };
        assert_eq!(d.to_string(), "digest/60s");
    }

    #[test]
    fn message_totals() {
        let s = ProtocolStats {
            icp_queries: 30,
            icp_replies: 30,
            doc_requests: 5,
            digest_refreshes: 4,
            digest_bytes: 4_096,
            digest_misdirections: 1,
        };
        assert_eq!(s.messages(), 69);
        assert!((s.messages_per_request(10) - 6.9).abs() < 1e-12);
        assert_eq!(ProtocolStats::default().messages_per_request(0), 0.0);
    }
}
