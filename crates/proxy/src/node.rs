//! A single proxy node: one cache plus the protocol handlers.
//!
//! [`ProxyNode`] contains no I/O and no knowledge of how messages travel:
//! the synchronous [`crate::DistributedGroup`], the discrete-event
//! simulator and the real-socket runtime in `coopcache-net` all drive the
//! same handlers, so every execution mode exercises identical placement
//! logic.

use crate::message::{HttpRequest, HttpResponse, IcpQuery, IcpReply};
use coopcache_core::{
    Cache, CacheConfig, EvictionReason, EvictionRecord, ExpirationFlavor, ExpirationWindow,
    InsertOutcome, PlacementScheme, PolicyKind,
};
use coopcache_obs::{Event, EventKind, EvictionCause, PlacementRole, SinkHandle, StatsRegistry};
use coopcache_types::{ByteSize, CacheId, DocId, ExpirationAge, Timestamp};
use std::sync::Arc;

/// One cooperative proxy: a [`Cache`] plus the requester/responder logic
/// of the configured [`PlacementScheme`].
///
/// # Example
///
/// ```
/// use coopcache_proxy::{IcpQuery, ProxyNode};
/// use coopcache_core::{PlacementScheme, PolicyKind};
/// use coopcache_types::{ByteSize, CacheId, DocId, Timestamp};
///
/// let mut node = ProxyNode::new(
///     CacheId::new(0),
///     ByteSize::from_kb(64),
///     PolicyKind::Lru,
///     PlacementScheme::Ea,
/// );
/// let now = Timestamp::from_secs(1);
/// node.complete_origin_fetch(DocId::new(5), ByteSize::from_kb(4), now);
/// let reply = node.handle_icp_query(IcpQuery { from: CacheId::new(1), doc: DocId::new(5) });
/// assert!(reply.hit);
/// ```
#[derive(Debug)]
pub struct ProxyNode {
    cache: Cache,
    scheme: PlacementScheme,
    /// Optional event sink; `None` (the default) costs one branch per
    /// protocol step.
    sink: Option<SinkHandle>,
    /// Optional live counters; unlike the sink these count placements
    /// and evictions even when no sink is installed (relaxed atomics,
    /// so the hot path takes no lock).
    stats: Option<Arc<StatsRegistry>>,
}

impl ProxyNode {
    /// Creates a node with the default expiration-age window.
    #[must_use]
    pub fn new(
        id: CacheId,
        capacity: ByteSize,
        policy: PolicyKind,
        scheme: PlacementScheme,
    ) -> Self {
        Self::with_window(id, capacity, policy, scheme, ExpirationWindow::default())
    }

    /// Creates a node with an explicit expiration-age window.
    #[must_use]
    pub fn with_window(
        id: CacheId,
        capacity: ByteSize,
        policy: PolicyKind,
        scheme: PlacementScheme,
        window: ExpirationWindow,
    ) -> Self {
        Self::from_config(
            CacheConfig::new(id, capacity, policy).window(window),
            scheme,
        )
    }

    /// Creates a node from a full cache configuration (shard count, TTL,
    /// seed and window all honored).
    #[must_use]
    pub fn from_config(config: CacheConfig, scheme: PlacementScheme) -> Self {
        Self {
            cache: config.build(),
            scheme,
            sink: None,
            stats: None,
        }
    }

    /// Attaches an event sink; placement decisions and evictions from
    /// this node flow into it.
    pub fn set_sink(&mut self, sink: SinkHandle) {
        self.sink = Some(sink);
    }

    /// Detaches the event sink (back to the zero-cost default).
    pub fn clear_sink(&mut self) {
        self.sink = None;
    }

    /// Attaches a live stats registry; placement and eviction counts
    /// from this node land in it whether or not a sink is installed.
    pub fn set_stats(&mut self, stats: Arc<StatsRegistry>) {
        self.stats = Some(stats);
    }

    fn emit(&self, event: &Event) {
        if let Some(sink) = &self.sink {
            sink.emit(event);
        }
    }

    fn emit_placement(
        &self,
        doc: DocId,
        role: PlacementRole,
        self_age: ExpirationAge,
        peer_age: ExpirationAge,
        stored: bool,
    ) {
        if let Some(stats) = &self.stats {
            stats.record(EventKind::Placement);
        }
        if self.sink.is_some() {
            self.emit(&Event::Placement {
                cache: self.id(),
                doc,
                role,
                self_age,
                peer_age,
                stored,
                tie: self_age == peer_age,
            });
        }
    }

    fn emit_evictions(&self, evictions: &[EvictionRecord]) {
        if let Some(stats) = &self.stats {
            for _ in evictions {
                stats.record(EventKind::Eviction);
            }
        }
        if self.sink.is_none() {
            return;
        }
        let flavor = self.cache.expiration_flavor();
        for rec in evictions {
            let age = match flavor {
                ExpirationFlavor::Lru => rec.entry.lru_expiration_age(rec.evicted_at),
                ExpirationFlavor::Lfu => rec.entry.lfu_expiration_age(rec.evicted_at),
            };
            self.emit(&Event::Eviction {
                cache: self.id(),
                doc: rec.entry.doc,
                age_ms: age.as_millis(),
                cause: match rec.reason {
                    EvictionReason::CapacityPressure => EvictionCause::Capacity,
                    EvictionReason::Explicit => EvictionCause::Explicit,
                    EvictionReason::Expired => EvictionCause::Expired,
                },
            });
        }
    }

    /// This node's cache id.
    #[must_use]
    pub fn id(&self) -> CacheId {
        self.cache.id()
    }

    /// Sets (or clears) the underlying cache's freshness TTL.
    pub fn set_ttl(&mut self, ttl: Option<coopcache_types::DurationMs>) {
        self.cache.set_ttl(ttl);
    }

    /// The placement scheme in force.
    #[must_use]
    pub fn scheme(&self) -> PlacementScheme {
        self.scheme
    }

    /// Read access to the underlying cache (stats, tracker, entries).
    #[must_use]
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// This node's current cache expiration age.
    #[must_use]
    pub fn expiration_age(&self) -> ExpirationAge {
        self.cache.expiration_age()
    }

    /// Serves a local client request; `Some(size)` on a local hit.
    pub fn handle_client_lookup(&mut self, doc: DocId, now: Timestamp) -> Option<ByteSize> {
        self.cache.lookup(doc, now)
    }

    /// Answers an ICP query (read-only).
    #[must_use]
    pub fn handle_icp_query(&self, query: IcpQuery) -> IcpReply {
        IcpReply {
            from: self.id(),
            doc: query.doc,
            hit: self.cache.contains(query.doc),
        }
    }

    /// Responder side of a remote hit: serves the document and applies the
    /// scheme's promotion rule using the piggybacked requester age.
    ///
    /// Returns `None` when the document is no longer cached (it can be
    /// evicted between the ICP reply and the HTTP request — the requester
    /// then falls back to the origin).
    pub fn handle_http_request(
        &mut self,
        request: HttpRequest,
        now: Timestamp,
    ) -> Option<HttpResponse> {
        let responder_age = self.expiration_age();
        let promote = self
            .scheme
            .responder_promotes(responder_age, request.requester_age);
        let size = self.cache.serve_remote(request.doc, now, promote)?;
        self.emit_placement(
            request.doc,
            PlacementRole::ResponderPromote,
            responder_age,
            request.requester_age,
            promote,
        );
        Some(HttpResponse {
            from: self.id(),
            doc: request.doc,
            size,
            responder_age,
        })
    }

    /// Builds the HTTP request this node sends after a positive ICP reply,
    /// capturing the node's current expiration age.
    #[must_use]
    pub fn build_http_request(&self, doc: DocId) -> HttpRequest {
        HttpRequest {
            from: self.id(),
            doc,
            requester_age: self.expiration_age(),
        }
    }

    /// Requester side of a remote hit: applies the scheme's store rule to
    /// the received response. Returns `true` iff a local copy was stored.
    ///
    /// The store decision compares the expiration age *captured in the
    /// request we sent* against the responder's piggybacked age, exactly
    /// as the wire protocol does.
    pub fn complete_remote_fetch(
        &mut self,
        sent: HttpRequest,
        response: HttpResponse,
        now: Timestamp,
    ) -> bool {
        debug_assert_eq!(sent.doc, response.doc, "response for a different doc");
        let store = self
            .scheme
            .requester_stores(sent.requester_age, response.responder_age);
        self.emit_placement(
            sent.doc,
            PlacementRole::RequesterStore,
            sent.requester_age,
            response.responder_age,
            store,
        );
        if !store {
            return false;
        }
        let outcome = self.cache.insert(response.doc, response.size, now);
        self.emit_evictions(outcome.evictions());
        outcome.is_stored()
    }

    /// Requester side of a group miss in the *distributed* architecture:
    /// the document came from the origin server and is always stored
    /// (both schemes; paper §4.1).
    pub fn complete_origin_fetch(&mut self, doc: DocId, size: ByteSize, now: Timestamp) -> bool {
        let outcome = self.cache.insert(doc, size, now);
        self.emit_evictions(outcome.evictions());
        outcome.is_stored()
    }

    /// Parent side of a hierarchical miss: the parent fetched `doc` from
    /// the origin (or above) on behalf of a child whose age was
    /// piggybacked on the request; it keeps a copy only when the scheme
    /// says so. Returns the response to send down, and whether a copy was
    /// kept here.
    pub fn resolve_miss_for_child(
        &mut self,
        request: HttpRequest,
        size: ByteSize,
        now: Timestamp,
    ) -> (HttpResponse, bool) {
        let parent_age = self.expiration_age();
        let keep = self.scheme.parent_stores(parent_age, request.requester_age);
        self.emit_placement(
            request.doc,
            PlacementRole::ParentStore,
            parent_age,
            request.requester_age,
            keep,
        );
        let stored = if keep {
            let outcome = self.cache.insert(request.doc, size, now);
            self.emit_evictions(outcome.evictions());
            matches!(
                outcome,
                InsertOutcome::Stored(_) | InsertOutcome::AlreadyPresent
            )
        } else {
            false
        };
        (
            HttpResponse {
                from: self.id(),
                doc: request.doc,
                size,
                responder_age: parent_age,
            },
            stored,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u16, cap_kb: u64, scheme: PlacementScheme) -> ProxyNode {
        ProxyNode::new(
            CacheId::new(id),
            ByteSize::from_kb(cap_kb),
            PolicyKind::Lru,
            scheme,
        )
    }

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    fn kb(n: u64) -> ByteSize {
        ByteSize::from_kb(n)
    }

    /// Forces a node's expiration age down by churning tiny documents
    /// through it: lots of rapid evictions => high contention => low age.
    fn make_contended(node: &mut ProxyNode, base_ms: u64) {
        for i in 0..64 {
            node.complete_origin_fetch(d(100_000 + i), node.cache().capacity(), t(base_ms + i));
        }
    }

    #[test]
    fn icp_reflects_contents() {
        let mut n = node(0, 64, PlacementScheme::Ea);
        let q = IcpQuery {
            from: CacheId::new(1),
            doc: d(5),
        };
        assert!(!n.handle_icp_query(q).hit);
        n.complete_origin_fetch(d(5), kb(4), t(0));
        assert!(n.handle_icp_query(q).hit);
        assert_eq!(n.handle_icp_query(q).from, CacheId::new(0));
    }

    #[test]
    fn client_lookup_hits_and_misses() {
        let mut n = node(0, 64, PlacementScheme::AdHoc);
        assert_eq!(n.handle_client_lookup(d(1), t(0)), None);
        n.complete_origin_fetch(d(1), kb(4), t(1));
        assert_eq!(n.handle_client_lookup(d(1), t(2)), Some(kb(4)));
    }

    #[test]
    fn http_request_carries_current_age() {
        let n = node(0, 64, PlacementScheme::Ea);
        let req = n.build_http_request(d(1));
        assert_eq!(req.requester_age, ExpirationAge::Infinite);
        assert_eq!(req.from, CacheId::new(0));
    }

    #[test]
    fn responder_serves_and_reports_age() {
        let mut responder = node(1, 64, PlacementScheme::Ea);
        responder.complete_origin_fetch(d(7), kb(4), t(0));
        let req = HttpRequest {
            from: CacheId::new(0),
            doc: d(7),
            requester_age: ExpirationAge::Infinite,
        };
        let resp = responder.handle_http_request(req, t(10)).unwrap();
        assert_eq!(resp.size, kb(4));
        assert_eq!(resp.doc, d(7));
        assert_eq!(resp.responder_age, ExpirationAge::Infinite);
    }

    #[test]
    fn responder_returns_none_for_evicted_doc() {
        let mut responder = node(1, 64, PlacementScheme::Ea);
        let req = HttpRequest {
            from: CacheId::new(0),
            doc: d(7),
            requester_age: ExpirationAge::Infinite,
        };
        assert!(responder.handle_http_request(req, t(0)).is_none());
    }

    #[test]
    fn ea_requester_skips_store_when_more_contended() {
        // Responder never evicted => infinite age. Requester heavily
        // contended => finite age. EA: requester must NOT store.
        let mut requester = node(0, 4, PlacementScheme::Ea);
        make_contended(&mut requester, 0);
        assert!(requester.expiration_age() < ExpirationAge::Infinite);
        let sent = requester.build_http_request(d(1));
        let resp = HttpResponse {
            from: CacheId::new(1),
            doc: d(1),
            size: kb(1),
            responder_age: ExpirationAge::Infinite,
        };
        assert!(!requester.complete_remote_fetch(sent, resp, t(1_000)));
        assert!(!requester.cache().contains(d(1)));
    }

    #[test]
    fn ad_hoc_requester_always_stores() {
        let mut requester = node(0, 4, PlacementScheme::AdHoc);
        make_contended(&mut requester, 0);
        let sent = requester.build_http_request(d(1));
        let resp = HttpResponse {
            from: CacheId::new(1),
            doc: d(1),
            size: kb(1),
            responder_age: ExpirationAge::Infinite,
        };
        assert!(requester.complete_remote_fetch(sent, resp, t(1_000)));
        assert!(requester.cache().contains(d(1)));
    }

    #[test]
    fn ea_responder_skips_promotion_for_calmer_requester() {
        // Contended responder serving a calm (infinite-age) requester:
        // the entry must NOT be refreshed.
        let mut responder = node(1, 8, PlacementScheme::Ea);
        responder.complete_origin_fetch(d(1), kb(4), t(0));
        responder.complete_origin_fetch(d(2), kb(4), t(1));
        // Make the responder contended so its age is finite.
        responder.complete_origin_fetch(d(3), kb(8), t(2)); // evicts 1 and 2
        responder.complete_origin_fetch(d(4), kb(4), t(3)); // evicts 3
        responder.complete_origin_fetch(d(5), kb(4), t(4));
        let before = responder.cache().entry(d(4)).copied().unwrap();
        let req = HttpRequest {
            from: CacheId::new(0),
            doc: d(4),
            requester_age: ExpirationAge::Infinite,
        };
        let resp = responder.handle_http_request(req, t(10)).unwrap();
        assert!(resp.responder_age < ExpirationAge::Infinite);
        let after = responder.cache().entry(d(4)).copied().unwrap();
        assert_eq!(before, after, "EA responder refreshed a doomed replica");
    }

    #[test]
    fn ad_hoc_responder_always_promotes() {
        let mut responder = node(1, 8, PlacementScheme::AdHoc);
        responder.complete_origin_fetch(d(4), kb(4), t(0));
        let req = HttpRequest {
            from: CacheId::new(0),
            doc: d(4),
            requester_age: ExpirationAge::Infinite,
        };
        responder.handle_http_request(req, t(10)).unwrap();
        let entry = responder.cache().entry(d(4)).unwrap();
        assert_eq!(entry.hit_count, 2);
        assert_eq!(entry.last_hit_at, t(10));
    }

    #[test]
    fn parent_resolution_applies_strict_rule() {
        // Calm parent, calm child: ages tie (both infinite) => strict rule
        // says the parent does NOT keep a copy.
        let mut parent = node(9, 64, PlacementScheme::Ea);
        let req = HttpRequest {
            from: CacheId::new(0),
            doc: d(1),
            requester_age: ExpirationAge::Infinite,
        };
        let (resp, stored) = parent.resolve_miss_for_child(req, kb(4), t(0));
        assert!(!stored);
        assert!(!parent.cache().contains(d(1)));
        assert_eq!(resp.size, kb(4));
        // Contended child (finite age) vs calm parent: parent stores.
        let req2 = HttpRequest {
            from: CacheId::new(0),
            doc: d(2),
            requester_age: ExpirationAge::finite(coopcache_types::DurationMs::from_secs(1)),
        };
        let (_, stored2) = parent.resolve_miss_for_child(req2, kb(4), t(1));
        assert!(stored2);
        assert!(parent.cache().contains(d(2)));
    }

    #[test]
    fn sink_receives_placement_and_eviction_events() {
        use coopcache_obs::{Event, EventKind, RingBufferSink, SinkHandle};
        use std::sync::{Arc, Mutex};

        let ring = Arc::new(Mutex::new(RingBufferSink::new(256)));
        let mut requester = node(0, 4, PlacementScheme::Ea);
        requester.set_sink(SinkHandle::from_arc(Arc::clone(&ring)));
        // Churn causes capacity evictions => Eviction events.
        make_contended(&mut requester, 0);
        // A remote fetch decision => a Placement event with both ages.
        let sent = requester.build_http_request(d(1));
        let resp = HttpResponse {
            from: CacheId::new(1),
            doc: d(1),
            size: kb(1),
            responder_age: ExpirationAge::Infinite,
        };
        requester.complete_remote_fetch(sent, resp, t(1_000));
        let guard = ring.lock().unwrap();
        let mut evictions = 0;
        let mut placements = 0;
        for ev in guard.events() {
            match ev.kind() {
                EventKind::Eviction => evictions += 1,
                EventKind::Placement => {
                    placements += 1;
                    let Event::Placement {
                        role,
                        stored,
                        peer_age,
                        ..
                    } = ev
                    else {
                        unreachable!()
                    };
                    assert_eq!(*role, PlacementRole::RequesterStore);
                    assert!(!stored, "contended EA requester must decline");
                    assert_eq!(*peer_age, ExpirationAge::Infinite);
                }
                _ => {}
            }
        }
        assert!(evictions > 0, "churn must surface eviction events");
        assert_eq!(placements, 1);
    }

    #[test]
    fn clear_sink_stops_emission() {
        use coopcache_obs::{RingBufferSink, SinkHandle};
        use std::sync::{Arc, Mutex};

        let ring = Arc::new(Mutex::new(RingBufferSink::new(8)));
        let mut n = node(0, 4, PlacementScheme::AdHoc);
        n.set_sink(SinkHandle::from_arc(Arc::clone(&ring)));
        n.clear_sink();
        make_contended(&mut n, 0);
        assert_eq!(ring.lock().unwrap().total_emitted(), 0);
    }

    #[test]
    fn stats_registry_counts_without_a_sink() {
        use coopcache_obs::{EventKind, StatsRegistry};
        use std::sync::Arc;

        let stats = Arc::new(StatsRegistry::new());
        let mut n = node(0, 4, PlacementScheme::AdHoc);
        n.set_stats(Arc::clone(&stats));
        // No sink installed: counters must still move.
        make_contended(&mut n, 0);
        let sent = n.build_http_request(d(1));
        let response = HttpResponse {
            from: CacheId::new(1),
            doc: d(1),
            size: kb(1),
            responder_age: ExpirationAge::Infinite,
        };
        n.complete_remote_fetch(sent, response, t(100));
        assert!(stats.count(EventKind::Placement) > 0);
        assert!(stats.count(EventKind::Eviction) > 0);
    }

    #[test]
    fn ad_hoc_parent_always_stores() {
        let mut parent = node(9, 64, PlacementScheme::AdHoc);
        let req = HttpRequest {
            from: CacheId::new(0),
            doc: d(1),
            requester_age: ExpirationAge::Infinite,
        };
        let (_, stored) = parent.resolve_miss_for_child(req, kb(4), t(0));
        assert!(stored);
    }
}
