//! The distributed (flat) cooperative caching architecture.
//!
//! All caches are peers at the same level of the hierarchy — the
//! architecture of the paper's evaluation (§4.1). A local miss triggers an
//! ICP query to every peer; a group miss is resolved against the origin by
//! the requester itself, which always stores the document.

use crate::bloom::BloomFilter;
use crate::discovery::{Discovery, ProtocolStats};
use crate::message::IcpQuery;
use crate::node::ProxyNode;
use crate::outcome::RequestOutcome;
use coopcache_core::{CacheConfig, ExpirationWindow, PlacementScheme, PolicyKind};
use coopcache_obs::{Event, SinkHandle};
use coopcache_types::{ByteSize, CacheId, DocId, ExpirationAge, Timestamp};

/// A flat group of peer proxy caches, driven synchronously.
///
/// This is the reference implementation of the protocol: the simulator
/// replays traces through it, and the property tests compare the EA
/// scheme's outcomes against ad-hoc on identical request streams.
///
/// # Example
///
/// ```
/// use coopcache_proxy::DistributedGroup;
/// use coopcache_core::{PlacementScheme, PolicyKind};
/// use coopcache_types::{ByteSize, CacheId, DocId, Timestamp};
///
/// let mut group = DistributedGroup::new(
///     4,                         // caches in the group
///     ByteSize::from_mb(1),      // aggregate capacity (split evenly)
///     PolicyKind::Lru,
///     PlacementScheme::Ea,
/// );
/// let now = Timestamp::from_secs(1);
/// let out = group.handle_request(CacheId::new(0), DocId::new(9), ByteSize::from_kb(4), now);
/// assert!(!out.is_hit()); // first-ever request is a compulsory miss
/// ```
#[derive(Debug)]
pub struct DistributedGroup {
    nodes: Vec<ProxyNode>,
    discovery: Discovery,
    digests: Vec<DigestState>,
    protocol: ProtocolStats,
    /// Optional event sink for ICP traffic; node-level events (placement,
    /// eviction) are emitted by the nodes themselves.
    sink: Option<SinkHandle>,
}

/// A peer's last-broadcast content digest, as held by the other caches.
#[derive(Debug)]
struct DigestState {
    filter: BloomFilter,
    built_at: Option<Timestamp>,
}

impl DistributedGroup {
    /// Creates a group of `n` caches sharing `aggregate` bytes evenly
    /// (the paper's `X / N` rule), with the default expiration window.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: u16, aggregate: ByteSize, policy: PolicyKind, scheme: PlacementScheme) -> Self {
        Self::with_window(n, aggregate, policy, scheme, ExpirationWindow::default())
    }

    /// Creates a group with an explicit expiration-age window.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn with_window(
        n: u16,
        aggregate: ByteSize,
        policy: PolicyKind,
        scheme: PlacementScheme,
        window: ExpirationWindow,
    ) -> Self {
        assert!(n > 0, "a group needs at least one cache");
        let per_cache = aggregate.split_evenly(u64::from(n));
        Self::with_capacities(
            &vec![per_cache; usize::from(n)],
            policy,
            scheme,
            window,
            Discovery::Icp,
        )
    }

    /// Fully general constructor: explicit per-cache capacities (the
    /// paper assumes equal shares; heterogeneous splits are an ablation)
    /// and an explicit discovery mechanism.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty or longer than `u16::MAX`.
    #[must_use]
    pub fn with_capacities(
        capacities: &[ByteSize],
        policy: PolicyKind,
        scheme: PlacementScheme,
        window: ExpirationWindow,
        discovery: Discovery,
    ) -> Self {
        assert!(!capacities.is_empty(), "a group needs at least one cache");
        assert!(
            capacities.len() <= usize::from(u16::MAX),
            "too many caches for u16 ids"
        );
        let nodes: Vec<ProxyNode> = capacities
            .iter()
            .enumerate()
            .map(|(i, &cap)| {
                ProxyNode::from_config(
                    CacheConfig::new(CacheId::new(i as u16), cap, policy).window(window),
                    scheme,
                )
            })
            .collect();
        let digests = nodes
            .iter()
            .map(|_| DigestState {
                filter: BloomFilter::with_rate(1, 0.01),
                built_at: None,
            })
            .collect();
        Self {
            nodes,
            discovery,
            digests,
            protocol: ProtocolStats::default(),
            sink: None,
        }
    }

    /// Attaches an event sink to the group and every node in it: ICP
    /// query/reply events come from the group, placement and eviction
    /// events from the nodes.
    pub fn set_sink(&mut self, sink: SinkHandle) {
        for node in &mut self.nodes {
            node.set_sink(sink.clone());
        }
        self.sink = Some(sink);
    }

    /// Replaces the discovery mechanism (builder-style, for use after
    /// `new`/`with_window`).
    #[must_use]
    pub fn with_discovery(mut self, discovery: Discovery) -> Self {
        self.discovery = discovery;
        self
    }

    /// Inter-proxy message counters accumulated so far.
    #[must_use]
    pub fn protocol_stats(&self) -> &ProtocolStats {
        &self.protocol
    }

    /// Sets (or clears) a freshness TTL on every cache in the group.
    pub fn set_ttl(&mut self, ttl: Option<coopcache_types::DurationMs>) {
        for node in &mut self.nodes {
            node.set_ttl(ttl);
        }
    }

    /// Number of caches in the group.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the group is empty (never constructible via `new`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Read access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: CacheId) -> &ProxyNode {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node, for drivers (like the discrete-event
    /// simulator and the socket runtime) that sequence the protocol
    /// steps themselves instead of calling
    /// [`handle_request`](Self::handle_request).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node_mut(&mut self, id: CacheId) -> &mut ProxyNode {
        &mut self.nodes[id.index()]
    }

    /// Iterates over the nodes in id order.
    pub fn iter(&self) -> impl Iterator<Item = &ProxyNode> {
        self.nodes.iter()
    }

    /// Mean of the caches' *lifetime-average* expiration ages, in
    /// milliseconds — the quantity the paper's Table 1 reports. `None`
    /// until at least one cache has evicted something.
    #[must_use]
    pub fn average_expiration_age_ms(&self) -> Option<f64> {
        let ages: Vec<f64> = self
            .nodes
            .iter()
            .filter_map(|n| n.cache().lifetime_average())
            .map(|d| d.as_millis() as f64)
            .collect();
        if ages.is_empty() {
            None
        } else {
            Some(ages.iter().sum::<f64>() / ages.len() as f64)
        }
    }

    /// Total number of distinct documents across the group, counting each
    /// replica separately.
    #[must_use]
    pub fn total_cached_docs(&self) -> usize {
        self.nodes.iter().map(|n| n.cache().len()).sum()
    }

    /// Number of *unique* documents cached somewhere in the group — the
    /// paper's measure of aggregate disk-space efficiency.
    #[must_use]
    pub fn unique_cached_docs(&self) -> usize {
        let mut docs = std::collections::HashSet::new();
        for n in &self.nodes {
            docs.extend(n.cache().iter().map(|e| e.doc));
        }
        docs.len()
    }

    /// Handles one client request arriving at `requester`, running the
    /// full protocol: local lookup → ICP probe of all peers → remote
    /// fetch with piggybacked expiration ages, or origin fetch.
    ///
    /// Peers are probed starting at `requester + 1` (wrapping), modelling
    /// the first positive ICP reply winning without biasing any fixed
    /// cache id.
    ///
    /// # Panics
    ///
    /// Panics if `requester` is out of range.
    pub fn handle_request(
        &mut self,
        requester: CacheId,
        doc: DocId,
        size: ByteSize,
        now: Timestamp,
    ) -> RequestOutcome {
        let n = self.nodes.len();
        assert!(requester.index() < n, "unknown requester {requester}");

        // 1. Local lookup.
        if self.nodes[requester.index()]
            .handle_client_lookup(doc, now)
            .is_some()
        {
            return RequestOutcome::LocalHit;
        }

        // 2. Locate the document at a peer, by the configured mechanism;
        // 3a. on success, fetch it with piggybacked expiration ages.
        let rotation: Vec<CacheId> = (1..n)
            .map(|off| CacheId::new(((requester.index() + off) % n) as u16))
            .collect();
        match self.discovery {
            Discovery::Icp => {
                // One query to every peer; every peer replies.
                let query = IcpQuery {
                    from: requester,
                    doc,
                };
                self.protocol.icp_queries += rotation.len() as u64;
                self.protocol.icp_replies += rotation.len() as u64;
                let replies: Vec<(CacheId, bool)> = rotation
                    .iter()
                    .map(|&peer| {
                        let reply = self.nodes[peer.index()].handle_icp_query(query);
                        if let Some(sink) = &self.sink {
                            sink.emit(&Event::IcpQuery {
                                from: requester,
                                to: peer,
                                doc,
                            });
                            sink.emit(&Event::IcpReply {
                                from: peer,
                                doc,
                                hit: reply.hit,
                            });
                        }
                        (peer, reply.hit)
                    })
                    .collect();
                for peer in replies.into_iter().filter(|(_, hit)| *hit).map(|(p, _)| p) {
                    match self.remote_fetch(requester, peer, doc, now) {
                        Some(outcome) => return outcome,
                        // An ICP hit can still come back empty when the
                        // copy expired under a freshness TTL between the
                        // probe and the fetch; fall through to the next
                        // positive replier (or the origin).
                        None => continue,
                    }
                }
            }
            Discovery::Digest {
                refresh_every,
                fp_rate,
            } => {
                self.refresh_digests(now, refresh_every, fp_rate);
                for peer in rotation {
                    if !self.digests[peer.index()].filter.contains(doc) {
                        continue;
                    }
                    match self.remote_fetch(requester, peer, doc, now) {
                        Some(outcome) => return outcome,
                        None => {
                            // Stale digest or Bloom false positive: the
                            // fetch came back empty; try the next peer.
                            self.protocol.digest_misdirections += 1;
                        }
                    }
                }
            }
            Discovery::Isolated => {}
        }

        // 3b. Group miss: fetch from origin, always store locally.
        let stored = self.nodes[requester.index()].complete_origin_fetch(doc, size, now);
        RequestOutcome::Miss {
            stored_locally: stored,
            stored_at_ancestor: false,
        }
    }

    /// The inter-cache HTTP exchange; `None` when the peer no longer
    /// holds the document.
    fn remote_fetch(
        &mut self,
        requester: CacheId,
        peer: CacheId,
        doc: DocId,
        now: Timestamp,
    ) -> Option<RequestOutcome> {
        self.protocol.doc_requests += 1;
        let sent = self.nodes[requester.index()].build_http_request(doc);
        let response = self.nodes[peer.index()].handle_http_request(sent, now)?;
        let promoted = self.nodes[peer.index()]
            .scheme()
            .responder_promotes(response.responder_age, sent.requester_age);
        let stored = self.nodes[requester.index()].complete_remote_fetch(sent, response, now);
        Some(RequestOutcome::RemoteHit {
            responder: peer,
            stored_locally: stored,
            promoted_at_responder: promoted,
        })
    }

    /// Rebuilds and "broadcasts" any digest older than the refresh period
    /// (Summary-Cache behaviour; the broadcast cost is accounted per
    /// receiving peer).
    fn refresh_digests(
        &mut self,
        now: Timestamp,
        refresh_every: coopcache_types::DurationMs,
        fp_rate: f64,
    ) {
        let n = self.nodes.len();
        for i in 0..n {
            let due = match self.digests[i].built_at {
                None => true,
                Some(at) => now.saturating_since(at) >= refresh_every,
            };
            if !due {
                continue;
            }
            let cache = self.nodes[i].cache();
            let mut filter = BloomFilter::with_rate(cache.len().max(16), fp_rate);
            for entry in cache.iter() {
                filter.insert(entry.doc);
            }
            self.protocol.digest_refreshes += (n as u64).saturating_sub(1);
            self.protocol.digest_bytes += filter.wire_bytes() * (n as u64).saturating_sub(1);
            self.digests[i] = DigestState {
                filter,
                built_at: Some(now),
            };
        }
    }

    /// The expiration ages of all caches, in id order (diagnostics).
    #[must_use]
    pub fn expiration_ages(&self) -> Vec<ExpirationAge> {
        self.nodes.iter().map(ProxyNode::expiration_age).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    fn kb(n: u64) -> ByteSize {
        ByteSize::from_kb(n)
    }

    fn c(i: u16) -> CacheId {
        CacheId::new(i)
    }

    fn group(scheme: PlacementScheme) -> DistributedGroup {
        DistributedGroup::new(3, kb(30), PolicyKind::Lru, scheme)
    }

    #[test]
    fn capacity_split_matches_paper_rule() {
        let g = DistributedGroup::new(
            4,
            ByteSize::from_mb(1),
            PolicyKind::Lru,
            PlacementScheme::Ea,
        );
        for n in g.iter() {
            assert_eq!(n.cache().capacity(), ByteSize::from_bytes(250_000));
        }
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn first_request_is_a_stored_miss() {
        let mut g = group(PlacementScheme::AdHoc);
        let out = g.handle_request(c(0), d(1), kb(4), t(0));
        assert_eq!(
            out,
            RequestOutcome::Miss {
                stored_locally: true,
                stored_at_ancestor: false
            }
        );
        assert!(g.node(c(0)).cache().contains(d(1)));
    }

    #[test]
    fn repeat_request_is_a_local_hit() {
        let mut g = group(PlacementScheme::Ea);
        g.handle_request(c(0), d(1), kb(4), t(0));
        let out = g.handle_request(c(0), d(1), kb(4), t(1));
        assert_eq!(out, RequestOutcome::LocalHit);
    }

    #[test]
    fn peer_copy_gives_remote_hit() {
        let mut g = group(PlacementScheme::AdHoc);
        g.handle_request(c(0), d(1), kb(4), t(0));
        let out = g.handle_request(c(1), d(1), kb(4), t(1));
        match out {
            RequestOutcome::RemoteHit {
                responder,
                stored_locally,
                promoted_at_responder,
            } => {
                assert_eq!(responder, c(0));
                assert!(stored_locally, "ad-hoc always stores");
                assert!(promoted_at_responder, "ad-hoc always promotes");
            }
            other => panic!("expected remote hit, got {other:?}"),
        }
        // Ad-hoc: the document is now replicated at both caches.
        assert!(g.node(c(0)).cache().contains(d(1)));
        assert!(g.node(c(1)).cache().contains(d(1)));
    }

    #[test]
    fn ea_scenario_from_section_2() {
        // The paper's walk-through: C1 misses, fetches from origin; C2
        // requests the same doc; C3 requests it too. Under ad-hoc the doc
        // ends up replicated at all three caches.
        let mut adhoc = group(PlacementScheme::AdHoc);
        adhoc.handle_request(c(0), d(9), kb(4), t(0));
        adhoc.handle_request(c(1), d(9), kb(4), t(1));
        adhoc.handle_request(c(2), d(9), kb(4), t(2));
        let replicas = adhoc.iter().filter(|n| n.cache().contains(d(9))).count();
        assert_eq!(replicas, 3, "ad-hoc replicates everywhere");

        // Under EA with all ages tied at infinity, the strict requester
        // rule refuses the copy and the responder keeps its own hot: the
        // document stays a single-copy group resource served remotely —
        // the behaviour behind the paper's 32%-remote-hit Table 2 row.
        let mut ea = group(PlacementScheme::Ea);
        ea.handle_request(c(0), d(9), kb(4), t(0));
        let out = ea.handle_request(c(1), d(9), kb(4), t(1));
        match out {
            RequestOutcome::RemoteHit {
                stored_locally,
                promoted_at_responder,
                ..
            } => {
                assert!(!stored_locally, "tie must not replicate");
                assert!(promoted_at_responder, "sole copy must stay alive");
            }
            other => panic!("expected remote hit, got {other:?}"),
        }
        let ea_replicas = ea.iter().filter(|n| n.cache().contains(d(9))).count();
        assert_eq!(ea_replicas, 1, "EA keeps a single copy");
    }

    #[test]
    fn ea_contended_requester_does_not_replicate() {
        let mut g = DistributedGroup::new(2, kb(20), PolicyKind::Lru, PlacementScheme::Ea);
        // Cache 1 stores the target doc and stays calm (infinite age).
        g.handle_request(c(1), d(500), kb(4), t(0));
        // Cache 0 churns: every one of these is a miss stored locally,
        // forcing rapid evictions => finite (low) expiration age.
        for i in 0..40 {
            g.handle_request(c(0), d(i), kb(10), t(10 + i));
        }
        assert!(g.node(c(0)).expiration_age() < ExpirationAge::Infinite);
        // Now cache 0 asks for the doc cache 1 holds.
        let out = g.handle_request(c(0), d(500), kb(4), t(1_000));
        match out {
            RequestOutcome::RemoteHit {
                responder,
                stored_locally,
                promoted_at_responder,
            } => {
                assert_eq!(responder, c(1));
                assert!(!stored_locally, "contended requester must not store");
                assert!(promoted_at_responder, "calm responder keeps its copy hot");
            }
            other => panic!("expected remote hit, got {other:?}"),
        }
        assert!(!g.node(c(0)).cache().contains(d(500)));
        assert!(g.node(c(1)).cache().contains(d(500)));
    }

    #[test]
    fn probe_order_starts_after_requester() {
        // Both caches 0 and 2 hold the doc; requester 1 should find cache
        // 2 first (offset +1), not cache 0.
        let mut g = group(PlacementScheme::AdHoc);
        g.handle_request(c(0), d(7), kb(2), t(0));
        g.handle_request(c(2), d(7), kb(2), t(1));
        let out = g.handle_request(c(1), d(7), kb(2), t(2));
        match out {
            RequestOutcome::RemoteHit { responder, .. } => assert_eq!(responder, c(2)),
            other => panic!("expected remote hit, got {other:?}"),
        }
    }

    #[test]
    fn replica_counters() {
        let mut g = group(PlacementScheme::AdHoc);
        g.handle_request(c(0), d(1), kb(2), t(0));
        g.handle_request(c(1), d(1), kb(2), t(1));
        g.handle_request(c(2), d(2), kb(2), t(2));
        assert_eq!(g.total_cached_docs(), 3);
        assert_eq!(g.unique_cached_docs(), 2);
    }

    #[test]
    fn average_expiration_age_none_until_evictions() {
        let mut g = group(PlacementScheme::Ea);
        assert_eq!(g.average_expiration_age_ms(), None);
        // Overflow one cache so it evicts.
        for i in 0..20 {
            g.handle_request(c(0), d(i), kb(10), t(i));
        }
        assert!(g.average_expiration_age_ms().is_some());
    }

    #[test]
    fn single_cache_group_never_remote_hits() {
        let mut g = DistributedGroup::new(1, kb(10), PolicyKind::Lru, PlacementScheme::Ea);
        g.handle_request(c(0), d(1), kb(2), t(0));
        let out = g.handle_request(c(0), d(1), kb(2), t(1));
        assert_eq!(out, RequestOutcome::LocalHit);
        let out2 = g.handle_request(c(0), d(2), kb(2), t(2));
        assert!(!out2.is_hit());
    }

    #[test]
    fn oversized_doc_is_served_but_not_stored() {
        let mut g = DistributedGroup::new(2, kb(4), PolicyKind::Lru, PlacementScheme::AdHoc);
        let out = g.handle_request(c(0), d(1), kb(100), t(0));
        assert_eq!(
            out,
            RequestOutcome::Miss {
                stored_locally: false,
                stored_at_ancestor: false
            }
        );
        assert!(!g.node(c(0)).cache().contains(d(1)));
    }

    #[test]
    #[should_panic(expected = "at least one cache")]
    fn zero_caches_rejected() {
        let _ = DistributedGroup::new(0, kb(1), PolicyKind::Lru, PlacementScheme::Ea);
    }

    #[test]
    fn icp_message_accounting() {
        let mut g = group(PlacementScheme::AdHoc);
        // Miss: 2 queries + 2 replies + 0 doc requests (origin).
        g.handle_request(c(0), d(1), kb(2), t(0));
        let s = *g.protocol_stats();
        assert_eq!(s.icp_queries, 2);
        assert_eq!(s.icp_replies, 2);
        assert_eq!(s.doc_requests, 0);
        // Remote hit: 2 more queries/replies + 1 doc request.
        g.handle_request(c(1), d(1), kb(2), t(1));
        let s = *g.protocol_stats();
        assert_eq!(s.icp_queries, 4);
        assert_eq!(s.doc_requests, 1);
        // Local hit: silent.
        g.handle_request(c(1), d(1), kb(2), t(2));
        assert_eq!(g.protocol_stats().icp_queries, 4);
        assert_eq!(g.protocol_stats().messages(), 9);
    }

    #[test]
    fn isolated_discovery_never_cooperates() {
        let mut g = DistributedGroup::new(3, kb(30), PolicyKind::Lru, PlacementScheme::AdHoc)
            .with_discovery(Discovery::Isolated);
        g.handle_request(c(0), d(1), kb(2), t(0));
        // Peer holds it, but isolated caches never ask around.
        let out = g.handle_request(c(1), d(1), kb(2), t(1));
        assert!(!out.is_hit(), "{out:?}");
        assert_eq!(g.protocol_stats().messages(), 0);
    }

    #[test]
    fn digest_discovery_finds_fresh_content() {
        use coopcache_types::DurationMs;
        let mut g = DistributedGroup::new(3, kb(30), PolicyKind::Lru, PlacementScheme::AdHoc)
            .with_discovery(Discovery::Digest {
                refresh_every: DurationMs::from_millis(10),
                fp_rate: 0.001,
            });
        g.handle_request(c(0), d(1), kb(2), t(0));
        // At t=20 the digests rebuild (period 10) and include doc 1.
        let out = g.handle_request(c(1), d(1), kb(2), t(20));
        assert!(out.is_remote_hit(), "{out:?}");
        assert_eq!(g.protocol_stats().icp_queries, 0);
        assert!(g.protocol_stats().digest_refreshes > 0);
        assert!(g.protocol_stats().digest_bytes > 0);
    }

    #[test]
    fn stale_digest_misses_new_content() {
        use coopcache_types::DurationMs;
        let mut g = DistributedGroup::new(2, kb(30), PolicyKind::Lru, PlacementScheme::AdHoc)
            .with_discovery(Discovery::Digest {
                refresh_every: DurationMs::from_days(1),
                fp_rate: 0.001,
            });
        // Digest snapshots are taken at the first request (both empty).
        g.handle_request(c(0), d(1), kb(2), t(0));
        // Within the refresh period the other cache still sees the stale
        // (empty) digest, so this is a miss even though cache 0 has it.
        let out = g.handle_request(c(1), d(1), kb(2), t(5));
        assert!(!out.is_hit(), "{out:?}");
    }

    #[test]
    fn heterogeneous_capacities_are_respected() {
        let caps = [kb(2), kb(20)];
        let g = DistributedGroup::with_capacities(
            &caps,
            PolicyKind::Lru,
            PlacementScheme::Ea,
            coopcache_core::ExpirationWindow::default(),
            Discovery::Icp,
        );
        assert_eq!(g.node(c(0)).cache().capacity(), kb(2));
        assert_eq!(g.node(c(1)).cache().capacity(), kb(20));
    }

    #[test]
    fn sink_sees_icp_traffic_matching_protocol_counters() {
        use coopcache_obs::{EventKind, HistogramSink, SinkHandle};
        use std::sync::{Arc, Mutex};

        let hist = Arc::new(Mutex::new(HistogramSink::new()));
        let mut g = group(PlacementScheme::AdHoc);
        g.set_sink(SinkHandle::from_arc(Arc::clone(&hist)));
        g.handle_request(c(0), d(1), kb(2), t(0)); // miss: 2 queries
        g.handle_request(c(1), d(1), kb(2), t(1)); // remote hit: 2 more
        g.handle_request(c(1), d(1), kb(2), t(2)); // local hit: silent
        let sink = hist.lock().unwrap();
        let s = g.protocol_stats();
        assert_eq!(sink.count(EventKind::IcpQuery), s.icp_queries);
        assert_eq!(sink.count(EventKind::IcpReply), s.icp_replies);
        assert!(sink.count(EventKind::Placement) > 0);
    }

    #[test]
    fn expiration_ages_vector_matches_len() {
        let g = group(PlacementScheme::Ea);
        assert_eq!(g.expiration_ages().len(), 3);
        assert!(g.expiration_ages().iter().all(|a| a.is_infinite()));
    }
}
