//! Loopback throughput driver for the live daemon (`coopcache
//! bench-daemon`).
//!
//! Starts a one-cache cluster, warms it with a working set, then hammers
//! the daemon's document port from raw socket clients that *pipeline*
//! batches of requests on persistent connections — the workload the
//! pooled transport exists for. Reports sustained req/s, p50/p99 request
//! latency, and the pooling/admission counters scraped over `OP_STATS`
//! (`connections-reused` must be nonzero for any pipelined run, which is
//! what the smoke gate asserts).

use crate::clock::SharedClock;
use crate::cluster::{ClusterConfig, LoopbackCluster};
use crate::origin::drain_body;
use crate::stats::scrape_stats;
use crate::wire::{read_frame, write_frame, WireMessage};
use coopcache_core::PlacementScheme;
use coopcache_obs::{JsonlSink, SamplerConfig, SinkHandle};
use coopcache_proxy::HttpRequest;
use coopcache_types::{ByteSize, CacheId, DocId, DurationMs, ExpirationAge};
use std::io::{self, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Whether the bench daemon streams events while being hammered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventsMode {
    /// No sink installed — the baseline the overhead gate compares
    /// against (span/counter bookkeeping still runs; it always does).
    Off,
    /// A deterministic head sampler in front of a JSONL serializer:
    /// the always-on production posture. A dropped trace sheds *all* of
    /// its request-scoped telemetry before the sink lock (spans by the
    /// per-event filter, the rest via the daemon's per-frame mute);
    /// kept events pay full serialization (the bytes go to a null
    /// writer so the bench measures CPU, not disk).
    Sampled {
        /// Sampler seed (same seed → same kept traces).
        seed: u64,
        /// Keep rate in permille.
        rate: u32,
    },
}

/// Workload shape for one bench run.
#[derive(Debug, Clone)]
pub struct DaemonBenchConfig {
    /// Total document requests across all clients.
    pub requests: u64,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests pipelined per batch on each connection.
    pub pipeline: usize,
    /// Body size of every document, bytes.
    pub doc_size: u64,
    /// Working-set size (documents are pre-warmed into the cache).
    pub docs: u64,
    /// Event-stream posture during the run.
    pub events: EventsMode,
}

impl Default for DaemonBenchConfig {
    fn default() -> Self {
        Self {
            requests: 200_000,
            clients: 2,
            pipeline: 64,
            doc_size: 256,
            docs: 64,
            events: EventsMode::Off,
        }
    }
}

impl DaemonBenchConfig {
    /// The small gating configuration behind `bench-daemon --smoke`.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            requests: 20_000,
            clients: 2,
            pipeline: 32,
            ..Self::default()
        }
    }
}

/// What one bench run measured.
#[derive(Debug, Clone)]
pub struct DaemonBenchReport {
    /// Requests actually issued and answered.
    pub requests: u64,
    /// Wall time across the whole request phase, microseconds.
    pub elapsed_us: u64,
    /// Sustained throughput (integer arithmetic: no float drift in the
    /// emitted tables).
    pub req_per_sec: u64,
    /// Median request latency, microseconds (batch-start to response).
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// `connections-reused` counter scraped over `OP_STATS` after the
    /// run (server-side frames served on an already-used connection).
    pub connections_reused: u64,
    /// `admission-shed` counter scraped over `OP_STATS`.
    pub admission_shed: u64,
    /// JSONL lines the event sink serialized during the run (0 with
    /// [`EventsMode::Off`]; with sampling, the kept subsequence).
    pub events_emitted: u64,
}

/// Runs the loopback daemon bench described by `cfg`.
///
/// # Errors
///
/// Propagates cluster start-up and socket failures; the bench makes no
/// attempt to continue past a failed client.
///
/// # Panics
///
/// Panics if `cfg` is degenerate (zero clients, pipeline, or docs).
pub fn run_daemon_bench(cfg: &DaemonBenchConfig) -> io::Result<DaemonBenchReport> {
    assert!(cfg.clients > 0, "bench needs at least one client");
    assert!(cfg.pipeline > 0, "bench needs a nonzero pipeline depth");
    assert!(cfg.docs > 0, "bench needs a nonzero working set");
    // Capacity holding the whole working set comfortably: the bench
    // measures transport, not eviction.
    let capacity = ByteSize::from_bytes((cfg.doc_size.max(1) * cfg.docs).saturating_mul(4));
    let mut cluster =
        LoopbackCluster::start_with_config(ClusterConfig::new(1, capacity, PlacementScheme::Ea))?;
    let events_sink = match cfg.events {
        EventsMode::Off => None,
        EventsMode::Sampled { seed, rate } => {
            let jsonl = Arc::new(Mutex::new(JsonlSink::new(io::sink())));
            cluster.set_sink(
                SinkHandle::from_arc(Arc::clone(&jsonl))
                    .sampled(Some(SamplerConfig::new(seed, rate))),
            );
            Some(jsonl)
        }
    };
    let size = ByteSize::from_bytes(cfg.doc_size);
    for d in 0..cfg.docs {
        cluster.request(0, DocId::new(d), size)?;
    }
    let addr = cluster.daemon(0).doc_addr();

    let clients = cfg
        .clients
        .min(usize::try_from(cfg.requests).unwrap_or(usize::MAX).max(1));
    let per_client = cfg.requests / clients as u64;
    let clock = SharedClock::start();
    let started_us = clock.now_micros();
    let mut workers = Vec::new();
    for c in 0..clients {
        // The last client absorbs the remainder.
        let quota = if c + 1 == clients {
            cfg.requests - per_client * (clients as u64 - 1)
        } else {
            per_client
        };
        let cfg = cfg.clone();
        let clock = clock.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("bench-client-{c}"))
                .spawn(move || client_loop(addr, &cfg, c, quota, &clock))?,
        );
    }
    let mut latencies: Vec<u64> = Vec::with_capacity(usize::try_from(cfg.requests).unwrap_or(0));
    for worker in workers {
        let worker_latencies = worker
            .join()
            .map_err(|_| io::Error::other("bench client panicked"))??;
        latencies.extend(worker_latencies);
    }
    let elapsed_us = clock.now_micros().saturating_sub(started_us).max(1);
    latencies.sort_unstable();

    let stats = scrape_stats(addr, Duration::from_secs(5))?;
    let connections_reused = extract_counter(&stats, "connections-reused");
    let admission_shed = extract_counter(&stats, "admission-shed");
    cluster.shutdown();
    // Read the line count after shutdown: server threads may emit
    // trailing spans until their loops join.
    let events_emitted = events_sink.map_or(0, |jsonl| {
        jsonl.lock().unwrap_or_else(PoisonError::into_inner).lines()
    });

    let requests = u64::try_from(latencies.len()).unwrap_or(u64::MAX);
    Ok(DaemonBenchReport {
        requests,
        elapsed_us,
        req_per_sec: requests.saturating_mul(1_000_000) / elapsed_us,
        p50_us: percentile(&latencies, 50),
        p99_us: percentile(&latencies, 99),
        connections_reused,
        admission_shed,
        events_emitted,
    })
}

/// One client: a single persistent connection pipelining batches of
/// document requests. Returns per-request latencies in microseconds
/// (batch write start to that response's arrival — the client-observed
/// number under pipelining).
fn client_loop(
    addr: std::net::SocketAddr,
    cfg: &DaemonBenchConfig,
    client: usize,
    quota: u64,
    clock: &SharedClock,
) -> io::Result<Vec<u64>> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut reader = BufReader::with_capacity(1 << 16, &stream);
    let mut writer = &stream;
    let from = CacheId::new(u16::try_from(1 + client).unwrap_or(u16::MAX));
    // A finite requester age makes the responder's promote rule run on
    // every request — the realistic hot path, not a short-circuit.
    let requester_age = ExpirationAge::finite(DurationMs::from_secs(1));
    let mut latencies = Vec::with_capacity(usize::try_from(quota).unwrap_or(0));
    let mut sent = 0u64;
    let mut batch = Vec::with_capacity(cfg.pipeline * 64);
    while sent < quota {
        let depth = u64::try_from(cfg.pipeline)
            .unwrap_or(u64::MAX)
            .min(quota - sent);
        batch.clear();
        for k in 0..depth {
            // Stride the working set so clients interleave documents.
            let doc = DocId::new((sent + k + (client as u64) * 7) % cfg.docs);
            write_frame(
                &mut batch,
                &WireMessage::DocRequest {
                    request: HttpRequest {
                        from,
                        doc,
                        requester_age,
                    },
                    ctx: None,
                },
            )?;
        }
        let batch_start_us = clock.now_micros();
        writer.write_all(&batch)?;
        for _ in 0..depth {
            let WireMessage::DocResponse { response, found } = read_frame(&mut reader)? else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "bench expected a document response",
                ));
            };
            if found {
                drain_body(&mut reader, response.size.as_bytes())?;
            }
            latencies.push(clock.now_micros().saturating_sub(batch_start_us));
        }
        sent += depth;
    }
    Ok(latencies)
}

/// Nearest-rank percentile over sorted data (0 for an empty slice).
fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let len = sorted.len() as u64;
    let rank = (pct * len).div_ceil(100).clamp(1, len);
    sorted[usize::try_from(rank - 1).unwrap_or(0)]
}

/// Pulls one named counter out of the deterministic `OP_STATS` JSON
/// (`"name":123`). Missing counters read as zero — the bench is not a
/// JSON parser.
fn extract_counter(stats_json: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    let Some(at) = stats_json.find(&needle) else {
        return 0;
    };
    stats_json[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let data: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&data, 50), 50);
        assert_eq!(percentile(&data, 99), 99);
        assert_eq!(percentile(&data, 100), 100);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[], 50), 0);
    }

    #[test]
    fn counter_extraction_reads_the_stats_document() {
        let doc =
            r#"{"cache":0,"counters":{"request":12,"connections-reused":7,"admission-shed":0}}"#;
        assert_eq!(extract_counter(doc, "connections-reused"), 7);
        assert_eq!(extract_counter(doc, "admission-shed"), 0);
        assert_eq!(extract_counter(doc, "absent"), 0);
    }

    #[test]
    fn tiny_bench_run_reuses_connections() {
        let report = run_daemon_bench(&DaemonBenchConfig {
            requests: 600,
            clients: 2,
            pipeline: 16,
            doc_size: 128,
            docs: 8,
            events: EventsMode::Off,
        })
        .expect("bench runs");
        assert_eq!(report.requests, 600);
        assert!(report.req_per_sec > 0);
        assert!(
            report.connections_reused > 0,
            "pipelined clients must reuse their connections"
        );
        assert!(report.p50_us <= report.p99_us);
        assert_eq!(report.events_emitted, 0, "no sink installed");
    }

    #[test]
    fn sampled_bench_run_emits_a_bounded_stream() {
        let report = run_daemon_bench(&DaemonBenchConfig {
            requests: 600,
            clients: 2,
            pipeline: 16,
            doc_size: 128,
            docs: 8,
            events: EventsMode::Sampled {
                seed: 0xC0FFEE,
                rate: 100,
            },
        })
        .expect("bench runs");
        assert_eq!(report.requests, 600);
        // At 100 permille the daemon sheds ~90% of request-scoped
        // telemetry (each served frame emits a conn-reuse and a
        // placement line when kept), so the stream is nonempty but far
        // below the ~2-lines-per-request of an unsampled run.
        assert!(report.events_emitted > 0, "sampled stream is nonempty");
        assert!(
            report.events_emitted < report.requests,
            "sampling must shed most request-scoped lines: {} lines for {} requests",
            report.events_emitted,
            report.requests
        );
    }
}
