//! Binary wire formats for ICP (UDP) and the document protocol (TCP).
//!
//! The paper's simulator instances communicated over real UDP (ICP) and
//! TCP (HTTP); this module defines the equivalent compact binary codecs.
//! Framing:
//!
//! * **ICP datagrams** — fixed-size, one per UDP packet;
//! * **TCP messages** — a length-prefixed header, followed (for document
//!   responses) by `size` bytes of body streamed on the same connection.
//!
//! The cache expiration age rides in every document request and response,
//! exactly as the EA scheme piggybacks it on HTTP messages.
//!
//! The codec is hand-rolled over `Vec<u8>` / slice cursors (big-endian
//! fields) — the workspace is dependency-free by construction.

use coopcache_proxy::{HttpRequest, HttpResponse, IcpQuery, IcpReply};
use coopcache_types::{ByteSize, CacheId, DocId, DurationMs, ExpirationAge};
use std::fmt;
use std::io::{self, Read, Write};

/// Protocol magic prepended to every TCP header.
pub const MAGIC: u16 = 0xCA5E;

/// Upper bound on a length-prefixed TCP header frame. Real headers are
/// ~40 bytes; the cap keeps a malicious or corrupted length field from
/// forcing a giant allocation. Both directions of the document protocol
/// enforce it through [`read_frame`], so the client and server paths
/// cannot drift apart.
pub const MAX_FRAME_LEN: usize = 1024;

/// Writes one length-prefixed header frame to a TCP stream.
///
/// # Errors
///
/// Propagates write failures.
pub fn write_frame<W: Write>(writer: &mut W, msg: &WireMessage) -> io::Result<()> {
    let header = msg.encode();
    debug_assert!(header.len() <= MAX_FRAME_LEN, "encoded header too large");
    writer.write_all(&(header.len() as u32).to_be_bytes())?;
    writer.write_all(&header)
}

/// Reads one length-prefixed header frame, enforcing [`MAX_FRAME_LEN`]
/// before allocating.
///
/// # Errors
///
/// Propagates read failures; an oversized length prefix or an
/// undecodable header surfaces as [`io::ErrorKind::InvalidData`].
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<WireMessage> {
    let mut len_buf = [0u8; 4];
    reader.read_exact(&mut len_buf)?;
    let header_len = u32::from_be_bytes(len_buf) as usize;
    if header_len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized header",
        ));
    }
    let mut header = vec![0u8; header_len];
    reader.read_exact(&mut header)?;
    WireMessage::decode(&header).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

const OP_ICP_QUERY: u8 = 1;
const OP_ICP_REPLY: u8 = 2;
const OP_DOC_REQUEST: u8 = 3;
const OP_DOC_RESPONSE: u8 = 4;

const AGE_INFINITE: u8 = 0;
const AGE_FINITE: u8 = 1;

/// Error decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the message demands.
    Truncated,
    /// Unknown opcode or malformed field.
    Malformed(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => f.write_str("truncated wire message"),
            Self::Malformed(what) => write!(f, "malformed wire message: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// A read cursor over a received byte slice; every `get_*` checks bounds.
struct Cursor<'a> {
    data: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data }
    }

    fn get_u8(&mut self) -> Result<u8, DecodeError> {
        let (&v, rest) = self.data.split_first().ok_or(DecodeError::Truncated)?;
        self.data = rest;
        Ok(v)
    }

    fn get_u16(&mut self) -> Result<u16, DecodeError> {
        if self.data.len() < 2 {
            return Err(DecodeError::Truncated);
        }
        let (head, rest) = self.data.split_at(2);
        self.data = rest;
        Ok(u16::from_be_bytes([head[0], head[1]]))
    }

    fn get_u64(&mut self) -> Result<u64, DecodeError> {
        if self.data.len() < 8 {
            return Err(DecodeError::Truncated);
        }
        let (head, rest) = self.data.split_at(8);
        self.data = rest;
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(head);
        Ok(u64::from_be_bytes(bytes))
    }
}

fn put_age(buf: &mut Vec<u8>, age: ExpirationAge) {
    match age.as_finite() {
        None => {
            put_u8(buf, AGE_INFINITE);
            put_u64(buf, 0);
        }
        Some(d) => {
            put_u8(buf, AGE_FINITE);
            put_u64(buf, d.as_millis());
        }
    }
}

fn get_age(buf: &mut Cursor<'_>) -> Result<ExpirationAge, DecodeError> {
    let tag = buf.get_u8()?;
    let ms = buf.get_u64()?;
    match tag {
        AGE_INFINITE => Ok(ExpirationAge::Infinite),
        AGE_FINITE => Ok(ExpirationAge::finite(DurationMs::from_millis(ms))),
        _ => Err(DecodeError::Malformed("unknown expiration-age tag")),
    }
}

/// A message of the inter-proxy protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMessage {
    /// ICP query (UDP).
    IcpQuery(IcpQuery),
    /// ICP reply (UDP).
    IcpReply(IcpReply),
    /// Document request (TCP), carrying the requester's expiration age.
    DocRequest(HttpRequest),
    /// Document response header (TCP). `found == false` means the
    /// document vanished between ICP and fetch; no body follows.
    DocResponse {
        /// The response metadata (from, doc, size, responder age).
        response: HttpResponse,
        /// Whether the document was present and a body follows.
        found: bool,
    },
}

impl WireMessage {
    /// Encodes the message (header only — bodies are streamed separately).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(40);
        put_u16(&mut buf, MAGIC);
        match self {
            Self::IcpQuery(q) => {
                put_u8(&mut buf, OP_ICP_QUERY);
                put_u16(&mut buf, q.from.as_u16());
                put_u64(&mut buf, q.doc.as_u64());
            }
            Self::IcpReply(r) => {
                put_u8(&mut buf, OP_ICP_REPLY);
                put_u16(&mut buf, r.from.as_u16());
                put_u64(&mut buf, r.doc.as_u64());
                put_u8(&mut buf, u8::from(r.hit));
            }
            Self::DocRequest(req) => {
                put_u8(&mut buf, OP_DOC_REQUEST);
                put_u16(&mut buf, req.from.as_u16());
                put_u64(&mut buf, req.doc.as_u64());
                put_age(&mut buf, req.requester_age);
            }
            Self::DocResponse { response, found } => {
                put_u8(&mut buf, OP_DOC_RESPONSE);
                put_u16(&mut buf, response.from.as_u16());
                put_u64(&mut buf, response.doc.as_u64());
                put_u64(&mut buf, response.size.as_bytes());
                put_age(&mut buf, response.responder_age);
                put_u8(&mut buf, u8::from(*found));
            }
        }
        buf
    }

    /// Decodes a message from a byte slice.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on short input, a bad magic, an unknown
    /// opcode, or a malformed field.
    pub fn decode(data: &[u8]) -> Result<Self, DecodeError> {
        let buf = &mut Cursor::new(data);
        if buf.get_u16()? != MAGIC {
            return Err(DecodeError::Malformed("bad magic"));
        }
        let op = buf.get_u8()?;
        match op {
            OP_ICP_QUERY => Ok(Self::IcpQuery(IcpQuery {
                from: CacheId::new(buf.get_u16()?),
                doc: DocId::new(buf.get_u64()?),
            })),
            OP_ICP_REPLY => Ok(Self::IcpReply(IcpReply {
                from: CacheId::new(buf.get_u16()?),
                doc: DocId::new(buf.get_u64()?),
                hit: buf.get_u8()? != 0,
            })),
            OP_DOC_REQUEST => {
                let from = CacheId::new(buf.get_u16()?);
                let doc = DocId::new(buf.get_u64()?);
                let requester_age = get_age(buf)?;
                Ok(Self::DocRequest(HttpRequest {
                    from,
                    doc,
                    requester_age,
                }))
            }
            OP_DOC_RESPONSE => {
                let from = CacheId::new(buf.get_u16()?);
                let doc = DocId::new(buf.get_u64()?);
                let size = ByteSize::from_bytes(buf.get_u64()?);
                let responder_age = get_age(buf)?;
                let found = buf.get_u8()? != 0;
                Ok(Self::DocResponse {
                    response: HttpResponse {
                        from,
                        doc,
                        size,
                        responder_age,
                    },
                    found,
                })
            }
            _ => Err(DecodeError::Malformed("unknown opcode")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ages() -> [ExpirationAge; 3] {
        [
            ExpirationAge::Infinite,
            ExpirationAge::finite(DurationMs::ZERO),
            ExpirationAge::finite(DurationMs::from_millis(u64::MAX / 2)),
        ]
    }

    #[test]
    fn icp_query_roundtrip() {
        let msg = WireMessage::IcpQuery(IcpQuery {
            from: CacheId::new(7),
            doc: DocId::new(u64::MAX),
        });
        assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn icp_reply_roundtrip() {
        for hit in [true, false] {
            let msg = WireMessage::IcpReply(IcpReply {
                from: CacheId::new(0),
                doc: DocId::new(42),
                hit,
            });
            assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn doc_request_roundtrip_all_ages() {
        for age in ages() {
            let msg = WireMessage::DocRequest(HttpRequest {
                from: CacheId::new(3),
                doc: DocId::new(9),
                requester_age: age,
            });
            assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn doc_response_roundtrip_all_ages() {
        for age in ages() {
            for found in [true, false] {
                let msg = WireMessage::DocResponse {
                    response: HttpResponse {
                        from: CacheId::new(1),
                        doc: DocId::new(5),
                        size: ByteSize::from_kb(4),
                        responder_age: age,
                    },
                    found,
                };
                assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
            }
        }
    }

    #[test]
    fn truncated_inputs_rejected() {
        let msg = WireMessage::IcpQuery(IcpQuery {
            from: CacheId::new(1),
            doc: DocId::new(2),
        });
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            assert!(
                WireMessage::decode(&bytes[..cut]).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn bad_magic_and_opcode_rejected() {
        let err = WireMessage::decode(&[0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]).unwrap_err();
        assert_eq!(err, DecodeError::Malformed("bad magic"));
        let mut bytes = Vec::new();
        put_u16(&mut bytes, MAGIC);
        put_u8(&mut bytes, 99);
        let err = WireMessage::decode(&bytes).unwrap_err();
        assert_eq!(err, DecodeError::Malformed("unknown opcode"));
    }

    #[test]
    fn bad_age_tag_rejected() {
        let mut bytes = Vec::new();
        put_u16(&mut bytes, MAGIC);
        put_u8(&mut bytes, OP_DOC_REQUEST);
        put_u16(&mut bytes, 1);
        put_u64(&mut bytes, 2);
        put_u8(&mut bytes, 7); // bogus age tag
        put_u64(&mut bytes, 0);
        let err = WireMessage::decode(&bytes).unwrap_err();
        assert_eq!(err, DecodeError::Malformed("unknown expiration-age tag"));
    }

    #[test]
    fn frame_roundtrip() {
        let msg = WireMessage::DocRequest(HttpRequest {
            from: CacheId::new(3),
            doc: DocId::new(9),
            requester_age: ExpirationAge::Infinite,
        });
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let got = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn read_frame_rejects_oversized_length_prefix() {
        // A peer-supplied length just past the cap must be rejected
        // before any allocation happens.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("oversized"));
    }

    #[test]
    fn read_frame_rejects_undecodable_header() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&4u32.to_be_bytes());
        buf.extend_from_slice(b"junk");
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::Malformed("x").to_string().contains("x"));
    }
}
