//! Binary wire formats for ICP (UDP) and the document protocol (TCP).
//!
//! The paper's simulator instances communicated over real UDP (ICP) and
//! TCP (HTTP); this module defines the equivalent compact binary codecs.
//! Framing:
//!
//! * **ICP datagrams** — fixed-size, one per UDP packet;
//! * **TCP messages** — a length-prefixed header, followed (for document
//!   responses) by `size` bytes of body streamed on the same connection,
//!   and (for stats responses) by `body_len` bytes of JSON.
//!
//! The cache expiration age rides in every document request and response,
//! exactly as the EA scheme piggybacks it on HTTP messages; since v2 the
//! requester's [`TraceCtx`] rides the same way on queries and requests,
//! so remote daemons can attach their spans to the requester's trace.
//!
//! # Versioning
//!
//! The original (v1) layout was `MAGIC, opcode, fields` with opcodes
//! `1..=4`. v2 inserts a version byte after the magic — chosen outside
//! the v1 opcode range, so the byte position disambiguates the two
//! layouts — and appends the optional trace context to queries and
//! requests. Decoding accepts both: a v1 frame from an old daemon parses
//! with no trace context, a v2 frame with the context tag `0` parses the
//! same way, and any other version byte is a typed
//! [`DecodeError::UnsupportedVersion`] so future bumps fail loudly
//! instead of being misparsed.
//!
//! The codec is hand-rolled over `Vec<u8>` / slice cursors (big-endian
//! fields) — the workspace is dependency-free by construction.

use coopcache_obs::TraceCtx;
use coopcache_proxy::{HttpRequest, HttpResponse, IcpQuery, IcpReply};
use coopcache_types::{ByteSize, CacheId, DocId, DurationMs, ExpirationAge};
use std::fmt;
use std::io::{self, Read, Write};

/// Protocol magic prepended to every TCP header.
pub const MAGIC: u16 = 0xCA5E;

/// Version byte of the current frame layout. Deliberately outside the
/// legacy opcode range `1..=4`: the byte after the magic is an opcode in
/// a v1 frame and a version tag from v2 on.
pub const FRAME_V2: u8 = 0xC2;

/// Upper bound on a length-prefixed TCP header frame. Real headers are
/// ~60 bytes; the cap keeps a malicious or corrupted length field from
/// forcing a giant allocation. Both directions of the document protocol
/// enforce it through [`read_frame`], so the client and server paths
/// cannot drift apart.
pub const MAX_FRAME_LEN: usize = 1024;

/// Writes one length-prefixed header frame to a TCP stream.
///
/// # Errors
///
/// Propagates write failures.
pub fn write_frame<W: Write>(writer: &mut W, msg: &WireMessage) -> io::Result<()> {
    let header = msg.encode();
    debug_assert!(header.len() <= MAX_FRAME_LEN, "encoded header too large");
    writer.write_all(&(header.len() as u32).to_be_bytes())?;
    writer.write_all(&header)
}

/// Reads one length-prefixed header frame, enforcing [`MAX_FRAME_LEN`]
/// before allocating.
///
/// # Errors
///
/// Propagates read failures; an oversized length prefix or an
/// undecodable header surfaces as [`io::ErrorKind::InvalidData`].
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<WireMessage> {
    let mut len_buf = [0u8; 4];
    reader.read_exact(&mut len_buf)?;
    let header_len = u32::from_be_bytes(len_buf) as usize;
    if header_len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized header",
        ));
    }
    let mut header = vec![0u8; header_len];
    reader.read_exact(&mut header)?;
    WireMessage::decode(&header).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// What a blocking peek at a doc-port connection found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PeekedFrame {
    /// An observability probe (`OP_STATS` or `OP_SERIES`) is arriving.
    Probe,
    /// Anything else — treated as a document fetch.
    Doc,
    /// The peer closed without sending another frame.
    Closed,
}

/// Blocks (via `peek`, consuming nothing) until the next frame starts
/// arriving on an accepted doc-port connection, then classifies it. A
/// refuse-rigged daemon uses this to keep serving stats and series
/// scrapes while document fetches still see the connection die with the
/// frame unread (observability must survive chaos) — and, on persistent
/// connections, to draw faults per *arriving* frame rather than per
/// idle wait. The client's length prefix and header are written
/// separately and can land in different segments, so short peeks wait
/// briefly for the rest; a stuck partial frame is treated as a
/// document fetch.
///
/// # Errors
///
/// Propagates peek failures — including the read-timeout expiry of an
/// idle connection.
pub(crate) fn peek_frame_kind(stream: &std::net::TcpStream) -> io::Result<PeekedFrame> {
    // length prefix (4) + magic (2) + version (1) + opcode (1)
    let mut buf = [0u8; 8];
    for _ in 0..50 {
        match stream.peek(&mut buf)? {
            0 => return Ok(PeekedFrame::Closed), // clean close
            n if n >= buf.len() => {
                let probe = buf[4..6] == MAGIC.to_be_bytes()
                    && buf[6] == FRAME_V2
                    && (buf[7] == OP_STATS_REQUEST || buf[7] == OP_SERIES_REQUEST);
                return Ok(if probe {
                    PeekedFrame::Probe
                } else {
                    PeekedFrame::Doc
                });
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(1)),
        }
    }
    Ok(PeekedFrame::Doc)
}

const OP_ICP_QUERY: u8 = 1;
const OP_ICP_REPLY: u8 = 2;
const OP_DOC_REQUEST: u8 = 3;
const OP_DOC_RESPONSE: u8 = 4;
/// v2-only: ask a daemon's doc port for its live stats snapshot.
const OP_STATS_REQUEST: u8 = 5;
/// v2-only: stats snapshot header; `body_len` bytes of JSON follow.
const OP_STATS_RESPONSE: u8 = 6;
/// v2-only: ask a daemon's doc port for its sampled time-series ring.
const OP_SERIES_REQUEST: u8 = 7;
/// v2-only: series header; `body_len` bytes of JSON follow.
const OP_SERIES_RESPONSE: u8 = 8;

const AGE_INFINITE: u8 = 0;
const AGE_FINITE: u8 = 1;

const CTX_ABSENT: u8 = 0;
const CTX_PRESENT: u8 = 1;

/// Error decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the message demands.
    Truncated,
    /// Unknown opcode or malformed field.
    Malformed(&'static str),
    /// A well-formed magic followed by a version byte this build does
    /// not speak (neither a legacy v1 opcode nor [`FRAME_V2`]).
    UnsupportedVersion(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => f.write_str("truncated wire message"),
            Self::Malformed(what) => write!(f, "malformed wire message: {what}"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported frame version {v:#04x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// A read cursor over a received byte slice; every `get_*` checks bounds.
struct Cursor<'a> {
    data: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data }
    }

    fn get_u8(&mut self) -> Result<u8, DecodeError> {
        let (&v, rest) = self.data.split_first().ok_or(DecodeError::Truncated)?;
        self.data = rest;
        Ok(v)
    }

    fn get_u16(&mut self) -> Result<u16, DecodeError> {
        if self.data.len() < 2 {
            return Err(DecodeError::Truncated);
        }
        let (head, rest) = self.data.split_at(2);
        self.data = rest;
        Ok(u16::from_be_bytes([head[0], head[1]]))
    }

    fn get_u64(&mut self) -> Result<u64, DecodeError> {
        if self.data.len() < 8 {
            return Err(DecodeError::Truncated);
        }
        let (head, rest) = self.data.split_at(8);
        self.data = rest;
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(head);
        Ok(u64::from_be_bytes(bytes))
    }
}

fn put_age(buf: &mut Vec<u8>, age: ExpirationAge) {
    match age.as_finite() {
        None => {
            put_u8(buf, AGE_INFINITE);
            put_u64(buf, 0);
        }
        Some(d) => {
            put_u8(buf, AGE_FINITE);
            put_u64(buf, d.as_millis());
        }
    }
}

fn get_age(buf: &mut Cursor<'_>) -> Result<ExpirationAge, DecodeError> {
    let tag = buf.get_u8()?;
    let ms = buf.get_u64()?;
    match tag {
        AGE_INFINITE => Ok(ExpirationAge::Infinite),
        AGE_FINITE => Ok(ExpirationAge::finite(DurationMs::from_millis(ms))),
        _ => Err(DecodeError::Malformed("unknown expiration-age tag")),
    }
}

fn put_ctx(buf: &mut Vec<u8>, ctx: Option<TraceCtx>) {
    match ctx {
        None => put_u8(buf, CTX_ABSENT),
        Some(ctx) => {
            put_u8(buf, CTX_PRESENT);
            put_u64(buf, ctx.trace_id);
            put_u64(buf, ctx.parent_span);
        }
    }
}

fn get_ctx(buf: &mut Cursor<'_>) -> Result<Option<TraceCtx>, DecodeError> {
    match buf.get_u8()? {
        CTX_ABSENT => Ok(None),
        CTX_PRESENT => Ok(Some(TraceCtx {
            trace_id: buf.get_u64()?,
            parent_span: buf.get_u64()?,
        })),
        _ => Err(DecodeError::Malformed("unknown trace-context tag")),
    }
}

/// A message of the inter-proxy protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMessage {
    /// ICP query (UDP), optionally carrying the requester's trace
    /// context (absent on frames from pre-tracing daemons).
    IcpQuery {
        /// The query itself.
        query: IcpQuery,
        /// The requester's trace context, if it traces.
        ctx: Option<TraceCtx>,
    },
    /// ICP reply (UDP).
    IcpReply(IcpReply),
    /// Document request (TCP), carrying the requester's expiration age
    /// and optionally its trace context.
    DocRequest {
        /// The request itself.
        request: HttpRequest,
        /// The requester's trace context, if it traces.
        ctx: Option<TraceCtx>,
    },
    /// Document response header (TCP). `found == false` means the
    /// document vanished between ICP and fetch; no body follows.
    DocResponse {
        /// The response metadata (from, doc, size, responder age).
        response: HttpResponse,
        /// Whether the document was present and a body follows.
        found: bool,
    },
    /// Live stats request (TCP, v2 only): ask the daemon behind this
    /// doc port for its `OP_STATS` snapshot.
    StatsRequest,
    /// Live stats response header (TCP, v2 only); `body_len` bytes of
    /// deterministic JSON follow on the same connection.
    StatsResponse {
        /// The responding daemon.
        cache: CacheId,
        /// Length of the JSON body that follows.
        body_len: u64,
    },
    /// Time-series request (TCP, v2 only): ask the daemon behind this
    /// doc port for its sampled metrics ring (`OP_SERIES`).
    SeriesRequest,
    /// Time-series response header (TCP, v2 only); `body_len` bytes of
    /// deterministic JSON follow on the same connection.
    SeriesResponse {
        /// The responding daemon.
        cache: CacheId,
        /// Length of the JSON body that follows.
        body_len: u64,
    },
}

impl WireMessage {
    /// Encodes the message in the current (v2) layout (header only —
    /// bodies are streamed separately).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        put_u16(&mut buf, MAGIC);
        put_u8(&mut buf, FRAME_V2);
        match self {
            Self::IcpQuery { query, ctx } => {
                put_u8(&mut buf, OP_ICP_QUERY);
                put_u16(&mut buf, query.from.as_u16());
                put_u64(&mut buf, query.doc.as_u64());
                put_ctx(&mut buf, *ctx);
            }
            Self::IcpReply(r) => {
                put_u8(&mut buf, OP_ICP_REPLY);
                put_u16(&mut buf, r.from.as_u16());
                put_u64(&mut buf, r.doc.as_u64());
                put_u8(&mut buf, u8::from(r.hit));
            }
            Self::DocRequest { request, ctx } => {
                put_u8(&mut buf, OP_DOC_REQUEST);
                put_u16(&mut buf, request.from.as_u16());
                put_u64(&mut buf, request.doc.as_u64());
                put_age(&mut buf, request.requester_age);
                put_ctx(&mut buf, *ctx);
            }
            Self::DocResponse { response, found } => {
                put_u8(&mut buf, OP_DOC_RESPONSE);
                put_u16(&mut buf, response.from.as_u16());
                put_u64(&mut buf, response.doc.as_u64());
                put_u64(&mut buf, response.size.as_bytes());
                put_age(&mut buf, response.responder_age);
                put_u8(&mut buf, u8::from(*found));
            }
            Self::StatsRequest => {
                put_u8(&mut buf, OP_STATS_REQUEST);
            }
            Self::StatsResponse { cache, body_len } => {
                put_u8(&mut buf, OP_STATS_RESPONSE);
                put_u16(&mut buf, cache.as_u16());
                put_u64(&mut buf, *body_len);
            }
            Self::SeriesRequest => {
                put_u8(&mut buf, OP_SERIES_REQUEST);
            }
            Self::SeriesResponse { cache, body_len } => {
                put_u8(&mut buf, OP_SERIES_RESPONSE);
                put_u16(&mut buf, cache.as_u16());
                put_u64(&mut buf, *body_len);
            }
        }
        buf
    }

    /// Encodes the message in the legacy (v1) layout a pre-tracing
    /// daemon understands: no version byte, no trace context. Returns
    /// `None` for the v2-only stats messages, which have no v1 form.
    #[must_use]
    pub fn encode_legacy(&self) -> Option<Vec<u8>> {
        let mut buf = Vec::with_capacity(40);
        put_u16(&mut buf, MAGIC);
        match self {
            Self::IcpQuery { query, .. } => {
                put_u8(&mut buf, OP_ICP_QUERY);
                put_u16(&mut buf, query.from.as_u16());
                put_u64(&mut buf, query.doc.as_u64());
            }
            Self::IcpReply(r) => {
                put_u8(&mut buf, OP_ICP_REPLY);
                put_u16(&mut buf, r.from.as_u16());
                put_u64(&mut buf, r.doc.as_u64());
                put_u8(&mut buf, u8::from(r.hit));
            }
            Self::DocRequest { request, .. } => {
                put_u8(&mut buf, OP_DOC_REQUEST);
                put_u16(&mut buf, request.from.as_u16());
                put_u64(&mut buf, request.doc.as_u64());
                put_age(&mut buf, request.requester_age);
            }
            Self::DocResponse { response, found } => {
                put_u8(&mut buf, OP_DOC_RESPONSE);
                put_u16(&mut buf, response.from.as_u16());
                put_u64(&mut buf, response.doc.as_u64());
                put_u64(&mut buf, response.size.as_bytes());
                put_age(&mut buf, response.responder_age);
                put_u8(&mut buf, u8::from(*found));
            }
            Self::StatsRequest
            | Self::StatsResponse { .. }
            | Self::SeriesRequest
            | Self::SeriesResponse { .. } => return None,
        }
        Some(buf)
    }

    /// Decodes a message from a byte slice, accepting both the legacy
    /// v1 layout (trace context absent) and the v2 layout.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on short input, a bad magic, an unknown
    /// version byte, an unknown opcode, or a malformed field.
    pub fn decode(data: &[u8]) -> Result<Self, DecodeError> {
        let buf = &mut Cursor::new(data);
        if buf.get_u16()? != MAGIC {
            return Err(DecodeError::Malformed("bad magic"));
        }
        // v1 frames carry an opcode (1..=4) where v2 and later carry a
        // version byte chosen outside that range.
        let first = buf.get_u8()?;
        let (op, versioned) = if (OP_ICP_QUERY..=OP_DOC_RESPONSE).contains(&first) {
            (first, false)
        } else if first == FRAME_V2 {
            (buf.get_u8()?, true)
        } else {
            return Err(DecodeError::UnsupportedVersion(first));
        };
        match op {
            OP_ICP_QUERY => {
                let query = IcpQuery {
                    from: CacheId::new(buf.get_u16()?),
                    doc: DocId::new(buf.get_u64()?),
                };
                let ctx = if versioned { get_ctx(buf)? } else { None };
                Ok(Self::IcpQuery { query, ctx })
            }
            OP_ICP_REPLY => Ok(Self::IcpReply(IcpReply {
                from: CacheId::new(buf.get_u16()?),
                doc: DocId::new(buf.get_u64()?),
                hit: buf.get_u8()? != 0,
            })),
            OP_DOC_REQUEST => {
                let request = HttpRequest {
                    from: CacheId::new(buf.get_u16()?),
                    doc: DocId::new(buf.get_u64()?),
                    requester_age: get_age(buf)?,
                };
                let ctx = if versioned { get_ctx(buf)? } else { None };
                Ok(Self::DocRequest { request, ctx })
            }
            OP_DOC_RESPONSE => {
                let from = CacheId::new(buf.get_u16()?);
                let doc = DocId::new(buf.get_u64()?);
                let size = ByteSize::from_bytes(buf.get_u64()?);
                let responder_age = get_age(buf)?;
                let found = buf.get_u8()? != 0;
                Ok(Self::DocResponse {
                    response: HttpResponse {
                        from,
                        doc,
                        size,
                        responder_age,
                    },
                    found,
                })
            }
            OP_STATS_REQUEST => Ok(Self::StatsRequest),
            OP_STATS_RESPONSE => Ok(Self::StatsResponse {
                cache: CacheId::new(buf.get_u16()?),
                body_len: buf.get_u64()?,
            }),
            OP_SERIES_REQUEST => Ok(Self::SeriesRequest),
            OP_SERIES_RESPONSE => Ok(Self::SeriesResponse {
                cache: CacheId::new(buf.get_u16()?),
                body_len: buf.get_u64()?,
            }),
            _ => Err(DecodeError::Malformed("unknown opcode")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ages() -> [ExpirationAge; 3] {
        [
            ExpirationAge::Infinite,
            ExpirationAge::finite(DurationMs::ZERO),
            ExpirationAge::finite(DurationMs::from_millis(u64::MAX / 2)),
        ]
    }

    fn ctxs() -> [Option<TraceCtx>; 2] {
        [
            None,
            Some(TraceCtx {
                trace_id: (7 << 48) | 3,
                parent_span: u64::MAX,
            }),
        ]
    }

    #[test]
    fn icp_query_roundtrip() {
        for ctx in ctxs() {
            let msg = WireMessage::IcpQuery {
                query: IcpQuery {
                    from: CacheId::new(7),
                    doc: DocId::new(u64::MAX),
                },
                ctx,
            };
            assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn icp_reply_roundtrip() {
        for hit in [true, false] {
            let msg = WireMessage::IcpReply(IcpReply {
                from: CacheId::new(0),
                doc: DocId::new(42),
                hit,
            });
            assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn doc_request_roundtrip_all_ages() {
        for age in ages() {
            for ctx in ctxs() {
                let msg = WireMessage::DocRequest {
                    request: HttpRequest {
                        from: CacheId::new(3),
                        doc: DocId::new(9),
                        requester_age: age,
                    },
                    ctx,
                };
                assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
            }
        }
    }

    #[test]
    fn doc_response_roundtrip_all_ages() {
        for age in ages() {
            for found in [true, false] {
                let msg = WireMessage::DocResponse {
                    response: HttpResponse {
                        from: CacheId::new(1),
                        doc: DocId::new(5),
                        size: ByteSize::from_kb(4),
                        responder_age: age,
                    },
                    found,
                };
                assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
            }
        }
    }

    #[test]
    fn stats_messages_roundtrip() {
        let msg = WireMessage::StatsRequest;
        assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
        let msg = WireMessage::StatsResponse {
            cache: CacheId::new(9),
            body_len: 4096,
        };
        assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
        // v2-only messages have no legacy form.
        assert_eq!(msg.encode_legacy(), None);
        assert_eq!(WireMessage::StatsRequest.encode_legacy(), None);
    }

    #[test]
    fn series_messages_roundtrip() {
        let msg = WireMessage::SeriesRequest;
        assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
        let msg = WireMessage::SeriesResponse {
            cache: CacheId::new(3),
            body_len: 1 << 20,
        };
        assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
        // v2-only messages have no legacy form.
        assert_eq!(msg.encode_legacy(), None);
        assert_eq!(WireMessage::SeriesRequest.encode_legacy(), None);
    }

    #[test]
    fn legacy_frames_decode_with_ctx_absent() {
        // A v1 daemon's frames must still parse, with no trace context;
        // equally, v2 frames with ctx tag 0 parse to the same message.
        let msg = WireMessage::IcpQuery {
            query: IcpQuery {
                from: CacheId::new(2),
                doc: DocId::new(11),
            },
            ctx: Some(TraceCtx {
                trace_id: 5,
                parent_span: 6,
            }),
        };
        let legacy = msg.encode_legacy().expect("v1 form exists");
        let decoded = WireMessage::decode(&legacy).unwrap();
        assert_eq!(
            decoded,
            WireMessage::IcpQuery {
                query: IcpQuery {
                    from: CacheId::new(2),
                    doc: DocId::new(11),
                },
                ctx: None,
            }
        );
    }

    #[test]
    fn unknown_version_byte_is_typed_error() {
        for version in [0u8, 7, 0xC3, 0xFF] {
            let mut bytes = Vec::new();
            put_u16(&mut bytes, MAGIC);
            put_u8(&mut bytes, version);
            put_u64(&mut bytes, 0);
            assert_eq!(
                WireMessage::decode(&bytes).unwrap_err(),
                DecodeError::UnsupportedVersion(version),
                "version byte {version:#04x}"
            );
        }
    }

    #[test]
    fn truncated_inputs_rejected() {
        let msg = WireMessage::IcpQuery {
            query: IcpQuery {
                from: CacheId::new(1),
                doc: DocId::new(2),
            },
            ctx: Some(TraceCtx {
                trace_id: 3,
                parent_span: 4,
            }),
        };
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            assert!(
                WireMessage::decode(&bytes[..cut]).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn bad_magic_and_opcode_rejected() {
        let err = WireMessage::decode(&[0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]).unwrap_err();
        assert_eq!(err, DecodeError::Malformed("bad magic"));
        let mut bytes = Vec::new();
        put_u16(&mut bytes, MAGIC);
        put_u8(&mut bytes, FRAME_V2);
        put_u8(&mut bytes, 99); // valid version, bogus opcode
        let err = WireMessage::decode(&bytes).unwrap_err();
        assert_eq!(err, DecodeError::Malformed("unknown opcode"));
    }

    #[test]
    fn bad_age_and_ctx_tags_rejected() {
        let mut bytes = Vec::new();
        put_u16(&mut bytes, MAGIC);
        put_u8(&mut bytes, OP_DOC_REQUEST); // legacy layout
        put_u16(&mut bytes, 1);
        put_u64(&mut bytes, 2);
        put_u8(&mut bytes, 7); // bogus age tag
        put_u64(&mut bytes, 0);
        let err = WireMessage::decode(&bytes).unwrap_err();
        assert_eq!(err, DecodeError::Malformed("unknown expiration-age tag"));

        let mut bytes = Vec::new();
        put_u16(&mut bytes, MAGIC);
        put_u8(&mut bytes, FRAME_V2);
        put_u8(&mut bytes, OP_ICP_QUERY);
        put_u16(&mut bytes, 1);
        put_u64(&mut bytes, 2);
        put_u8(&mut bytes, 9); // bogus ctx tag
        let err = WireMessage::decode(&bytes).unwrap_err();
        assert_eq!(err, DecodeError::Malformed("unknown trace-context tag"));
    }

    #[test]
    fn frame_roundtrip() {
        let msg = WireMessage::DocRequest {
            request: HttpRequest {
                from: CacheId::new(3),
                doc: DocId::new(9),
                requester_age: ExpirationAge::Infinite,
            },
            ctx: Some(TraceCtx {
                trace_id: 1,
                parent_span: 2,
            }),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let got = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn read_frame_rejects_oversized_length_prefix() {
        // A peer-supplied length just past the cap must be rejected
        // before any allocation happens.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("oversized"));
    }

    #[test]
    fn read_frame_rejects_undecodable_header() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&4u32.to_be_bytes());
        buf.extend_from_slice(b"junk");
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::Malformed("x").to_string().contains("x"));
        assert!(DecodeError::UnsupportedVersion(0xC3)
            .to_string()
            .contains("0xc3"));
    }

    // ---- seeded property tests -------------------------------------
    //
    // The daemons already chaos-test the protocol end to end; these
    // tests attack the codec itself with a deterministic splitmix64
    // stream, so every `cargo test` covers the same few thousand cases.

    /// Minimal splitmix64 — the test generator must not depend on the
    /// trace crate (net does not).
    struct TestRng(u64);

    impl TestRng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }

        fn age(&mut self) -> ExpirationAge {
            match self.below(3) {
                0 => ExpirationAge::Infinite,
                1 => ExpirationAge::finite(DurationMs::ZERO),
                _ => ExpirationAge::finite(DurationMs::from_millis(self.next() >> 1)),
            }
        }

        fn ctx(&mut self) -> Option<TraceCtx> {
            if self.below(2) == 0 {
                None
            } else {
                Some(TraceCtx {
                    trace_id: self.next(),
                    parent_span: self.next(),
                })
            }
        }

        fn cache(&mut self) -> CacheId {
            CacheId::new((self.next() & 0xFFFF) as u16)
        }

        fn message(&mut self) -> WireMessage {
            match self.below(8) {
                0 => WireMessage::IcpQuery {
                    query: IcpQuery {
                        from: self.cache(),
                        doc: DocId::new(self.next()),
                    },
                    ctx: self.ctx(),
                },
                1 => WireMessage::IcpReply(IcpReply {
                    from: self.cache(),
                    doc: DocId::new(self.next()),
                    hit: self.below(2) == 0,
                }),
                2 => WireMessage::DocRequest {
                    request: HttpRequest {
                        from: self.cache(),
                        doc: DocId::new(self.next()),
                        requester_age: self.age(),
                    },
                    ctx: self.ctx(),
                },
                3 => WireMessage::DocResponse {
                    response: HttpResponse {
                        from: self.cache(),
                        doc: DocId::new(self.next()),
                        size: ByteSize::from_bytes(self.next()),
                        responder_age: self.age(),
                    },
                    found: self.below(2) == 0,
                },
                4 => WireMessage::StatsRequest,
                5 => WireMessage::StatsResponse {
                    cache: self.cache(),
                    body_len: self.next(),
                },
                6 => WireMessage::SeriesRequest,
                _ => WireMessage::SeriesResponse {
                    cache: self.cache(),
                    body_len: self.next(),
                },
            }
        }
    }

    /// Strips the trace context a legacy (v1) encoding cannot carry.
    fn without_ctx(msg: &WireMessage) -> WireMessage {
        match msg.clone() {
            WireMessage::IcpQuery { query, .. } => WireMessage::IcpQuery { query, ctx: None },
            WireMessage::DocRequest { request, .. } => {
                WireMessage::DocRequest { request, ctx: None }
            }
            other => other,
        }
    }

    #[test]
    fn seeded_roundtrip_every_variant() {
        let mut rng = TestRng(0xC0FF_EE00);
        let mut seen = [false; 8];
        for _ in 0..2_000 {
            let msg = rng.message();
            seen[match &msg {
                WireMessage::IcpQuery { .. } => 0,
                WireMessage::IcpReply(..) => 1,
                WireMessage::DocRequest { .. } => 2,
                WireMessage::DocResponse { .. } => 3,
                WireMessage::StatsRequest => 4,
                WireMessage::StatsResponse { .. } => 5,
                WireMessage::SeriesRequest => 6,
                WireMessage::SeriesResponse { .. } => 7,
            }] = true;
            let bytes = msg.encode();
            assert!(bytes.len() <= MAX_FRAME_LEN);
            assert_eq!(WireMessage::decode(&bytes).unwrap(), msg);
            let mut framed = Vec::new();
            write_frame(&mut framed, &msg).unwrap();
            assert_eq!(read_frame(&mut framed.as_slice()).unwrap(), msg);
        }
        assert!(seen.iter().all(|&s| s), "generator missed a variant");
    }

    #[test]
    fn seeded_legacy_roundtrip_drops_ctx() {
        let mut rng = TestRng(0xBEEF);
        for _ in 0..1_000 {
            let msg = rng.message();
            let Some(legacy) = msg.encode_legacy() else {
                continue; // stats messages are v2-only
            };
            assert_eq!(WireMessage::decode(&legacy).unwrap(), without_ctx(&msg));
        }
    }

    #[test]
    fn seeded_truncations_error_never_panic() {
        let mut rng = TestRng(0x7A3E);
        for _ in 0..500 {
            let bytes = rng.message().encode();
            for cut in 0..bytes.len() {
                assert!(
                    WireMessage::decode(&bytes[..cut]).is_err(),
                    "decode of {cut}-byte prefix of {bytes:?} should fail"
                );
            }
        }
    }

    #[test]
    fn seeded_garbage_never_panics() {
        let mut rng = TestRng(0x5EED);
        for _ in 0..5_000 {
            let len = rng.below(64) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| (rng.next() & 0xFF) as u8).collect();
            // Any outcome but a panic is acceptable.
            let _ = WireMessage::decode(&bytes);
        }
    }

    #[test]
    fn seeded_bitflips_never_panic() {
        let mut rng = TestRng(0xF11B);
        for _ in 0..2_000 {
            let msg = rng.message();
            let mut bytes = msg.encode();
            let at = rng.below(bytes.len() as u64) as usize;
            bytes[at] ^= 1 << rng.below(8);
            let _ = WireMessage::decode(&bytes);
        }
    }
}
