//! Binary wire formats for ICP (UDP) and the document protocol (TCP).
//!
//! The paper's simulator instances communicated over real UDP (ICP) and
//! TCP (HTTP); this module defines the equivalent compact binary codecs.
//! Framing:
//!
//! * **ICP datagrams** — fixed-size, one per UDP packet;
//! * **TCP messages** — a length-prefixed header, followed (for document
//!   responses) by `size` bytes of body streamed on the same connection.
//!
//! The cache expiration age rides in every document request and response,
//! exactly as the EA scheme piggybacks it on HTTP messages.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use coopcache_proxy::{HttpRequest, HttpResponse, IcpQuery, IcpReply};
use coopcache_types::{ByteSize, CacheId, DocId, DurationMs, ExpirationAge};
use std::fmt;

/// Protocol magic prepended to every TCP header.
pub const MAGIC: u16 = 0xCA5E;

const OP_ICP_QUERY: u8 = 1;
const OP_ICP_REPLY: u8 = 2;
const OP_DOC_REQUEST: u8 = 3;
const OP_DOC_RESPONSE: u8 = 4;

const AGE_INFINITE: u8 = 0;
const AGE_FINITE: u8 = 1;

/// Error decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the message demands.
    Truncated,
    /// Unknown opcode or malformed field.
    Malformed(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => f.write_str("truncated wire message"),
            Self::Malformed(what) => write!(f, "malformed wire message: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_age(buf: &mut BytesMut, age: ExpirationAge) {
    match age.as_finite() {
        None => {
            buf.put_u8(AGE_INFINITE);
            buf.put_u64(0);
        }
        Some(d) => {
            buf.put_u8(AGE_FINITE);
            buf.put_u64(d.as_millis());
        }
    }
}

fn get_age(buf: &mut impl Buf) -> Result<ExpirationAge, DecodeError> {
    if buf.remaining() < 9 {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    let ms = buf.get_u64();
    match tag {
        AGE_INFINITE => Ok(ExpirationAge::Infinite),
        AGE_FINITE => Ok(ExpirationAge::finite(DurationMs::from_millis(ms))),
        _ => Err(DecodeError::Malformed("unknown expiration-age tag")),
    }
}

/// A message of the inter-proxy protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMessage {
    /// ICP query (UDP).
    IcpQuery(IcpQuery),
    /// ICP reply (UDP).
    IcpReply(IcpReply),
    /// Document request (TCP), carrying the requester's expiration age.
    DocRequest(HttpRequest),
    /// Document response header (TCP). `found == false` means the
    /// document vanished between ICP and fetch; no body follows.
    DocResponse {
        /// The response metadata (from, doc, size, responder age).
        response: HttpResponse,
        /// Whether the document was present and a body follows.
        found: bool,
    },
}

impl WireMessage {
    /// Encodes the message (header only — bodies are streamed separately).
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(40);
        buf.put_u16(MAGIC);
        match self {
            Self::IcpQuery(q) => {
                buf.put_u8(OP_ICP_QUERY);
                buf.put_u16(q.from.as_u16());
                buf.put_u64(q.doc.as_u64());
            }
            Self::IcpReply(r) => {
                buf.put_u8(OP_ICP_REPLY);
                buf.put_u16(r.from.as_u16());
                buf.put_u64(r.doc.as_u64());
                buf.put_u8(u8::from(r.hit));
            }
            Self::DocRequest(req) => {
                buf.put_u8(OP_DOC_REQUEST);
                buf.put_u16(req.from.as_u16());
                buf.put_u64(req.doc.as_u64());
                put_age(&mut buf, req.requester_age);
            }
            Self::DocResponse { response, found } => {
                buf.put_u8(OP_DOC_RESPONSE);
                buf.put_u16(response.from.as_u16());
                buf.put_u64(response.doc.as_u64());
                buf.put_u64(response.size.as_bytes());
                put_age(&mut buf, response.responder_age);
                buf.put_u8(u8::from(*found));
            }
        }
        buf.freeze()
    }

    /// Decodes a message from a byte slice.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on short input, a bad magic, an unknown
    /// opcode, or a malformed field.
    pub fn decode(mut data: &[u8]) -> Result<Self, DecodeError> {
        let buf = &mut data;
        if buf.remaining() < 3 {
            return Err(DecodeError::Truncated);
        }
        if buf.get_u16() != MAGIC {
            return Err(DecodeError::Malformed("bad magic"));
        }
        let op = buf.get_u8();
        match op {
            OP_ICP_QUERY => {
                if buf.remaining() < 10 {
                    return Err(DecodeError::Truncated);
                }
                Ok(Self::IcpQuery(IcpQuery {
                    from: CacheId::new(buf.get_u16()),
                    doc: DocId::new(buf.get_u64()),
                }))
            }
            OP_ICP_REPLY => {
                if buf.remaining() < 11 {
                    return Err(DecodeError::Truncated);
                }
                Ok(Self::IcpReply(IcpReply {
                    from: CacheId::new(buf.get_u16()),
                    doc: DocId::new(buf.get_u64()),
                    hit: buf.get_u8() != 0,
                }))
            }
            OP_DOC_REQUEST => {
                if buf.remaining() < 10 {
                    return Err(DecodeError::Truncated);
                }
                let from = CacheId::new(buf.get_u16());
                let doc = DocId::new(buf.get_u64());
                let requester_age = get_age(buf)?;
                Ok(Self::DocRequest(HttpRequest {
                    from,
                    doc,
                    requester_age,
                }))
            }
            OP_DOC_RESPONSE => {
                if buf.remaining() < 18 {
                    return Err(DecodeError::Truncated);
                }
                let from = CacheId::new(buf.get_u16());
                let doc = DocId::new(buf.get_u64());
                let size = ByteSize::from_bytes(buf.get_u64());
                let responder_age = get_age(buf)?;
                if buf.remaining() < 1 {
                    return Err(DecodeError::Truncated);
                }
                let found = buf.get_u8() != 0;
                Ok(Self::DocResponse {
                    response: HttpResponse {
                        from,
                        doc,
                        size,
                        responder_age,
                    },
                    found,
                })
            }
            _ => Err(DecodeError::Malformed("unknown opcode")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ages() -> [ExpirationAge; 3] {
        [
            ExpirationAge::Infinite,
            ExpirationAge::finite(DurationMs::ZERO),
            ExpirationAge::finite(DurationMs::from_millis(u64::MAX / 2)),
        ]
    }

    #[test]
    fn icp_query_roundtrip() {
        let msg = WireMessage::IcpQuery(IcpQuery {
            from: CacheId::new(7),
            doc: DocId::new(u64::MAX),
        });
        assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn icp_reply_roundtrip() {
        for hit in [true, false] {
            let msg = WireMessage::IcpReply(IcpReply {
                from: CacheId::new(0),
                doc: DocId::new(42),
                hit,
            });
            assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn doc_request_roundtrip_all_ages() {
        for age in ages() {
            let msg = WireMessage::DocRequest(HttpRequest {
                from: CacheId::new(3),
                doc: DocId::new(9),
                requester_age: age,
            });
            assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn doc_response_roundtrip_all_ages() {
        for age in ages() {
            for found in [true, false] {
                let msg = WireMessage::DocResponse {
                    response: HttpResponse {
                        from: CacheId::new(1),
                        doc: DocId::new(5),
                        size: ByteSize::from_kb(4),
                        responder_age: age,
                    },
                    found,
                };
                assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
            }
        }
    }

    #[test]
    fn truncated_inputs_rejected() {
        let msg = WireMessage::IcpQuery(IcpQuery {
            from: CacheId::new(1),
            doc: DocId::new(2),
        });
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            assert!(
                WireMessage::decode(&bytes[..cut]).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn bad_magic_and_opcode_rejected() {
        let err = WireMessage::decode(&[0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]).unwrap_err();
        assert_eq!(err, DecodeError::Malformed("bad magic"));
        let mut bytes = BytesMut::new();
        bytes.put_u16(MAGIC);
        bytes.put_u8(99);
        let err = WireMessage::decode(&bytes).unwrap_err();
        assert_eq!(err, DecodeError::Malformed("unknown opcode"));
    }

    #[test]
    fn bad_age_tag_rejected() {
        let mut bytes = BytesMut::new();
        bytes.put_u16(MAGIC);
        bytes.put_u8(OP_DOC_REQUEST);
        bytes.put_u16(1);
        bytes.put_u64(2);
        bytes.put_u8(7); // bogus age tag
        bytes.put_u64(0);
        let err = WireMessage::decode(&bytes).unwrap_err();
        assert_eq!(err, DecodeError::Malformed("unknown expiration-age tag"));
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::Malformed("x").to_string().contains("x"));
    }
}
