//! A live cache daemon: one proxy node served over real sockets.
//!
//! Each daemon runs two background threads — an ICP responder on a UDP
//! socket and a document server on a TCP listener — around the same
//! I/O-free [`ProxyNode`] the simulators use. The client-facing
//! [`CacheDaemon::request`] drives the full protocol over the loopback
//! network: local lookup, UDP ICP fan-out, TCP fetch from the first
//! positive replier (with expiration ages piggybacked both ways), origin
//! fallback.

use crate::clock::SharedClock;
use crate::origin::{drain_body, fetch_from_origin, write_body};
use crate::wire::WireMessage;
use coopcache_core::{ExpirationWindow, PlacementScheme, PolicyKind};
use coopcache_obs::{Event, Histogram, HistogramSnapshot, SinkHandle};
use coopcache_proxy::{IcpQuery, ProxyNode, RequestOutcome};
use coopcache_types::{ByteSize, CacheId, DocId};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Locks a mutex, recovering the data from a poisoned lock — a panicked
/// server thread should degrade the daemon, not wedge it.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Addresses a daemon needs to reach a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerAddr {
    /// The peer's cache id.
    pub id: CacheId,
    /// Its ICP (UDP) endpoint.
    pub icp: SocketAddr,
    /// Its document (TCP) endpoint.
    pub doc: SocketAddr,
}

/// Timeouts and identity for a daemon.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// This daemon's cache id.
    pub id: CacheId,
    /// Cache capacity.
    pub capacity: ByteSize,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Placement scheme.
    pub scheme: PlacementScheme,
    /// Expiration-age window.
    pub window: ExpirationWindow,
    /// How long to wait for ICP replies before declaring a group miss.
    pub icp_timeout: Duration,
    /// Per-connection I/O timeout.
    pub io_timeout: Duration,
}

impl DaemonConfig {
    /// A sensible loopback configuration.
    #[must_use]
    pub fn loopback(id: CacheId, capacity: ByteSize, scheme: PlacementScheme) -> Self {
        Self {
            id,
            capacity,
            policy: PolicyKind::Lru,
            scheme,
            window: ExpirationWindow::default(),
            icp_timeout: Duration::from_millis(250),
            io_timeout: Duration::from_secs(5),
        }
    }
}

/// The sockets a daemon has bound, published before peers start.
#[derive(Debug)]
pub struct BoundSockets {
    icp: UdpSocket,
    doc: TcpListener,
    /// The ICP endpoint peers should query.
    pub icp_addr: SocketAddr,
    /// The TCP endpoint peers should fetch documents from.
    pub doc_addr: SocketAddr,
}

impl BoundSockets {
    /// Binds fresh loopback sockets on ephemeral ports.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_loopback() -> io::Result<Self> {
        let icp = UdpSocket::bind("127.0.0.1:0")?;
        let doc = TcpListener::bind("127.0.0.1:0")?;
        let icp_addr = icp.local_addr()?;
        let doc_addr = doc.local_addr()?;
        Ok(Self {
            icp,
            doc,
            icp_addr,
            doc_addr,
        })
    }
}

/// Where a client request was ultimately served from — the key of the
/// daemon's wall-clock latency breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ServeSource {
    /// Served from this daemon's own cache.
    Local,
    /// Fetched from the given peer over TCP.
    Peer(CacheId),
    /// Fetched from the origin server.
    Origin,
}

impl fmt::Display for ServeSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Local => f.write_str("local"),
            Self::Peer(id) => write!(f, "peer:{}", id.as_u16()),
            Self::Origin => f.write_str("origin"),
        }
    }
}

/// A running cache daemon.
#[derive(Debug)]
pub struct CacheDaemon {
    config: DaemonConfig,
    node: Arc<Mutex<ProxyNode>>,
    clock: SharedClock,
    peers: Vec<PeerAddr>,
    origin: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    /// Optional event stream; installed into the node too, so placement
    /// and eviction events flow alongside the daemon's request events.
    sink: Option<SinkHandle>,
    /// Request sequence numbers for the event stream.
    seq: AtomicU64,
    /// Measured wall-clock request latency (µs), split by serve source.
    latency: Mutex<BTreeMap<ServeSource, Histogram>>,
}

impl CacheDaemon {
    /// Starts a daemon on pre-bound sockets.
    ///
    /// `peers` lists every *other* cache in the group; `origin` is the
    /// stub origin server misses resolve against.
    ///
    /// # Errors
    ///
    /// Propagates socket configuration and thread-spawn failures.
    pub fn start(
        config: DaemonConfig,
        sockets: BoundSockets,
        peers: Vec<PeerAddr>,
        origin: SocketAddr,
        clock: SharedClock,
    ) -> io::Result<Self> {
        let node = Arc::new(Mutex::new(ProxyNode::with_window(
            config.id,
            config.capacity,
            config.policy,
            config.scheme,
            config.window,
        )));
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        // ICP responder thread.
        sockets
            .icp
            .set_read_timeout(Some(Duration::from_millis(20)))?;
        {
            let node = Arc::clone(&node);
            let stop = Arc::clone(&stop);
            let socket = sockets.icp;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("coopcache-icp-{}", config.id))
                    .spawn(move || icp_loop(&socket, &node, &stop))?,
            );
        }

        // Document server thread.
        sockets.doc.set_nonblocking(true)?;
        {
            let node = Arc::clone(&node);
            let stop = Arc::clone(&stop);
            let clock = clock.clone();
            let listener = sockets.doc;
            let io_timeout = config.io_timeout;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("coopcache-doc-{}", config.id))
                    .spawn(move || doc_loop(&listener, &node, &clock, &stop, io_timeout))?,
            );
        }

        Ok(Self {
            config,
            node,
            clock,
            peers,
            origin,
            stop,
            threads,
            sink: None,
            seq: AtomicU64::new(0),
            latency: Mutex::new(BTreeMap::new()),
        })
    }

    /// This daemon's cache id.
    #[must_use]
    pub fn id(&self) -> CacheId {
        self.config.id
    }

    /// Installs an event sink: the daemon emits a `Request` event (with
    /// measured wall-clock latency) per served request, and the inner
    /// node emits placement/eviction events through the same sink.
    pub fn set_sink(&mut self, sink: SinkHandle) {
        lock(&self.node).set_sink(sink.clone());
        self.sink = Some(sink);
    }

    /// Snapshot of the wall-clock latency histograms, one per serve
    /// source, in `ServeSource` order.
    #[must_use]
    pub fn latency_snapshots(&self) -> Vec<(ServeSource, HistogramSnapshot)> {
        lock(&self.latency)
            .iter()
            .map(|(source, hist)| (*source, hist.snapshot()))
            .collect()
    }

    /// Runs a closure with read access to the underlying node (for
    /// inspecting stats and cache contents).
    pub fn with_node<R>(&self, f: impl FnOnce(&ProxyNode) -> R) -> R {
        f(&lock(&self.node))
    }

    /// Serves one client request end-to-end over the real network,
    /// recording its wall-clock latency (and emitting a `Request` event
    /// when a sink is installed).
    ///
    /// # Errors
    ///
    /// Propagates socket errors (a vanished peer is handled by falling
    /// back to the origin, not reported as an error).
    pub fn request(&self, doc: DocId, size: ByteSize) -> io::Result<RequestOutcome> {
        let started_us = self.clock.now_micros();
        let outcome = self.serve(doc, size)?;
        let latency_us = self.clock.now_micros().saturating_sub(started_us);
        let source = match outcome {
            RequestOutcome::LocalHit => ServeSource::Local,
            RequestOutcome::RemoteHit { responder, .. } => ServeSource::Peer(responder),
            RequestOutcome::Miss { .. } => ServeSource::Origin,
        };
        lock(&self.latency)
            .entry(source)
            .or_default()
            .record(latency_us);
        if let Some(sink) = &self.sink {
            let (class, responder, stored) = outcome.event_parts();
            sink.emit(&Event::Request {
                seq: self.seq.fetch_add(1, Ordering::Relaxed),
                cache: self.config.id,
                doc,
                class,
                responder,
                stored,
                latency_us: Some(latency_us),
            });
        }
        Ok(outcome)
    }

    /// The protocol flow behind [`CacheDaemon::request`].
    fn serve(&self, doc: DocId, size: ByteSize) -> io::Result<RequestOutcome> {
        // 1. Local lookup.
        let now = self.clock.now();
        if lock(&self.node).handle_client_lookup(doc, now).is_some() {
            return Ok(RequestOutcome::LocalHit);
        }

        // 2. ICP fan-out over UDP; first positive reply wins.
        let responder = self.icp_locate(doc)?;

        // 3a. Remote fetch with piggybacked expiration ages.
        if let Some(peer) = responder {
            if let Some(outcome) = self.fetch_from_peer(peer, doc)? {
                return Ok(outcome);
            }
            // Peer lost the document between ICP and fetch: fall through.
        }

        // 3b. Origin fetch; the requester always stores (distributed
        // architecture, paper §4.1).
        fetch_from_origin(
            self.origin,
            doc.as_u64(),
            size.as_bytes(),
            self.config.io_timeout,
        )?;
        let stored = lock(&self.node).complete_origin_fetch(doc, size, self.clock.now());
        Ok(RequestOutcome::Miss {
            stored_locally: stored,
            stored_at_ancestor: false,
        })
    }

    /// Queries every peer over UDP and returns the first that replied
    /// with a hit, if any.
    fn icp_locate(&self, doc: DocId) -> io::Result<Option<PeerAddr>> {
        if self.peers.is_empty() {
            return Ok(None);
        }
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_read_timeout(Some(Duration::from_millis(20)))?;
        let query = WireMessage::IcpQuery(IcpQuery {
            from: self.config.id,
            doc,
        })
        .encode();
        for peer in &self.peers {
            socket.send_to(&query, peer.icp)?;
        }
        let timeout_us = u64::try_from(self.config.icp_timeout.as_micros()).unwrap_or(u64::MAX);
        let deadline_us = self.clock.now_micros().saturating_add(timeout_us);
        let mut buf = [0u8; 64];
        let mut replies = 0usize;
        while self.clock.now_micros() < deadline_us && replies < self.peers.len() {
            match socket.recv_from(&mut buf) {
                Ok((n, _)) => {
                    if let Ok(WireMessage::IcpReply(reply)) = WireMessage::decode(&buf[..n]) {
                        if reply.doc != doc {
                            continue; // stale reply from an earlier query
                        }
                        replies += 1;
                        if reply.hit {
                            return Ok(self.peers.iter().copied().find(|p| p.id == reply.from));
                        }
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// Fetches `doc` from `peer` over TCP. Returns `Ok(None)` when the
    /// peer no longer holds the document.
    fn fetch_from_peer(&self, peer: PeerAddr, doc: DocId) -> io::Result<Option<RequestOutcome>> {
        let sent = lock(&self.node).build_http_request(doc);
        let mut stream = TcpStream::connect_timeout(&peer.doc, self.config.io_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.config.io_timeout))?;
        stream.set_write_timeout(Some(self.config.io_timeout))?;
        let header = WireMessage::DocRequest(sent).encode();
        stream.write_all(&(header.len() as u32).to_be_bytes())?;
        stream.write_all(&header)?;

        let mut len_buf = [0u8; 4];
        stream.read_exact(&mut len_buf)?;
        let header_len = u32::from_be_bytes(len_buf) as usize;
        let mut header = vec![0u8; header_len];
        stream.read_exact(&mut header)?;
        let decoded = WireMessage::decode(&header)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let WireMessage::DocResponse { response, found } = decoded else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "peer sent a non-response message",
            ));
        };
        if !found {
            return Ok(None);
        }
        drain_body(&mut stream, response.size.as_bytes())?;
        let promoted = self
            .config
            .scheme
            .responder_promotes(response.responder_age, sent.requester_age);
        let stored = lock(&self.node).complete_remote_fetch(sent, response, self.clock.now());
        Ok(Some(RequestOutcome::RemoteHit {
            responder: peer.id,
            stored_locally: stored,
            promoted_at_responder: promoted,
        }))
    }

    /// Stops the background threads and waits for them to exit.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for CacheDaemon {
    fn drop(&mut self) {
        // Non-blocking best effort; `shutdown` is the clean path.
        self.stop.store(true, Ordering::Relaxed);
    }
}

fn icp_loop(socket: &UdpSocket, node: &Mutex<ProxyNode>, stop: &AtomicBool) {
    let mut buf = [0u8; 64];
    while !stop.load(Ordering::Relaxed) {
        match socket.recv_from(&mut buf) {
            Ok((n, from)) => {
                if let Ok(WireMessage::IcpQuery(query)) = WireMessage::decode(&buf[..n]) {
                    let reply = lock(node).handle_icp_query(query);
                    let _ = socket.send_to(&WireMessage::IcpReply(reply).encode(), from);
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => break,
        }
    }
}

fn doc_loop(
    listener: &TcpListener,
    node: &Mutex<ProxyNode>,
    clock: &SharedClock,
    stop: &AtomicBool,
    io_timeout: Duration,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(io_timeout));
                let _ = stream.set_write_timeout(Some(io_timeout));
                let _ = serve_doc(&mut stream, node, clock);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn serve_doc(
    stream: &mut TcpStream,
    node: &Mutex<ProxyNode>,
    clock: &SharedClock,
) -> io::Result<()> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let header_len = u32::from_be_bytes(len_buf) as usize;
    if header_len > 1024 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized header",
        ));
    }
    let mut header = vec![0u8; header_len];
    stream.read_exact(&mut header)?;
    let decoded =
        WireMessage::decode(&header).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let WireMessage::DocRequest(request) = decoded else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected a document request",
        ));
    };
    let (response, found) = {
        let mut node = lock(node);
        match node.handle_http_request(request, clock.now()) {
            Some(response) => (response, true),
            None => (
                coopcache_proxy::HttpResponse {
                    from: node.id(),
                    doc: request.doc,
                    size: ByteSize::ZERO,
                    responder_age: node.expiration_age(),
                },
                false,
            ),
        }
    };
    let header = WireMessage::DocResponse { response, found }.encode();
    stream.write_all(&(header.len() as u32).to_be_bytes())?;
    stream.write_all(&header)?;
    if found {
        write_body(stream, response.size.as_bytes())?;
    }
    Ok(())
}
